//! E2 — grammar conformance (Figure 2): every production and every code
//! listing in the paper parses; pretty-print ∘ parse is the identity.

use rel::syntax::{parse_expr, parse_program};

/// Every code listing from the paper, §1 through Addendum A.
const PAPER_LISTINGS: &[&str] = &[
    "def MatrixMult[{A},{B},i,j] : sum[ [k] : A[i,k]*B[k,j] ]",
    "def APSP({V},{E},x,y,0) : V(x) and V(y) and x = y",
    "def APSP({V},{E},x,y,i) :\n  i = min[ {(j): exists((z) | E(x,z) and APSP(V,E,z,y,j-1))}]",
    "def OrderWithPayment(y) : exists ((x) | PaymentOrder(x,y))",
    "def OrderWithPayment(y) : PaymentOrder(_,y)",
    "def OrderedProducts(y) : OrderProductQuantity(_,y,_)",
    "def OrderedProductPrice(x,y) :\n  OrderProductQuantity(_,x,_) and ProductPrice(x,y)",
    "def NotOrdered(x) : ProductPrice(x,_) and\n  not exists ((y1,y2) | OrderProductQuantity(y1,x,y2))",
    "def NotOrdered(x) : ProductPrice(x,_) and\n  forall ((y1,y2) | not OrderProductQuantity(y1,x,y2))",
    "def AlwaysOrdered(x) : ProductPrice(x,_) and\n  forall ((o in V) | OrderProductQuantity(o,x,_))",
    "def NotP1Price(x) : not ProductPrice(\"P1\",x)",
    "def DiscountedproductPrice(x,y) :\n  exists ((z) | ProductPrice(x,z) and add(y,5,z))",
    "def AdditiveInverse(x,y) : Int(x) and Int(y) and add(x,y,0)",
    "def PsychologicallyPriced(x) :\n  exists ((y) | ProductPrice(x,y) and y % 100 = 99)",
    "def TC_E(x,y) : E(x,y)\ndef TC_E(x,y) : exists((z) | E(x,z) and TC_E(z,y))",
    "def output (x) : exists( (y) | ProductPrice(x,y) and y > 30)",
    "def delete (:OrderProductQuantity,x,y,z) :\n  OrderProductQuantity(x,y,z) and\n  exists( (u) | OrderPaid(x,u) and OrderTotal(x,u) )",
    "def insert (:ClosedOrders,x) :\n  exists( (u) | OrderPaid(x,u) and OrderTotal(x,u))",
    "ic integer_quantities() requires\n  forall((x) | OrderProductQuantity(_,_,x) implies Int(x))",
    "ic integer_quantities(x) requires\n  OrderProductQuantity(_,_,x) implies Int(x)",
    "ic valid_products(x) requires\n  OrderProductQuantity(_,x,_) implies ProductPrice(x,_)",
    "def ProductRS(a,b,c,d) : R(a,b) and S(c,d)",
    "def ProductRS(x...,y...) : R(x...) and S(y...)",
    "def Prefix(x...) : R(x...,_...)",
    "def Perm(x...) : R(x...)\ndef Perm(x...,a,y...,b,z...) : Perm(x...,b,y...,a,z...)",
    "def Product({A},{B},x...,y...) : A(x...) and B(y...)",
    "def dot_join({A},{B},x...,y...) :\n  exists((t) | A(x...,t) and B(t,y...))",
    "def left_override({A},{B},x...) : A(x...)\ndef left_override({A},{B},x...,v) :\n  B(x...,v) and not A(x...,_)",
    "def log[x, y] = rel_primitive_log[x, y]",
    "def (+)(x,y,z) : add(x,y,z)\ndef (*)(x,y,z) : multiply(x,y,z)",
    "def sum[{A}] : reduce[add,A]\ndef count[{A}] : reduce[add,(A,1)]\ndef min[{A}] : reduce[minimum,A]\ndef max[{A}] : reduce[maximum,A]\ndef avg[{A}] : sum[A] / count[A]",
    "def Argmin[{A}] : {A.(min[A])}",
    "def Ord(x) : OrderProductQuantity(x,_,_)\ndef OrderPaymentAmount(x,y,z) :\n  PaymentOrder(y,x) and PaymentAmount(y,z)\ndef OrderPaid[x in Ord] : sum[OrderPaymentAmount[x]]",
    "def OrderPaid[x in Ord] : sum[OrderPaymentAmount[x]] <++ 0",
    "def Union({A},{B},x...) : A(x...) or B(x...)",
    "def Minus({A},{B},x...) : A(x...) and not B(x...)",
    "def Select({A},{Cond},x...) : A(x...) and Cond(x...)",
    "def Cond12(x1,x2,x...) : {x1=x2}",
    "def ScalarProd[{U},{V}] : { sum[[k] : U[k]*V[k]] }",
    "def MatrixVector[{A},{V},i] : { sum[[k] : A[i,k]*V[k]] }",
    "def APSP2({V},{E},x,y,i) :\n  exists ((z in V) | E(x,z) and APSP2[V,E](z,y,i-1)) and\n  not exists ((j in Int) | j < i and APSP2[V,E](x,y,j))",
    "def dimension[{Matrix}] : max[(k) : Matrix(k,_,_)]",
    "def vector[d,i] : 1.0/d where range(1,d,1,i)",
    "def abs(x,y) : (x >= 0 and y = x) or (x < 0 and y = -1 * x)",
    "def delta[{Vec1},{Vec2}] : max[[k] : abs[Vec1[k] - Vec2[k]]]",
    "def next[{G},{P}]: {MatrixVector[G,P]}",
    "def stop({G},{P}): {delta[next[G,P],P] > 0.005}",
    "def PageRank[{G}] :\n  {vector[dimension[G]] where empty (PageRank[G])}\ndef PageRank[{G}] : {next[G,PageRank[G]]\n  where not empty (PageRank[G]) and stop(G,PageRank[G])}\ndef PageRank[{G}] : {PageRank[G] where\n  not empty (PageRank[G]) and not stop(G,PageRank[G])}",
    "def empty(R) : not exists( (x...) | R(x...))",
    "def addUp[{A}] : sum[A]\ndef addUp[x in Int] : x%10 + addUp[(x-x%10)/10] where x >= 0",
];

#[test]
fn every_paper_listing_parses() {
    for (i, src) in PAPER_LISTINGS.iter().enumerate() {
        parse_program(src).unwrap_or_else(|e| panic!("listing {i} failed: {e}\n{src}"));
    }
}

#[test]
fn every_paper_listing_round_trips() {
    for src in PAPER_LISTINGS {
        let ast = parse_program(src).unwrap();
        let printed = ast.to_string();
        let again = parse_program(&printed)
            .unwrap_or_else(|e| panic!("re-parse failed: {e}\n{printed}"));
        assert_eq!(ast, again, "round-trip mismatch for {src:?}");
    }
}

#[test]
fn grammar_productions_covered() {
    // Every Expr / Formula / Argument production of Figure 2.
    for src in [
        // Literal | ID | ID...
        "c",
        "x...",
        // (Expr, ..., Expr)
        "(a, b, c)",
        // Expr where Formula
        "a where R(x)",
        // {Expr; ...; Expr}
        "{a; b; c}",
        // [Binding,...] : Expr and (Binding,...) : Formula
        "[x, y in R, {A}, z...] : x",
        "(x, y) : R(x, y)",
        // {Expr}[Arg,...] with _ , _..., ID..., ?{E}, &{E}
        "R[_, _..., x..., ?{S}, &{T}]",
        // reduce[&{E},&{E}] and reduce(&{E},&{E},?{E})
        "reduce[&{add}, &{A}]",
        "reduce(&{add}, &{A}, ?{v})",
        // {} | {()}
        "{}",
        "{()}",
        // Formula connectives and quantifiers
        "R(x) and S(x) or not T(x)",
        "exists((x, y...) | R(x, y...))",
        "forall((x in V) | R(x))",
        "(R(x))",
    ] {
        parse_expr(src).unwrap_or_else(|e| panic!("production {src:?} failed: {e}"));
    }
}

#[test]
fn keywords_and_flexibility() {
    // "braces around a rule's body can be omitted if the body is an
    // abstraction" and `def ID {Expr}`.
    parse_program("def F {(x) : R(x)}").unwrap();
    parse_program("def F(x) : R(x)").unwrap();
    // implies / iff / xor sugar (§3.1).
    parse_expr("a implies b iff c xor d").unwrap();
}
