//! E1 — Paper conformance: every inline query of §3–§5 (and Addendum A)
//! evaluated against the Figure 1 database, asserted against the exact
//! results the paper states.

use rel::prelude::*;

fn session() -> Session {
    Session::with_stdlib(rel::core::database::figure1_database())
}

fn q(src: &str) -> Relation {
    session().query(src).unwrap_or_else(|e| panic!("query failed: {e}\n{src}"))
}

fn rel_of(tuples: &[&[Value]]) -> Relation {
    tuples.iter().map(|vs| Tuple::from(vs.to_vec())).collect()
}

fn s(v: &str) -> Value {
    Value::str(v)
}
fn i(v: i64) -> Value {
    Value::Int(v)
}

// ---------------------------------------------------------------- §3.1

#[test]
fn order_with_payment_has_o1_o2_o3() {
    // "adds the tuples ⟨"O1"⟩, ⟨"O2"⟩, ⟨"O3"⟩ … to OrderWithPayment"
    let out = q("def output(y) : exists((x) | PaymentOrder(x,y))");
    assert_eq!(out, rel_of(&[&[s("O1")], &[s("O2")], &[s("O3")]]));
    // Wildcard form is equivalent.
    assert_eq!(out, q("def output(y) : PaymentOrder(_,y)"));
}

#[test]
fn ordered_products_p1_p2_p3() {
    // "we get ⟨"P1"⟩, ⟨"P2"⟩, ⟨"P3"⟩ as the result"
    let out = q("def output(y) : OrderProductQuantity(_,y,_)");
    assert_eq!(out, rel_of(&[&[s("P1")], &[s("P2")], &[s("P3")]]));
}

#[test]
fn ordered_product_price() {
    // "{⟨"P1", 10⟩, ⟨"P2", 20⟩, ⟨"P3", 30⟩}"
    let out = q(
        "def output(x,y) : OrderProductQuantity(_,x,_) and ProductPrice(x,y)",
    );
    assert_eq!(
        out,
        rel_of(&[&[s("P1"), i(10)], &[s("P2"), i(20)], &[s("P3"), i(30)]])
    );
}

#[test]
fn not_ordered_is_p4_in_both_forms() {
    // "both add "P4" to NotOrdered"
    let negation = q(
        "def output(x) : ProductPrice(x,_) and \
         not exists((y1,y2) | OrderProductQuantity(y1,x,y2))",
    );
    let universal = q(
        "def output(x) : ProductPrice(x,_) and \
         forall((y1,y2) | not OrderProductQuantity(y1,x,y2))",
    );
    let wildcard = q(
        "def output(x) : ProductPrice(x,_) and not OrderProductQuantity(_,x,_)",
    );
    let expected = rel_of(&[&[s("P4")]]);
    assert_eq!(negation, expected);
    assert_eq!(universal, expected);
    assert_eq!(wildcard, expected);
}

#[test]
fn always_ordered_with_restricted_forall() {
    // §3.1: products in every order of V = {O1, O2}: P1 is in both.
    let out = q(
        "def Vset(o) : {(\"O1\"); (\"O2\")}(o)\n\
         def output(x) : ProductPrice(x,_) and \
         forall((o in Vset) | OrderProductQuantity(o,x,_))",
    );
    assert_eq!(out, rel_of(&[&[s("P1")]]));
}

// ---------------------------------------------------------------- §3.2

#[test]
fn discounted_product_price() {
    // "{⟨"P1", 5⟩, ⟨"P2", 15⟩, ⟨"P3", 25⟩, ⟨"P4", 35⟩}"
    let out = q(
        "def output(x,y) : exists((z) | ProductPrice(x,z) and add(y,5,z))",
    );
    assert_eq!(
        out,
        rel_of(&[
            &[s("P1"), i(5)],
            &[s("P2"), i(15)],
            &[s("P3"), i(25)],
            &[s("P4"), i(35)],
        ])
    );
}

#[test]
fn additive_inverse_is_rejected_standalone() {
    // §3.2: "Rel's set of safety rules will detect that this expression is
    // potentially infinite" — as a top-level output it must be refused.
    let err = session()
        .query("def output(x,y) : Int(x) and Int(y) and add(x,y,0)")
        .unwrap_err();
    assert!(matches!(err, RelError::Unsafe(_)), "{err}");
}

#[test]
fn additive_inverse_intersected_with_finite_is_safe() {
    // "an expression that intersects AdditiveInverse with a finite set
    // will be seen as safe".
    let out = q(
        "def AdditiveInverse(x,y) : Int(x) and Int(y) and add(x,y,0)\n\
         def Fin(x,y) : {(1,-1); (2,3)}(x,y)\n\
         def output(x,y) : Fin(x,y) and AdditiveInverse(x,y)",
    );
    assert_eq!(out, rel_of(&[&[i(1), i(-1)]]));
}

#[test]
fn psychologically_priced() {
    // y % 100 = 99 finds nothing in Figure 1 (prices 10..40); with a 199
    // price added it finds it.
    let out = q(
        "def output(x) : exists((y) | ProductPrice(x,y) and y % 100 = 99)",
    );
    assert!(out.is_empty());
    let mut db = rel::core::database::figure1_database();
    db.insert("ProductPrice", Tuple::from(vec![s("P9"), i(199)]));
    let out = Session::with_stdlib(db)
        .query("def output(x) : exists((y) | ProductPrice(x,y) and y % 100 = 99)")
        .unwrap();
    assert_eq!(out, rel_of(&[&[s("P9")]]));
}

// ---------------------------------------------------------------- §3.3

#[test]
fn bought_with_expensive_product() {
    // "SameOrderDiffProduct … evaluates to {⟨"P1","P2"⟩, ⟨"P2","P1"⟩}" and
    // "BoughtWithExpensiveProduct evaluates to … ("P1")".
    let src = "\
        def SameOrder(p1, p2) : exists((o) | OrderProductQuantity(o, p1, _) \
            and OrderProductQuantity(o, p2, _))\n\
        def SameOrderDiffProduct(p1, p2) : SameOrder(p1, p2) and p1 != p2\n\
        def Expensive(p) : exists((price) | ProductPrice(p,price) and price > 15)\n\
        def output(p) : exists((x in Expensive) | SameOrderDiffProduct(x, p))\n";
    assert_eq!(q(src), rel_of(&[&[s("P1")]]));
    let sodp = session()
        .eval(src, "SameOrderDiffProduct")
        .unwrap();
    assert_eq!(sodp, rel_of(&[&[s("P1"), s("P2")], &[s("P2"), s("P1")]]));
}

#[test]
fn rule_order_is_irrelevant() {
    // §3.3: "the program would compute the same result if the rules would
    // be ordered differently".
    let fwd = "def A(x) : ProductPrice(x,_)\ndef output(x) : A(x) and not B(x)\ndef B(x) : OrderProductQuantity(_,x,_)";
    let rev = "def B(x) : OrderProductQuantity(_,x,_)\ndef output(x) : A(x) and not B(x)\ndef A(x) : ProductPrice(x,_)";
    assert_eq!(q(fwd), q(rev));
}

#[test]
fn transitive_closure_of_edges() {
    let mut db = Database::new();
    for (a, b) in [(1i64, 2i64), (2, 3)] {
        db.insert("E", Tuple::from(vec![i(a), i(b)]));
    }
    let out = Session::with_stdlib(db)
        .query(
            "def TC_E(x,y) : E(x,y)\n\
             def TC_E(x,y) : exists((z) | E(x,z) and TC_E(z,y))\n\
             def output(x,y) : TC_E(x,y)",
        )
        .unwrap();
    assert_eq!(out, rel_of(&[&[i(1), i(2)], &[i(1), i(3)], &[i(2), i(3)]]));
}

#[test]
fn multiple_rules_union() {
    // "def ID : e1  def ID : e2 ≡ def ID : e1 or e2"
    let two_rules = q("def A(x) : ProductPrice(x,_)\ndef A(y) : PaymentOrder(y,_)\ndef output(x) : A(x)");
    let one_rule =
        q("def A(x) : ProductPrice(x,_) or PaymentOrder(x,_)\ndef output(x) : A(x)");
    assert_eq!(two_rules, one_rule);
}

// ---------------------------------------------------------------- §3.4

#[test]
fn output_products_over_30() {
    // "outputs all products whose price exceeds 30"
    let out = q("def output(x) : exists( (y) | ProductPrice(x,y) and y > 30)");
    assert_eq!(out, rel_of(&[&[s("P4")]]));
}

#[test]
fn paid_orders_delete_and_insert() {
    // §3.4's transaction: delete fully-paid orders' lines, insert them
    // into ClosedOrders (created on the spot).
    let mut sess = session();
    let outcome = sess
        .transact(
            "def Ord(x) : OrderProductQuantity(x,_,_)\n\
             def OrderPaymentAmount(x,y,z) : PaymentOrder(y,x) and PaymentAmount(y,z)\n\
             def OrderPaid[x in Ord] : sum[OrderPaymentAmount[x]] <++ 0\n\
             def LineAmount(o, p, a) : exists((q, pr) | \
                 OrderProductQuantity(o, p, q) and ProductPrice(p, pr) and a = q * pr)\n\
             def OrderTotal[o in Ord] : sum[LineAmount[o]]\n\
             def FullyPaid(x) : exists((u) | OrderPaid(x,u) and OrderTotal(x,u))\n\
             def delete(:OrderProductQuantity, x, y, z) : \
                 OrderProductQuantity(x,y,z) and FullyPaid(x)\n\
             def insert(:ClosedOrders, x) : FullyPaid(x)",
        )
        .unwrap();
    // O2: total 1×10 = 10, paid 10 → fully paid. O3: total 120, paid 90.
    // O1: total 2×10+1×20 = 40, paid 30.
    assert_eq!(outcome.inserted, 1);
    assert!(sess.db().get("ClosedOrders").unwrap().contains(&Tuple::from(vec![s("O2")])));
    assert_eq!(sess.db().get("OrderProductQuantity").unwrap().len(), 3);
}

// ---------------------------------------------------------------- §3.5

#[test]
fn integer_quantities_constraint_holds_and_fails() {
    let ic = "ic integer_quantities() requires \
              forall((x) | OrderProductQuantity(_,_,x) implies Int(x))";
    session().query(&format!("def output(x) : ProductPrice(x,_)\n{ic}")).unwrap();
    // Break it.
    let mut db = rel::core::database::figure1_database();
    db.insert("OrderProductQuantity", Tuple::from(vec![s("O9"), s("P1"), s("two")]));
    let err = Session::with_stdlib(db)
        .query(&format!("def output(x) : ProductPrice(x,_)\n{ic}"))
        .unwrap_err();
    assert!(matches!(err, RelError::ConstraintViolation { .. }), "{err}");
}

#[test]
fn parameterised_constraint_reports_witnesses() {
    // "integer_quantities will be populated with the values x that
    // violate the constraint".
    let mut db = rel::core::database::figure1_database();
    db.insert("OrderProductQuantity", Tuple::from(vec![s("O9"), s("P1"), s("two")]));
    let err = Session::with_stdlib(db)
        .query(
            "def output(x) : ProductPrice(x,_)\n\
             ic integer_quantities(x) requires \
             OrderProductQuantity(_,_,x) implies Int(x)",
        )
        .unwrap_err();
    match err {
        RelError::ConstraintViolation { name, witnesses } => {
            assert_eq!(name, "integer_quantities");
            assert!(witnesses.contains("two"), "{witnesses}");
        }
        other => panic!("{other}"),
    }
}

#[test]
fn valid_products_foreign_key() {
    let ic = "ic valid_products(x) requires \
              OrderProductQuantity(_,x,_) implies ProductPrice(x,_)";
    session().query(&format!("def output(x) : ProductPrice(x,_)\n{ic}")).unwrap();
}

// ---------------------------------------------------------------- §4.1

#[test]
fn cartesian_product_fixed_and_generic() {
    let src = "def R(x,y) : {(1,2); (3,4)}(x,y)\n\
               def S(x,y) : {(5,6)}(x,y)\n";
    let fixed = q(&format!("{src}def output(a,b,c,d) : R(a,b) and S(c,d)"));
    let generic = q(&format!(
        "{src}def P(x...,y...) : R(x...) and S(y...)\ndef output : P"
    ));
    let expected = rel_of(&[&[i(1), i(2), i(5), i(6)], &[i(3), i(4), i(5), i(6)]]);
    assert_eq!(fixed, expected);
    assert_eq!(generic, expected);
}

#[test]
fn prefixes_of_tuples() {
    // def Prefix(x...) : R(x...,_...) — all prefixes.
    let out = q(
        "def R(x,y) : {(1,2)}(x,y)\n\
         def Prefix(x...) : R(x...,_...)\n\
         def output : Prefix",
    );
    // (), (1), (1,2)
    assert_eq!(out.len(), 3);
    assert!(out.contains(&Tuple::empty()));
    assert!(out.contains(&Tuple::from(vec![i(1)])));
    assert!(out.contains(&Tuple::from(vec![i(1), i(2)])));
}

#[test]
fn permutations_by_transposition() {
    let out = q(
        "def R(x,y,z) : {(1,2,3)}(x,y,z)\n\
         def Perm(x...) : R(x...)\n\
         def Perm(x...,a,y...,b,z...) : Perm(x...,b,y...,a,z...)\n\
         def output : Perm",
    );
    assert_eq!(out.len(), 6);
}

// ---------------------------------------------------------- §4.2 / §4.3

#[test]
fn second_order_product_full_and_partial() {
    let src = "def R(x,y) : {(1,2); (3,4)}(x,y)\n\
               def S(x,y) : {(5,6)}(x,y)\n\
               def Product({A},{B},x...,y...) : A(x...) and B(y...)\n";
    // Full application: Product(R, S, 1, 2, 5, 6) is true.
    let out = q(&format!("{src}def output() : Product(R, S, 1, 2, 5, 6)"));
    assert!(out.is_true());
    // Partial application: Product[R, S] is the Cartesian product.
    let out = q(&format!("{src}def output : Product[R, S]"));
    assert_eq!(out.len(), 2);
    // The (R, S) infix notation is the same operation.
    let out2 = q(&format!("{src}def output : (R, S)"));
    assert_eq!(out, out2);
}

#[test]
fn partial_application_of_base_relation() {
    // OrderProductQuantity["O1"] = {("P1",2), ("P2",1)} (§4.3).
    let out = q("def output : OrderProductQuantity[\"O1\"]");
    assert_eq!(out, rel_of(&[&[s("P1"), i(2)], &[s("P2"), i(1)]]));
    // Full application as boolean.
    assert!(q("def output() : OrderProductQuantity(\"O1\",\"P1\",2)").is_true());
    assert!(q("def output() : OrderProductQuantity(\"O1\",\"P1\",3)").is_empty());
}

#[test]
fn singleton_product_literal() {
    // ("P4",40) is the relation containing a single tuple (§4.3).
    let out = q("def output : (\"P4\", 40)");
    assert_eq!(out, rel_of(&[&[s("P4"), i(40)]]));
}

// ---------------------------------------------------------------- §4.4

#[test]
fn paren_abstraction_set_comprehension() {
    // {(x,y) : OrderProductQuantity(x,"P1",y)} — orders and quantities of P1.
    let out = q("def output : {(x,y) : OrderProductQuantity(x,\"P1\",y)}");
    assert_eq!(out, rel_of(&[&[s("O1"), i(2)], &[s("O2"), i(1)]]));
}

#[test]
fn bracket_abstraction_expression_4() {
    // Expression (4): {[x,y] : (OrderProductQuantity[x], PaymentOrder(y,x))}
    let out = q(
        "def output : {[x,y] : (OrderProductQuantity[x], PaymentOrder(y,x))}",
    );
    assert!(out.contains(&Tuple::from(vec![s("O1"), s("Pmt1"), s("P1"), i(2)])));
    assert!(out.contains(&Tuple::from(vec![s("O1"), s("Pmt1"), s("P2"), i(1)])));
    // And the `where` rewriting of §5.3.1 is equivalent.
    let out2 = q(
        "def output : {[x,y] : OrderProductQuantity[x] where PaymentOrder(y,x)}",
    );
    assert_eq!(out, out2);
}

#[test]
fn restricted_abstraction_domain() {
    // With V = {Pmt2, Pmt4}: only their orders' contents (§4.4).
    let out = q(
        "def Vset(v) : {(\"Pmt2\"); (\"Pmt4\")}(v)\n\
         def output : {[x, y in Vset] : \
            (OrderProductQuantity[x], PaymentOrder(y,x))}",
    );
    assert_eq!(
        out,
        rel_of(&[
            &[s("O2"), s("Pmt2"), s("P1"), i(1)],
            &[s("O3"), s("Pmt4"), s("P3"), i(4)],
        ])
    );
}

// ---------------------------------------------------------------- §5.2

#[test]
fn order_paid_aggregation() {
    // "{⟨O1,30⟩…}" with unpaid orders excluded, then included via <++ 0.
    let base = "def Ord(x) : OrderProductQuantity(x,_,_)\n\
                def OrderPaymentAmount(x,y,z) : PaymentOrder(y,x) and PaymentAmount(y,z)\n";
    let out = q(&format!(
        "{base}def output[x in Ord] : sum[OrderPaymentAmount[x]]"
    ));
    assert_eq!(
        out,
        rel_of(&[&[s("O1"), i(30)], &[s("O2"), i(10)], &[s("O3"), i(90)]])
    );
}

#[test]
fn aggregates_from_reduce() {
    // sum/count/min/max/avg are library definitions over reduce (§5.2).
    assert_eq!(q("def output[v] : v = sum[ProductPrice]"), rel_of(&[&[i(100)]]));
    assert_eq!(q("def output[v] : v = count[ProductPrice]"), rel_of(&[&[i(4)]]));
    assert_eq!(q("def output[v] : v = min[ProductPrice]"), rel_of(&[&[i(10)]]));
    assert_eq!(q("def output[v] : v = max[ProductPrice]"), rel_of(&[&[i(40)]]));
    assert_eq!(q("def output[v] : v = avg[ProductPrice]"), rel_of(&[&[i(25)]]));
}

#[test]
fn argmin_is_dot_join_with_min() {
    assert_eq!(q("def output : Argmin[ProductPrice]"), rel_of(&[&[s("P1")]]));
}

// ---------------------------------------------------------------- §5.3

#[test]
fn point_free_select_union_example() {
    // σ_{A1=A2}(R×S) ∪ B (§5.3.1).
    let out = q(
        "def R(x) : {(1); (2)}(x)\n\
         def S(x) : {(2); (7)}(x)\n\
         def B(x,y) : {(0,0)}(x,y)\n\
         def output : Union[Select[Product[R, S], Cond12], B]",
    );
    assert_eq!(out, rel_of(&[&[i(0), i(0)], &[i(2), i(2)]]));
}

#[test]
fn scalar_product_is_24() {
    // §5.3.2 — u=(4,2), v=(3,6): "the sum correctly results in 24".
    let out = q(
        "def U(i,x) : {(1,4); (2,2)}(i,x)\n\
         def Vv(i,x) : {(1,3); (2,6)}(i,x)\n\
         def output : ScalarProd[U, Vv]",
    );
    assert_eq!(out, rel_of(&[&[i(24)]]));
}

#[test]
fn matrix_mult_matches_math() {
    let out = q(
        "def A(i,j,v) : {(1,1,1); (1,2,2); (2,1,3); (2,2,4)}(i,j,v)\n\
         def B(i,j,v) : {(1,1,5); (1,2,6); (2,1,7); (2,2,8)}(i,j,v)\n\
         def output : MatrixMult[A, B]",
    );
    assert_eq!(
        out,
        rel_of(&[
            &[i(1), i(1), i(19)],
            &[i(1), i(2), i(22)],
            &[i(2), i(1), i(43)],
            &[i(2), i(2), i(50)],
        ])
    );
}

// ------------------------------------------------------------ Addendum A

#[test]
fn addup_disambiguation() {
    // addUp[?{11;22}] = {⟨2⟩,⟨4⟩}; addUp[&{11;22}] = {⟨33⟩}; unannotated
    // is an error.
    let src = "def addUp[{A}] : sum[A]\n\
               def addUp[x in Int] : x%10 + addUp[(x-x%10)/10] where x > 0\n\
               def addUp[x in Int] : 0 where x = 0\n";
    // Note: the paper's single recursive rule (guarded by x >= 0) demands
    // addUp[0] from addUp[0] and would not terminate; we use the standard
    // base-case split (x > 0 recursive, x = 0 base). Documented in
    // EXPERIMENTS.md E1.
    let first = q(&format!("{src}def output : addUp[?{{11;22}}]"));
    assert_eq!(first, rel_of(&[&[i(2)], &[i(4)]]));
    let second = q(&format!("{src}def output : addUp[&{{11;22}}]"));
    assert_eq!(second, rel_of(&[&[i(33)]]));
    let err = session()
        .query(&format!("{src}def output : addUp[{{11;22}}]"))
        .unwrap_err();
    assert!(matches!(err, RelError::AmbiguousApplication(_)), "{err}");
}

#[test]
fn booleans_are_nullary_relations() {
    // true = {()}, false = {} (§4.3).
    assert!(q("def output : {()}").is_true());
    assert!(q("def output : {}").is_empty());
    // Product with true is identity; with false, empty.
    assert_eq!(
        q("def output : (ProductPrice, {()})"),
        q("def output : ProductPrice")
    );
    assert!(q("def output : (ProductPrice, {})").is_empty());
}

#[test]
fn apsp_both_variants_on_a_path() {
    let mut db = Database::new();
    for v in 0..4i64 {
        db.insert("V", Tuple::from(vec![i(v)]));
    }
    for (a, b) in [(0i64, 1i64), (1, 2), (2, 3)] {
        db.insert("E", Tuple::from(vec![i(a), i(b)]));
    }
    let sess = rel::graph::with_graph_lib(db);
    let v1 = sess.query("def output(x,y,d) : APSP(V, E, x, y, d)").unwrap();
    let v2 = sess.query("def output(x,y,d) : APSP2(V, E, x, y, d)").unwrap();
    assert_eq!(v1, v2);
    assert!(v1.contains(&Tuple::from(vec![i(0), i(3), i(3)])));
    assert!(v1.contains(&Tuple::from(vec![i(2), i(2), i(0)])));
}

#[test]
fn addup_literal_aggregation_paper_reading() {
    // The literal reading of the paper's aggregation-APSP derives both
    // (x,x,0) and the cycle length — documented in EXPERIMENTS.md E1. On
    // a cycle of length 2:
    let mut db = Database::new();
    for v in 0..2i64 {
        db.insert("V", Tuple::from(vec![i(v)]));
    }
    for (a, b) in [(0i64, 1i64), (1, 0)] {
        db.insert("E", Tuple::from(vec![i(a), i(b)]));
    }
    let out = Session::with_stdlib(db)
        .query(
            "def A({V},{E},x,y,0) : V(x) and V(y) and x = y\n\
             def A({V},{E},x,y,d) : \
               d = min[(j) : exists((z) | E(x,z) and A[V,E](z,y,j-1))]\n\
             def output(x,y,d) : A(V, E, x, y, d)",
        )
        .unwrap();
    // Literal fixpoint: diag zeros, distance-1 pairs, AND (x,x,2) cycles.
    assert!(out.contains(&Tuple::from(vec![i(0), i(0), i(0)])));
    assert!(out.contains(&Tuple::from(vec![i(0), i(1), i(1)])));
    assert!(out.contains(&Tuple::from(vec![i(0), i(0), i(2)])));
}
