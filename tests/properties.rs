//! Property-based tests across the workspace: parser round-trips on
//! generated ASTs, engine ≡ reference interpreter (E3), semi-naive ≡
//! naive, relational-algebra laws through the engine, and reduce
//! permutation invariance.

use proptest::prelude::*;
use rel::prelude::*;
use rel::syntax::ast::{self, Expr};

// ---------------------------------------------------------------------
// Random first-order query generation (safe by construction: variables
// are bound by positive atoms before use in filters/negation).
// ---------------------------------------------------------------------

/// A small random database over unary/binary relations R, S, T.
fn db_strategy() -> impl Strategy<Value = Database> {
    let tuple2 = (0i64..6, 0i64..6);
    (
        proptest::collection::vec(tuple2.clone(), 0..12),
        proptest::collection::vec(tuple2, 0..12),
        proptest::collection::vec(0i64..6, 0..6),
    )
        .prop_map(|(r, s, t)| {
            let mut db = Database::new();
            for (a, b) in r {
                db.insert("R", Tuple::from(vec![Value::Int(a), Value::Int(b)]));
            }
            for (a, b) in s {
                db.insert("S", Tuple::from(vec![Value::Int(a), Value::Int(b)]));
            }
            for a in t {
                db.insert("T", Tuple::from(vec![Value::Int(a)]));
            }
            db
        })
}

/// Random safe query bodies over R(x,y), S(y,z), T(x): a positive join
/// core plus optional filters and negations.
fn query_strategy() -> impl Strategy<Value = String> {
    let atom = prop_oneof![
        Just("R(x,y)".to_string()),
        Just("S(x,y)".to_string()),
        Just("R(y,x)".to_string()),
        Just("S(y,x)".to_string()),
    ];
    let extra = prop_oneof![
        Just("T(x)".to_string()),
        Just("not T(x)".to_string()),
        Just("not S(x,y)".to_string()),
        Just("not R(x,y)".to_string()),
        Just("x = y".to_string()),
        Just("x != y".to_string()),
        Just("x < y".to_string()),
        Just("exists((z) | R(y,z))".to_string()),
        Just("forall((z) | S(x,z) implies T(z))".to_string()),
    ];
    (atom, proptest::collection::vec(extra, 0..3)).prop_map(|(a, extras)| {
        let mut body = a;
        for e in extras {
            body.push_str(" and ");
            body.push_str(&e);
        }
        format!("def output(x,y) : {body}")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// E3 — the optimized engine agrees with the Figs. 3–4 reference
    /// interpreter on random safe queries.
    #[test]
    fn engine_matches_reference_interpreter(db in db_strategy(), q in query_strategy()) {
        let (engine, reference) = rel::interp::differential(&db, &q)
            .unwrap_or_else(|e| panic!("eval failed: {e}\n{q}"));
        prop_assert_eq!(engine, reference, "query: {}", q);
    }

    /// Semi-naive and naive evaluation compute the same fixpoint.
    #[test]
    fn semi_naive_equals_naive(db in db_strategy()) {
        let module = rel::sema::compile(
            "def P(x,y) : R(x,y)\n\
             def P(x,y) : exists((z) | P(x,z) and S(z,y))\n\
             def Q(x,y) : P(x,y) or exists((z) | Q(x,z) and P(z,y))",
        ).unwrap();
        let a = rel::engine::materialize(&module, &db).unwrap();
        let b = rel::engine::materialize_naive(&module, &db).unwrap();
        prop_assert_eq!(a.get("P"), b.get("P"));
        prop_assert_eq!(a.get("Q"), b.get("Q"));
    }

    /// RA laws through the engine: Union commutes, Minus(A,A) = ∅,
    /// Product with true is identity, Intersect(A,A) = A.
    #[test]
    fn relational_algebra_laws(db in db_strategy()) {
        let s = rel::stdlib::with_stdlib(db);
        let ab = s.query("def output : Union[R, S]").unwrap();
        let ba = s.query("def output : Union[S, R]").unwrap();
        prop_assert_eq!(ab, ba);
        let empty = s.query("def output : Minus[R, R]").unwrap();
        prop_assert!(empty.is_empty());
        let id = s.query("def output : Product[R, {()}]").unwrap();
        let r = s.query("def output(x,y) : R(x,y)").unwrap();
        prop_assert_eq!(id, r.clone());
        let inter = s.query("def output : Intersect[R, R]").unwrap();
        prop_assert_eq!(inter, r);
    }

    /// reduce over a commutative op is insertion-order invariant (set
    /// semantics makes this trivial — but the fold itself must also not
    /// depend on generation order).
    #[test]
    fn reduce_is_order_invariant(mut vals in proptest::collection::vec(-50i64..50, 1..10)) {
        let forward: Database = {
            let mut db = Database::new();
            for (i, v) in vals.iter().enumerate() {
                db.insert("A", Tuple::from(vec![Value::Int(i as i64), Value::Int(*v)]));
            }
            db
        };
        vals.reverse();
        let backward: Database = {
            let mut db = Database::new();
            for (i, v) in vals.iter().enumerate() {
                db.insert("A", Tuple::from(vec![Value::Int((vals.len() - 1 - i) as i64), Value::Int(*v)]));
            }
            db
        };
        let q = "def output : reduce[add, A]";
        let f = rel::stdlib::with_stdlib(forward).query(q).unwrap();
        let b = rel::stdlib::with_stdlib(backward).query(q).unwrap();
        prop_assert_eq!(f, b);
    }

    /// Parser round-trip on generated expressions.
    #[test]
    fn parser_round_trips(e in expr_strategy()) {
        let printed = rel::syntax::pretty::ExprPrinter(&e).to_string();
        let parsed = rel::syntax::parse_expr(&printed)
            .unwrap_or_else(|err| panic!("re-parse of {printed:?} failed: {err}"));
        prop_assert_eq!(parsed, e, "printed: {}", printed);
    }
}

/// Random expression ASTs (closed under the pretty-printer).
fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (0i64..100).prop_map(Expr::int),
        "[a-z][a-z0-9]{0,3}".prop_map(Expr::Ident),
        Just(Expr::Wildcard),
        Just(Expr::true_()),
        Just(Expr::false_()),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::Or(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|a| Expr::Not(Box::new(a))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| {
                Expr::Cmp(ast::CmpOp::Le, Box::new(a), Box::new(b))
            }),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| {
                Expr::Arith(ast::ArithOp::Add, Box::new(a), Box::new(b))
            }),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| {
                Expr::Arith(ast::ArithOp::Mul, Box::new(a), Box::new(b))
            }),
            // Size-1 products/unions print as transparent grouping
            // (`(e)` / `{e}`), so only 0- and 2-element forms are
            // structurally stable under print∘parse.
            proptest::collection::vec(inner.clone(), 2..4).prop_map(Expr::Product),
            proptest::collection::vec(inner.clone(), 2..4).prop_map(Expr::Union),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::Where(Box::new(a), Box::new(b))),
            ("[a-z][a-z0-9]{0,3}", proptest::collection::vec(inner, 0..3)).prop_map(
                |(f, args)| Expr::App {
                    func: Box::new(Expr::Ident(f)),
                    args: args.into_iter().map(ast::Arg::plain).collect(),
                    style: ast::AppStyle::Partial,
                }
            ),
        ]
    })
}
