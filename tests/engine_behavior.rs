//! Cross-crate behavioral tests: failure injection (divergence caps,
//! demand cycles, runtime guards), transaction atomicity across aborts,
//! and end-to-end knowledge-graph workflows.

use rel::prelude::*;

fn figure1() -> Session {
    Session::with_stdlib(rel::core::database::figure1_database())
}

// ------------------------------------------------------------------
// Failure injection
// ------------------------------------------------------------------

#[test]
fn divergent_pfp_is_capped() {
    // Flip(x) :- E(x), not Flip(x): the partial fixpoint oscillates and
    // must hit the divergence cap rather than hang.
    let mut db = Database::new();
    db.insert("E", Tuple::from(vec![Value::Int(1)]));
    let err = Session::new(db)
        .query("def Flip(x) : E(x) and not Flip(x)\ndef output(x) : Flip(x)")
        .unwrap_err();
    assert!(matches!(err, RelError::Divergent { .. }), "{err}");
}

#[test]
fn cyclic_demand_is_detected() {
    // f[x] = f[x] demands itself with the same argument.
    let mut db = Database::new();
    db.insert("T", Tuple::from(vec![Value::Int(1)]));
    let err = Session::with_stdlib(db)
        .query(
            "def f[x in Int] : f[x] + 0\n\
             def output(v) : exists((x) | T(x) and f(x, v))",
        )
        .unwrap_err();
    assert!(
        matches!(err, RelError::Stratify(_) | RelError::Unsafe(_)),
        "{err}"
    );
}

#[test]
fn unsafe_output_is_rejected_not_empty() {
    // A demand-only output must error loudly, not return {}.
    let err = figure1()
        .query("def output[x] : x + 1")
        .unwrap_err();
    assert!(matches!(err, RelError::Unsafe(_)), "{err}");
}

#[test]
fn overflow_surfaces_as_arithmetic_error() {
    let mut db = Database::new();
    db.insert("N", Tuple::from(vec![Value::Int(i64::MAX)]));
    let err = Session::with_stdlib(db)
        .query("def output(y) : exists((x) | N(x) and y = x + 1)")
        .unwrap_err();
    assert!(matches!(err, RelError::Arithmetic(_)), "{err}");
}

#[test]
fn type_mismatches_are_filtering_not_errors() {
    // modulo on a string column: the tuples are simply not in the
    // (typed, infinite) builtin relation.
    let out = figure1()
        .query("def output(x) : exists((y) | PaymentOrder(x, y) and y % 2 = 0)")
        .unwrap();
    assert!(out.is_empty());
}

#[test]
fn second_order_instantiation_cap() {
    // A second-order definition that manufactures a new instance on every
    // recursive call must hit the instantiation cap.
    let err = figure1()
        .query(
            "def Blow({A}, x) : A(x) or Blow(Union[A, A], x)\n\
             def output(x) : Blow(ProductPrice, x)",
        )
        .unwrap_err();
    // Either the instantiation cap or a resolve error is acceptable; the
    // point is compile-time rejection, not divergence.
    assert!(
        matches!(err, RelError::Stratify(_) | RelError::Resolve(_)),
        "{err}"
    );
}

// ------------------------------------------------------------------
// Transaction atomicity
// ------------------------------------------------------------------

#[test]
fn aborted_transaction_changes_nothing() {
    let mut s = figure1();
    let before = s.db().clone();
    let err = s
        .transact(
            "def insert(:ClosedOrders, x) : PaymentOrder(_, x)\n\
             def delete(:ProductPrice, x, y) : ProductPrice(x, y)\n\
             ic keep_prices() requires exists((x, y) | ProductPrice(x, y))",
        )
        .unwrap_err();
    assert!(matches!(err, RelError::ConstraintViolation { .. }), "{err}");
    // Neither the insert nor the delete happened.
    assert_eq!(s.db(), &before);
}

#[test]
fn delete_and_reinsert_same_tuple_survives() {
    let mut s = figure1();
    s.transact(
        "def delete(:ProductPrice, x, y) : ProductPrice(x, y) and x = \"P1\"\n\
         def insert(:ProductPrice, x, y) : x = \"P1\" and y = 10",
    )
    .unwrap();
    assert!(s
        .db()
        .get("ProductPrice")
        .unwrap()
        .contains(&Tuple::from(vec![Value::str("P1"), Value::Int(10)])));
}

#[test]
fn inserts_visible_to_next_transaction_only() {
    let mut s = figure1();
    // During the same transaction, derived relations see the *old* state.
    let outcome = s
        .transact(
            "def insert(:Marker, x) : x = 1\n\
             def output(x) : Marker(x)",
        )
        .unwrap();
    assert!(outcome.output.is_empty(), "insert not visible mid-txn");
    let out = s.query("def output(x) : Marker(x)").unwrap();
    assert_eq!(out, Relation::from_values([Value::Int(1)]));
}

// ------------------------------------------------------------------
// End-to-end knowledge-graph flow
// ------------------------------------------------------------------

#[test]
fn csv_to_kg_to_query() {
    let csv = "id,price,name\nP1,10,apple\nP2,20,pear\nP3,,mystery\n";
    let records = rel::kg::parse_csv(csv).unwrap();
    let mut db = Database::new();
    let mut reg = rel::kg::EntityRegistry::new();
    rel::kg::ingest_records(&mut db, &mut reg, "Product", &records).unwrap();
    let s = Session::with_stdlib(db);
    // P3 has no price fact (no nulls), so avg is over two products.
    let out = s.query("def output[v] : v = avg[ProductPrice]").unwrap();
    assert_eq!(out, Relation::from_values([Value::Int(15)]));
    let named = s.query("def output[v] : v = count[ProductName]").unwrap();
    assert_eq!(named, Relation::from_values([Value::Int(3)]));
}

#[test]
fn library_composition_across_sessions() {
    // Libraries stack: stdlib + graph + user library all in one session.
    let g = rel::graph::gen::random_graph(10, 1.5, 99);
    let s = rel::graph::with_graph_lib(rel::graph::gen::graph_database(&g))
        .with_library("def BigOut(x) : exists((d) | OutDegree(V, E, x, d) and d >= 2)");
    let out = s.query("def output(x) : BigOut(x)").unwrap();
    let expected: Relation = (0..g.n)
        .filter(|&v| g.adj[v].len() >= 2)
        .map(|v| Tuple::from(vec![Value::Int(v as i64)]))
        .collect();
    assert_eq!(out, expected);
}

#[test]
fn output_can_mix_arities() {
    // Relations (including output) may hold tuples of different arities.
    let out = figure1()
        .query(
            "def output(x) : ProductPrice(x, 40)\n\
             def output(x, y) : PaymentOrder(x, y) and x = \"Pmt4\"",
        )
        .unwrap();
    assert_eq!(out.arities().into_iter().collect::<Vec<_>>(), vec![1, 2]);
    assert_eq!(out.len(), 2);
}

#[test]
fn deep_recursion_long_chain() {
    // 300-long chain: semi-naive handles deep recursion without stack or
    // iteration issues.
    let mut db = Database::new();
    for v in 0..300i64 {
        db.insert("E", Tuple::from(vec![Value::Int(v), Value::Int(v + 1)]));
    }
    db.insert("Start", Tuple::from(vec![Value::Int(0)]));
    let out = Session::new(db)
        .query(
            "def Reach(x) : Start(x)\n\
             def Reach(y) : exists((x) | Reach(x) and E(x, y))\n\
             def output[c] : c = reduce[add, (Reach, 1)]",
        )
        .unwrap();
    assert_eq!(out, Relation::from_values([Value::Int(301)]));
}

#[test]
fn demand_memoization_handles_fanout() {
    // Fibonacci via demand evaluation: exponential without memoization,
    // instant with it.
    let mut db = Database::new();
    db.insert("Q", Tuple::from(vec![Value::Int(30)]));
    let out = Session::with_stdlib(db)
        .query(
            "def fib[n in Int] : 0 where n = 0\n\
             def fib[n in Int] : 1 where n = 1\n\
             def fib[n in Int] : fib[n-1] + fib[n-2] where n > 1\n\
             def output(v) : exists((n) | Q(n) and fib(n, v))",
        )
        .unwrap();
    assert_eq!(out, Relation::from_values([Value::Int(832_040)]));
}
