//! # rel
//!
//! A from-scratch Rust implementation of **Rel**, the programming language
//! for relational data described in *"Rel: A Programming Language for
//! Relational Data"* (Aref et al., SIGMOD 2025, arXiv:2504.10323).
//!
//! This façade crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`core`] | `rel-core` | values, tuples, relations, databases, GNF |
//! | [`syntax`] | `rel-syntax` | lexer, parser, AST, pretty-printer |
//! | [`sema`] | `rel-sema` | resolution, specialization, safety, strata |
//! | [`engine`] | `rel-engine` | bottom-up evaluation, transactions, reduce |
//! | [`interp`] | `rel-interp` | reference denotational interpreter (Figs. 3–4) |
//! | [`stdlib`] | `rel-stdlib` | standard library + RA/LA libraries |
//! | [`graph`] | `rel-graph` | graph library (TC, APSP, PageRank, …) |
//! | [`kg`] | `rel-kg` | relational knowledge graphs |
//!
//! ## Quickstart
//!
//! ```
//! use rel::prelude::*;
//!
//! // The Figure 1 database from the paper.
//! let db = rel::core::database::figure1_database();
//!
//! // Orders that received at least one payment (§3.1).
//! let out = Session::with_stdlib(db)
//!     .query("def output(y) : exists((x) | PaymentOrder(x, y))")
//!     .unwrap();
//! assert_eq!(out.to_string(), r#"{("O1"); ("O2"); ("O3")}"#);
//! ```

pub use rel_core as core;
pub use rel_engine as engine;
pub use rel_graph as graph;
pub use rel_interp as interp;
pub use rel_kg as kg;
pub use rel_sema as sema;
pub use rel_stdlib as stdlib;
pub use rel_syntax as syntax;

/// The most commonly used items, for `use rel::prelude::*`.
pub mod prelude {
    pub use rel_core::{
        name, Database, EntityId, FromRow, FromValue, RelError, RelResult, Relation, Tuple,
        Value,
    };
    pub use rel_engine::prepared::{Params, Prepared};
    pub use rel_engine::session::{Session, TxnOutcome};
    pub use rel_engine::txn::Transaction;
    pub use rel_engine::{EngineConfig, Watch, WatchDelta};
    pub use rel_stdlib::{with_stdlib, SessionExt};
}
