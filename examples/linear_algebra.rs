//! Linear algebra as relations (§1 and §5.3.2): the same Rel code runs on
//! dense and sparse matrices — Codd's data independence at work.
//!
//! ```sh
//! cargo run --example linear_algebra
//! ```

use rel::prelude::*;

fn matrix_relation(entries: &[(i64, i64, f64)]) -> Relation {
    entries
        .iter()
        .map(|&(i, j, v)| {
            Tuple::from(vec![Value::Int(i), Value::Int(j), Value::float(v)])
        })
        .collect()
}

fn main() -> RelResult<()> {
    let mut db = Database::new();
    // A dense 3×3 matrix…
    let mut dense = Vec::new();
    for i in 1..=3 {
        for j in 1..=3 {
            dense.push((i, j, (i * 10 + j) as f64));
        }
    }
    db.set("A", matrix_relation(&dense));
    // …and a sparse one (only 3 of 9 entries).
    db.set("B", matrix_relation(&[(1, 1, 1.0), (2, 3, 2.0), (3, 2, 4.0)]));
    db.set(
        "U",
        [(1i64, 4.0), (2, 2.0)]
            .iter()
            .map(|&(i, v)| Tuple::from(vec![Value::Int(i), Value::float(v)]))
            .collect(),
    );
    db.set(
        "Vv",
        [(1i64, 3.0), (2, 6.0)]
            .iter()
            .map(|&(i, v)| Tuple::from(vec![Value::Int(i), Value::float(v)]))
            .collect(),
    );

    let session = Session::with_stdlib(db);

    // §5.3.2 — scalar product: u = (4,2), v = (3,6) ⇒ 24. A singleton
    // aggregate reads as one typed scalar.
    let dot: f64 = session.query("def output : ScalarProd[U, Vv]")?.single()?;
    println!("u · v              = {dot}");

    // §1 — matrix multiplication, the paper's opening example. The same
    // MatrixMult works for the dense and the sparse matrix; typed rows
    // give (i, j, v) triples directly.
    let ab: Vec<(i64, i64, f64)> = session.query("def output : MatrixMult[A, B]")?.rows()?;
    println!("A · B (sparse B)   = {ab:?}");

    let out = session.query("def output : MatrixMult[A, A]")?;
    println!("A · A (dense)      : {} entries", out.len());

    // Library composition: trace of a product, defined on the spot.
    let trace: f64 = session
        .query(
            "def AB(i, j, v) : MatrixMult(A, B, i, j, v)\n\
             def output[t] : t = trace[AB]",
        )?
        .single()?;
    println!("trace(A · B)       = {trace}");

    // Transpose + dimension.
    let dim: i64 = session.query("def output[d] : d = dimension[B]")?.single()?;
    println!("dim(B)             = {dim}");

    // A prepared cell probe: one compilation, executed per coordinate.
    let cell = session.prepare("def output[v] : v = A[?i, ?j]")?;
    for (i, j) in [(1i64, 1i64), (2, 3), (3, 2)] {
        let v: f64 = cell
            .execute_with(&session, &Params::new().set("i", i).set("j", j))?
            .single()?;
        println!("A[{i},{j}]             = {v}");
    }

    Ok(())
}
