//! A relational knowledge graph end to end (§2 and §6 of the paper):
//! conceptual model → GNF schema → entity minting → ingestion →
//! synthesized integrity constraints → Rel business logic → transaction.
//!
//! ```sh
//! cargo run --example orders_knowledge_graph
//! ```

use rel::kg;
use rel::prelude::*;

fn main() -> RelResult<()> {
    // The §2 conceptual model with Figure 1's data, minted as entities
    // ("things, not strings").
    let (model, db, _registry) = kg::orders_knowledge_graph();

    // GNF validation: 6NF key shapes + unique identifier property.
    kg::validate(&model, &db)?;
    println!("GNF validation: ok ({} base tuples)", db.total_tuples());

    // Install the model's synthesized integrity constraints alongside the
    // standard library.
    let ics = model.to_constraints();
    let mut session = Session::with_stdlib(db).with_library(&ics);

    // Business logic in Rel over the knowledge graph: per-order totals,
    // amounts due, and fully-paid orders — the §3.4 scenario.
    let logic = "\
        def LineAmount(l, a) : exists((q, p, pr) | \
            OrderLineQuantity(l, q) and LineProduct(l, p) and \
            ProductPrice(p, pr) and a = q * pr)\n\
        def OrderTotal[o in OrderEntity] : \
            sum[[l] : LineAmount(l, a) and LineOrder(l, o) and a = a] <++ 0\n";
    // (Simpler formulation below; both work.)
    let _ = logic;

    let out = session.query(
        "def OrderLineAmount(o, l, a) : exists((q, p, pr) | \
             LineOrder(l, o) and OrderLineQuantity(l, q) and \
             LineProduct(l, p) and ProductPrice(p, pr) and a = q * pr)\n\
         def output[o in OrderEntity] : sum[OrderLineAmount[o]] <++ 0",
    )?;
    println!("order totals (entities):   {out}");

    // Typed rows over entity-keyed results: EntityId is a FromValue type.
    let paid: Vec<(EntityId, i64)> = session
        .query(
            "def OrderPaid(o, a) : exists((p) | PaymentOrder(p, o) and PaymentAmount(p, a))\n\
             def output[o in OrderEntity] : sum[OrderPaid[o]] <++ 0",
        )?
        .rows()?;
    println!("order payments (entities): {paid:?}");

    // A per-entity drill-down, prepared once and executed per order.
    let total_for = session.prepare(
        "def OrderLineAmount(o, l, a) : exists((q, p, pr) | \
             LineOrder(l, o) and OrderLineQuantity(l, q) and \
             LineProduct(l, p) and ProductPrice(p, pr) and a = q * pr)\n\
         def output[v] : exists((o) | OrderEntity(o) and o = ?order and \
             v = sum[OrderLineAmount[o]])",
    )?;
    for (order, _) in &paid {
        let total: i64 = total_for
            .execute_with(&session, &Params::new().set("order", Value::Entity(*order)))?
            .single()?;
        println!("order {order} total:         {total}");
    }

    // A transaction with the knowledge graph's constraints in force:
    // linking a payment to a *product* entity would violate the
    // PaymentOrder_to_domain constraint — the violation surfaces at
    // commit and the candidate snapshot is discarded.
    let mut txn = session.begin();
    txn.run(
        "def anyProduct(p) : ProductEntity(p)\n\
         def anyPayment(x) : PaymentEntity(x)\n\
         def insert(:PaymentOrder, x, p) : anyPayment(x) and anyProduct(p)",
    )?;
    let err = txn.commit().unwrap_err();
    println!("bad transaction aborted:   {err}");
    println!("database unchanged:        PaymentOrder has {} tuples",
        session.db().get("PaymentOrder").map(rel::core::Relation::len).unwrap_or(0));

    Ok(())
}
