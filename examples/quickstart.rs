//! Quickstart: the paper's Figure 1 database and the basic queries of §3.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use rel::prelude::*;

fn main() -> RelResult<()> {
    // The example database of Figure 1: payments, orders, products.
    let db = rel::core::database::figure1_database();
    let mut session = Session::with_stdlib(db);

    // §3.1 — orders that received at least one payment. Set semantics:
    // "O1" appears once even though it received two payments.
    let out = session.query("def output(y) : exists((x) | PaymentOrder(x, y))")?;
    println!("orders with payments:      {out}");

    // §3.1 — products that were never ordered (negation).
    let out = session.query(
        "def output(x) : ProductPrice(x,_) and not OrderProductQuantity(_,x,_)",
    )?;
    println!("never ordered:             {out}");

    // §3.2 — inverted arithmetic: discounted prices via add(y, 5, z).
    let out = session.query(
        "def output(x,y) : exists((z) | ProductPrice(x,z) and add(y,5,z))",
    )?;
    println!("discounted prices:         {out}");

    // §4.3 — partial application: what does order O1 contain?
    let out = session.query("def output : OrderProductQuantity[\"O1\"]")?;
    println!("contents of O1:            {out}");

    // §5.2 — aggregation with defaults: total paid per order.
    let out = session.query(
        "def Ord(x) : OrderProductQuantity(x,_,_)\n\
         def OrderPaymentAmount(x,y,z) : PaymentOrder(y,x) and PaymentAmount(y,z)\n\
         def output[x in Ord] : sum[OrderPaymentAmount[x]] <++ 0",
    )?;
    println!("total paid per order:      {out}");

    // §3.4 — a transaction: record orders that received payments.
    let outcome = session.transact(
        "def Ord(x) : OrderProductQuantity(x,_,_)\n\
         def insert(:ClosedOrders, x) : Ord(x) and exists((p) | PaymentOrder(p, x))",
    )?;
    println!("transaction inserted:      {} tuples", outcome.inserted);
    println!(
        "closed orders now:         {}",
        session.db().get("ClosedOrders").map(|r| r.to_string()).unwrap_or_default()
    );

    Ok(())
}
