//! Quickstart: the paper's Figure 1 database through the **client API
//! v2** — prepare once, execute many times with bound parameters, read
//! typed rows, and stage writes through an explicit transaction handle.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use rel::prelude::*;

fn main() -> RelResult<()> {
    // The example database of Figure 1: payments, orders, products.
    let db = rel::core::database::figure1_database();
    let mut session = Session::with_stdlib(db);

    // §3.1 — orders that received at least one payment. One-shot queries
    // still work (and are themselves cached by source).
    let out = session.query("def output(y) : exists((x) | PaymentOrder(x, y))")?;
    println!("orders with payments:      {out}");

    // Prepare once: the program is compiled a single time; `?min` is a
    // parameter placeholder bound at execute time.
    let pricier_than = session.prepare(
        "def output(x, y) : ProductPrice(x, y) and y > ?min",
    )?;
    for min in [10, 25] {
        // Typed results: rows::<(String, i64)>() instead of matching
        // `Value`s by hand.
        let rows: Vec<(String, i64)> = pricier_than
            .execute_with(&session, &Params::new().set("min", min))?
            .rows()?;
        println!("products over {min:>2}:          {rows:?}");
    }

    // §5.2 — aggregation with defaults: total paid per order, as typed
    // rows straight off the prepared handle.
    let totals = session.prepare(
        "def Ord(x) : OrderProductQuantity(x,_,_)\n\
         def OrderPaymentAmount(x,y,z) : PaymentOrder(y,x) and PaymentAmount(y,z)\n\
         def output[x in Ord] : sum[OrderPaymentAmount[x]] <++ 0",
    )?;
    let rows: Vec<(String, i64)> = totals.execute(&session)?.rows()?;
    println!("total paid per order:      {rows:?}");

    // §3.4 — an explicit transaction: stage a derived insert plus a
    // direct tuple insert, then commit atomically. Integrity constraints
    // are checked on commit; dropping the handle instead aborts for free.
    let mut txn = session.begin();
    txn.run(
        "def Ord(x) : OrderProductQuantity(x,_,_)\n\
         def insert(:ClosedOrders, x) : Ord(x) and exists((p) | PaymentOrder(p, x))",
    )?;
    txn.stage_insert("ClosedOrders", Tuple::from(vec![Value::str("O9")]));
    let outcome = txn.commit()?;
    println!("transaction inserted:      {} tuples", outcome.inserted);

    // A prepared read over the committed state — same handle shape, new
    // snapshot, zero recompilation.
    let closed: Vec<String> = session
        .prepare("def output(x) : ClosedOrders(x)")?
        .execute(&session)?
        .rows()?;
    println!("closed orders now:         {closed:?}");

    Ok(())
}
