//! "Growing a language" (§5): user-defined second-order libraries,
//! tuple-variable generic code, demand-driven recursion — the features
//! that let Rel grow from a small core without language extensions.
//!
//! ```sh
//! cargo run --example growing_the_language
//! ```

use rel::prelude::*;

fn main() -> RelResult<()> {
    let db = rel::core::database::figure1_database();
    let session = Session::with_stdlib(db);

    // A user library: generic relational operators over *any* arity,
    // written with tuple variables (§4.1–4.2).
    let library = r#"
        // Symmetric difference of two relations, arity-generic.
        def SymDiff({A}, {B}, x...) : (A(x...) and not B(x...)) or
                                      (B(x...) and not A(x...))

        // K-prefix: all prefixes of tuples in A (§4.1).
        def AllPrefixes({A}, x...) : A(x..., _...)

        // The addUp function of Addendum A: sums the digits of a
        // non-negative integer — demand-driven recursion.
        def addUp[x in Int] : x % 10 + addUp[(x - x % 10) / 10] where x > 0
        def addUp[x in Int] : 0 where x = 0
    "#;
    let session = session.with_library(library);

    // Symmetric difference of two product sets, as typed rows. The cheap
    // threshold is a `?param`: the module compiles once, the bound value
    // changes per execute.
    let sym_diff = session.prepare(
        "def Cheap(x) : exists((p) | ProductPrice(x, p) and p <= ?cheap)\n\
         def Ordered(x) : OrderProductQuantity(_, x, _)\n\
         def output : SymDiff[Cheap, Ordered]",
    )?;
    for cheap in [20i64, 40] {
        let products: Vec<String> = sym_diff
            .execute_with(&session, &Params::new().set("cheap", cheap))?
            .rows()?;
        println!("cheap(≤{cheap}) XOR ordered: {products:?}");
    }

    // Arity-generic prefixes of a ternary relation.
    let out = session.query("def output : AllPrefixes[OrderProductQuantity]")?;
    println!("prefixes:             {} tuples (all arities 0..=3)", out.len());

    // Demand-driven digit sums: addUp is unsafe bottom-up (it would
    // enumerate all integers) but runs top-down once its argument is
    // bound — here bound by a parameter, re-executed per number with
    // zero recompilation.
    let digit_sum = session.prepare("def output(s) : addUp(?n, s)")?;
    for n in [9i64, 99, 1234] {
        let s: i64 = digit_sum
            .execute_with(&session, &Params::new().set("n", n))?
            .single()?;
        println!("addUp({n:>4}):          {s}");
    }

    // Permutations via tuple-variable recursion (§4.1).
    let out = session.query(
        "def R(x, y, z) : {(1, 2, 3)}(x, y, z)\n\
         def output : Perms[R]",
    )?;
    println!("perms of (1,2,3):     {out}");

    Ok(())
}
