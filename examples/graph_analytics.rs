//! Graph analytics with the Rel graph library (§5.4): transitive closure,
//! all-pairs shortest paths, PageRank with the paper's stop-condition
//! program, triangles and components — all checked against native Rust
//! baselines.
//!
//! ```sh
//! cargo run --example graph_analytics
//! ```

use rel::graph::{gen, native, with_graph_lib};
use rel::prelude::*;

fn main() -> RelResult<()> {
    let g = gen::random_graph(24, 2.0, 2024);
    println!("random graph: {} vertices, {} edges", g.n, g.edges.len());

    let mut db = gen::graph_database(&g);
    db.set("M", gen::transition_matrix_relation(&g));
    let session = with_graph_lib(db);

    // Transitive closure (§3.3) vs BFS.
    let tc = session.query("def output(x, y) : TC(E, x, y)")?;
    let native_tc = native::transitive_closure(&g);
    println!(
        "transitive closure:  {} pairs (native: {}) — {}",
        tc.len(),
        native_tc.len(),
        if tc.len() == native_tc.len() { "match" } else { "MISMATCH" }
    );

    // APSP, the paper's negation-based variant (§5.4).
    let apsp = session.query("def output(x, y, d) : APSP(V, E, x, y, d)")?;
    let native_apsp = native::apsp(&g);
    println!(
        "APSP:                {} paths (native: {}) — {}",
        apsp.len(),
        native_apsp.len(),
        if apsp.len() == native_apsp.len() { "match" } else { "MISMATCH" }
    );

    // PageRank with the §5.4 stop-condition program (non-stratified;
    // evaluated by partial fixpoint).
    let pr = session.query("def output(i, v) : PageRank[M](i, v)")?;
    let m = native::transition_matrix(&g);
    let native_pr = native::pagerank_iterate(g.n, &m, 0.005, 10_000);
    let max_err = pr
        .iter()
        .map(|t| {
            let i = t.values()[0].as_int().unwrap() as usize;
            (t.values()[1].as_f64().unwrap() - native_pr[&i]).abs()
        })
        .fold(0.0f64, f64::max);
    println!("PageRank:            {} ranks, max |rel − native| = {max_err:.2e}", pr.len());

    // Triangles.
    let t = session.query("def output[c] : c = TriangleCount[E]")?;
    println!(
        "triangles:           {} (native: {})",
        t.iter().next().map(|t| t.values()[0].clone()).unwrap_or(Value::Int(0)),
        native::triangle_count(&g)
    );

    // Connected components.
    let cc = session.query("def output(x, c) : ComponentOf(V, E, x, c)")?;
    let labels: std::collections::BTreeSet<_> =
        cc.iter().map(|t| t.values()[1].clone()).collect();
    println!("components:          {}", labels.len());

    Ok(())
}
