//! Graph analytics with the Rel graph library (§5.4): transitive closure,
//! all-pairs shortest paths, PageRank with the paper's stop-condition
//! program, triangles and components — all checked against native Rust
//! baselines.
//!
//! ```sh
//! cargo run --example graph_analytics
//! ```

use rel::graph::{gen, native, with_graph_lib};
use rel::prelude::*;

fn main() -> RelResult<()> {
    let g = gen::random_graph(24, 2.0, 2024);
    println!("random graph: {} vertices, {} edges", g.n, g.edges.len());

    let mut db = gen::graph_database(&g);
    db.set("M", gen::transition_matrix_relation(&g));
    let session = with_graph_lib(db);

    // Transitive closure (§3.3) vs BFS.
    let tc = session.query("def output(x, y) : TC(E, x, y)")?;
    let native_tc = native::transitive_closure(&g);
    println!(
        "transitive closure:  {} pairs (native: {}) — {}",
        tc.len(),
        native_tc.len(),
        if tc.len() == native_tc.len() { "match" } else { "MISMATCH" }
    );

    // APSP, the paper's negation-based variant (§5.4).
    let apsp = session.query("def output(x, y, d) : APSP(V, E, x, y, d)")?;
    let native_apsp = native::apsp(&g);
    println!(
        "APSP:                {} paths (native: {}) — {}",
        apsp.len(),
        native_apsp.len(),
        if apsp.len() == native_apsp.len() { "match" } else { "MISMATCH" }
    );

    // PageRank with the §5.4 stop-condition program (non-stratified;
    // evaluated by partial fixpoint). Typed rows replace hand-unpacking.
    let pr: Vec<(i64, f64)> = session
        .query("def output(i, v) : PageRank[M](i, v)")?
        .rows()?;
    let m = native::transition_matrix(&g);
    let native_pr = native::pagerank_iterate(g.n, &m, 0.005, 10_000);
    let max_err = pr
        .iter()
        .map(|(i, v)| (v - native_pr[&(*i as usize)]).abs())
        .fold(0.0f64, f64::max);
    println!("PageRank:            {} ranks, max |rel − native| = {max_err:.2e}", pr.len());

    // Triangles — a singleton aggregate reads as one typed scalar.
    let t: i64 = session
        .query("def output[c] : c = TriangleCount[E]")?
        .single()?;
    println!("triangles:           {t} (native: {})", native::triangle_count(&g));

    // Connected components.
    let cc: Vec<(i64, i64)> = session
        .query("def output(x, c) : ComponentOf(V, E, x, c)")?
        .rows()?;
    let labels: std::collections::BTreeSet<_> = cc.iter().map(|(_, c)| c).collect();
    println!("components:          {}", labels.len());

    // A parameterized reachability probe, prepared once and executed per
    // source vertex with zero recompilation.
    let reach = session.prepare("def output(y) : TC(E, ?src, y)")?;
    for src in 0..3i64 {
        let reachable = reach
            .execute_with(&session, &Params::new().set("src", src))?
            .len();
        println!("reachable from {src}:    {reachable} vertices");
    }

    Ok(())
}
