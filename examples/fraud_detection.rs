//! Fraud detection over a relational knowledge graph — one of the §7
//! application domains ("Many large enterprises are using Rel to build
//! applications that include fraud detection, taxation, and supply chain
//! management. The entire business logic for these applications is
//! modeled in Rel.").
//!
//! The *whole* detection logic below is Rel: recursive money-flow
//! closure, aggregation, ring detection through cycles, and an integrity
//! constraint quarantining risky transfers — no host-language logic.
//!
//! ```sh
//! cargo run --example fraud_detection
//! ```

use rel::prelude::*;

fn main() -> RelResult<()> {
    // Accounts and transfers (account, account, amount). A laundering ring
    // a1 → a2 → a3 → a1 cycles funds; mule accounts fan in small amounts
    // and forward them in one large hop.
    let mut db = Database::new();
    for a in ["a1", "a2", "a3", "mule", "shop", "payroll", "alice", "bob"] {
        db.insert("Account", Tuple::from(vec![Value::str(a)]));
    }
    let transfers: &[(&str, &str, i64)] = &[
        // the ring
        ("a1", "a2", 9_500),
        ("a2", "a3", 9_400),
        ("a3", "a1", 9_300),
        // structuring into a mule
        ("alice", "mule", 900),
        ("bob", "mule", 950),
        ("shop", "mule", 980),
        ("mule", "a1", 2_700),
        // ordinary traffic
        ("payroll", "alice", 3_000),
        ("payroll", "bob", 3_000),
        ("alice", "shop", 120),
    ];
    for (i, (from, to, amt)) in transfers.iter().enumerate() {
        db.insert(
            "Transfer",
            Tuple::from(vec![
                Value::Int(i as i64),
                Value::str(from),
                Value::str(to),
                Value::Int(*amt),
            ]),
        );
    }

    let session = Session::with_stdlib(db);

    // The detection library — pure Rel.
    let library = r#"
        def Edge(x, y) : Transfer(_, x, y, _)

        // Recursive money flow: who can funds from x reach?
        def Flows(x, y) : Edge(x, y)
        def Flows(x, y) : exists((z) | Edge(x, z) and Flows(z, y))

        // A laundering ring: money flows from x back to x.
        def InRing(x) : Flows(x, x)

        // Total in/out volume per account.
        def InAmount(y, t, a) : Transfer(t, _, y, a)
        def OutAmount(x, t, a) : Transfer(t, x, _, a)
        def TotalIn[x in Account] : sum[InAmount[x]] <++ 0
        def TotalOut[x in Account] : sum[OutAmount[x]] <++ 0

        // Structuring: at least 3 incoming transfers, each just under a
        // 1000 reporting threshold.
        def SmallIn(y, t) : exists((a) | Transfer(t, _, y, a) and a < 1000 and a >= 900)
        def Structuring(y) : exists((c) | c = count[SmallIn[y]] and c >= 3)

        // Risk score: ring membership is worth 10, structuring 5,
        // forwarding >90% of inflow 3.
        def RiskFactor(x, 10) : InRing(x)
        def RiskFactor(x, 5)  : Structuring(x)
        def RiskFactor(x, 3)  : exists((i, o) | TotalIn(x, i) and TotalOut(x, o)
                                   and i > 0 and o * 10 > i * 9)
        def RiskScore[x in Account] : sum[RiskFactor[x]] <++ 0
        def Suspicious(x) : exists((s) | RiskScore(x, s) and s >= 5)
    "#;
    let session = session.with_library(library);

    let rings: Vec<String> = session.query("def output(x) : InRing(x)")?.rows()?;
    println!("ring members:        {rings:?}");

    let structuring: Vec<String> =
        session.query("def output(x) : Structuring(x)")?.rows()?;
    println!("structuring:         {structuring:?}");

    // Typed rows: account → score, no Value matching.
    let scores: Vec<(String, i64)> = session.query("def output : RiskScore")?.rows()?;
    println!("risk scores:         {scores:?}");

    // The analyst's screening query, prepared once and re-executed per
    // threshold — compilation happens a single time.
    let flagged = session.prepare(
        "def output(x) : exists((s) | RiskScore(x, s) and s >= ?min_score)",
    )?;
    for min_score in [5i64, 10] {
        let accounts: Vec<String> = flagged
            .execute_with(&session, &Params::new().set("min_score", min_score))?
            .rows()?;
        println!("score >= {min_score:>2}:         {accounts:?}");
    }

    // Case management as an explicit transaction: quarantine every
    // suspicious account, and log the action — two staged steps, one
    // atomic commit.
    let mut session = session;
    let mut txn = session.begin();
    txn.run("def insert(:Quarantined, x) : Suspicious(x)")?;
    txn.run("def insert(:AuditLog, x, \"quarantined\") : Quarantined(x)")?;
    let outcome = txn.commit()?;
    println!("quarantined:         {} staged tuples", outcome.inserted);

    // A constraint keeps future transfers away from quarantined accounts:
    // the violation surfaces at commit time and the candidate state is
    // discarded — the session's database is untouched.
    let mut txn = session.begin();
    txn.run(
        "def insert(:Transfer, 99, \"payroll\", \"mule\", x) : x = 5000\n\
         ic no_quarantined_counterparty(t, y) requires \
             Transfer(t, _, y, _) implies not Quarantined(y)",
    )?;
    let err = txn.commit().unwrap_err();
    println!("blocked transfer:    {err}");

    // --- Live feed: the screening query as a standing query. ---------
    //
    // Instead of the analyst polling `RiskScore` after every batch of
    // transfers, the session pushes exactly the accounts whose flagged
    // status changed — the incremental cone already computes the diff,
    // the watch just delivers it. Out-of-cone commits are O(1) no-ops.
    let feed_query =
        session.prepare("def output(x, s) : RiskScore(x, s) and s >= ?min_score")?;
    let feed = session.watch(&feed_query, &Params::new().set("min_score", 5))?;
    let snapshot = feed.try_recv().expect("registration pushes the current state");
    let flagged_now: Vec<(String, i64)> = snapshot.added.rows()?;
    println!("\nlive feed snapshot:  {flagged_now:?}");

    // A new mule ("drop") being structured into, one deposit per commit.
    // The first two deposits change risk totals but flag nothing — no
    // batch is pushed; the third crosses the structuring threshold and
    // the feed delivers the newly flagged account.
    for (t, from, amount) in [(200, "alice", 940i64), (201, "bob", 955), (202, "shop", 970)] {
        let mut txn = session.begin();
        txn.run(&format!(
            "def insert(:Account, x) : x = \"drop\"\n\
             def insert(:Transfer, {t}, \"{from}\", \"drop\", a) : a = {amount}"
        ))?;
        txn.commit()?;
        while let Some(delta) = feed.try_recv() {
            // Wire parity: deltas carry plain relations, so the same
            // typed-row extraction works on pushed batches.
            for (acct, score) in delta.removed.rows::<(String, i64)>()? {
                println!("  seq {}: {acct} cleared (was {score})", delta.seq);
            }
            for (acct, score) in delta.added.rows::<(String, i64)>()? {
                println!("  seq {}: {acct} FLAGGED (score {score})", delta.seq);
            }
        }
    }

    // Reversals drop the account back under the threshold: the feed
    // pushes the removal, symmetric with the flagging above.
    let mut txn = session.begin();
    txn.run("def delete(:Transfer, t, x, y, a) : Transfer(t, x, y, a) and t = 202")?;
    txn.commit()?;
    while let Some(delta) = feed.try_recv() {
        for (acct, score) in delta.removed.rows::<(String, i64)>()? {
            println!("  seq {}: {acct} cleared (was {score})", delta.seq);
        }
        for (acct, score) in delta.added.rows::<(String, i64)>()? {
            println!("  seq {}: {acct} FLAGGED (score {score})", delta.seq);
        }
    }

    Ok(())
}
