# Convenience targets for the rel-rs workspace.
#
# The one rule worth internalizing: always build with --workspace. The
# root package is the `rel` façade crate, so a bare `cargo build
# --release` builds only the façade and its lib dependencies — every
# binary the façade does not depend on (rel-cli's `rel`, rel-bench's
# `bench_report`, `rel-server`) is silently skipped and goes stale.
# CI builds with --workspace for the same reason (.github/workflows/ci.yml).

CARGO ?= cargo

.PHONY: build test bench-smoke bench doc clippy

build:
	$(CARGO) build --release --workspace

test:
	$(CARGO) test -q --workspace

# The per-PR sanity pass: tiny scales, numbers meaningless.
bench-smoke: build
	$(CARGO) run --release -p rel-bench --bin bench_report -- --smoke --runs 1 --out /tmp/bench_smoke.json

# A real measurement run; pass BASELINE=BENCH_N.json OUT=BENCH_M.json.
bench: build
	$(CARGO) run --release -p rel-bench --bin bench_report -- \
		$(if $(BASELINE),--baseline $(BASELINE)) $(if $(OUT),--out $(OUT))

doc:
	RUSTDOCFLAGS="-D warnings" $(CARGO) doc --workspace --no-deps --exclude rel-cli

clippy:
	$(CARGO) clippy --workspace --all-targets -- -D warnings
