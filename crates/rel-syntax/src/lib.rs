//! # rel-syntax
//!
//! Lexer, parser, abstract syntax tree and pretty-printer for the Rel
//! language of Aref et al. (SIGMOD 2025). The grammar implemented here is
//! Figure 2 of the paper plus the concrete notation its examples use:
//! infix arithmetic and comparison operators, `<++` (left override),
//! dot-join, `:Name` relation-name symbols, `x...` tuple variables, `{A}`
//! relation variables, `?{}`/`&{}` order annotations, and `ic … requires`
//! integrity constraints.
//!
//! ```
//! use rel_syntax::parse_program;
//!
//! let prog = parse_program(
//!     "def OrderWithPayment(y) : exists((x) | PaymentOrder(x, y))",
//! ).unwrap();
//! assert_eq!(prog.items.len(), 1);
//! ```

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod token;

pub use ast::{
    AppStyle, Arg, ArgAnnotation, ArithOp, BindStyle, Binding, CmpOp, Constraint, Def, Expr,
    Item, Program,
};
pub use lexer::lex;
pub use parser::{parse_expr, parse_program};
