//! Hand-written lexer for Rel.
//!
//! Notable decisions:
//!
//! * `x...` lexes as a single *tuple variable* token (trailing-dot syntax
//!   of §4.1); `_...` is the anonymous tuple wildcard.
//! * `1.5` is a float, but `A.B` is a dot-join: a `.` is part of a number
//!   only when directly between digits.
//! * `:Name` (no space) lexes as a relation-name symbol (used to pass
//!   relation names, e.g. `insert(:ClosedOrders, x)`); a lone `:` is the
//!   def/abstraction separator.
//! * `?name` (no space) lexes as a query-parameter placeholder (prepared
//!   queries); a lone `?` is the first-order annotation `?{…}`.
//!   **Compatibility**: the brace-less annotation spelling `f[?x]` is no
//!   longer available — it now reads as the parameter `?x` (and a
//!   non-prepared entry point rejects it with an error naming the
//!   parameter). Write annotations as `?{x}`, the form the paper and all
//!   diagnostics use.
//! * `//` line comments and `/* ... */` block comments (nesting allowed).

use crate::token::{Pos, Token, TokenKind};
use rel_core::{RelError, RelResult};

/// Lex a complete source string into tokens (ending with `Eof`).
pub fn lex(src: &str) -> RelResult<Vec<Token>> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    chars: Vec<char>,
    src: &'a str,
    i: usize,
    line: u32,
    col: u32,
    out: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            chars: src.chars().collect(),
            src,
            i: 0,
            line: 1,
            col: 1,
            out: Vec::with_capacity(src.len() / 4),
        }
    }

    fn pos(&self) -> Pos {
        Pos { line: self.line, col: self.col }
    }

    fn err(&self, msg: impl Into<String>) -> RelError {
        RelError::Lex { line: self.line, col: self.col, msg: msg.into() }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.i).copied()
    }

    fn peek2(&self) -> Option<char> {
        self.chars.get(self.i + 1).copied()
    }

    fn peek3(&self) -> Option<char> {
        self.chars.get(self.i + 2).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.i += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn emit(&mut self, kind: TokenKind, pos: Pos) {
        self.out.push(Token { kind, pos });
    }

    fn run(mut self) -> RelResult<Vec<Token>> {
        while let Some(c) = self.peek() {
            let pos = self.pos();
            match c {
                ' ' | '\t' | '\r' | '\n' => {
                    self.bump();
                }
                '/' if self.peek2() == Some('/') => {
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                '/' if self.peek2() == Some('*') => {
                    self.bump();
                    self.bump();
                    self.block_comment()?;
                }
                c if c.is_ascii_digit() => self.number(pos)?,
                c if c.is_alphabetic() || c == '_' => self.ident_or_keyword(pos),
                '"' => self.string(pos)?,
                ':' => {
                    self.bump();
                    // `:Name` symbol only when a letter follows immediately.
                    match self.peek() {
                        Some(c2) if c2.is_alphabetic() || c2 == '_' => {
                            let name = self.take_ident_text();
                            self.emit(TokenKind::Symbol(name), pos);
                        }
                        _ => self.emit(TokenKind::Colon, pos),
                    }
                }
                '(' => self.single(TokenKind::LParen, pos),
                ')' => self.single(TokenKind::RParen, pos),
                '[' => self.single(TokenKind::LBracket, pos),
                ']' => self.single(TokenKind::RBracket, pos),
                '{' => self.single(TokenKind::LBrace, pos),
                '}' => self.single(TokenKind::RBrace, pos),
                ',' => self.single(TokenKind::Comma, pos),
                ';' => self.single(TokenKind::Semi, pos),
                '|' => self.single(TokenKind::Pipe, pos),
                '.' => self.single(TokenKind::Dot, pos),
                '+' => self.single(TokenKind::Plus, pos),
                '-' => self.single(TokenKind::Minus, pos),
                '*' => self.single(TokenKind::Star, pos),
                '/' => self.single(TokenKind::Slash, pos),
                '%' => self.single(TokenKind::Percent, pos),
                '^' => self.single(TokenKind::Caret, pos),
                '?' => {
                    self.bump();
                    // `?name` (no space) is a query-parameter placeholder;
                    // a lone `?` is the first-order argument annotation
                    // (always written `?{…}`).
                    match self.peek() {
                        Some(c2) if c2.is_alphabetic() || c2 == '_' => {
                            let name = self.take_ident_text();
                            self.emit(TokenKind::Param(name), pos);
                        }
                        _ => self.emit(TokenKind::Question, pos),
                    }
                }
                '&' => self.single(TokenKind::Ampersand, pos),
                '=' => self.single(TokenKind::Eq, pos),
                '!' => {
                    self.bump();
                    if self.peek() == Some('=') {
                        self.bump();
                        self.emit(TokenKind::Neq, pos);
                    } else {
                        return Err(self.err("expected `!=`"));
                    }
                }
                '<' => {
                    self.bump();
                    match (self.peek(), self.peek2()) {
                        (Some('+'), Some('+')) => {
                            self.bump();
                            self.bump();
                            self.emit(TokenKind::LeftOverride, pos);
                        }
                        (Some('='), _) => {
                            self.bump();
                            self.emit(TokenKind::Le, pos);
                        }
                        _ => self.emit(TokenKind::Lt, pos),
                    }
                }
                '>' => {
                    self.bump();
                    if self.peek() == Some('=') {
                        self.bump();
                        self.emit(TokenKind::Ge, pos);
                    } else {
                        self.emit(TokenKind::Gt, pos);
                    }
                }
                other => return Err(self.err(format!("unexpected character `{other}`"))),
            }
        }
        let pos = self.pos();
        self.emit(TokenKind::Eof, pos);
        Ok(self.out)
    }

    fn single(&mut self, kind: TokenKind, pos: Pos) {
        self.bump();
        self.emit(kind, pos);
    }

    fn block_comment(&mut self) -> RelResult<()> {
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(), self.peek2()) {
                (Some('*'), Some('/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some('/'), Some('*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => return Err(self.err("unterminated block comment")),
            }
        }
        Ok(())
    }

    fn take_ident_text(&mut self) -> String {
        let start = self.i;
        while let Some(c) = self.peek() {
            if c.is_alphanumeric() || c == '_' {
                self.bump();
            } else {
                break;
            }
        }
        self.chars[start..self.i].iter().collect()
    }

    /// Consume `...` if present (tuple-variable suffix). Exactly three dots.
    fn take_dots(&mut self) -> bool {
        if self.peek() == Some('.') && self.peek2() == Some('.') && self.peek3() == Some('.') {
            self.bump();
            self.bump();
            self.bump();
            true
        } else {
            false
        }
    }

    fn ident_or_keyword(&mut self, pos: Pos) {
        let text = self.take_ident_text();
        if text == "_" {
            if self.take_dots() {
                self.emit(TokenKind::UnderscoreDots, pos);
            } else {
                self.emit(TokenKind::Underscore, pos);
            }
            return;
        }
        if self.take_dots() {
            self.emit(TokenKind::TupleVar(text), pos);
            return;
        }
        match TokenKind::keyword(&text) {
            Some(kw) => self.emit(kw, pos),
            None => self.emit(TokenKind::Ident(text), pos),
        }
    }

    fn number(&mut self, pos: Pos) -> RelResult<()> {
        let start = self.i;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.bump();
        }
        // A fractional part exists only when `.` is directly followed by a
        // digit — `2.` and `A.B` stay out of float territory, and `1..` /
        // `R(x...)`-adjacent text is not misread.
        let mut is_float = false;
        if self.peek() == Some('.') && self.peek2().is_some_and(|c| c.is_ascii_digit()) {
            is_float = true;
            self.bump(); // '.'
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.bump();
            }
        }
        if matches!(self.peek(), Some('e') | Some('E'))
            && (self.peek2().is_some_and(|c| c.is_ascii_digit())
                || (matches!(self.peek2(), Some('+') | Some('-'))
                    && self.peek3().is_some_and(|c| c.is_ascii_digit())))
        {
            is_float = true;
            self.bump(); // e
            if matches!(self.peek(), Some('+') | Some('-')) {
                self.bump();
            }
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.bump();
            }
        }
        let text: String = self.chars[start..self.i].iter().collect();
        if is_float {
            let x: f64 = text
                .parse()
                .map_err(|e| self.err(format!("bad float literal `{text}`: {e}")))?;
            self.emit(TokenKind::Float(x), pos);
        } else {
            let n: i64 = text
                .parse()
                .map_err(|e| self.err(format!("bad integer literal `{text}`: {e}")))?;
            self.emit(TokenKind::Int(n), pos);
        }
        Ok(())
    }

    fn string(&mut self, pos: Pos) -> RelResult<()> {
        self.bump(); // opening quote
        let mut s = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string literal")),
                Some('"') => break,
                Some('\\') => match self.bump() {
                    Some('n') => s.push('\n'),
                    Some('t') => s.push('\t'),
                    Some('r') => s.push('\r'),
                    Some('\\') => s.push('\\'),
                    Some('"') => s.push('"'),
                    Some('0') => s.push('\0'),
                    Some(other) => {
                        return Err(self.err(format!("unknown escape `\\{other}`")))
                    }
                    None => return Err(self.err("unterminated string literal")),
                },
                Some(c) => s.push(c),
            }
        }
        self.emit(TokenKind::Str(s), pos);
        Ok(())
    }
}

// Silence "field `src` is never read" while keeping it for future
// span-based diagnostics.
impl std::fmt::Debug for Lexer<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Lexer at {} of {} chars (src len {})", self.i, self.chars.len(), self.src.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::TokenKind::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        let mut v: Vec<_> = lex(src).unwrap().into_iter().map(|t| t.kind).collect();
        assert_eq!(v.pop(), Some(Eof));
        v
    }

    #[test]
    fn simple_def() {
        assert_eq!(
            kinds("def F(x) : R(x)"),
            vec![
                Def,
                Ident("F".into()),
                LParen,
                Ident("x".into()),
                RParen,
                Colon,
                Ident("R".into()),
                LParen,
                Ident("x".into()),
                RParen,
            ]
        );
    }

    #[test]
    fn tuple_vars_and_wildcards() {
        assert_eq!(
            kinds("R(x..., _, _...)"),
            vec![
                Ident("R".into()),
                LParen,
                TupleVar("x".into()),
                Comma,
                Underscore,
                Comma,
                UnderscoreDots,
                RParen,
            ]
        );
    }

    #[test]
    fn floats_vs_dot_join() {
        assert_eq!(kinds("1.5"), vec![Float(1.5)]);
        assert_eq!(
            kinds("A.B"),
            vec![Ident("A".into()), Dot, Ident("B".into())]
        );
        assert_eq!(kinds("1.0/d"), vec![Float(1.0), Slash, Ident("d".into())]);
        assert_eq!(kinds("2e3"), vec![Float(2000.0)]);
        assert_eq!(kinds("2e-3"), vec![Float(0.002)]);
    }

    #[test]
    fn symbols_vs_colon() {
        assert_eq!(
            kinds("(:ClosedOrders, x)"),
            vec![
                LParen,
                Symbol("ClosedOrders".into()),
                Comma,
                Ident("x".into()),
                RParen,
            ]
        );
        assert_eq!(kinds("F : x"), vec![Ident("F".into()), Colon, Ident("x".into())]);
    }

    #[test]
    fn operators() {
        assert_eq!(
            kinds("a <++ b <= c != d >= e"),
            vec![
                Ident("a".into()),
                LeftOverride,
                Ident("b".into()),
                Le,
                Ident("c".into()),
                Neq,
                Ident("d".into()),
                Ge,
                Ident("e".into()),
            ]
        );
    }

    #[test]
    fn string_escapes() {
        assert_eq!(kinds(r#""a\"b\n""#), vec![Str("a\"b\n".into())]);
    }

    #[test]
    fn comments() {
        assert_eq!(
            kinds("x // line\n y /* block /* nested */ done */ z"),
            vec![Ident("x".into()), Ident("y".into()), Ident("z".into())]
        );
    }

    #[test]
    fn keywords() {
        assert_eq!(
            kinds("exists forall not and or implies iff xor where in def ic requires"),
            vec![Exists, Forall, Not, And, Or, Implies, Iff, Xor, Where, In, Def, Ic, Requires]
        );
    }

    #[test]
    fn annotations() {
        assert_eq!(
            kinds("reduce[&{F}, ?{R}]"),
            vec![
                Ident("reduce".into()),
                LBracket,
                Ampersand,
                LBrace,
                Ident("F".into()),
                RBrace,
                Comma,
                Question,
                LBrace,
                Ident("R".into()),
                RBrace,
                RBracket,
            ]
        );
    }

    #[test]
    fn param_placeholders_vs_annotation() {
        assert_eq!(
            kinds("R(x, ?limit)"),
            vec![
                Ident("R".into()),
                LParen,
                Ident("x".into()),
                Comma,
                Param("limit".into()),
                RParen,
            ]
        );
        // Annotation usage keeps the bare `?` token.
        assert_eq!(
            kinds("addUp[?{11}]"),
            vec![
                Ident("addUp".into()),
                LBracket,
                Question,
                LBrace,
                Int(11),
                RBrace,
                RBracket,
            ]
        );
    }

    #[test]
    fn error_positions() {
        let err = lex("x\n  @").unwrap_err();
        match err {
            rel_core::RelError::Lex { line, col, .. } => {
                assert_eq!((line, col), (2, 3));
            }
            other => panic!("expected lex error, got {other}"),
        }
    }

    #[test]
    fn negative_handled_by_parser_not_lexer() {
        assert_eq!(kinds("-3"), vec![Minus, Int(3)]);
    }
}
