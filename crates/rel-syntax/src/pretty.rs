//! Pretty-printer producing canonical, re-parseable Rel source.
//!
//! The printer is precedence-aware: it inserts parentheses exactly where
//! the parser would otherwise associate differently, so that
//! `parse(print(ast))` reproduces the AST (property-tested in the root
//! test suite).

use crate::ast::*;
use std::fmt;

/// Precedence levels mirroring the parser (higher binds tighter).
fn prec(e: &Expr) -> u8 {
    match e {
        Expr::Where(..) => 1,
        Expr::Implies(..) | Expr::Iff(..) | Expr::Xor(..) => 2,
        Expr::Or(..) => 3,
        Expr::And(..) => 4,
        Expr::Not(..) => 5,
        Expr::Cmp(..) => 6,
        Expr::LeftOverride(..) => 7,
        Expr::Arith(ArithOp::Add | ArithOp::Sub, ..) => 8,
        Expr::Arith(ArithOp::Mul | ArithOp::Div | ArithOp::Mod, ..) => 9,
        Expr::Arith(ArithOp::Pow, ..) => 10,
        Expr::Neg(..) => 11,
        Expr::App { .. } | Expr::DotJoin(..) => 12,
        // Abstractions swallow everything to their right; they must be
        // parenthesised (braced) whenever they appear as an operand.
        Expr::Abstraction { .. } => 0,
        _ => 13, // atoms
    }
}

struct P<'a>(&'a Expr, u8);

impl fmt::Display for P<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let my = prec(self.0);
        if my < self.1 {
            write!(f, "({})", ExprPrinter(self.0))
        } else {
            write!(f, "{}", ExprPrinter(self.0))
        }
    }
}

/// Displays an expression in canonical concrete syntax.
pub struct ExprPrinter<'a>(pub &'a Expr);

impl fmt::Display for ExprPrinter<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let e = self.0;
        match e {
            Expr::Lit(v) => write!(f, "{v}"),
            Expr::Ident(s) => write!(f, "{s}"),
            Expr::TupleVar(s) => write!(f, "{s}..."),
            Expr::Wildcard => write!(f, "_"),
            Expr::TupleWildcard => write!(f, "_..."),
            Expr::Param(s) => write!(f, "?{s}"),
            Expr::Product(es) => {
                write!(f, "(")?;
                for (i, x) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}", ExprPrinter(x))?;
                }
                write!(f, ")")
            }
            Expr::Union(es) => {
                write!(f, "{{")?;
                for (i, x) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{}", ExprPrinter(x))?;
                }
                write!(f, "}}")
            }
            Expr::Where(a, b) => {
                write!(f, "{} where {}", P(a, 1), P(b, 2))
            }
            Expr::Abstraction { bindings, style, body } => {
                let (open, close) = match style {
                    BindStyle::Paren => ("(", ")"),
                    BindStyle::Bracket => ("[", "]"),
                };
                write!(f, "{{{open}")?;
                print_bindings(f, bindings)?;
                write!(f, "{close} : {}}}", ExprPrinter(body))
            }
            Expr::App { func, args, style } => {
                let (open, close) = match style {
                    AppStyle::Full => ("(", ")"),
                    AppStyle::Partial => ("[", "]"),
                };
                write!(f, "{}{open}", P(func, 12))?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    match a.ann {
                        ArgAnnotation::None => write!(f, "{}", ExprPrinter(&a.expr))?,
                        ArgAnnotation::First => write!(f, "?{{{}}}", ExprPrinter(&a.expr))?,
                        ArgAnnotation::Second => write!(f, "&{{{}}}", ExprPrinter(&a.expr))?,
                    }
                }
                write!(f, "{close}")
            }
            Expr::And(a, b) => write!(f, "{} and {}", P(a, 4), P(b, 5)),
            Expr::Or(a, b) => write!(f, "{} or {}", P(a, 3), P(b, 4)),
            Expr::Not(a) => write!(f, "not {}", P(a, 5)),
            Expr::Implies(a, b) => write!(f, "{} implies {}", P(a, 3), P(b, 3)),
            Expr::Iff(a, b) => write!(f, "{} iff {}", P(a, 3), P(b, 3)),
            Expr::Xor(a, b) => write!(f, "{} xor {}", P(a, 3), P(b, 3)),
            Expr::Exists { bindings, body } => {
                write!(f, "exists((")?;
                print_bindings(f, bindings)?;
                write!(f, ") | {})", ExprPrinter(body))
            }
            Expr::Forall { bindings, body } => {
                write!(f, "forall((")?;
                print_bindings(f, bindings)?;
                write!(f, ") | {})", ExprPrinter(body))
            }
            Expr::Cmp(op, a, b) => {
                write!(f, "{} {} {}", P(a, 7), op.symbol(), P(b, 7))
            }
            Expr::Arith(op, a, b) => {
                let (lp, rp) = match op {
                    ArithOp::Add | ArithOp::Sub => (8, 9),
                    ArithOp::Mul | ArithOp::Div | ArithOp::Mod => (9, 10),
                    ArithOp::Pow => (11, 10),
                };
                write!(f, "{} {} {}", P(a, lp), op.symbol(), P(b, rp))
            }
            Expr::Neg(a) => write!(f, "-{}", P(a, 12)),
            Expr::DotJoin(a, b) => write!(f, "{}.{}", P(a, 12), P(b, 13)),
            Expr::LeftOverride(a, b) => {
                write!(f, "{} <++ {}", P(a, 7), P(b, 8))
            }
        }
    }
}

fn print_bindings(f: &mut fmt::Formatter<'_>, bindings: &[Binding]) -> fmt::Result {
    for (i, b) in bindings.iter().enumerate() {
        if i > 0 {
            write!(f, ", ")?;
        }
        write!(f, "{}", BindingPrinter(b))?;
    }
    Ok(())
}

/// Displays a binding in concrete syntax.
pub struct BindingPrinter<'a>(pub &'a Binding);

impl fmt::Display for BindingPrinter<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            Binding::Var(v) => write!(f, "{v}"),
            Binding::TupleVar(v) => write!(f, "{v}..."),
            Binding::RelVar(v) => write!(f, "{{{v}}}"),
            Binding::In(v, dom) => write!(f, "{v} in {}", P(dom, 6)),
            Binding::Lit(v) => write!(f, "{v}"),
            Binding::Wildcard => write!(f, "_"),
        }
    }
}

impl fmt::Display for Def {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name: &str = if self.name.chars().next().is_some_and(|c| c.is_alphabetic() || c == '_')
        {
            &self.name
        } else {
            // Operator definitions print as `def (+) ...`.
            return {
                write!(f, "def ({})", self.name)?;
                print_def_tail(f, self)
            };
        };
        write!(f, "def {name}")?;
        print_def_tail(f, self)
    }
}

fn print_def_tail(f: &mut fmt::Formatter<'_>, d: &Def) -> fmt::Result {
    if !d.params.is_empty() || d.style == BindStyle::Paren {
        let (open, close) = match d.style {
            BindStyle::Paren => ("(", ")"),
            BindStyle::Bracket => ("[", "]"),
        };
        write!(f, "{open}")?;
        print_bindings(f, &d.params)?;
        write!(f, "{close}")?;
    }
    write!(f, " : {}", ExprPrinter(&d.body))
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ic {}(", self.name)?;
        print_bindings(f, &self.params)?;
        write!(f, ") requires {}", ExprPrinter(&self.body))
    }
}

impl fmt::Display for Item {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Item::Def(d) => write!(f, "{d}"),
            Item::Constraint(c) => write!(f, "{c}"),
        }
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for item in &self.items {
            writeln!(f, "{item}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::parser::{parse_expr, parse_program};

    /// Round-trip: parse, print, re-parse, compare ASTs.
    fn rt_expr(src: &str) {
        let ast = parse_expr(src).unwrap();
        let printed = crate::pretty::ExprPrinter(&ast).to_string();
        let ast2 = parse_expr(&printed)
            .unwrap_or_else(|e| panic!("re-parse of {printed:?} failed: {e}"));
        assert_eq!(ast, ast2, "round-trip mismatch for {src:?} -> {printed:?}");
    }

    fn rt_prog(src: &str) {
        let ast = parse_program(src).unwrap();
        let printed = ast.to_string();
        let ast2 = parse_program(&printed)
            .unwrap_or_else(|e| panic!("re-parse of {printed:?} failed: {e}"));
        assert_eq!(ast, ast2, "round-trip mismatch for {src:?} -> {printed:?}");
    }

    #[test]
    fn expr_round_trips() {
        for src in [
            "1 + 2 * 3",
            "(1 + 2) * 3",
            "x where y > 0",
            "a and (b or c)",
            "not a and b",
            "not (a and b)",
            "R(x, _, y, _...)",
            "R[x][y](z)",
            "{(1, 2); (3, 4)}",
            "{}",
            "{()}",
            "sum[[k] : U[k] * V[k]]",
            "A.B",
            "A.(min[A])",
            "x <++ 0",
            "exists((x in V) | R(x))",
            "forall((x..., y) | R(x..., y))",
            "reduce[&{add}, &{A}]",
            "addUp[?{11; 22}]",
            "R(x, ?limit)",
            "y > ?min and y < ?max",
            "a = b",
            "-x + 3",
            "x implies y implies z",
        ] {
            rt_expr(src);
        }
    }

    #[test]
    fn program_round_trips() {
        rt_prog("def F(x) : R(x) and not S(x)\nic c(x) requires R(x) implies S(x)");
        rt_prog("def APSP({V},{E},x,y,0) : V(x) and V(y) and x = y");
        rt_prog("def (+)(x,y,z) : add(x,y,z)");
        rt_prog("def OrderPaid[x in Ord] : sum[OrderPaymentAmount[x]] <++ 0");
        rt_prog("def Perm(x...,a,y...,b,z...) : Perm(x...,b,y...,a,z...)");
        rt_prog("def delete(:R, x) : R(x)");
    }
}
