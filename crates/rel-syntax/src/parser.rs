//! Recursive-descent parser for Rel.
//!
//! Precedence (loosest → tightest):
//!
//! 1. `where`
//! 2. `implies`, `iff`, `xor`
//! 3. `or`
//! 4. `and`
//! 5. `not` (prefix)
//! 6. comparisons `= != < <= > >=` (non-associative)
//! 7. `<++` (left override)
//! 8. `+ -`
//! 9. `* / %`
//! 10. `^`
//! 11. unary `-`
//! 12. postfix: application `f(...)` / `f[...]` and dot-join `a.b`
//!
//! Ambiguity between a parenthesised product `(x, y)` and a paren
//! abstraction `(x, y) : F` is resolved by lookahead for the `:` after the
//! closing parenthesis; elements are then re-interpreted as bindings.

use crate::ast::*;
use crate::lexer::lex;
use crate::token::{Pos, Token, TokenKind};
use rel_core::{RelError, RelResult, Value};

/// Parse a complete Rel program.
pub fn parse_program(src: &str) -> RelResult<Program> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, i: 0 };
    p.program()
}

/// Parse a single expression (useful for tests and the REPL).
pub fn parse_expr(src: &str) -> RelResult<Expr> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, i: 0 };
    let e = p.expr()?;
    p.expect(&TokenKind::Eof)?;
    Ok(e)
}

struct Parser {
    tokens: Vec<Token>,
    i: usize,
}

/// An element inside parentheses that may be a plain expression or a
/// binding-ish form (`x in E`, `{A}`); disambiguated once we know whether a
/// `:` follows.
enum Elem {
    Expr(Expr),
    In(String, Expr),
    RelVar(String),
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.i].kind
    }

    fn peek_at(&self, n: usize) -> &TokenKind {
        let idx = (self.i + n).min(self.tokens.len() - 1);
        &self.tokens[idx].kind
    }

    fn pos(&self) -> Pos {
        self.tokens[self.i].pos
    }

    fn bump(&mut self) -> TokenKind {
        let k = self.tokens[self.i].kind.clone();
        if self.i + 1 < self.tokens.len() {
            self.i += 1;
        }
        k
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn err(&self, msg: impl Into<String>) -> RelError {
        let pos = self.pos();
        RelError::Parse { line: pos.line, col: pos.col, msg: msg.into() }
    }

    fn expect(&mut self, kind: &TokenKind) -> RelResult<()> {
        if self.peek() == kind {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!(
                "expected {}, found {}",
                kind.describe(),
                self.peek().describe()
            )))
        }
    }

    fn expect_ident(&mut self) -> RelResult<String> {
        match self.peek().clone() {
            TokenKind::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(self.err(format!("expected identifier, found {}", other.describe()))),
        }
    }

    // ------------------------------------------------------------------
    // Top level
    // ------------------------------------------------------------------

    fn program(&mut self) -> RelResult<Program> {
        let mut items = Vec::new();
        loop {
            match self.peek() {
                TokenKind::Eof => break,
                TokenKind::Def => items.push(Item::Def(self.def()?)),
                TokenKind::Ic => items.push(Item::Constraint(self.constraint()?)),
                other => {
                    return Err(self.err(format!(
                        "expected `def` or `ic`, found {}",
                        other.describe()
                    )))
                }
            }
        }
        Ok(Program { items })
    }

    /// `def Name(params) : body` | `def Name[params] : body` |
    /// `def (op)(params) : body` | `def Name : body` | `def Name {Expr}`.
    /// `=` is accepted in place of `:` (§5.1: `def log[x, y] = …`).
    fn def(&mut self) -> RelResult<Def> {
        self.expect(&TokenKind::Def)?;
        let name = self.def_name()?;
        let (params, style) = match self.peek() {
            TokenKind::LParen => {
                self.bump();
                let params = self.binding_list(&TokenKind::RParen)?;
                self.expect(&TokenKind::RParen)?;
                (params, BindStyle::Paren)
            }
            TokenKind::LBracket => {
                self.bump();
                let params = self.binding_list(&TokenKind::RBracket)?;
                self.expect(&TokenKind::RBracket)?;
                (params, BindStyle::Bracket)
            }
            // `def ID {Expr}` — no explicit head.
            _ => (Vec::new(), BindStyle::Bracket),
        };
        let body = if self.eat(&TokenKind::Colon) || self.eat(&TokenKind::Eq) {
            self.expr()?
        } else if *self.peek() == TokenKind::LBrace {
            // `def ID {Expr}` form (2) of the paper.
            self.expr()?
        } else {
            return Err(self.err(format!(
                "expected `:`, `=` or `{{` to start the body of `def {name}`, found {}",
                self.peek().describe()
            )));
        };
        Ok(Def { name, params, style, body })
    }

    /// A definition name: identifier or parenthesised operator
    /// (`def (+)(x,y,z) : …`).
    fn def_name(&mut self) -> RelResult<String> {
        if *self.peek() == TokenKind::LParen {
            let op = match self.peek_at(1) {
                TokenKind::Plus => "+",
                TokenKind::Minus => "-",
                TokenKind::Star => "*",
                TokenKind::Slash => "/",
                TokenKind::Percent => "%",
                TokenKind::Caret => "^",
                TokenKind::Dot => ".",
                TokenKind::LeftOverride => "<++",
                TokenKind::Eq => "=",
                TokenKind::Neq => "!=",
                TokenKind::Lt => "<",
                TokenKind::Le => "<=",
                TokenKind::Gt => ">",
                TokenKind::Ge => ">=",
                _ => return self.expect_ident(),
            };
            if *self.peek_at(2) == TokenKind::RParen {
                self.bump(); // (
                self.bump(); // op
                self.bump(); // )
                return Ok(op.to_string());
            }
        }
        self.expect_ident()
    }

    /// `ic name(params) requires F`.
    fn constraint(&mut self) -> RelResult<Constraint> {
        self.expect(&TokenKind::Ic)?;
        let name = self.expect_ident()?;
        self.expect(&TokenKind::LParen)?;
        let params = self.binding_list(&TokenKind::RParen)?;
        self.expect(&TokenKind::RParen)?;
        self.expect(&TokenKind::Requires)?;
        let body = self.expr()?;
        Ok(Constraint { name, params, body })
    }

    // ------------------------------------------------------------------
    // Bindings
    // ------------------------------------------------------------------

    /// A comma-separated list of bindings, stopping before `end`.
    fn binding_list(&mut self, end: &TokenKind) -> RelResult<Vec<Binding>> {
        let mut out = Vec::new();
        if self.peek() == end {
            return Ok(out);
        }
        loop {
            out.push(self.binding()?);
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        Ok(out)
    }

    fn binding(&mut self) -> RelResult<Binding> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                self.bump();
                if self.eat(&TokenKind::In) {
                    let dom = self.cmp_level()?;
                    Ok(Binding::In(name, dom))
                } else {
                    Ok(Binding::Var(name))
                }
            }
            TokenKind::TupleVar(name) => {
                self.bump();
                Ok(Binding::TupleVar(name))
            }
            TokenKind::Underscore => {
                self.bump();
                Ok(Binding::Wildcard)
            }
            TokenKind::LBrace => {
                // `{A}` relation variable.
                self.bump();
                let name = self.expect_ident()?;
                self.expect(&TokenKind::RBrace)?;
                Ok(Binding::RelVar(name))
            }
            TokenKind::Int(v) => {
                self.bump();
                Ok(Binding::Lit(Value::Int(v)))
            }
            TokenKind::Float(v) => {
                self.bump();
                Ok(Binding::Lit(Value::float(v)))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(Binding::Lit(Value::str(s)))
            }
            TokenKind::Symbol(s) => {
                self.bump();
                Ok(Binding::Lit(Value::sym(s)))
            }
            TokenKind::Minus => {
                self.bump();
                match self.bump() {
                    TokenKind::Int(v) => Ok(Binding::Lit(Value::Int(-v))),
                    TokenKind::Float(v) => Ok(Binding::Lit(Value::float(-v))),
                    other => Err(self.err(format!(
                        "expected numeric literal after `-` in binding, found {}",
                        other.describe()
                    ))),
                }
            }
            other => Err(self.err(format!("expected binding, found {}", other.describe()))),
        }
    }

    // ------------------------------------------------------------------
    // Expressions
    // ------------------------------------------------------------------

    /// Full expression: the `where` level.
    fn expr(&mut self) -> RelResult<Expr> {
        let mut e = self.implies_level()?;
        while self.eat(&TokenKind::Where) {
            let cond = self.implies_level()?;
            e = Expr::Where(Box::new(e), Box::new(cond));
        }
        Ok(e)
    }

    fn implies_level(&mut self) -> RelResult<Expr> {
        let mut e = self.or_level()?;
        loop {
            if self.eat(&TokenKind::Implies) {
                let rhs = self.or_level()?;
                e = Expr::Implies(Box::new(e), Box::new(rhs));
            } else if self.eat(&TokenKind::Iff) {
                let rhs = self.or_level()?;
                e = Expr::Iff(Box::new(e), Box::new(rhs));
            } else if self.eat(&TokenKind::Xor) {
                let rhs = self.or_level()?;
                e = Expr::Xor(Box::new(e), Box::new(rhs));
            } else {
                return Ok(e);
            }
        }
    }

    fn or_level(&mut self) -> RelResult<Expr> {
        let mut e = self.and_level()?;
        while self.eat(&TokenKind::Or) {
            let rhs = self.and_level()?;
            e = Expr::Or(Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    fn and_level(&mut self) -> RelResult<Expr> {
        let mut e = self.not_level()?;
        while self.eat(&TokenKind::And) {
            let rhs = self.not_level()?;
            e = Expr::And(Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    fn not_level(&mut self) -> RelResult<Expr> {
        if self.eat(&TokenKind::Not) {
            let e = self.not_level()?;
            Ok(Expr::Not(Box::new(e)))
        } else {
            self.cmp_level()
        }
    }

    fn cmp_level(&mut self) -> RelResult<Expr> {
        let lhs = self.override_level()?;
        let op = match self.peek() {
            TokenKind::Eq => CmpOp::Eq,
            TokenKind::Neq => CmpOp::Neq,
            TokenKind::Lt => CmpOp::Lt,
            TokenKind::Le => CmpOp::Le,
            TokenKind::Gt => CmpOp::Gt,
            TokenKind::Ge => CmpOp::Ge,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.override_level()?;
        Ok(Expr::Cmp(op, Box::new(lhs), Box::new(rhs)))
    }

    fn override_level(&mut self) -> RelResult<Expr> {
        let mut e = self.add_level()?;
        while self.eat(&TokenKind::LeftOverride) {
            let rhs = self.add_level()?;
            e = Expr::LeftOverride(Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    fn add_level(&mut self) -> RelResult<Expr> {
        let mut e = self.mul_level()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => ArithOp::Add,
                TokenKind::Minus => ArithOp::Sub,
                _ => return Ok(e),
            };
            self.bump();
            let rhs = self.mul_level()?;
            e = Expr::Arith(op, Box::new(e), Box::new(rhs));
        }
    }

    fn mul_level(&mut self) -> RelResult<Expr> {
        let mut e = self.pow_level()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => ArithOp::Mul,
                TokenKind::Slash => ArithOp::Div,
                TokenKind::Percent => ArithOp::Mod,
                _ => return Ok(e),
            };
            self.bump();
            let rhs = self.pow_level()?;
            e = Expr::Arith(op, Box::new(e), Box::new(rhs));
        }
    }

    fn pow_level(&mut self) -> RelResult<Expr> {
        let e = self.unary_level()?;
        if self.eat(&TokenKind::Caret) {
            // Right-associative.
            let rhs = self.pow_level()?;
            Ok(Expr::Arith(ArithOp::Pow, Box::new(e), Box::new(rhs)))
        } else {
            Ok(e)
        }
    }

    fn unary_level(&mut self) -> RelResult<Expr> {
        if self.eat(&TokenKind::Minus) {
            let e = self.unary_level()?;
            // Fold numeric negation into the literal immediately.
            match e {
                Expr::Lit(Value::Int(i)) => Ok(Expr::Lit(Value::Int(-i))),
                Expr::Lit(Value::Float(f)) => Ok(Expr::Lit(Value::float(-f.0))),
                other => Ok(Expr::Neg(Box::new(other))),
            }
        } else {
            self.postfix_level()
        }
    }

    fn postfix_level(&mut self) -> RelResult<Expr> {
        let mut e = self.primary()?;
        loop {
            match self.peek() {
                TokenKind::LParen => {
                    self.bump();
                    let args = self.arg_list(&TokenKind::RParen)?;
                    self.expect(&TokenKind::RParen)?;
                    e = Expr::App { func: Box::new(e), args, style: AppStyle::Full };
                }
                TokenKind::LBracket => {
                    self.bump();
                    let args = self.arg_list(&TokenKind::RBracket)?;
                    self.expect(&TokenKind::RBracket)?;
                    e = Expr::App { func: Box::new(e), args, style: AppStyle::Partial };
                }
                TokenKind::Dot => {
                    self.bump();
                    let rhs = self.primary()?;
                    // Allow application on the right of a dot: `A.B[x]`.
                    let rhs = self.postfix_of(rhs)?;
                    e = Expr::DotJoin(Box::new(e), Box::new(rhs));
                }
                _ => return Ok(e),
            }
        }
    }

    /// Continue postfix application chains on an already-parsed primary,
    /// but without consuming dots (so `A.B.C` associates left).
    fn postfix_of(&mut self, mut e: Expr) -> RelResult<Expr> {
        loop {
            match self.peek() {
                TokenKind::LParen => {
                    self.bump();
                    let args = self.arg_list(&TokenKind::RParen)?;
                    self.expect(&TokenKind::RParen)?;
                    e = Expr::App { func: Box::new(e), args, style: AppStyle::Full };
                }
                TokenKind::LBracket => {
                    self.bump();
                    let args = self.arg_list(&TokenKind::RBracket)?;
                    self.expect(&TokenKind::RBracket)?;
                    e = Expr::App { func: Box::new(e), args, style: AppStyle::Partial };
                }
                _ => return Ok(e),
            }
        }
    }

    /// Argument list for applications; supports wildcards and `?`/`&`
    /// annotations.
    fn arg_list(&mut self, end: &TokenKind) -> RelResult<Vec<Arg>> {
        let mut out = Vec::new();
        if self.peek() == end {
            return Ok(out);
        }
        loop {
            let ann = if self.eat(&TokenKind::Question) {
                ArgAnnotation::First
            } else if self.eat(&TokenKind::Ampersand) {
                ArgAnnotation::Second
            } else {
                ArgAnnotation::None
            };
            let expr = self.expr()?;
            out.push(Arg { expr, ann });
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        Ok(out)
    }

    fn primary(&mut self) -> RelResult<Expr> {
        match self.peek().clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(Expr::Lit(Value::Int(v)))
            }
            TokenKind::Float(v) => {
                self.bump();
                Ok(Expr::Lit(Value::float(v)))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(Expr::Lit(Value::str(s)))
            }
            TokenKind::Symbol(s) => {
                self.bump();
                Ok(Expr::Lit(Value::sym(s)))
            }
            TokenKind::Ident(name) => {
                self.bump();
                Ok(Expr::Ident(name))
            }
            TokenKind::TupleVar(name) => {
                self.bump();
                Ok(Expr::TupleVar(name))
            }
            TokenKind::Param(name) => {
                self.bump();
                Ok(Expr::Param(name))
            }
            TokenKind::Underscore => {
                self.bump();
                Ok(Expr::Wildcard)
            }
            TokenKind::UnderscoreDots => {
                self.bump();
                Ok(Expr::TupleWildcard)
            }
            TokenKind::Exists => {
                self.bump();
                self.quantifier(true)
            }
            TokenKind::Forall => {
                self.bump();
                self.quantifier(false)
            }
            TokenKind::LParen => self.paren_expr(),
            TokenKind::LBracket => self.bracket_abstraction(),
            TokenKind::LBrace => self.brace_expr(),
            other => Err(self.err(format!("expected expression, found {}", other.describe()))),
        }
    }

    /// `exists((bindings) | F)` / `forall((bindings) | F)`.
    fn quantifier(&mut self, is_exists: bool) -> RelResult<Expr> {
        self.expect(&TokenKind::LParen)?;
        self.expect(&TokenKind::LParen)?;
        let bindings = self.binding_list(&TokenKind::RParen)?;
        self.expect(&TokenKind::RParen)?;
        self.expect(&TokenKind::Pipe)?;
        let body = self.expr()?;
        self.expect(&TokenKind::RParen)?;
        Ok(if is_exists {
            Expr::Exists { bindings, body: Box::new(body) }
        } else {
            Expr::Forall { bindings, body: Box::new(body) }
        })
    }

    /// `[bindings] : Expr` — bracket abstraction.
    fn bracket_abstraction(&mut self) -> RelResult<Expr> {
        self.expect(&TokenKind::LBracket)?;
        let bindings = self.binding_list(&TokenKind::RBracket)?;
        self.expect(&TokenKind::RBracket)?;
        self.expect(&TokenKind::Colon)?;
        let body = self.expr()?;
        Ok(Expr::Abstraction { bindings, style: BindStyle::Bracket, body: Box::new(body) })
    }

    /// `(` … `)` — grouping, Cartesian product, or paren abstraction
    /// `(bindings) : F`.
    fn paren_expr(&mut self) -> RelResult<Expr> {
        self.expect(&TokenKind::LParen)?;
        if self.eat(&TokenKind::RParen) {
            // `()` — the empty product, i.e. `true`; `{()}` reads naturally.
            return Ok(Expr::Product(vec![]));
        }
        let mut elems = Vec::new();
        loop {
            elems.push(self.elem()?);
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(&TokenKind::RParen)?;
        if self.eat(&TokenKind::Colon) {
            // Abstraction `(bindings) : F`.
            let bindings = elems
                .into_iter()
                .map(|el| self.elem_to_binding(el))
                .collect::<RelResult<Vec<_>>>()?;
            let body = self.expr()?;
            return Ok(Expr::Abstraction {
                bindings,
                style: BindStyle::Paren,
                body: Box::new(body),
            });
        }
        let exprs = elems
            .into_iter()
            .map(|el| match el {
                Elem::Expr(e) => Ok(e),
                Elem::In(v, _) => Err(self.err(format!(
                    "`{v} in …` binding is only allowed before a `:` or in quantifiers"
                ))),
                Elem::RelVar(v) => Ok(Expr::Ident(v)),
            })
            .collect::<RelResult<Vec<_>>>()?;
        if exprs.len() == 1 {
            let mut it = exprs.into_iter();
            Ok(it.next().expect("len checked"))
        } else {
            Ok(Expr::Product(exprs))
        }
    }

    /// An element inside parens that may be an expression or a binding.
    fn elem(&mut self) -> RelResult<Elem> {
        // `{A}` can be a rel-var binding *or* the start of a brace
        // expression; only a lone identifier inside braces is binding-like,
        // and only when a `:` will follow the paren group. Parse `{Ident}`
        // as RelVar-elem and convert back to expression if needed.
        if *self.peek() == TokenKind::LBrace {
            if let (TokenKind::Ident(name), TokenKind::RBrace) =
                (self.peek_at(1).clone(), self.peek_at(2).clone())
            {
                self.bump();
                self.bump();
                self.bump();
                return Ok(Elem::RelVar(name));
            }
        }
        let e = self.expr()?;
        if let Expr::Ident(name) = &e {
            if self.eat(&TokenKind::In) {
                let dom = self.cmp_level()?;
                return Ok(Elem::In(name.clone(), dom));
            }
        }
        Ok(Elem::Expr(e))
    }

    fn elem_to_binding(&self, el: Elem) -> RelResult<Binding> {
        Ok(match el {
            Elem::In(v, dom) => Binding::In(v, dom),
            Elem::RelVar(v) => Binding::RelVar(v),
            Elem::Expr(Expr::Ident(v)) => Binding::Var(v),
            Elem::Expr(Expr::TupleVar(v)) => Binding::TupleVar(v),
            Elem::Expr(Expr::Wildcard) => Binding::Wildcard,
            Elem::Expr(Expr::Lit(v)) => Binding::Lit(v),
            Elem::Expr(other) => {
                return Err(self.err(format!(
                    "expression {other:?} cannot be used as an abstraction binding"
                )))
            }
        })
    }

    /// `{` … `}` — `{}` (false), union `{e₁; …}`, or a braced expression /
    /// abstraction.
    fn brace_expr(&mut self) -> RelResult<Expr> {
        self.expect(&TokenKind::LBrace)?;
        if self.eat(&TokenKind::RBrace) {
            return Ok(Expr::false_());
        }
        let mut elems = vec![self.expr()?];
        while self.eat(&TokenKind::Semi) {
            if *self.peek() == TokenKind::RBrace {
                break; // allow trailing `;`
            }
            elems.push(self.expr()?);
        }
        self.expect(&TokenKind::RBrace)?;
        if elems.len() == 1 {
            let mut it = elems.into_iter();
            Ok(it.next().expect("len checked"))
        } else {
            Ok(Expr::Union(elems))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(src: &str) -> Program {
        parse_program(src).unwrap_or_else(|e| panic!("parse failed for {src:?}: {e}"))
    }

    fn e(src: &str) -> Expr {
        parse_expr(src).unwrap_or_else(|e| panic!("parse failed for {src:?}: {e}"))
    }

    #[test]
    fn basic_def() {
        let prog = p("def OrderWithPayment(y) : exists((x) | PaymentOrder(x,y))");
        assert_eq!(prog.items.len(), 1);
        let Item::Def(d) = &prog.items[0] else { panic!() };
        assert_eq!(d.name, "OrderWithPayment");
        assert_eq!(d.params, vec![Binding::Var("y".into())]);
        assert_eq!(d.style, BindStyle::Paren);
        match &d.body {
            Expr::Exists { bindings, .. } => assert_eq!(bindings.len(), 1),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn wildcard_def() {
        let prog = p("def OrderedProducts(y) : OrderProductQuantity(_,y,_)");
        let Item::Def(d) = &prog.items[0] else { panic!() };
        match &d.body {
            Expr::App { args, style: AppStyle::Full, .. } => {
                assert_eq!(args.len(), 3);
                assert_eq!(args[0].expr, Expr::Wildcard);
                assert_eq!(args[2].expr, Expr::Wildcard);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn second_order_head() {
        let prog = p("def Product({A},{B},x...,y...) : A(x...) and B(y...)");
        let Item::Def(d) = &prog.items[0] else { panic!() };
        assert_eq!(
            d.params,
            vec![
                Binding::RelVar("A".into()),
                Binding::RelVar("B".into()),
                Binding::TupleVar("x".into()),
                Binding::TupleVar("y".into()),
            ]
        );
    }

    #[test]
    fn constant_in_head() {
        let prog = p("def APSP({V},{E},x,y,0) : V(x) and V(y) and x = y");
        let Item::Def(d) = &prog.items[0] else { panic!() };
        assert_eq!(d.params[4], Binding::Lit(Value::Int(0)));
    }

    #[test]
    fn symbol_in_head() {
        let prog = p("def delete(:OrderProductQuantity,x,y,z) : OrderProductQuantity(x,y,z)");
        let Item::Def(d) = &prog.items[0] else { panic!() };
        assert_eq!(d.params[0], Binding::Lit(Value::sym("OrderProductQuantity")));
    }

    #[test]
    fn bracket_head_with_in() {
        let prog = p("def OrderPaid[x in Ord] : sum[OrderPaymentAmount[x]] <++ 0");
        let Item::Def(d) = &prog.items[0] else { panic!() };
        assert_eq!(d.style, BindStyle::Bracket);
        match &d.params[0] {
            Binding::In(v, dom) => {
                assert_eq!(v, "x");
                assert_eq!(*dom, Expr::ident("Ord"));
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(d.body, Expr::LeftOverride(_, _)));
    }

    #[test]
    fn paren_abstraction_vs_product() {
        // Product.
        assert!(matches!(e("(a, b)"), Expr::Product(v) if v.len() == 2));
        // Abstraction.
        match e("(x, y) : R(x, _, y, _...)") {
            Expr::Abstraction { bindings, style: BindStyle::Paren, .. } => {
                assert_eq!(bindings.len(), 2)
            }
            other => panic!("{other:?}"),
        }
        // Grouping.
        assert_eq!(e("(a)"), Expr::ident("a"));
    }

    #[test]
    fn bracket_abstraction_inside_app() {
        // sum[[k] : U[k]*V[k]]  (§5.3.2)
        match e("sum[[k] : U[k]*V[k]]") {
            Expr::App { args, style: AppStyle::Partial, .. } => {
                assert_eq!(args.len(), 1);
                match &args[0].expr {
                    Expr::Abstraction { bindings, style: BindStyle::Bracket, body } => {
                        assert_eq!(bindings.len(), 1);
                        assert!(matches!(**body, Expr::Arith(ArithOp::Mul, _, _)));
                    }
                    other => panic!("{other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn union_and_true_false() {
        assert_eq!(e("{}"), Expr::false_());
        assert_eq!(e("{()}"), Expr::true_());
        match e("{(1,2,3) ; (4,5,6) ; (7,8,9)}") {
            Expr::Union(v) => assert_eq!(v.len(), 3),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn precedence() {
        // y % 100 = 99 parses as (y % 100) = 99
        match e("y % 100 = 99") {
            Expr::Cmp(CmpOp::Eq, lhs, _) => {
                assert!(matches!(*lhs, Expr::Arith(ArithOp::Mod, _, _)))
            }
            other => panic!("{other:?}"),
        }
        // a and b or c parses as (a and b) or c
        assert!(matches!(e("a and b or c"), Expr::Or(_, _)));
        // not a and b parses as (not a) and b
        assert!(matches!(e("not a and b"), Expr::And(_, _)));
        // 1 + 2 * 3
        match e("1 + 2 * 3") {
            Expr::Arith(ArithOp::Add, _, rhs) => {
                assert!(matches!(*rhs, Expr::Arith(ArithOp::Mul, _, _)))
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn where_level_is_loosest() {
        match e("1.0/d where range(1,d,1,i)") {
            Expr::Where(lhs, _) => assert!(matches!(*lhs, Expr::Arith(ArithOp::Div, _, _))),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn partial_then_full_application() {
        // APSP[V,E](z,y,j-1)
        match e("APSP[V,E](z,y,j-1)") {
            Expr::App { func, style: AppStyle::Full, args } => {
                assert_eq!(args.len(), 3);
                assert!(matches!(*func, Expr::App { style: AppStyle::Partial, .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn dot_join_and_left_override() {
        assert!(matches!(e("A.B"), Expr::DotJoin(_, _)));
        match e("A.(min[A])") {
            Expr::DotJoin(_, rhs) => {
                assert!(matches!(*rhs, Expr::App { style: AppStyle::Partial, .. }))
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(e("x <++ 0"), Expr::LeftOverride(_, _)));
    }

    #[test]
    fn quantifier_with_in_and_tuplevar() {
        match e("exists((x in Expensive) | SameOrderDiffProduct(x, p))") {
            Expr::Exists { bindings, .. } => {
                assert!(matches!(&bindings[0], Binding::In(v, _) if v == "x"))
            }
            other => panic!("{other:?}"),
        }
        match e("exists((x...) | R(x...))") {
            Expr::Exists { bindings, .. } => {
                assert_eq!(bindings[0], Binding::TupleVar("x".into()))
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn ic_parses() {
        let prog = p(
            "ic valid_products(x) requires OrderProductQuantity(_,x,_) implies ProductPrice(x,_)",
        );
        let Item::Constraint(c) = &prog.items[0] else { panic!() };
        assert_eq!(c.name, "valid_products");
        assert_eq!(c.params.len(), 1);
        assert!(matches!(c.body, Expr::Implies(_, _)));
    }

    #[test]
    fn operator_def() {
        let prog = p("def (+)(x,y,z) : add(x,y,z)");
        let Item::Def(d) = &prog.items[0] else { panic!() };
        assert_eq!(d.name, "+");
        assert_eq!(d.params.len(), 3);
    }

    #[test]
    fn def_with_eq_body() {
        let prog = p("def log[x, y] = rel_primitive_log[x, y]");
        let Item::Def(d) = &prog.items[0] else { panic!() };
        assert_eq!(d.name, "log");
        assert!(matches!(d.body, Expr::App { .. }));
    }

    #[test]
    fn annotations_in_args() {
        match e("addUp[?{11;22}]") {
            Expr::App { args, .. } => {
                assert_eq!(args[0].ann, ArgAnnotation::First);
                assert!(matches!(args[0].expr, Expr::Union(_)));
            }
            other => panic!("{other:?}"),
        }
        match e("reduce[&{F},&{R}]") {
            Expr::App { args, .. } => {
                assert_eq!(args.len(), 2);
                assert!(args.iter().all(|a| a.ann == ArgAnnotation::Second));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn braced_formula_body() {
        let prog = p("def Cond12(x1,x2,x...) : {x1=x2}");
        let Item::Def(d) = &prog.items[0] else { panic!() };
        assert!(matches!(d.body, Expr::Cmp(CmpOp::Eq, _, _)));
    }

    #[test]
    fn negative_literals() {
        assert_eq!(e("-3"), Expr::Lit(Value::Int(-3)));
        match e("-1 * x") {
            Expr::Arith(ArithOp::Mul, lhs, _) => assert_eq!(*lhs, Expr::Lit(Value::Int(-1))),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn whole_paper_programs_parse() {
        // Every listing from the paper in one program.
        let src = r#"
def OrderWithPayment(y) : PaymentOrder(_,y)
def OrderedProducts(y) : OrderProductQuantity(_,y,_)
def OrderedProductPrice(x,y) :
    OrderProductQuantity(_,x,_) and ProductPrice(x,y)
def NotOrdered(x) : ProductPrice(x,_) and
    not exists ((y1,y2) | OrderProductQuantity(y1,x,y2))
def NotOrdered2(x) : ProductPrice(x,_) and
    forall ((y1,y2) | not OrderProductQuantity(y1,x,y2))
def AlwaysOrdered(x) : ProductPrice(x,_) and
    forall ((o in V) | OrderProductQuantity(o,x,_))
def NotP1Price(x) : not ProductPrice("P1",x)
def DiscountedproductPrice(x,y) :
    exists ((z) | ProductPrice(x,z) and add(y,5,z))
def AdditiveInverse(x,y) : Int(x) and Int(y) and add(x,y,0)
def PsychologicallyPriced(x) :
    exists ((y) | ProductPrice(x,y) and y % 100 = 99)
def SameOrder(p1, p2) :
    exists((order) | OrderProductQuantity(order, p1, _)
    and OrderProductQuantity(order, p2, _))
def SameOrderDiffProduct(p1, p2) : SameOrder(p1, p2) and p1 != p2
def Expensive(p) :
    exists ((price) | ProductPrice(p,price) and price > 15)
def BoughtWithExpensiveProduct(p) :
    exists((x in Expensive) | SameOrderDiffProduct(x, p))
def TC_E(x,y) : E(x,y)
def TC_E(x,y) : exists((z) | E(x,z) and TC_E(z,y))
def output (x) : exists( (y) | ProductPrice(x,y) and y > 30)
def delete (:OrderProductQuantity,x,y,z) :
    OrderProductQuantity(x,y,z) and
    exists( (u) | OrderPaid(x,u) and OrderTotal(x,u) )
def insert (:ClosedOrders,x) :
    exists( (u) | OrderPaid(x,u) and OrderTotal(x,u))
ic integer_quantities() requires
    forall((x) | OrderProductQuantity(_,_,x) implies Int(x))
ic integer_quantities2(x) requires
    OrderProductQuantity(_,_,x) implies Int(x)
ic valid_products(x) requires
    OrderProductQuantity(_,x,_) implies ProductPrice(x,_)
def ProductRS(a,b,c,d) : R(a,b) and S(c,d)
def ProductRS2(x...,y...) : R(x...) and S(y...)
def Prefix(x...) : R(x...,_...)
def Perm(x...) : R(x...)
def Perm(x...,a,y...,b,z...) : Perm(x...,b,y...,a,z...)
def Product({A},{B},x...,y...) : A(x...) and B(y...)
def dot_join({A},{B},x...,y...) :
    exists((t) | A(x...,t) and B(t,y...))
def left_override({A},{B},x...) : A(x...)
def left_override({A},{B},x...,v) : B(x...,v) and not A(x...,_)
def log[x, y] = rel_primitive_log[x, y]
def (+)(x,y,z) : add(x,y,z)
def (*)(x,y,z) : multiply(x,y,z)
def sum[{A}] : reduce[add,A]
def count[{A}] : reduce[add,(A,1)]
def min[{A}] : reduce[minimum,A]
def max[{A}] : reduce[maximum,A]
def avg[{A}] : sum[A] / count[A]
def Argmin[{A}] : {A.(min[A])}
def Ord(x) : OrderProductQuantity(x,_,_)
def OrderPaymentAmount(x,y,z) : PaymentOrder(y,x) and PaymentAmount(y,z)
def OrderPaid[x in Ord] : sum[OrderPaymentAmount[x]]
def OrderPaid2[x in Ord] : sum[OrderPaymentAmount[x]] <++ 0
def Union({A},{B},x...) : A(x...) or B(x...)
def Minus({A},{B},x...) : A(x...) and not B(x...)
def Select({A},{Cond},x...) : A(x...) and Cond(x...)
def Cond12(x1,x2,x...) : {x1=x2}
def ScalarProd[{U},{V}] : { sum[[k] : U[k]*V[k]] }
def MatrixMult[{A},{B},i,j] : { sum[[k] : A[i,k]*B[k,j]] }
def MatrixVector[{A},{V},i] : { sum[[k] : A[i,k]*V[k]] }
def APSP({V},{E},x,y,0) : V(x) and V(y) and x = y
def APSP({V},{E},x,y,i) :
    exists ((z in V) | E(x,z) and APSP[V,E](z,y,i-1)) and
    not exists ((j in Int) | j < i and APSP[V,E](x,y,j))
def APSP2({V},{E},x,y,i) :
    i = min[(j) : exists((z) | E(x,z) and APSP2[V,E](z,y,j-1))]
def dimension[{Matrix}] : max[(k) : Matrix(k,_,_)]
def vector[d,i] : 1.0/d where range(1,d,1,i)
def abs(x,y) : (x >= 0 and y = x) or (x < 0 and y = -1 * x)
def delta[{Vec1},{Vec2}] : max[[k] : abs[Vec1[k] - Vec2[k]]]
def next[{G},{P}]: {MatrixVector[G,P]}
def stop({G},{P}): {delta[next[G,P],P] > 0.005}
def PageRank[{G}] : {vector[dimension[G]] where empty (PageRank[G])}
def PageRank[{G}] : {next[G,PageRank[G]]
    where not empty (PageRank[G]) and stop(G,PageRank[G])}
def PageRank[{G}] : {PageRank[G] where
    not empty (PageRank[G]) and not stop(G,PageRank[G])}
def empty(R) : not exists( (x...) | R(x...))
def addUp[{A}] : sum[A]
def addUp[x in Int] : x%10 + addUp[(x-x%10)/10] where x >= 0
def MatrixMult2[{A},{B},i,j] : sum[ [k] : A[i,k]*B[k,j] ]
def APSP3({V},{E},x,y,i) :
    i = min[ {(j): exists((z) | E(x,z) and APSP3(V,E,z,y,j-1))}]
"#;
        let prog = p(src);
        assert!(prog.items.len() >= 60, "parsed {} items", prog.items.len());
    }
}
