//! Tokens of the Rel surface syntax (Figure 2 of the paper, plus the
//! concrete notation used throughout §3–§5: infix arithmetic, `<++`,
//! dot-join, `:Name` symbols, `x...` tuple variables, …).

use std::fmt;

/// Source position (1-based line and column) for diagnostics.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Pos {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A lexical token with its source position.
#[derive(Clone, PartialEq, Debug)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// Where the token starts.
    pub pos: Pos,
}

/// Token kinds.
#[derive(Clone, PartialEq, Debug)]
pub enum TokenKind {
    /// Identifier: relation name or variable.
    Ident(String),
    /// Tuple variable `x...` (identifier with trailing dots).
    TupleVar(String),
    /// Anonymous variable `_`.
    Underscore,
    /// Anonymous tuple variable `_...`.
    UnderscoreDots,
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (unescaped contents).
    Str(String),
    /// Relation-name symbol `:Name`.
    Symbol(String),
    /// Query-parameter placeholder `?name` (client API v2): bound at
    /// execute time by a prepared query's parameter set.
    Param(String),

    // Keywords.
    /// `def`
    Def,
    /// `ic`
    Ic,
    /// `requires`
    Requires,
    /// `and`
    And,
    /// `or`
    Or,
    /// `not`
    Not,
    /// `implies`
    Implies,
    /// `iff`
    Iff,
    /// `xor`
    Xor,
    /// `exists`
    Exists,
    /// `forall`
    Forall,
    /// `where`
    Where,
    /// `in`
    In,

    // Punctuation / operators.
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `|`
    Pipe,
    /// `.` (dot-join)
    Dot,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `^` (power)
    Caret,
    /// `=`
    Eq,
    /// `!=`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `<++` (left override)
    LeftOverride,
    /// `?` (first-order argument annotation)
    Question,
    /// `&` (second-order argument annotation)
    Ampersand,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// Keyword lookup for an identifier's text.
    pub fn keyword(s: &str) -> Option<TokenKind> {
        Some(match s {
            "def" => TokenKind::Def,
            "ic" => TokenKind::Ic,
            "requires" => TokenKind::Requires,
            "and" => TokenKind::And,
            "or" => TokenKind::Or,
            "not" => TokenKind::Not,
            "implies" => TokenKind::Implies,
            "iff" => TokenKind::Iff,
            "xor" => TokenKind::Xor,
            "exists" => TokenKind::Exists,
            "forall" => TokenKind::Forall,
            "where" => TokenKind::Where,
            "in" => TokenKind::In,
            _ => return None,
        })
    }

    /// Human-readable description for diagnostics.
    pub fn describe(&self) -> String {
        use TokenKind::*;
        match self {
            Ident(s) => format!("identifier `{s}`"),
            TupleVar(s) => format!("tuple variable `{s}...`"),
            Underscore => "`_`".into(),
            UnderscoreDots => "`_...`".into(),
            Int(i) => format!("integer `{i}`"),
            Float(x) => format!("float `{x}`"),
            Str(s) => format!("string {s:?}"),
            Symbol(s) => format!("symbol `:{s}`"),
            Param(s) => format!("parameter `?{s}`"),
            Def => "`def`".into(),
            Ic => "`ic`".into(),
            Requires => "`requires`".into(),
            And => "`and`".into(),
            Or => "`or`".into(),
            Not => "`not`".into(),
            Implies => "`implies`".into(),
            Iff => "`iff`".into(),
            Xor => "`xor`".into(),
            Exists => "`exists`".into(),
            Forall => "`forall`".into(),
            Where => "`where`".into(),
            In => "`in`".into(),
            LParen => "`(`".into(),
            RParen => "`)`".into(),
            LBracket => "`[`".into(),
            RBracket => "`]`".into(),
            LBrace => "`{`".into(),
            RBrace => "`}`".into(),
            Comma => "`,`".into(),
            Semi => "`;`".into(),
            Colon => "`:`".into(),
            Pipe => "`|`".into(),
            Dot => "`.`".into(),
            Plus => "`+`".into(),
            Minus => "`-`".into(),
            Star => "`*`".into(),
            Slash => "`/`".into(),
            Percent => "`%`".into(),
            Caret => "`^`".into(),
            Eq => "`=`".into(),
            Neq => "`!=`".into(),
            Lt => "`<`".into(),
            Le => "`<=`".into(),
            Gt => "`>`".into(),
            Ge => "`>=`".into(),
            LeftOverride => "`<++`".into(),
            Question => "`?`".into(),
            Ampersand => "`&`".into(),
            Eof => "end of input".into(),
        }
    }
}
