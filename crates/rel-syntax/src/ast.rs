//! Abstract syntax tree for Rel, covering the grammar of Figure 2 plus the
//! concrete notation used in the paper's examples.
//!
//! A single [`Expr`] type covers the grammar's `Expr` and `Formula`
//! nonterminals; semantic analysis checks "formula-ness" (guaranteed
//! evaluation to a boolean, i.e. arity-0 relation) where the grammar
//! requires it. This keeps the parser simple and matches the paper's note
//! that `Formula` is "a subclass of `RelExpression` for which we can
//! statically infer that they produce only Boolean values" (§5.3.1).

use rel_core::Value;

/// A whole Rel program: a sequence of definitions and integrity
/// constraints. Rule order is irrelevant to semantics (§3.3).
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Program {
    /// Top-level items in source order.
    pub items: Vec<Item>,
}

impl Program {
    /// All `def` items.
    pub fn defs(&self) -> impl Iterator<Item = &Def> {
        self.items.iter().filter_map(|i| match i {
            Item::Def(d) => Some(d),
            _ => None,
        })
    }

    /// All `ic` items.
    pub fn constraints(&self) -> impl Iterator<Item = &Constraint> {
        self.items.iter().filter_map(|i| match i {
            Item::Constraint(c) => Some(c),
            _ => None,
        })
    }

    /// Concatenate two programs (library + user program).
    pub fn extend(&mut self, other: Program) {
        self.items.extend(other.items);
    }
}

/// A top-level item.
#[derive(Clone, PartialEq, Debug)]
pub enum Item {
    /// `def Name …` rule.
    Def(Def),
    /// `ic name(params) requires F` integrity constraint (§3.5).
    Constraint(Constraint),
}

/// One rule: `def RName Abstraction` (form (2) of the paper). The common
/// forms `def R(x, y) : F` and `def R[x] : e` are abstractions whose outer
/// braces were omitted.
#[derive(Clone, PartialEq, Debug)]
pub struct Def {
    /// Relation being (partially) defined. Multiple rules for one name
    /// union their results (§3.3). Infix operator definitions like
    /// `def (+)(x,y,z) : …` use the operator's lexeme (`"+"`) as the name.
    pub name: String,
    /// Head binding list.
    pub params: Vec<Binding>,
    /// Paren heads (form 3a) expect a boolean body; bracket heads
    /// (form 3b) allow a general expression body.
    pub style: BindStyle,
    /// Right-hand side.
    pub body: Expr,
}

/// An integrity constraint: `ic name(params) requires F`.
///
/// With parameters, the constraint relation is populated with violating
/// values and the transaction aborts if it is non-empty; without
/// parameters the formula itself must hold (§3.5).
#[derive(Clone, PartialEq, Debug)]
pub struct Constraint {
    /// Constraint name (diagnostic handle).
    pub name: String,
    /// Violation-witness parameters (possibly empty).
    pub params: Vec<Binding>,
    /// The requirement.
    pub body: Expr,
}

/// Whether an abstraction/head uses `(...)` (formula body) or `[...]`
/// (expression body).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BindStyle {
    /// `(x, y) : Formula` — form (3a).
    Paren,
    /// `[x, y] : Expr` — form (3b).
    Bracket,
}

/// A binding in a head, abstraction, or quantifier
/// (grammar nonterminals `FOBinding` / `Binding`).
#[derive(Clone, PartialEq, Debug)]
pub enum Binding {
    /// Ordinary first-order variable `x`.
    Var(String),
    /// Tuple variable `x...`.
    TupleVar(String),
    /// Relation variable `{A}` (second-order parameter).
    RelVar(String),
    /// Range-restricted variable `x in R` (quantifier/abstraction domains).
    In(String, Expr),
    /// Constant binding (e.g. the `0` in `def APSP({V},{E},x,y,0)`), or the
    /// `:Name` symbol in `def delete(:R, x…)`.
    Lit(Value),
    /// Anonymous binding `_` (allowed in heads of `ic`s and wildcard-ish
    /// positions).
    Wildcard,
}

impl Binding {
    /// The bound variable's name, if this binding introduces one.
    pub fn var_name(&self) -> Option<&str> {
        match self {
            Binding::Var(v) | Binding::TupleVar(v) | Binding::In(v, _) => Some(v),
            Binding::RelVar(v) => Some(v),
            Binding::Lit(_) | Binding::Wildcard => None,
        }
    }
}

/// Comparison operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Concrete syntax.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Neq => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

/// Binary arithmetic operators (each has a relational library equivalent,
/// §3.2: `add` for `+`, `multiply` for `*`, …).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ArithOp {
    /// `+` / `add`
    Add,
    /// `-` / `subtract`
    Sub,
    /// `*` / `multiply`
    Mul,
    /// `/` / `divide`
    Div,
    /// `%` / `modulo`
    Mod,
    /// `^` / `power`
    Pow,
}

impl ArithOp {
    /// Concrete syntax.
    pub fn symbol(self) -> &'static str {
        match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
            ArithOp::Mod => "%",
            ArithOp::Pow => "^",
        }
    }

    /// The name of the ternary built-in relation implementing this
    /// operator (`add(x, y, z)` ⇔ `x + y = z`, §3.2).
    pub fn relation_name(self) -> &'static str {
        match self {
            ArithOp::Add => "add",
            ArithOp::Sub => "subtract",
            ArithOp::Mul => "multiply",
            ArithOp::Div => "divide",
            ArithOp::Mod => "modulo",
            ArithOp::Pow => "power",
        }
    }
}

/// First-/second-order argument annotation (Addendum A): `?{e}` forces a
/// first-order (value) reading, `&{e}` a second-order (relation) reading.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ArgAnnotation {
    /// Unannotated — the engine infers the order from the callee.
    None,
    /// `?{…}` — first-order argument.
    First,
    /// `&{…}` — second-order argument.
    Second,
}

/// One argument of an application.
#[derive(Clone, PartialEq, Debug)]
pub struct Arg {
    /// The argument expression (wildcards are `Expr::Wildcard`/
    /// `Expr::TupleWildcard`).
    pub expr: Expr,
    /// Optional `?`/`&` annotation.
    pub ann: ArgAnnotation,
}

impl Arg {
    /// Unannotated argument.
    pub fn plain(expr: Expr) -> Self {
        Arg { expr, ann: ArgAnnotation::None }
    }
}

/// Application style: full `R(args)` (boolean) vs partial `R[args]`
/// (relation of matching suffixes) — §4.3.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AppStyle {
    /// `R(args)` — all arguments supplied; evaluates to a boolean.
    Full,
    /// `R[args]` — prefix arguments; evaluates to the suffix relation.
    Partial,
}

/// Expressions (and formulas — see module docs).
#[derive(Clone, PartialEq, Debug)]
pub enum Expr {
    /// Constant literal.
    Lit(Value),
    /// Identifier: variable or relation name (resolved by sema).
    Ident(String),
    /// Tuple variable reference `x...`.
    TupleVar(String),
    /// Anonymous variable `_` (an existential, scoped just outside the
    /// enclosing atom — §3.1).
    Wildcard,
    /// Anonymous tuple variable `_...`.
    TupleWildcard,
    /// Query-parameter placeholder `?name`: a singleton unary relation
    /// whose value is supplied at execute time by a prepared query's
    /// parameter bindings (client API v2).
    Param(String),
    /// Cartesian product `(e₁, …, eₙ)`; `n = 1` is plain grouping.
    Product(Vec<Expr>),
    /// Union `{e₁; …; eₙ}`; `{}` (empty) is `false`.
    Union(Vec<Expr>),
    /// `e where F` — conditioning (§5.3.1).
    Where(Box<Expr>, Box<Expr>),
    /// Abstraction `[bindings] : e` or `(bindings) : F` (§4.4).
    Abstraction {
        /// Bound variables (with optional domains).
        bindings: Vec<Binding>,
        /// `Bracket` for `[..] : e`, `Paren` for `(..) : F`.
        style: BindStyle,
        /// Body.
        body: Box<Expr>,
    },
    /// Application `f(args)` / `f[args]` (§4.3).
    App {
        /// The applied expression (usually an identifier).
        func: Box<Expr>,
        /// Arguments.
        args: Vec<Arg>,
        /// Full or partial.
        style: AppStyle,
    },
    /// Conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Negation.
    Not(Box<Expr>),
    /// `F implies G` (sugar for `not F or G`).
    Implies(Box<Expr>, Box<Expr>),
    /// `F iff G`.
    Iff(Box<Expr>, Box<Expr>),
    /// `F xor G`.
    Xor(Box<Expr>, Box<Expr>),
    /// `exists((bindings) | F)`.
    Exists {
        /// Quantified variables.
        bindings: Vec<Binding>,
        /// Scope.
        body: Box<Expr>,
    },
    /// `forall((bindings) | F)`.
    Forall {
        /// Quantified variables.
        bindings: Vec<Binding>,
        /// Scope.
        body: Box<Expr>,
    },
    /// Comparison `e₁ ⊙ e₂`.
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Infix arithmetic `e₁ ⊕ e₂`.
    Arith(ArithOp, Box<Expr>, Box<Expr>),
    /// Unary minus.
    Neg(Box<Expr>),
    /// Dot-join `A . B` (§5.1): join last column of A with first of B.
    DotJoin(Box<Expr>, Box<Expr>),
    /// Left override `A <++ B` (§5.1).
    LeftOverride(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Identifier helper.
    pub fn ident(s: impl Into<String>) -> Expr {
        Expr::Ident(s.into())
    }

    /// Integer literal helper.
    pub fn int(i: i64) -> Expr {
        Expr::Lit(Value::Int(i))
    }

    /// String literal helper.
    pub fn str(s: &str) -> Expr {
        Expr::Lit(Value::str(s))
    }

    /// The `true` formula `{()}`.
    pub fn true_() -> Expr {
        Expr::Product(vec![])
    }

    /// The `false` formula `{}`.
    pub fn false_() -> Expr {
        Expr::Union(vec![])
    }

    /// Build a full application of a named relation.
    pub fn call(name: &str, args: Vec<Expr>) -> Expr {
        Expr::App {
            func: Box::new(Expr::ident(name)),
            args: args.into_iter().map(Arg::plain).collect(),
            style: AppStyle::Full,
        }
    }

    /// Build a partial application of a named relation.
    pub fn apply(name: &str, args: Vec<Expr>) -> Expr {
        Expr::App {
            func: Box::new(Expr::ident(name)),
            args: args.into_iter().map(Arg::plain).collect(),
            style: AppStyle::Partial,
        }
    }

    /// Fold a conjunction list (empty = `true`).
    pub fn and_all(mut es: Vec<Expr>) -> Expr {
        match es.len() {
            0 => Expr::true_(),
            1 => es.pop().expect("len checked"),
            _ => {
                let mut it = es.into_iter();
                let first = it.next().expect("len checked");
                it.fold(first, |a, b| Expr::And(Box::new(a), Box::new(b)))
            }
        }
    }

    /// Visit every sub-expression (pre-order).
    pub fn walk(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Lit(_)
            | Expr::Ident(_)
            | Expr::TupleVar(_)
            | Expr::Wildcard
            | Expr::TupleWildcard
            | Expr::Param(_) => {}
            Expr::Product(es) | Expr::Union(es) => {
                for e in es {
                    e.walk(f);
                }
            }
            Expr::Where(a, b)
            | Expr::And(a, b)
            | Expr::Or(a, b)
            | Expr::Implies(a, b)
            | Expr::Iff(a, b)
            | Expr::Xor(a, b)
            | Expr::Cmp(_, a, b)
            | Expr::Arith(_, a, b)
            | Expr::DotJoin(a, b)
            | Expr::LeftOverride(a, b) => {
                a.walk(f);
                b.walk(f);
            }
            Expr::Not(a) | Expr::Neg(a) => a.walk(f),
            Expr::Abstraction { bindings, body, .. }
            | Expr::Exists { bindings, body }
            | Expr::Forall { bindings, body } => {
                for b in bindings {
                    if let Binding::In(_, d) = b {
                        d.walk(f);
                    }
                }
                body.walk(f);
            }
            Expr::App { func, args, .. } => {
                func.walk(f);
                for a in args {
                    a.expr.walk(f);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn true_false_encodings() {
        assert_eq!(Expr::true_(), Expr::Product(vec![]));
        assert_eq!(Expr::false_(), Expr::Union(vec![]));
    }

    #[test]
    fn and_all_folds() {
        let e = Expr::and_all(vec![Expr::ident("a"), Expr::ident("b"), Expr::ident("c")]);
        match e {
            Expr::And(ab, c) => {
                assert_eq!(*c, Expr::ident("c"));
                match *ab {
                    Expr::And(a, b) => {
                        assert_eq!(*a, Expr::ident("a"));
                        assert_eq!(*b, Expr::ident("b"));
                    }
                    other => panic!("{other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(Expr::and_all(vec![]), Expr::true_());
    }

    #[test]
    fn walk_visits_all() {
        let e = Expr::call("R", vec![Expr::ident("x"), Expr::int(1)]);
        let mut count = 0;
        e.walk(&mut |_| count += 1);
        assert_eq!(count, 4); // App, Ident R, Ident x, Lit 1
    }

    #[test]
    fn binding_var_names() {
        assert_eq!(Binding::Var("x".into()).var_name(), Some("x"));
        assert_eq!(Binding::RelVar("A".into()).var_name(), Some("A"));
        assert_eq!(Binding::Lit(Value::int(0)).var_name(), None);
        assert_eq!(Binding::Wildcard.var_name(), None);
    }
}
