//! `rel` — command-line interface for rel-rs.
//!
//! ```text
//! rel run program.rel [--db data.csv:Concept ...]   execute a program, print `output`
//! rel check program.rel                             compile only (safety/strata report)
//! rel repl [--db <dir>]                             interactive session; with --db,
//!                                                   durable: commits are logged to a
//!                                                   WAL in <dir> and recovered on the
//!                                                   next start
//! rel connect <host:port>                           remote repl against a running
//!                                                   rel-server (each line is one
//!                                                   transaction over the wire)
//! ```
//!
//! The standard, relational-algebra, linear-algebra and graph libraries
//! are installed in every session.

use rel_core::{Database, RelResult};
use rel_engine::Session;
use std::io::{BufRead, Write};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("check") => cmd_check(&args[1..]),
        Some("repl") => cmd_repl(&args[1..]),
        Some("connect") => cmd_connect(&args[1..]),
        _ => {
            eprintln!(
                "usage:\n  rel run <program.rel> [--db <file.csv>:<Concept> ...]\n  \
                 rel check <program.rel>\n  rel repl [--db <dir>]\n  \
                 rel connect <host:port>"
            );
            2
        }
    };
    std::process::exit(code);
}

fn session_with_libraries(db: Database) -> Session {
    rel_stdlib::with_stdlib(db).with_library(rel_graph::GRAPH_LIB)
}

fn load_databases(args: &[String]) -> RelResult<Database> {
    let mut db = Database::new();
    let mut reg = rel_kg::EntityRegistry::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--db" {
            let spec = args.get(i + 1).cloned().unwrap_or_default();
            let (path, concept) = spec
                .split_once(':')
                .ok_or_else(|| rel_core::RelError::internal("--db expects file.csv:Concept"))?;
            let text = std::fs::read_to_string(path)
                .map_err(|e| rel_core::RelError::internal(format!("reading {path}: {e}")))?;
            let records = rel_kg::parse_csv(&text)?;
            rel_kg::ingest_records(&mut db, &mut reg, concept, &records)?;
            i += 2;
        } else {
            i += 1;
        }
    }
    Ok(db)
}

fn cmd_run(args: &[String]) -> i32 {
    let Some(path) = args.first() else {
        eprintln!("rel run: missing program file");
        return 2;
    };
    let src = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("rel: cannot read {path}: {e}");
            return 1;
        }
    };
    let db = match load_databases(&args[1..]) {
        Ok(db) => db,
        Err(e) => {
            eprintln!("rel: {e}");
            return 1;
        }
    };
    let mut session = session_with_libraries(db);
    match session.transact(&src) {
        Ok(outcome) => {
            for t in outcome.output.iter() {
                println!("{t}");
            }
            if outcome.inserted + outcome.deleted > 0 {
                eprintln!(
                    "committed: +{} / -{} tuples",
                    outcome.inserted, outcome.deleted
                );
            }
            0
        }
        Err(e) => {
            eprintln!("rel: {e}");
            1
        }
    }
}

fn cmd_check(args: &[String]) -> i32 {
    let Some(path) = args.first() else {
        eprintln!("rel check: missing program file");
        return 2;
    };
    let src = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("rel: cannot read {path}: {e}");
            return 1;
        }
    };
    let session = session_with_libraries(Database::new());
    match session.compile(&src) {
        Ok(module) => {
            println!(
                "ok: {} predicates, {} strata",
                module.rules.len(),
                module.strata.len()
            );
            for (i, s) in module.strata.iter().enumerate() {
                if s.recursive {
                    println!(
                        "  stratum {i}: {:?} ({})",
                        s.preds,
                        if s.monotone { "semi-naive" } else { "partial fixpoint" }
                    );
                }
            }
            0
        }
        Err(e) => {
            eprintln!("rel: {e}");
            1
        }
    }
}

fn cmd_repl(args: &[String]) -> i32 {
    // `rel repl --db <dir>` opens (or creates) a durable store: every
    // committed line is appended to the WAL in <dir>, and restarting the
    // repl on the same directory recovers the full committed history.
    let store = args
        .iter()
        .position(|a| a == "--db")
        .map(|i| args.get(i + 1).cloned().unwrap_or_default());
    let mut session = match store {
        Some(dir) if dir.is_empty() => {
            eprintln!("rel repl: --db expects a store directory");
            return 2;
        }
        Some(dir) => {
            let mut s = match Session::open(&dir) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("rel: cannot open durable store {dir}: {e}");
                    return 1;
                }
            };
            if s.is_durable() {
                eprintln!(
                    "rel: durable store {dir} open — {} tuples recovered",
                    s.db().total_tuples()
                );
            }
            s.install_library(&rel_stdlib::full_library());
            s.install_library(rel_graph::GRAPH_LIB);
            s
        }
        None => session_with_libraries(Database::new()),
    };
    // Warm the prepared-module cache: parsing + analyzing the four
    // installed libraries happens here, once. Every input line afterwards
    // re-parses only its own text (the cached library AST is reused), and
    // a *repeated* line is served from the module cache without any
    // compilation at all.
    if let Err(e) = session.prepare("") {
        eprintln!("rel: library failed to compile: {e}");
        return 1;
    }
    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    eprintln!(
        "rel repl — enter a full program per line; :profile/:explain <query>, :quit to exit"
    );
    loop {
        eprint!("rel> ");
        let _ = std::io::stderr().flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => {
                let _ = session.sync();
                return 0;
            }
            Ok(_) => {}
            Err(_) => return 1,
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line == ":quit" || line == ":q" {
            // Flush batched WAL appends so a durable repl never loses its
            // last few committed lines to the fsync batch window.
            let _ = session.sync();
            return 0;
        }
        // `:profile <query>` / `:explain <query>` evaluate the query
        // read-only under a profile sink and print its QueryProfile —
        // with wall times (:profile) or just the plan shape (:explain).
        if let Some(src) = line.strip_prefix(":profile ") {
            match session.query_profiled(src.trim()) {
                Ok((rows, profile)) => {
                    let _ = writeln!(out, "{rows}");
                    let _ = write!(out, "{}", profile.render());
                }
                Err(e) => eprintln!("error: {e}"),
            }
            continue;
        }
        if let Some(src) = line.strip_prefix(":explain ") {
            match session.query_profiled(src.trim()) {
                Ok((_, profile)) => {
                    let _ = write!(out, "{}", profile.explain());
                }
                Err(e) => eprintln!("error: {e}"),
            }
            continue;
        }
        // Each line is one transaction: prepare (cached), stage, commit.
        let prepared = match session.prepare(line) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("error: {e}");
                continue;
            }
        };
        let mut txn = session.begin();
        let result = txn
            .run_prepared(&prepared, &rel_engine::Params::new())
            .and_then(|_| txn.commit());
        match result {
            Ok(outcome) => {
                let _ = writeln!(out, "{}", outcome.output);
            }
            Err(e) => eprintln!("error: {e}"),
        }
    }
}

fn cmd_connect(args: &[String]) -> i32 {
    // `rel connect host:port` — the repl loop over the wire: every line
    // is shipped to a running rel-server as one transaction and its
    // `output` relation printed. The server holds the database (and its
    // durability); this process is just a thin rel-client.
    let Some(addr) = args.first() else {
        eprintln!("rel connect: missing server address (host:port)");
        return 2;
    };
    let mut client = match rel_server::Client::connect(addr.as_str()) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("rel: cannot connect to {addr}: {e}");
            return 1;
        }
    };
    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    eprintln!(
        "rel connect {addr} — enter a full program per line; :stats, :watch [n] <query>, :quit to exit"
    );
    loop {
        eprint!("rel> ");
        let _ = std::io::stderr().flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => return 0,
            Ok(_) => {}
            Err(_) => return 1,
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line == ":quit" || line == ":q" {
            return 0;
        }
        // `:stats` — the server's observability surface: engine metrics
        // registry, per-request-type latency, commit queue and pool.
        if line == ":stats" {
            match client.stats() {
                Ok(stats) => {
                    let _ = write!(out, "{}", stats.render());
                }
                Err(e @ rel_server::ClientError::Io(_)) => {
                    eprintln!("rel: connection lost: {e}");
                    return 1;
                }
                Err(e) => eprintln!("error: {e}"),
            }
            continue;
        }
        // `:watch <query>` — subscribe and stream pushed deltas forever;
        // `:watch <n> <query>` stops after the initial snapshot plus `n`
        // delta batches (sequence numbers are gapless, so that is
        // "until seq n arrives") and returns to the prompt —
        // deterministic for scripted use (`printf ':watch 1 ...' | rel
        // connect`).
        if let Some(rest) = line.strip_prefix(":watch ") {
            let rest = rest.trim();
            let (limit, src) = match rest.split_once(char::is_whitespace) {
                Some((n, q)) if n.parse::<u64>().is_ok() => {
                    (Some(n.parse::<u64>().expect("checked")), q.trim())
                }
                _ => (None, rest),
            };
            let mut sub = match client.subscribe(src, &rel_engine::Params::new()) {
                Ok(s) => s,
                Err(e @ rel_server::ClientError::Io(_)) => {
                    eprintln!("rel: connection lost: {e}");
                    return 1;
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    continue;
                }
            };
            let mut state = rel_core::Relation::new();
            loop {
                let d = match sub.recv() {
                    Ok(d) => d,
                    Err(e) => {
                        eprintln!("rel: connection lost: {e}");
                        return 1;
                    }
                };
                if d.snapshot && d.seq > 0 {
                    // The server coalesced missed batches (we lagged);
                    // the snapshot replaces the state wholesale.
                    eprintln!("watch: resynced at seq {}", d.seq);
                }
                for t in d.removed.iter() {
                    let _ = writeln!(out, "- {t}");
                }
                for t in d.added.iter() {
                    let _ = writeln!(out, "+ {t}");
                }
                state = d.apply_to(&state);
                eprintln!("watch seq {}: {} rows live", d.seq, state.len());
                let _ = out.flush();
                if limit.is_some_and(|n| d.seq >= n) {
                    break;
                }
            }
            match sub.unsubscribe() {
                Ok(()) => {}
                Err(e @ rel_server::ClientError::Io(_)) => {
                    eprintln!("rel: connection lost: {e}");
                    return 1;
                }
                Err(e) => eprintln!("error: {e}"),
            }
            continue;
        }
        match client.transact(line) {
            Ok(outcome) => {
                for t in outcome.output.iter() {
                    let _ = writeln!(out, "{t}");
                }
                if outcome.inserted + outcome.deleted > 0 {
                    eprintln!(
                        "committed: +{} / -{} tuples",
                        outcome.inserted, outcome.deleted
                    );
                }
            }
            // A dropped connection cannot be re-framed; typed server
            // errors leave the session usable.
            Err(e @ rel_server::ClientError::Io(_)) => {
                eprintln!("rel: connection lost: {e}");
                return 1;
            }
            Err(e) => eprintln!("error: {e}"),
        }
    }
}
