//! # rel-stdlib
//!
//! The Rel standard library (§5 of the paper), written **in Rel** and
//! embedded in this crate:
//!
//! * [`STDLIB`] — arithmetic wrappers, infix operator relations,
//!   `dot_join`, `left_override`, `empty`, and the aggregation library
//!   (`sum`/`count`/`min`/`max`/`avg`/`Argmin`/`Argmax`) built on the
//!   single `reduce` primitive (§5.1–5.2);
//! * [`RA_LIB`] — point-free relational algebra (§5.3.1);
//! * [`LA_LIB`] — linear algebra over relation-encoded vectors and
//!   matrices (§5.3.2).
//!
//! Library definitions are second-order (or demand-driven), so installing
//! them costs nothing until a query instantiates them.
//!
//! ```
//! use rel_core::database::figure1_database;
//! use rel_stdlib::SessionExt;
//! use rel_engine::Session;
//!
//! let s = Session::with_stdlib(figure1_database());
//! // §5.2: total payments per order.
//! let out = s.query(
//!     "def Ord(x) : OrderProductQuantity(x,_,_)\n\
//!      def OrderPaymentAmount(x,y,z) : PaymentOrder(y,x) and PaymentAmount(y,z)\n\
//!      def output[x in Ord] : sum[OrderPaymentAmount[x]] <++ 0",
//! ).unwrap();
//! assert_eq!(out.to_string(), r#"{("O1", 30); ("O2", 10); ("O3", 90)}"#);
//! ```

use rel_core::Database;
use rel_engine::Session;

/// Core standard library source (§5.1–5.2).
pub const STDLIB: &str = include_str!("../rel/stdlib.rel");
/// Relational-algebra library source (§5.3.1).
pub const RA_LIB: &str = include_str!("../rel/ra.rel");
/// Linear-algebra library source (§5.3.2).
pub const LA_LIB: &str = include_str!("../rel/la.rel");

/// The complete library: stdlib + RA + LA.
pub fn full_library() -> String {
    format!("{STDLIB}\n{RA_LIB}\n{LA_LIB}")
}

/// Build a session with the full standard library installed.
pub fn with_stdlib(db: Database) -> Session {
    Session::new(db).with_library(&full_library())
}

/// Extension trait adding `Session::with_stdlib`.
pub trait SessionExt {
    /// A session over `db` with the standard library installed.
    fn with_stdlib(db: Database) -> Session;
}

impl SessionExt for Session {
    fn with_stdlib(db: Database) -> Session {
        with_stdlib(db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rel_core::database::figure1_database;
    use rel_core::{tuple, Relation, Value};

    fn s() -> Session {
        with_stdlib(figure1_database())
    }

    #[test]
    fn library_parses_and_compiles() {
        // Compiling an empty query against the library exercises every
        // first-order definition end to end.
        s().query("def output(x) : ProductPrice(x, _)").unwrap();
    }

    #[test]
    fn sum_per_order_paper_example() {
        // §5.2 — OrderPaid with orders lacking payments excluded.
        let out = s()
            .query(
                "def Ord(x) : OrderProductQuantity(x,_,_)\n\
                 def OrderPaymentAmount(x,y,z) : PaymentOrder(y,x) and PaymentAmount(y,z)\n\
                 def output[x in Ord] : sum[OrderPaymentAmount[x]]",
            )
            .unwrap();
        assert_eq!(
            out,
            Relation::from_tuples([
                tuple!["O1", 30],
                tuple!["O2", 10],
                tuple!["O3", 90],
            ])
        );
    }

    #[test]
    fn left_override_supplies_default() {
        // §5.2 — orders without payments get 0 via `<++ 0`.
        let mut db = figure1_database();
        db.insert("OrderProductQuantity", tuple!["O4", "P4", 1]);
        let s = with_stdlib(db);
        let out = s
            .query(
                "def Ord(x) : OrderProductQuantity(x,_,_)\n\
                 def OrderPaymentAmount(x,y,z) : PaymentOrder(y,x) and PaymentAmount(y,z)\n\
                 def output[x in Ord] : sum[OrderPaymentAmount[x]] <++ 0",
            )
            .unwrap();
        assert!(out.contains(&tuple!["O4", 0]));
        assert!(out.contains(&tuple!["O1", 30]));
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn count_min_max_avg() {
        let out = s()
            .query("def output[v] : v = count[ProductPrice]")
            .unwrap();
        assert_eq!(out, Relation::from_tuples([tuple![4]]));
        let out = s().query("def output[v] : v = min[ProductPrice]").unwrap();
        assert_eq!(out, Relation::from_tuples([tuple![10]]));
        let out = s().query("def output[v] : v = max[ProductPrice]").unwrap();
        assert_eq!(out, Relation::from_tuples([tuple![40]]));
        let out = s().query("def output[v] : v = avg[ProductPrice]").unwrap();
        assert_eq!(out, Relation::from_tuples([tuple![25]]));
    }

    #[test]
    fn argmin_argmax() {
        // Cheapest product (§5.2's Argmin).
        let out = s().query("def output : Argmin[ProductPrice]").unwrap();
        assert_eq!(out, Relation::from_tuples([tuple!["P1"]]));
        let out = s().query("def output : Argmax[ProductPrice]").unwrap();
        assert_eq!(out, Relation::from_tuples([tuple!["P4"]]));
    }

    #[test]
    fn dot_join_operator() {
        // PaymentOrder . OrderProductQuantity joins payments to products.
        let out = s()
            .query("def output(p, prod, q) : dot_join(PaymentOrder, OrderProductQuantity, p, prod, q)")
            .unwrap();
        assert!(out.contains(&tuple!["Pmt1", "P1", 2]));
        // Same thing via the infix operator.
        let out2 = s()
            .query("def output : PaymentOrder.OrderProductQuantity")
            .unwrap();
        assert_eq!(out, out2);
    }

    #[test]
    fn ra_union_product_minus() {
        let src = "def R(x, y) : {(1, 2); (3, 4)}(x, y)\n\
                   def S(x, y) : {(5, 6)}(x, y)\n";
        // Product (§4.1): two tuples.
        let out = s()
            .query(&format!("{src}def output : Product[R, S]"))
            .unwrap();
        assert_eq!(
            out,
            Relation::from_tuples([tuple![1, 2, 5, 6], tuple![3, 4, 5, 6]])
        );
        // Union.
        let out = s().query(&format!("{src}def output : Union[R, S]")).unwrap();
        assert_eq!(out.len(), 3);
        // Minus.
        let out = s()
            .query(&format!("{src}def output : Minus[Union[R, S], S]"))
            .unwrap();
        assert_eq!(out, Relation::from_tuples([tuple![1, 2], tuple![3, 4]]));
    }

    #[test]
    fn ra_select_with_infinite_condition() {
        // §5.3.1: σ_{A1=A2}(R × S) ∪ B as Union[Select[Product[R,S],Cond12],B].
        let src = "def R(x) : {(1); (2)}(x)\n\
                   def S(x) : {(2); (3)}(x)\n\
                   def B(x, y) : {(9, 9)}(x, y)\n\
                   def output : Union[Select[Product[R, S], Cond12], B]";
        let out = s().query(src).unwrap();
        assert_eq!(
            out,
            Relation::from_tuples([tuple![2, 2], tuple![9, 9]])
        );
    }

    #[test]
    fn scalar_product_paper_example() {
        // §5.3.2: u = (4,2), v = (3,6) ⇒ u·v = 24.
        let src = "def U(i, x) : {(1, 4); (2, 2)}(i, x)\n\
                   def V(i, x) : {(1, 3); (2, 6)}(i, x)\n\
                   def output[v] : v = ScalarProd[U, V]";
        let out = s().query(src).unwrap();
        assert_eq!(out, Relation::from_tuples([tuple![24]]));
    }

    #[test]
    fn matrix_mult_2x2() {
        // [[1,2],[3,4]] · [[5,6],[7,8]] = [[19,22],[43,50]].
        let src = "def A(i, j, v) : {(1,1,1); (1,2,2); (2,1,3); (2,2,4)}(i, j, v)\n\
                   def B(i, j, v) : {(1,1,5); (1,2,6); (2,1,7); (2,2,8)}(i, j, v)\n\
                   def output : MatrixMult[A, B]";
        let out = s().query(src).unwrap();
        assert_eq!(
            out,
            Relation::from_tuples([
                tuple![1, 1, 19],
                tuple![1, 2, 22],
                tuple![2, 1, 43],
                tuple![2, 2, 50],
            ])
        );
    }

    #[test]
    fn matrix_vector_product() {
        let src = "def A(i, j, v) : {(1,1,1); (1,2,2); (2,1,3); (2,2,4)}(i, j, v)\n\
                   def V(i, x) : {(1, 1); (2, 1)}(i, x)\n\
                   def output : MatrixVector[A, V]";
        let out = s().query(src).unwrap();
        assert_eq!(out, Relation::from_tuples([tuple![1, 3], tuple![2, 7]]));
    }

    #[test]
    fn dimension_and_transpose() {
        let src = "def A(i, j, v) : {(1,1,1); (2,2,5)}(i, j, v)\n";
        let out = s()
            .query(&format!("{src}def output[d] : d = dimension[A]"))
            .unwrap();
        assert_eq!(out, Relation::from_tuples([tuple![2]]));
        let out = s()
            .query(&format!("{src}def output(i,j,v) : transpose(A, i, j, v)"))
            .unwrap();
        assert!(out.contains(&tuple![1, 1, 1]));
        assert!(out.contains(&tuple![2, 2, 5]));
    }

    #[test]
    fn uniform_vector_via_range() {
        let out = s().query("def output(i, v) : vector(3, i, v)").unwrap();
        assert_eq!(out.len(), 3);
        let third = Value::float(1.0 / 3.0);
        assert!(out.iter().all(|t| t.values()[1] == third));
    }

    #[test]
    fn delta_max_abs_difference() {
        let src = "def U(i, x) : {(1, 1.0); (2, 5.0)}(i, x)\n\
                   def V(i, x) : {(1, 2.5); (2, 4.0)}(i, x)\n\
                   def output[d] : d = delta[U, V]";
        let out = s().query(src).unwrap();
        assert_eq!(out, Relation::from_tuples([tuple![1.5]]));
    }

    #[test]
    fn prefixes_and_perms() {
        let src = "def R(x, y, z) : {(1, 2, 3)}(x, y, z)\n";
        let out = s()
            .query(&format!("{src}def output : Prefixes[R]"))
            .unwrap();
        // Prefixes of (1,2,3): (), (1), (1,2), (1,2,3).
        assert_eq!(out.len(), 4);
        let out = s().query(&format!("{src}def output : Perms[R]")).unwrap();
        assert_eq!(out.len(), 6); // 3! permutations
    }

    #[test]
    fn string_functions() {
        let out = s()
            .query("def output[v] : v = string_concat[\"Pmt\", \"1\"]")
            .unwrap();
        assert_eq!(out, Relation::from_tuples([tuple!["Pmt1"]]));
        let out = s()
            .query("def output(p) : PaymentOrder(p, _) and like_match(p, \"Pmt*\")")
            .unwrap();
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn empty_test() {
        let out = s()
            .query("def Nothing(x) : {}(x)\ndef output() : empty(Nothing)")
            .unwrap();
        assert!(out.is_true());
        let out = s().query("def output() : empty(ProductPrice)").unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn trace_of_matrix() {
        let src = "def A(i, j, v) : {(1,1,10); (1,2,99); (2,2,20)}(i, j, v)\n\
                   def output[t] : t = trace[A]";
        let out = s().query(src).unwrap();
        assert_eq!(out, Relation::from_tuples([tuple![30]]));
    }
}
