//! First-order relations (*Rels₁*): sets of [`Tuple`]s.
//!
//! Rel relations are pure sets (no multiplicities, no nulls) and may contain
//! tuples of *different arities* (Addendum A: "a relation … can contain
//! tuples of different arity"). A [`Relation`] is backed by a `BTreeSet` so
//! iteration — and therefore all query output — is deterministic.
//!
//! Boolean encoding (§4.3): `true` is `{⟨⟩}` and `false` is `{}`.

use crate::tuple::Tuple;
use crate::value::Value;
use std::collections::BTreeSet;
use std::fmt;

/// A set of first-order tuples.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Relation {
    tuples: BTreeSet<Tuple>,
}

impl Relation {
    /// The empty relation `{}` — the encoding of `false`.
    pub fn new() -> Self {
        Relation::default()
    }

    /// The empty relation `{}` (alias of [`Relation::new`]).
    pub fn false_rel() -> Self {
        Relation::new()
    }

    /// The relation `{⟨⟩}` containing just the empty tuple — `true`.
    pub fn true_rel() -> Self {
        let mut r = Relation::new();
        r.insert(Tuple::empty());
        r
    }

    /// Build from an iterator of tuples.
    pub fn from_tuples(tuples: impl IntoIterator<Item = Tuple>) -> Self {
        Relation {
            tuples: tuples.into_iter().collect(),
        }
    }

    /// Build a unary relation from values.
    pub fn from_values(values: impl IntoIterator<Item = Value>) -> Self {
        Relation {
            tuples: values.into_iter().map(|v| Tuple::from(vec![v])).collect(),
        }
    }

    /// A relation holding a single tuple.
    pub fn singleton(t: Tuple) -> Self {
        Relation::from_tuples([t])
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Is the relation empty (i.e. `false`)?
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Is this the `true` relation `{⟨⟩}` (or does it at least contain `⟨⟩`)?
    pub fn is_true(&self) -> bool {
        self.tuples.contains(&Tuple::empty())
    }

    /// Insert a tuple; returns `true` if it was new (set semantics).
    pub fn insert(&mut self, t: Tuple) -> bool {
        self.tuples.insert(t)
    }

    /// Remove a tuple; returns `true` if it was present.
    pub fn remove(&mut self, t: &Tuple) -> bool {
        self.tuples.remove(t)
    }

    /// Membership test (full application `R(a, …)`).
    pub fn contains(&self, t: &Tuple) -> bool {
        self.tuples.contains(t)
    }

    /// Iterate tuples in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> + Clone + '_ {
        self.tuples.iter()
    }

    /// The set of distinct arities present.
    pub fn arities(&self) -> BTreeSet<usize> {
        self.tuples.iter().map(|t| t.arity()).collect()
    }

    /// If all tuples share one arity, return it; an empty relation reports
    /// `Some(0)`? No — it reports `None` (no tuples, no arity evidence).
    pub fn uniform_arity(&self) -> Option<usize> {
        let mut it = self.tuples.iter();
        let first = it.next()?.arity();
        it.all(|t| t.arity() == first).then_some(first)
    }

    /// Partial application `R[prefix…]` (§4.3): all suffixes of tuples that
    /// start with `prefix`. `R["O1"]` over `OrderProductQuantity` yields
    /// `{⟨"P1",2⟩, ⟨"P2",1⟩}`.
    pub fn partial_apply(&self, prefix: &[Value]) -> Relation {
        let mut out = Relation::new();
        // Tuples sharing a prefix are contiguous in BTreeSet order only
        // within an arity class; mixed arities still compare lexicographically
        // so prefix-sharing tuples cluster. We use a range scan from the
        // prefix tuple and stop once tuples no longer start with it only when
        // every arity ≥ prefix is exhausted; simpler and still O(matches +
        // log n) in the common case is a full range scan with early exit on
        // the sorted order.
        let start = Tuple::from(prefix.to_vec());
        for t in self.tuples.range(start..) {
            if !t.starts_with(prefix) {
                break;
            }
            out.insert(t.suffix(prefix.len()));
        }
        out
    }

    /// Set union (the `{A; B}` / `or` operator).
    pub fn union(&self, other: &Relation) -> Relation {
        Relation {
            tuples: self.tuples.union(&other.tuples).cloned().collect(),
        }
    }

    /// Set intersection (`and` on formulas, `Select` on conditions).
    pub fn intersect(&self, other: &Relation) -> Relation {
        Relation {
            tuples: self.tuples.intersection(&other.tuples).cloned().collect(),
        }
    }

    /// Set difference (`Minus`).
    pub fn minus(&self, other: &Relation) -> Relation {
        Relation {
            tuples: self.tuples.difference(&other.tuples).cloned().collect(),
        }
    }

    /// Cartesian product `(A, B)` — pairwise tuple concatenation.
    pub fn product(&self, other: &Relation) -> Relation {
        let mut out = BTreeSet::new();
        for a in &self.tuples {
            for b in &other.tuples {
                out.insert(a.concat(b));
            }
        }
        Relation { tuples: out }
    }

    /// Extend with tuples from an iterator.
    pub fn extend(&mut self, tuples: impl IntoIterator<Item = Tuple>) {
        self.tuples.extend(tuples);
    }

    /// Union in place; returns the number of newly inserted tuples.
    pub fn absorb(&mut self, other: &Relation) -> usize {
        let before = self.tuples.len();
        self.tuples.extend(other.tuples.iter().cloned());
        self.tuples.len() - before
    }

    /// Drain all tuples into a sorted `Vec`.
    pub fn into_tuples(self) -> Vec<Tuple> {
        self.tuples.into_iter().collect()
    }

    /// Last-column values (the "value" column of a GNF key→value relation),
    /// in relation order. Used by `reduce` (§5.2).
    pub fn last_column(&self) -> Vec<Value> {
        self.tuples
            .iter()
            .filter(|t| !t.is_empty())
            .map(|t| t.values()[t.arity() - 1].clone())
            .collect()
    }
}

impl FromIterator<Tuple> for Relation {
    fn from_iter<I: IntoIterator<Item = Tuple>>(iter: I) -> Self {
        Relation::from_tuples(iter)
    }
}

impl<'a> IntoIterator for &'a Relation {
    type Item = &'a Tuple;
    type IntoIter = std::collections::btree_set::Iter<'a, Tuple>;
    fn into_iter(self) -> Self::IntoIter {
        self.tuples.iter()
    }
}

impl IntoIterator for Relation {
    type Item = Tuple;
    type IntoIter = std::collections::btree_set::IntoIter<Tuple>;
    fn into_iter(self) -> Self::IntoIter {
        self.tuples.into_iter()
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, t) in self.tuples.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn opq() -> Relation {
        // OrderProductQuantity from Figure 1.
        Relation::from_tuples([
            tuple!["O1", "P1", 2],
            tuple!["O1", "P2", 1],
            tuple!["O2", "P1", 1],
            tuple!["O3", "P3", 4],
        ])
    }

    #[test]
    fn set_semantics_dedup() {
        let mut r = Relation::new();
        assert!(r.insert(tuple![1, 2]));
        assert!(!r.insert(tuple![1, 2]));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn true_false_encoding() {
        assert!(Relation::true_rel().is_true());
        assert!(!Relation::false_rel().is_true());
        assert!(Relation::false_rel().is_empty());
        assert_eq!(Relation::true_rel().len(), 1);
        assert_eq!(Relation::true_rel().to_string(), "{()}");
    }

    #[test]
    fn partial_apply_paper_example() {
        // OrderProductQuantity["O1"] = {("P1",2); ("P2",1)}  (§4.3)
        let r = opq().partial_apply(&[Value::str("O1")]);
        assert_eq!(
            r,
            Relation::from_tuples([tuple!["P1", 2], tuple!["P2", 1]])
        );
    }

    #[test]
    fn partial_apply_full_is_boolean() {
        let r = opq().partial_apply(&[Value::str("O1"), Value::str("P1"), Value::int(2)]);
        assert!(r.is_true());
        let r = opq().partial_apply(&[Value::str("O1"), Value::str("P1"), Value::int(3)]);
        assert!(r.is_empty());
    }

    #[test]
    fn product_concats() {
        let r = Relation::from_tuples([tuple![1, 2], tuple![3, 4]]);
        let s = Relation::from_tuples([tuple![5, 6]]);
        let p = r.product(&s);
        assert_eq!(
            p,
            Relation::from_tuples([tuple![1, 2, 5, 6], tuple![3, 4, 5, 6]])
        );
    }

    #[test]
    fn product_with_true_is_identity() {
        let r = opq();
        assert_eq!(r.product(&Relation::true_rel()), r);
        assert_eq!(Relation::true_rel().product(&r), r);
        assert!(r.product(&Relation::false_rel()).is_empty());
    }

    #[test]
    fn union_minus_intersect() {
        let a = Relation::from_tuples([tuple![1], tuple![2]]);
        let b = Relation::from_tuples([tuple![2], tuple![3]]);
        assert_eq!(a.union(&b).len(), 3);
        assert_eq!(a.intersect(&b).len(), 1);
        assert_eq!(a.minus(&b), Relation::from_tuples([tuple![1]]));
    }

    #[test]
    fn mixed_arity_allowed() {
        let mut r = Relation::new();
        r.insert(tuple![1]);
        r.insert(tuple![1, 2]);
        r.insert(Tuple::empty());
        assert_eq!(r.len(), 3);
        assert_eq!(r.arities().into_iter().collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(r.uniform_arity(), None);
    }

    #[test]
    fn uniform_arity() {
        assert_eq!(opq().uniform_arity(), Some(3));
        assert_eq!(Relation::new().uniform_arity(), None);
    }

    #[test]
    fn last_column() {
        let vals = opq().last_column();
        assert_eq!(vals.len(), 4);
        assert!(vals.iter().all(|v| v.is_int()));
    }

    #[test]
    fn deterministic_order() {
        let r1 = Relation::from_tuples([tuple![2], tuple![1], tuple![3]]);
        let r2 = Relation::from_tuples([tuple![3], tuple![2], tuple![1]]);
        let v1: Vec<_> = r1.iter().cloned().collect();
        let v2: Vec<_> = r2.iter().cloned().collect();
        assert_eq!(v1, v2);
    }
}
