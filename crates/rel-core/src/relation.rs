//! First-order relations (*Rels₁*): sets of [`Tuple`]s.
//!
//! Rel relations are pure sets (no multiplicities, no nulls) and may contain
//! tuples of *different arities* (Addendum A: "a relation … can contain
//! tuples of different arity"). A [`Relation`] is backed by a `BTreeSet` so
//! iteration — and therefore all query output — is deterministic.
//!
//! Boolean encoding (§4.3): `true` is `{⟨⟩}` and `false` is `{}`.
//!
//! # Copy-on-write invariants
//!
//! Storage is shared behind an [`Arc`], so **cloning a relation is O(1)**:
//! the fixpoint engine installs Δ overlays, snapshots iterates, and seeds
//! its relation map from the database with pointer bumps instead of deep
//! copies. The invariants every mutating method maintains:
//!
//! 1. Mutation goes through `Relation::tuples_mut`, which `Arc::make_mut`s
//!    the storage (copying it only when shared) and stamps a **fresh
//!    generation** from a global counter. Generations are never reused, so
//!    `a.generation() == b.generation()` implies `a` and `b` hold the same
//!    tuple set — the engine's index cache keys on it for invalidation.
//! 2. A mutation that turns out to be a no-op (inserting a duplicate,
//!    retaining everything) restores the previous generation: equal content
//!    keeps its generation so caches stay warm.
//! 3. Equality and iteration are content-based; generation and sharing are
//!    invisible to semantics. [`Relation::shares_storage`] exposes sharing
//!    for tests and diagnostics only.
//! 4. The per-storage fingerprint (a commutative XOR of tuple hashes,
//!    computed lazily and cached) is cleared whenever storage is rewritten;
//!    it is a pure function of the tuple set.

use crate::tuple::Tuple;
use crate::value::Value;
use std::collections::BTreeSet;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Monotone source of relation generations. Generation 0 is reserved for
/// the shared empty relation.
static NEXT_GENERATION: AtomicU64 = AtomicU64::new(1);

fn fresh_generation() -> u64 {
    NEXT_GENERATION.fetch_add(1, Ordering::Relaxed)
}

/// Shared storage: the tuple set plus a lazily computed content
/// fingerprint (order-independent XOR of per-tuple hashes).
#[derive(Debug, Default)]
struct Storage {
    tuples: BTreeSet<Tuple>,
    fingerprint: OnceLock<u64>,
}

impl Storage {
    fn new(tuples: BTreeSet<Tuple>) -> Self {
        Storage { tuples, fingerprint: OnceLock::new() }
    }
}

impl Clone for Storage {
    fn clone(&self) -> Self {
        // Cloned for mutation (`Arc::make_mut`): drop the fingerprint, the
        // copy is about to change.
        Storage { tuples: self.tuples.clone(), fingerprint: OnceLock::new() }
    }
}

/// A set of first-order tuples with O(1) copy-on-write cloning.
#[derive(Clone, Debug)]
pub struct Relation {
    storage: Arc<Storage>,
    generation: u64,
}

impl Default for Relation {
    fn default() -> Self {
        static EMPTY: OnceLock<Arc<Storage>> = OnceLock::new();
        Relation {
            storage: Arc::clone(EMPTY.get_or_init(|| Arc::new(Storage::default()))),
            generation: 0,
        }
    }
}

impl PartialEq for Relation {
    fn eq(&self, other: &Self) -> bool {
        if Arc::ptr_eq(&self.storage, &other.storage) || self.generation == other.generation {
            return true;
        }
        if self.len() != other.len() {
            return false;
        }
        if let (Some(a), Some(b)) =
            (self.storage.fingerprint.get(), other.storage.fingerprint.get())
        {
            if a != b {
                return false;
            }
        }
        self.storage.tuples == other.storage.tuples
    }
}

impl Eq for Relation {}

impl Relation {
    /// The empty relation `{}` — the encoding of `false`.
    pub fn new() -> Self {
        Relation::default()
    }

    /// The empty relation `{}` (alias of [`Relation::new`]).
    pub fn false_rel() -> Self {
        Relation::new()
    }

    /// The relation `{⟨⟩}` containing just the empty tuple — `true`.
    pub fn true_rel() -> Self {
        let mut r = Relation::new();
        r.insert(Tuple::empty());
        r
    }

    /// Build from an iterator of tuples.
    pub fn from_tuples(tuples: impl IntoIterator<Item = Tuple>) -> Self {
        Relation::from_set(tuples.into_iter().collect())
    }

    /// Build a unary relation from values.
    pub fn from_values(values: impl IntoIterator<Item = Value>) -> Self {
        Relation::from_set(values.into_iter().map(|v| Tuple::from(vec![v])).collect())
    }

    /// A relation holding a single tuple.
    pub fn singleton(t: Tuple) -> Self {
        Relation::from_tuples([t])
    }

    fn from_set(tuples: BTreeSet<Tuple>) -> Self {
        if tuples.is_empty() {
            return Relation::default();
        }
        Relation { storage: Arc::new(Storage::new(tuples)), generation: fresh_generation() }
    }

    /// Mutable storage access: copies the set when shared and stamps a
    /// fresh generation. Callers that detect a no-op mutation should
    /// restore the prior generation (invariant 2 of the module docs).
    fn tuples_mut(&mut self) -> &mut BTreeSet<Tuple> {
        self.generation = fresh_generation();
        let storage = Arc::make_mut(&mut self.storage);
        storage.fingerprint = OnceLock::new();
        &mut storage.tuples
    }

    /// The content generation: changes exactly when the tuple set does.
    /// Two relations with equal generations hold equal tuple sets (the
    /// converse does not hold). Used by the engine's index cache.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Do two relations share the same backing storage (i.e. was one
    /// cloned from the other with no intervening mutation)? Test/diagnostic
    /// introspection of the copy-on-write representation.
    pub fn shares_storage(&self, other: &Relation) -> bool {
        Arc::ptr_eq(&self.storage, &other.storage)
    }

    /// Order-independent content fingerprint (XOR of per-tuple hashes),
    /// computed lazily and cached on the shared storage. Equal relations
    /// have equal fingerprints; the converse can fail (hash collision), so
    /// callers use it only as an inequality fast path.
    pub fn fingerprint(&self) -> u64 {
        *self.storage.fingerprint.get_or_init(|| {
            let mut acc = 0u64;
            for t in &self.storage.tuples {
                let mut h = std::collections::hash_map::DefaultHasher::new();
                t.hash(&mut h);
                acc ^= h.finish();
            }
            acc
        })
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.storage.tuples.len()
    }

    /// Is the relation empty (i.e. `false`)?
    pub fn is_empty(&self) -> bool {
        self.storage.tuples.is_empty()
    }

    /// Is this the `true` relation `{⟨⟩}` (or does it at least contain `⟨⟩`)?
    pub fn is_true(&self) -> bool {
        self.storage.tuples.contains(&Tuple::empty())
    }

    /// Insert a tuple; returns `true` if it was new (set semantics).
    pub fn insert(&mut self, t: Tuple) -> bool {
        if Arc::strong_count(&self.storage) > 1 {
            // Shared storage: pre-check so a duplicate insert neither
            // unshares nor changes the generation.
            if self.storage.tuples.contains(&t) {
                return false;
            }
            self.tuples_mut().insert(t)
        } else {
            // Exclusive storage: single tree probe, restore the
            // generation when the tuple was already present.
            let prev = self.generation;
            let inserted = self.tuples_mut().insert(t);
            if !inserted {
                self.generation = prev;
            }
            inserted
        }
    }

    /// Remove a tuple; returns `true` if it was present.
    pub fn remove(&mut self, t: &Tuple) -> bool {
        if Arc::strong_count(&self.storage) > 1 {
            if !self.storage.tuples.contains(t) {
                return false;
            }
            self.tuples_mut().remove(t)
        } else {
            let prev = self.generation;
            let removed = self.tuples_mut().remove(t);
            if !removed {
                self.generation = prev;
            }
            removed
        }
    }

    /// Membership test (full application `R(a, …)`).
    pub fn contains(&self, t: &Tuple) -> bool {
        self.storage.tuples.contains(t)
    }

    /// Iterate tuples in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> + Clone + '_ {
        self.storage.tuples.iter()
    }

    /// Convert every row to a host type via [`crate::convert::FromRow`],
    /// in sorted tuple
    /// order (see [`crate::convert`]):
    ///
    /// ```
    /// # use rel_core::{tuple, Relation};
    /// let out = Relation::from_tuples([tuple!["P4", 40]]);
    /// let rows: Vec<(String, i64)> = out.rows().unwrap();
    /// assert_eq!(rows, vec![("P4".to_string(), 40)]);
    /// ```
    pub fn rows<T: crate::convert::FromRow>(&self) -> crate::RelResult<Vec<T>> {
        self.iter().map(T::from_row).collect()
    }

    /// Convert the single row of a singleton relation (e.g. an aggregate
    /// result); a [`crate::RelError::Type`] if the relation does not hold
    /// exactly one tuple.
    pub fn single<T: crate::convert::FromRow>(&self) -> crate::RelResult<T> {
        match self.single_opt()? {
            Some(v) => Ok(v),
            None => Err(crate::RelError::type_err(
                "expected exactly one row, relation is empty",
            )),
        }
    }

    /// Like [`Relation::single`], but an empty relation reads as `None`
    /// (the relational encoding of a missing value).
    pub fn single_opt<T: crate::convert::FromRow>(&self) -> crate::RelResult<Option<T>> {
        let mut it = self.iter();
        let Some(first) = it.next() else { return Ok(None) };
        if it.next().is_some() {
            return Err(crate::RelError::type_err(format!(
                "expected at most one row, relation has {}",
                self.len()
            )));
        }
        T::from_row(first).map(Some)
    }

    /// The set of distinct arities present.
    pub fn arities(&self) -> BTreeSet<usize> {
        self.iter().map(|t| t.arity()).collect()
    }

    /// If all tuples share one arity, return it; an empty relation reports
    /// `Some(0)`? No — it reports `None` (no tuples, no arity evidence).
    pub fn uniform_arity(&self) -> Option<usize> {
        let mut it = self.iter();
        let first = it.next()?.arity();
        it.all(|t| t.arity() == first).then_some(first)
    }

    /// Partial application `R[prefix…]` (§4.3): all suffixes of tuples that
    /// start with `prefix`. `R["O1"]` over `OrderProductQuantity` yields
    /// `{⟨"P1",2⟩, ⟨"P2",1⟩}`.
    pub fn partial_apply(&self, prefix: &[Value]) -> Relation {
        let mut out = BTreeSet::new();
        // Tuples sharing a prefix are contiguous in BTreeSet order only
        // within an arity class; mixed arities still compare lexicographically
        // so prefix-sharing tuples cluster. We use a range scan from the
        // prefix tuple and stop once tuples no longer start with it only when
        // every arity ≥ prefix is exhausted; simpler and still O(matches +
        // log n) in the common case is a full range scan with early exit on
        // the sorted order.
        let start = Tuple::from(prefix.to_vec());
        for t in self.storage.tuples.range(start..) {
            if !t.starts_with(prefix) {
                break;
            }
            out.insert(t.suffix(prefix.len()));
        }
        Relation::from_set(out)
    }

    /// Set union (the `{A; B}` / `or` operator): O(1) when either side is
    /// empty, merge-walk over both sorted sets otherwise.
    pub fn union(&self, other: &Relation) -> Relation {
        if self.shares_storage(other) || other.is_empty() {
            return self.clone();
        }
        if self.is_empty() {
            return other.clone();
        }
        let merged = MergeWalk::new(self.iter(), other.iter())
            .map(|side| match side {
                Side::Left(t) | Side::Right(t) | Side::Both(t) => t.clone(),
            })
            .collect();
        Relation::from_set(merged)
    }

    /// Set intersection (`and` on formulas, `Select` on conditions):
    /// merge-walk over both sorted sets.
    pub fn intersect(&self, other: &Relation) -> Relation {
        if self.shares_storage(other) {
            return self.clone();
        }
        if self.is_empty() || other.is_empty() {
            return Relation::new();
        }
        let merged = MergeWalk::new(self.iter(), other.iter())
            .filter_map(|side| match side {
                Side::Both(t) => Some(t.clone()),
                _ => None,
            })
            .collect();
        Relation::from_set(merged)
    }

    /// Set difference (`Minus`): merge-walk over both sorted sets, O(1)
    /// when the subtrahend is empty.
    pub fn minus(&self, other: &Relation) -> Relation {
        if self.shares_storage(other) {
            return Relation::new();
        }
        if other.is_empty() || self.is_empty() {
            return self.clone();
        }
        let merged = MergeWalk::new(self.iter(), other.iter())
            .filter_map(|side| match side {
                Side::Left(t) => Some(t.clone()),
                _ => None,
            })
            .collect();
        Relation::from_set(merged)
    }

    /// Remove, in place, every tuple of `other` that is present in
    /// `self` — the in-place companion of [`Relation::minus`] for callers
    /// that own the left side and want no intermediate allocation.
    pub fn minus_in_place(&mut self, other: &Relation) {
        if self.is_empty() || other.is_empty() {
            return;
        }
        if self.shares_storage(other) {
            *self = Relation::new();
            return;
        }
        if other.len() < self.len() / 4 {
            // Few removals: delete them individually.
            for t in other.iter() {
                self.remove(t);
            }
        } else if self.len() * 16 >= other.len() {
            // Comparable sizes: one linear merge-walk.
            *self = self.minus(other);
        } else {
            // self is tiny next to other: per-tuple probes.
            self.retain(|t| !other.contains(t));
        }
    }

    /// Keep only the tuples satisfying the predicate; a no-op (everything
    /// retained) keeps storage shared and the generation stable. The
    /// predicate may be called more than once per tuple when storage is
    /// shared (a pre-scan avoids unsharing on no-ops).
    pub fn retain(&mut self, mut keep: impl FnMut(&Tuple) -> bool) {
        if self.is_empty() {
            return;
        }
        if Arc::strong_count(&self.storage) > 1 && self.iter().all(&mut keep) {
            return; // no-op: stay shared
        }
        let prev = self.generation;
        let set = self.tuples_mut();
        let before = set.len();
        set.retain(|t| keep(t));
        if set.len() == before {
            self.generation = prev;
        }
        if self.is_empty() {
            *self = Relation::new();
        }
    }

    /// Cartesian product `(A, B)` — pairwise tuple concatenation.
    pub fn product(&self, other: &Relation) -> Relation {
        let mut out = BTreeSet::new();
        for a in self.iter() {
            for b in other.iter() {
                out.insert(a.concat(b));
            }
        }
        Relation::from_set(out)
    }

    /// Extend with tuples from an iterator.
    pub fn extend(&mut self, tuples: impl IntoIterator<Item = Tuple>) {
        let new: Vec<Tuple> = tuples
            .into_iter()
            .filter(|t| !self.storage.tuples.contains(t))
            .collect();
        if !new.is_empty() {
            self.tuples_mut().extend(new);
        }
    }

    /// Union in place; returns the number of newly inserted tuples.
    /// O(1) when `self` is empty (adopts the other side's storage); a
    /// merge-walk rebuild when both sides are of comparable size; plain
    /// inserts when `other` is small.
    pub fn absorb(&mut self, other: &Relation) -> usize {
        if other.is_empty() || self.shares_storage(other) {
            return 0;
        }
        if self.is_empty() {
            let added = other.len();
            *self = other.clone();
            return added;
        }
        let before = self.len();
        if other.len() * 4 >= self.len() {
            // Comparable sizes: one linear merge beats per-element inserts.
            let merged: BTreeSet<Tuple> = MergeWalk::new(self.iter(), other.iter())
                .map(|side| match side {
                    Side::Left(t) | Side::Right(t) | Side::Both(t) => t.clone(),
                })
                .collect();
            if merged.len() == before {
                return 0; // other ⊆ self: keep storage and generation
            }
            let added = merged.len() - before;
            *self = Relation::from_set(merged);
            added
        } else {
            let new: Vec<&Tuple> = other
                .iter()
                .filter(|t| !self.storage.tuples.contains(*t))
                .collect();
            if new.is_empty() {
                return 0;
            }
            let added = new.len();
            self.tuples_mut().extend(new.into_iter().cloned());
            debug_assert_eq!(self.len(), before + added);
            added
        }
    }

    /// Drain all tuples into a sorted `Vec`.
    pub fn into_tuples(self) -> Vec<Tuple> {
        match Arc::try_unwrap(self.storage) {
            Ok(storage) => storage.tuples.into_iter().collect(),
            Err(shared) => shared.tuples.iter().cloned().collect(),
        }
    }

    /// Last-column values (the "value" column of a GNF key→value relation),
    /// in relation order. Used by `reduce` (§5.2).
    pub fn last_column(&self) -> Vec<Value> {
        self.iter()
            .filter(|t| !t.is_empty())
            .map(|t| t.values()[t.arity() - 1].clone())
            .collect()
    }
}

/// One step of a sorted merge-walk over two tuple iterators.
enum Side<'a> {
    Left(&'a Tuple),
    Right(&'a Tuple),
    Both(&'a Tuple),
}

/// Sorted merge of two ascending tuple streams, classifying each element
/// by which side(s) it occurs on. Drives `union`/`intersect`/`minus`
/// without re-traversing either tree per element.
struct MergeWalk<L: Iterator, R: Iterator> {
    left: std::iter::Peekable<L>,
    right: std::iter::Peekable<R>,
}

impl<'a, L, R> MergeWalk<L, R>
where
    L: Iterator<Item = &'a Tuple>,
    R: Iterator<Item = &'a Tuple>,
{
    fn new(left: L, right: R) -> Self {
        MergeWalk { left: left.peekable(), right: right.peekable() }
    }
}

impl<'a, L, R> Iterator for MergeWalk<L, R>
where
    L: Iterator<Item = &'a Tuple>,
    R: Iterator<Item = &'a Tuple>,
{
    type Item = Side<'a>;

    fn next(&mut self) -> Option<Side<'a>> {
        match (self.left.peek(), self.right.peek()) {
            (Some(l), Some(r)) => match l.cmp(r) {
                std::cmp::Ordering::Less => Some(Side::Left(self.left.next().expect("peeked"))),
                std::cmp::Ordering::Greater => {
                    Some(Side::Right(self.right.next().expect("peeked")))
                }
                std::cmp::Ordering::Equal => {
                    self.right.next();
                    Some(Side::Both(self.left.next().expect("peeked")))
                }
            },
            (Some(_), None) => Some(Side::Left(self.left.next().expect("peeked"))),
            (None, Some(_)) => Some(Side::Right(self.right.next().expect("peeked"))),
            (None, None) => None,
        }
    }
}

impl FromIterator<Tuple> for Relation {
    fn from_iter<I: IntoIterator<Item = Tuple>>(iter: I) -> Self {
        Relation::from_tuples(iter)
    }
}

impl<'a> IntoIterator for &'a Relation {
    type Item = &'a Tuple;
    type IntoIter = std::collections::btree_set::Iter<'a, Tuple>;
    fn into_iter(self) -> Self::IntoIter {
        self.storage.tuples.iter()
    }
}

impl IntoIterator for Relation {
    type Item = Tuple;
    type IntoIter = std::collections::btree_set::IntoIter<Tuple>;
    fn into_iter(self) -> Self::IntoIter {
        match Arc::try_unwrap(self.storage) {
            Ok(storage) => storage.tuples.into_iter(),
            Err(shared) => shared.tuples.clone().into_iter(),
        }
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, t) in self.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn opq() -> Relation {
        // OrderProductQuantity from Figure 1.
        Relation::from_tuples([
            tuple!["O1", "P1", 2],
            tuple!["O1", "P2", 1],
            tuple!["O2", "P1", 1],
            tuple!["O3", "P3", 4],
        ])
    }

    #[test]
    fn set_semantics_dedup() {
        let mut r = Relation::new();
        assert!(r.insert(tuple![1, 2]));
        assert!(!r.insert(tuple![1, 2]));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn true_false_encoding() {
        assert!(Relation::true_rel().is_true());
        assert!(!Relation::false_rel().is_true());
        assert!(Relation::false_rel().is_empty());
        assert_eq!(Relation::true_rel().len(), 1);
        assert_eq!(Relation::true_rel().to_string(), "{()}");
    }

    #[test]
    fn partial_apply_paper_example() {
        // OrderProductQuantity["O1"] = {("P1",2); ("P2",1)}  (§4.3)
        let r = opq().partial_apply(&[Value::str("O1")]);
        assert_eq!(
            r,
            Relation::from_tuples([tuple!["P1", 2], tuple!["P2", 1]])
        );
    }

    #[test]
    fn partial_apply_full_is_boolean() {
        let r = opq().partial_apply(&[Value::str("O1"), Value::str("P1"), Value::int(2)]);
        assert!(r.is_true());
        let r = opq().partial_apply(&[Value::str("O1"), Value::str("P1"), Value::int(3)]);
        assert!(r.is_empty());
    }

    #[test]
    fn product_concats() {
        let r = Relation::from_tuples([tuple![1, 2], tuple![3, 4]]);
        let s = Relation::from_tuples([tuple![5, 6]]);
        let p = r.product(&s);
        assert_eq!(
            p,
            Relation::from_tuples([tuple![1, 2, 5, 6], tuple![3, 4, 5, 6]])
        );
    }

    #[test]
    fn product_with_true_is_identity() {
        let r = opq();
        assert_eq!(r.product(&Relation::true_rel()), r);
        assert_eq!(Relation::true_rel().product(&r), r);
        assert!(r.product(&Relation::false_rel()).is_empty());
    }

    #[test]
    fn union_minus_intersect() {
        let a = Relation::from_tuples([tuple![1], tuple![2]]);
        let b = Relation::from_tuples([tuple![2], tuple![3]]);
        assert_eq!(a.union(&b).len(), 3);
        assert_eq!(a.intersect(&b).len(), 1);
        assert_eq!(a.minus(&b), Relation::from_tuples([tuple![1]]));
    }

    #[test]
    fn mixed_arity_allowed() {
        let mut r = Relation::new();
        r.insert(tuple![1]);
        r.insert(tuple![1, 2]);
        r.insert(Tuple::empty());
        assert_eq!(r.len(), 3);
        assert_eq!(r.arities().into_iter().collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(r.uniform_arity(), None);
    }

    #[test]
    fn uniform_arity() {
        assert_eq!(opq().uniform_arity(), Some(3));
        assert_eq!(Relation::new().uniform_arity(), None);
    }

    #[test]
    fn last_column() {
        let vals = opq().last_column();
        assert_eq!(vals.len(), 4);
        assert!(vals.iter().all(|v| v.is_int()));
    }

    #[test]
    fn deterministic_order() {
        let r1 = Relation::from_tuples([tuple![2], tuple![1], tuple![3]]);
        let r2 = Relation::from_tuples([tuple![3], tuple![2], tuple![1]]);
        let v1: Vec<_> = r1.iter().cloned().collect();
        let v2: Vec<_> = r2.iter().cloned().collect();
        assert_eq!(v1, v2);
    }

    // --- copy-on-write behavior ------------------------------------------

    #[test]
    fn clone_is_shared_until_mutation() {
        let a = opq();
        let b = a.clone();
        assert!(a.shares_storage(&b));
        assert_eq!(a.generation(), b.generation());
        let mut c = b.clone();
        c.insert(tuple!["O9", "P9", 9]);
        assert!(!a.shares_storage(&c));
        assert_ne!(a.generation(), c.generation());
        // The original is untouched.
        assert_eq!(a, b);
        assert_eq!(a.len(), 4);
        assert_eq!(c.len(), 5);
    }

    #[test]
    fn noop_mutations_keep_generation() {
        let mut r = opq();
        let before = r.generation();
        let shared = r.clone();
        assert!(!r.insert(tuple!["O1", "P1", 2])); // duplicate
        assert!(!r.remove(&tuple!["nope", "nope", 0]));
        assert_eq!(r.absorb(&opq()), 0); // subset absorb
        r.retain(|_| true);
        r.extend(std::iter::empty());
        assert_eq!(r.generation(), before);
        assert!(r.shares_storage(&shared), "no-ops must not unshare");
    }

    #[test]
    fn empty_relations_share_the_static_storage() {
        let a = Relation::new();
        let b = Relation::false_rel();
        assert!(a.shares_storage(&b));
        assert_eq!(a.generation(), 0);
    }

    #[test]
    fn absorb_into_empty_is_adoption() {
        let mut a = Relation::new();
        let b = opq();
        assert_eq!(a.absorb(&b), 4);
        assert!(a.shares_storage(&b));
    }

    #[test]
    fn minus_in_place_matches_minus() {
        let a = Relation::from_tuples([tuple![1], tuple![2], tuple![3], tuple![4]]);
        let b = Relation::from_tuples([tuple![2], tuple![4], tuple![9]]);
        let expected = a.minus(&b);
        let mut c = a.clone();
        c.minus_in_place(&b);
        assert_eq!(c, expected);
        // Self-difference empties.
        let mut d = a.clone();
        d.minus_in_place(&a.clone());
        assert!(d.is_empty());
    }

    #[test]
    fn retain_filters_and_restores_empty_storage() {
        let mut r = opq();
        r.retain(|t| t.values()[0] == Value::str("O1"));
        assert_eq!(r.len(), 2);
        r.retain(|_| false);
        assert!(r.is_empty());
        assert!(r.shares_storage(&Relation::new()), "emptied → shared empty");
    }

    #[test]
    fn fingerprint_is_content_based() {
        let a = Relation::from_tuples([tuple![1], tuple![2]]);
        let mut b = Relation::new();
        b.insert(tuple![2]);
        b.insert(tuple![1]);
        assert_eq!(a.fingerprint(), b.fingerprint());
        b.insert(tuple![3]);
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn generation_equality_implies_content_equality() {
        let a = opq();
        let b = a.clone();
        assert_eq!(a.generation(), b.generation());
        assert_eq!(a, b);
        let mut c = a.clone();
        c.insert(tuple!["O4", "P4", 4]);
        c.remove(&tuple!["O4", "P4", 4]);
        // Same content again, but a fresh generation: eq still holds.
        assert_ne!(a.generation(), c.generation());
        assert_eq!(a, c);
    }

    #[test]
    fn union_adopts_empty_sides() {
        let a = opq();
        let e = Relation::new();
        assert!(a.union(&e).shares_storage(&a));
        assert!(e.union(&a).shares_storage(&a));
        assert!(a.minus(&e).shares_storage(&a));
    }
}
