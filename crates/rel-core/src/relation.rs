//! First-order relations (*Rels₁*): sets of [`Tuple`]s.
//!
//! Rel relations are pure sets (no multiplicities, no nulls) and may contain
//! tuples of *different arities* (Addendum A: "a relation … can contain
//! tuples of different arity"). A [`Relation`] is backed by a **flat sorted
//! `Vec<Tuple>`** (ascending `Tuple` order, deduplicated), so iteration —
//! and therefore all query output — is deterministic and exactly matches
//! the `BTreeSet` order of earlier revisions, while merges, bulk builds,
//! and scans run over contiguous memory instead of tree nodes.
//!
//! Boolean encoding (§4.3): `true` is `{⟨⟩}` and `false` is `{}`.
//!
//! # Physical layout
//!
//! The sorted row vector is the *canonical* representation: equality,
//! fingerprints, iteration order, and the codec byte format are all
//! defined over it. Alongside it, storage lazily caches a **typed columnar
//! projection** ([`crate::columnar::Columnar`]) for uniform-arity
//! relations: per-column `Vec<i64>` / `Vec<OrdF64>` / `Vec<EntityId>` /
//! dictionary-encoded strings, with per-column fallback to boxed values
//! for mixed columns (see the `columnar` module docs for the layout,
//! fallback rules, and the interner ordering guarantee). When the
//! process-wide `REL_COLUMNAR` switch is on, set operations between two
//! projected relations merge-walk raw primitives instead of boxed
//! `Value`s; the row path remains for mixed-arity relations and as the
//! `REL_COLUMNAR=0` opt-out, and both paths produce identical bytes.
//!
//! # Copy-on-write invariants
//!
//! Storage is shared behind an [`Arc`], so **cloning a relation is O(1)**:
//! the fixpoint engine installs Δ overlays, snapshots iterates, and seeds
//! its relation map from the database with pointer bumps instead of deep
//! copies. The invariants every mutating method maintains:
//!
//! 1. Mutation goes through `Relation::make_mut`, which `Arc::make_mut`s
//!    the storage (copying it only when shared) and stamps a **fresh
//!    generation** from a global counter. Generations are never reused, so
//!    `a.generation() == b.generation()` implies `a` and `b` hold the same
//!    tuple set — the engine's index cache keys on it for invalidation.
//! 2. A mutation that turns out to be a no-op (inserting a duplicate,
//!    retaining everything) restores the previous generation: equal content
//!    keeps its generation so caches stay warm.
//! 3. Equality and iteration are content-based; generation and sharing are
//!    invisible to semantics. [`Relation::shares_storage`] exposes sharing
//!    for tests and diagnostics only.
//! 4. The per-storage fingerprint (a commutative XOR of tuple hashes,
//!    computed lazily and cached) and the columnar projection are cleared
//!    whenever storage is rewritten; both are pure functions of the tuple
//!    set.

use crate::columnar::{columnar_enabled, ColumnStats, Columnar};
use crate::tuple::Tuple;
use crate::value::Value;
use std::collections::BTreeSet;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Monotone source of relation generations. Generation 0 is reserved for
/// the shared empty relation.
static NEXT_GENERATION: AtomicU64 = AtomicU64::new(1);

fn fresh_generation() -> u64 {
    NEXT_GENERATION.fetch_add(1, Ordering::Relaxed)
}

/// Shared storage: the sorted, deduplicated tuple vector plus two lazily
/// computed derived views — the content fingerprint (order-independent
/// XOR of per-tuple hashes) and the typed columnar projection.
#[derive(Debug, Default)]
struct Storage {
    tuples: Vec<Tuple>,
    fingerprint: OnceLock<u64>,
    columnar: OnceLock<Option<Arc<Columnar>>>,
}

impl Storage {
    fn new(tuples: Vec<Tuple>) -> Self {
        debug_assert!(tuples.windows(2).all(|w| w[0] < w[1]), "rows must be sorted + distinct");
        Storage { tuples, fingerprint: OnceLock::new(), columnar: OnceLock::new() }
    }
}

impl Clone for Storage {
    fn clone(&self) -> Self {
        // Cloned for mutation (`Arc::make_mut`): drop the derived views,
        // the copy is about to change.
        Storage {
            tuples: self.tuples.clone(),
            fingerprint: OnceLock::new(),
            columnar: OnceLock::new(),
        }
    }
}

/// A set of first-order tuples with O(1) copy-on-write cloning.
#[derive(Clone, Debug)]
pub struct Relation {
    storage: Arc<Storage>,
    generation: u64,
}

impl Default for Relation {
    fn default() -> Self {
        static EMPTY: OnceLock<Arc<Storage>> = OnceLock::new();
        Relation {
            storage: Arc::clone(EMPTY.get_or_init(|| Arc::new(Storage::default()))),
            generation: 0,
        }
    }
}

impl PartialEq for Relation {
    fn eq(&self, other: &Self) -> bool {
        if Arc::ptr_eq(&self.storage, &other.storage) || self.generation == other.generation {
            return true;
        }
        if self.len() != other.len() {
            return false;
        }
        if let (Some(a), Some(b)) =
            (self.storage.fingerprint.get(), other.storage.fingerprint.get())
        {
            if a != b {
                return false;
            }
        }
        self.storage.tuples == other.storage.tuples
    }
}

impl Eq for Relation {}

impl Relation {
    /// The empty relation `{}` — the encoding of `false`.
    pub fn new() -> Self {
        Relation::default()
    }

    /// The empty relation `{}` (alias of [`Relation::new`]).
    pub fn false_rel() -> Self {
        Relation::new()
    }

    /// The relation `{⟨⟩}` containing just the empty tuple — `true`.
    pub fn true_rel() -> Self {
        let mut r = Relation::new();
        r.insert(Tuple::empty());
        r
    }

    /// Build from an iterator of tuples.
    pub fn from_tuples(tuples: impl IntoIterator<Item = Tuple>) -> Self {
        let mut rows: Vec<Tuple> = tuples.into_iter().collect();
        rows.sort_unstable();
        rows.dedup();
        Relation::from_sorted(rows)
    }

    /// Build a unary relation from values.
    pub fn from_values(values: impl IntoIterator<Item = Value>) -> Self {
        Relation::from_tuples(values.into_iter().map(|v| Tuple::from(vec![v])))
    }

    /// A relation holding a single tuple.
    pub fn singleton(t: Tuple) -> Self {
        Relation::from_tuples([t])
    }

    /// Adopt an already sorted, duplicate-free row vector (the fast path
    /// every merge kernel lands on — no re-sort, no tree build).
    fn from_sorted(tuples: Vec<Tuple>) -> Self {
        if tuples.is_empty() {
            return Relation::default();
        }
        Relation { storage: Arc::new(Storage::new(tuples)), generation: fresh_generation() }
    }

    /// Mutable storage access: copies the rows when shared, stamps a
    /// fresh generation, and drops the derived views. Callers that detect
    /// a no-op mutation should restore the prior generation (invariant 2
    /// of the module docs).
    fn make_mut(&mut self) -> &mut Storage {
        self.generation = fresh_generation();
        let storage = Arc::make_mut(&mut self.storage);
        storage.fingerprint = OnceLock::new();
        storage.columnar = OnceLock::new();
        storage
    }

    /// The content generation: changes exactly when the tuple set does.
    /// Two relations with equal generations hold equal tuple sets (the
    /// converse does not hold). Used by the engine's index cache.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Do two relations share the same backing storage (i.e. was one
    /// cloned from the other with no intervening mutation)? Test/diagnostic
    /// introspection of the copy-on-write representation.
    pub fn shares_storage(&self, other: &Relation) -> bool {
        Arc::ptr_eq(&self.storage, &other.storage)
    }

    /// Order-independent content fingerprint (XOR of per-tuple hashes),
    /// computed lazily and cached on the shared storage. Equal relations
    /// have equal fingerprints; the converse can fail (hash collision), so
    /// callers use it only as an inequality fast path.
    pub fn fingerprint(&self) -> u64 {
        *self.storage.fingerprint.get_or_init(|| {
            let mut acc = 0u64;
            for t in &self.storage.tuples {
                let mut h = std::collections::hash_map::DefaultHasher::new();
                t.hash(&mut h);
                acc ^= h.finish();
            }
            acc
        })
    }

    /// The typed columnar projection of this relation, built lazily and
    /// cached on the shared storage. `None` when the process-wide
    /// columnar switch is off, the relation is empty / of mixed arity, or
    /// all tuples are nullary (see [`crate::columnar`] for the rules).
    pub fn columnar(&self) -> Option<&Arc<Columnar>> {
        if !columnar_enabled() {
            return None;
        }
        self.storage
            .columnar
            .get_or_init(|| Columnar::build(&self.storage.tuples).map(Arc::new))
            .as_ref()
    }

    /// The cached columnar projection if one was already built for this
    /// storage — never triggers a build. The merge kernels go through
    /// this so a one-shot `union`/`minus` doesn't charge a full
    /// projection build to inputs that never needed one (the build costs
    /// more than the boxed-row walk it would replace); consumers that
    /// genuinely want columns ([`Relation::column_stats`], the engine's
    /// sorted tries) call [`Relation::columnar`] and pay for the build
    /// once per relation state.
    fn peek_columnar(&self) -> Option<&Arc<Columnar>> {
        if !columnar_enabled() {
            return None;
        }
        self.storage.columnar.get()?.as_ref()
    }

    /// Per-column statistics (distinct count, min, max) from the columnar
    /// projection, `None` whenever [`Relation::columnar`] is. Computed
    /// once per relation state and cached on the shared storage — cheap
    /// to re-read, and the input the WCOJ planner's cardinality-based
    /// variable ordering consumes.
    pub fn column_stats(&self) -> Option<Arc<Vec<ColumnStats>>> {
        self.columnar().map(|c| Arc::clone(c.stats()))
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.storage.tuples.len()
    }

    /// Is the relation empty (i.e. `false`)?
    pub fn is_empty(&self) -> bool {
        self.storage.tuples.is_empty()
    }

    /// Is this the `true` relation `{⟨⟩}` (or does it at least contain `⟨⟩`)?
    pub fn is_true(&self) -> bool {
        // The empty tuple is the minimum of the tuple order.
        self.storage.tuples.first().is_some_and(|t| t.is_empty())
    }

    /// Insert a tuple; returns `true` if it was new (set semantics).
    pub fn insert(&mut self, t: Tuple) -> bool {
        match self.storage.tuples.binary_search(&t) {
            Ok(_) => false,
            Err(idx) => {
                self.make_mut().tuples.insert(idx, t);
                true
            }
        }
    }

    /// Remove a tuple; returns `true` if it was present.
    pub fn remove(&mut self, t: &Tuple) -> bool {
        match self.storage.tuples.binary_search(t) {
            Err(_) => false,
            Ok(idx) => {
                self.make_mut().tuples.remove(idx);
                if self.is_empty() {
                    *self = Relation::new();
                }
                true
            }
        }
    }

    /// Membership test (full application `R(a, …)`).
    pub fn contains(&self, t: &Tuple) -> bool {
        self.storage.tuples.binary_search(t).is_ok()
    }

    /// Iterate tuples in sorted order.
    pub fn iter(&self) -> std::slice::Iter<'_, Tuple> {
        self.storage.tuples.iter()
    }

    /// The sorted rows as a contiguous slice — the canonical layout.
    /// Index-aligned with [`Relation::columnar`] when that projection
    /// exists; the engine's hash indexes store positions into this slice
    /// instead of cloned tuples.
    pub fn as_slice(&self) -> &[Tuple] {
        &self.storage.tuples
    }

    /// Convert every row to a host type via [`crate::convert::FromRow`],
    /// in sorted tuple
    /// order (see [`crate::convert`]):
    ///
    /// ```
    /// # use rel_core::{tuple, Relation};
    /// let out = Relation::from_tuples([tuple!["P4", 40]]);
    /// let rows: Vec<(String, i64)> = out.rows().unwrap();
    /// assert_eq!(rows, vec![("P4".to_string(), 40)]);
    /// ```
    pub fn rows<T: crate::convert::FromRow>(&self) -> crate::RelResult<Vec<T>> {
        self.iter().map(T::from_row).collect()
    }

    /// Convert the single row of a singleton relation (e.g. an aggregate
    /// result); a [`crate::RelError::Type`] if the relation does not hold
    /// exactly one tuple.
    pub fn single<T: crate::convert::FromRow>(&self) -> crate::RelResult<T> {
        match self.single_opt()? {
            Some(v) => Ok(v),
            None => Err(crate::RelError::type_err(
                "expected exactly one row, relation is empty",
            )),
        }
    }

    /// Like [`Relation::single`], but an empty relation reads as `None`
    /// (the relational encoding of a missing value).
    pub fn single_opt<T: crate::convert::FromRow>(&self) -> crate::RelResult<Option<T>> {
        let mut it = self.iter();
        let Some(first) = it.next() else { return Ok(None) };
        if it.next().is_some() {
            return Err(crate::RelError::type_err(format!(
                "expected at most one row, relation has {}",
                self.len()
            )));
        }
        T::from_row(first).map(Some)
    }

    /// The set of distinct arities present.
    pub fn arities(&self) -> BTreeSet<usize> {
        self.iter().map(|t| t.arity()).collect()
    }

    /// If all tuples share one arity, return it; an empty relation reports
    /// `Some(0)`? No — it reports `None` (no tuples, no arity evidence).
    pub fn uniform_arity(&self) -> Option<usize> {
        let mut it = self.iter();
        let first = it.next()?.arity();
        it.all(|t| t.arity() == first).then_some(first)
    }

    /// Partial application `R[prefix…]` (§4.3): all suffixes of tuples that
    /// start with `prefix`. `R["O1"]` over `OrderProductQuantity` yields
    /// `{⟨"P1",2⟩, ⟨"P2",1⟩}`.
    pub fn partial_apply(&self, prefix: &[Value]) -> Relation {
        // Tuples starting with `prefix` form one contiguous run of the
        // sorted rows (any tuple ordered between two prefix-matching
        // tuples shares the prefix), so a binary search for the run start
        // plus an early-exit scan covers it in O(log n + matches). Their
        // suffixes inherit the sorted order, so no re-sort is needed.
        let start = self
            .storage
            .tuples
            .partition_point(|t| t.values() < prefix);
        let mut out = Vec::new();
        for t in &self.storage.tuples[start..] {
            if !t.starts_with(prefix) {
                break;
            }
            out.push(t.suffix(prefix.len()));
        }
        Relation::from_sorted(out)
    }

    /// Set union (the `{A; B}` / `or` operator): O(1) when either side is
    /// empty or a subset relationship is discovered, merge-walk over both
    /// sorted row vectors otherwise — raw typed columns when both sides
    /// carry a columnar projection, boxed rows as fallback.
    pub fn union(&self, other: &Relation) -> Relation {
        if self.shares_storage(other) || other.is_empty() {
            return self.clone();
        }
        if self.is_empty() {
            return other.clone();
        }
        let merged = match merge_columnar(self, other, true, true) {
            Some(rows) => rows,
            None => MergeWalk::new(self.iter(), other.iter())
                .map(|side| match side {
                    Side::Left(t) | Side::Right(t) | Side::Both(t) => t.clone(),
                })
                .collect(),
        };
        // Subset outcomes adopt the superset's storage (and generation),
        // keeping downstream caches warm.
        if merged.len() == self.len() {
            return self.clone();
        }
        if merged.len() == other.len() {
            return other.clone();
        }
        Relation::from_sorted(merged)
    }

    /// Set intersection (`and` on formulas, `Select` on conditions):
    /// merge-walk over both sorted row vectors (typed columns when
    /// available).
    pub fn intersect(&self, other: &Relation) -> Relation {
        if self.shares_storage(other) {
            return self.clone();
        }
        if self.is_empty() || other.is_empty() {
            return Relation::new();
        }
        let merged = match merge_columnar(self, other, false, false) {
            Some(rows) => rows,
            None => MergeWalk::new(self.iter(), other.iter())
                .filter_map(|side| match side {
                    Side::Both(t) => Some(t.clone()),
                    _ => None,
                })
                .collect(),
        };
        if merged.len() == self.len() {
            return self.clone();
        }
        if merged.len() == other.len() {
            return other.clone();
        }
        Relation::from_sorted(merged)
    }

    /// Set difference (`Minus`): merge-walk over both sorted row vectors
    /// (typed columns when available), O(1) when the subtrahend is empty
    /// or disjoint.
    pub fn minus(&self, other: &Relation) -> Relation {
        if self.shares_storage(other) {
            return Relation::new();
        }
        if other.is_empty() || self.is_empty() {
            return self.clone();
        }
        let merged = match merge_columnar(self, other, true, false) {
            Some(rows) => rows,
            None => MergeWalk::new(self.iter(), other.iter())
                .filter_map(|side| match side {
                    Side::Left(t) => Some(t.clone()),
                    _ => None,
                })
                .collect(),
        };
        if merged.len() == self.len() {
            // Nothing removed: keep storage and generation.
            return self.clone();
        }
        Relation::from_sorted(merged)
    }

    /// Remove, in place, every tuple of `other` that is present in
    /// `self` — the in-place companion of [`Relation::minus`] for callers
    /// that own the left side.
    pub fn minus_in_place(&mut self, other: &Relation) {
        if self.is_empty() || other.is_empty() {
            return;
        }
        if self.shares_storage(other) {
            *self = Relation::new();
            return;
        }
        if self.len() * 16 < other.len() {
            // self is tiny next to other: per-tuple binary-search probes
            // beat walking the whole subtrahend.
            self.retain(|t| !other.contains(t));
        } else {
            // One linear merge-walk; `minus` keeps storage and generation
            // when nothing is removed.
            *self = self.minus(other);
        }
    }

    /// Keep only the tuples satisfying the predicate; a no-op (everything
    /// retained) keeps storage shared and the generation stable. The
    /// predicate may be called more than once per tuple when storage is
    /// shared (a pre-scan avoids unsharing on no-ops).
    pub fn retain(&mut self, mut keep: impl FnMut(&Tuple) -> bool) {
        if self.is_empty() {
            return;
        }
        if Arc::strong_count(&self.storage) > 1 && self.iter().all(&mut keep) {
            return; // no-op: stay shared
        }
        let prev = self.generation;
        let storage = self.make_mut();
        let before = storage.tuples.len();
        storage.tuples.retain(|t| keep(t));
        if storage.tuples.len() == before {
            self.generation = prev;
        }
        if self.is_empty() {
            *self = Relation::new();
        }
    }

    /// Cartesian product `(A, B)` — pairwise tuple concatenation.
    pub fn product(&self, other: &Relation) -> Relation {
        let mut out = Vec::with_capacity(self.len() * other.len());
        for a in self.iter() {
            for b in other.iter() {
                out.push(a.concat(b));
            }
        }
        Relation::from_tuples(out)
    }

    /// Extend with tuples from an iterator.
    pub fn extend(&mut self, tuples: impl IntoIterator<Item = Tuple>) {
        let mut new: Vec<Tuple> = tuples
            .into_iter()
            .filter(|t| !self.contains(t))
            .collect();
        if new.is_empty() {
            return;
        }
        new.sort_unstable();
        new.dedup();
        let storage = self.make_mut();
        merge_append(&mut storage.tuples, new);
    }

    /// Union in place; returns the number of newly inserted tuples.
    /// O(1) when `self` is empty (adopts the other side's storage); a
    /// merge-walk rebuild when both sides are of comparable size; a
    /// backward in-place merge when `other` is small.
    pub fn absorb(&mut self, other: &Relation) -> usize {
        if other.is_empty() || self.shares_storage(other) {
            return 0;
        }
        if self.is_empty() {
            let added = other.len();
            *self = other.clone();
            return added;
        }
        let before = self.len();
        if other.len() * 4 >= self.len() {
            // Comparable sizes: one linear merge beats per-element inserts.
            let merged = self.union(other);
            let added = merged.len() - before;
            if added > 0 {
                *self = merged;
            }
            added
        } else {
            let new: Vec<Tuple> = other
                .iter()
                .filter(|t| !self.contains(t))
                .cloned()
                .collect();
            if new.is_empty() {
                return 0;
            }
            let added = new.len();
            let storage = self.make_mut();
            merge_append(&mut storage.tuples, new);
            debug_assert_eq!(self.len(), before + added);
            added
        }
    }

    /// Drain all tuples into a sorted `Vec`.
    pub fn into_tuples(self) -> Vec<Tuple> {
        match Arc::try_unwrap(self.storage) {
            Ok(storage) => storage.tuples,
            Err(shared) => shared.tuples.clone(),
        }
    }

    /// Last-column values (the "value" column of a GNF key→value relation),
    /// in relation order. Used by `reduce` (§5.2).
    pub fn last_column(&self) -> Vec<Value> {
        self.iter()
            .filter(|t| !t.is_empty())
            .map(|t| t.values()[t.arity() - 1].clone())
            .collect()
    }
}

/// Merge a sorted, distinct batch `new` (disjoint from `rows`) into the
/// sorted vector `rows`, in place, by a single backward two-pointer pass —
/// O(|rows| + |new|) moves, no re-sort.
fn merge_append(rows: &mut Vec<Tuple>, new: Vec<Tuple>) {
    debug_assert!(new.windows(2).all(|w| w[0] < w[1]));
    if new.is_empty() {
        return;
    }
    if rows.last() < new.first() {
        rows.extend(new);
        return;
    }
    let old_len = rows.len();
    let mut merged = Vec::with_capacity(old_len + new.len());
    let mut it_old = std::mem::take(rows).into_iter().peekable();
    let mut it_new = new.into_iter().peekable();
    loop {
        match (it_old.peek(), it_new.peek()) {
            (Some(a), Some(b)) => {
                if a < b {
                    merged.push(it_old.next().expect("peeked"));
                } else {
                    merged.push(it_new.next().expect("peeked"));
                }
            }
            (Some(_), None) => merged.push(it_old.next().expect("peeked")),
            (None, Some(_)) => merged.push(it_new.next().expect("peeked")),
            (None, None) => break,
        }
    }
    *rows = merged;
}

/// Columnar merge kernel behind `union`/`intersect`/`minus`: when both
/// sides *already* carry a typed projection, walk row indices comparing
/// raw typed cells ([`Columnar::cmp_rows`]) instead of boxed `Value`s.
/// `None` when either side lacks a built projection (mixed arity, empty,
/// never columnar-scanned, or the switch is off) — callers fall back to
/// the boxed-row merge-walk. Projections are deliberately not forced
/// here: building one is strictly more work than the row walk, so the
/// typed path only pays off when the inputs were already columnar-hot.
fn merge_columnar(
    a: &Relation,
    b: &Relation,
    keep_left: bool,
    keep_right: bool,
) -> Option<Vec<Tuple>> {
    let ca = Arc::clone(a.peek_columnar()?);
    let cb = Arc::clone(b.peek_columnar()?);
    let (ra, rb) = (a.as_slice(), b.as_slice());
    // Union (T,T) and intersect (F,F) keep matches; minus (T,F) drops them.
    let keep_both = !keep_left || keep_right;
    let mut out = Vec::with_capacity(if keep_left && keep_right {
        ra.len().max(rb.len())
    } else {
        ra.len().min(rb.len())
    });
    let (mut i, mut j) = (0usize, 0usize);
    while i < ra.len() && j < rb.len() {
        match ca.cmp_rows(i, &cb, j) {
            std::cmp::Ordering::Less => {
                if keep_left {
                    out.push(ra[i].clone());
                }
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                if keep_right {
                    out.push(rb[j].clone());
                }
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                if keep_both {
                    out.push(ra[i].clone());
                }
                i += 1;
                j += 1;
            }
        }
    }
    if keep_left {
        out.extend_from_slice(&ra[i..]);
    }
    if keep_right {
        out.extend_from_slice(&rb[j..]);
    }
    Some(out)
}

/// One step of a sorted merge-walk over two tuple iterators.
enum Side<'a> {
    Left(&'a Tuple),
    Right(&'a Tuple),
    Both(&'a Tuple),
}

/// Sorted merge of two ascending tuple streams, classifying each element
/// by which side(s) it occurs on. Drives the boxed-row fallback of
/// `union`/`intersect`/`minus` without re-traversing either side per
/// element.
struct MergeWalk<L: Iterator, R: Iterator> {
    left: std::iter::Peekable<L>,
    right: std::iter::Peekable<R>,
}

impl<'a, L, R> MergeWalk<L, R>
where
    L: Iterator<Item = &'a Tuple>,
    R: Iterator<Item = &'a Tuple>,
{
    fn new(left: L, right: R) -> Self {
        MergeWalk { left: left.peekable(), right: right.peekable() }
    }
}

impl<'a, L, R> Iterator for MergeWalk<L, R>
where
    L: Iterator<Item = &'a Tuple>,
    R: Iterator<Item = &'a Tuple>,
{
    type Item = Side<'a>;

    fn next(&mut self) -> Option<Side<'a>> {
        match (self.left.peek(), self.right.peek()) {
            (Some(l), Some(r)) => match l.cmp(r) {
                std::cmp::Ordering::Less => Some(Side::Left(self.left.next().expect("peeked"))),
                std::cmp::Ordering::Greater => {
                    Some(Side::Right(self.right.next().expect("peeked")))
                }
                std::cmp::Ordering::Equal => {
                    self.right.next();
                    Some(Side::Both(self.left.next().expect("peeked")))
                }
            },
            (Some(_), None) => Some(Side::Left(self.left.next().expect("peeked"))),
            (None, Some(_)) => Some(Side::Right(self.right.next().expect("peeked"))),
            (None, None) => None,
        }
    }
}

impl FromIterator<Tuple> for Relation {
    fn from_iter<I: IntoIterator<Item = Tuple>>(iter: I) -> Self {
        Relation::from_tuples(iter)
    }
}

impl<'a> IntoIterator for &'a Relation {
    type Item = &'a Tuple;
    type IntoIter = std::slice::Iter<'a, Tuple>;
    fn into_iter(self) -> Self::IntoIter {
        self.storage.tuples.iter()
    }
}

impl IntoIterator for Relation {
    type Item = Tuple;
    type IntoIter = std::vec::IntoIter<Tuple>;
    fn into_iter(self) -> Self::IntoIter {
        self.into_tuples().into_iter()
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, t) in self.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn opq() -> Relation {
        // OrderProductQuantity from Figure 1.
        Relation::from_tuples([
            tuple!["O1", "P1", 2],
            tuple!["O1", "P2", 1],
            tuple!["O2", "P1", 1],
            tuple!["O3", "P3", 4],
        ])
    }

    #[test]
    fn set_semantics_dedup() {
        let mut r = Relation::new();
        assert!(r.insert(tuple![1, 2]));
        assert!(!r.insert(tuple![1, 2]));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn true_false_encoding() {
        assert!(Relation::true_rel().is_true());
        assert!(!Relation::false_rel().is_true());
        assert!(Relation::false_rel().is_empty());
        assert_eq!(Relation::true_rel().len(), 1);
        assert_eq!(Relation::true_rel().to_string(), "{()}");
    }

    #[test]
    fn partial_apply_paper_example() {
        // OrderProductQuantity["O1"] = {("P1",2); ("P2",1)}  (§4.3)
        let r = opq().partial_apply(&[Value::str("O1")]);
        assert_eq!(
            r,
            Relation::from_tuples([tuple!["P1", 2], tuple!["P2", 1]])
        );
    }

    #[test]
    fn partial_apply_full_is_boolean() {
        let r = opq().partial_apply(&[Value::str("O1"), Value::str("P1"), Value::int(2)]);
        assert!(r.is_true());
        let r = opq().partial_apply(&[Value::str("O1"), Value::str("P1"), Value::int(3)]);
        assert!(r.is_empty());
    }

    #[test]
    fn product_concats() {
        let r = Relation::from_tuples([tuple![1, 2], tuple![3, 4]]);
        let s = Relation::from_tuples([tuple![5, 6]]);
        let p = r.product(&s);
        assert_eq!(
            p,
            Relation::from_tuples([tuple![1, 2, 5, 6], tuple![3, 4, 5, 6]])
        );
    }

    #[test]
    fn product_with_true_is_identity() {
        let r = opq();
        assert_eq!(r.product(&Relation::true_rel()), r);
        assert_eq!(Relation::true_rel().product(&r), r);
        assert!(r.product(&Relation::false_rel()).is_empty());
    }

    #[test]
    fn union_minus_intersect() {
        let a = Relation::from_tuples([tuple![1], tuple![2]]);
        let b = Relation::from_tuples([tuple![2], tuple![3]]);
        assert_eq!(a.union(&b).len(), 3);
        assert_eq!(a.intersect(&b).len(), 1);
        assert_eq!(a.minus(&b), Relation::from_tuples([tuple![1]]));
    }

    #[test]
    fn mixed_arity_allowed() {
        let mut r = Relation::new();
        r.insert(tuple![1]);
        r.insert(tuple![1, 2]);
        r.insert(Tuple::empty());
        assert_eq!(r.len(), 3);
        assert_eq!(r.arities().into_iter().collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(r.uniform_arity(), None);
        assert!(r.columnar().is_none(), "mixed arity has no columnar projection");
    }

    #[test]
    fn uniform_arity() {
        assert_eq!(opq().uniform_arity(), Some(3));
        assert_eq!(Relation::new().uniform_arity(), None);
    }

    #[test]
    fn last_column() {
        let vals = opq().last_column();
        assert_eq!(vals.len(), 4);
        assert!(vals.iter().all(|v| v.is_int()));
    }

    #[test]
    fn deterministic_order() {
        let r1 = Relation::from_tuples([tuple![2], tuple![1], tuple![3]]);
        let r2 = Relation::from_tuples([tuple![3], tuple![2], tuple![1]]);
        let v1: Vec<_> = r1.iter().cloned().collect();
        let v2: Vec<_> = r2.iter().cloned().collect();
        assert_eq!(v1, v2);
    }

    // --- copy-on-write behavior ------------------------------------------

    #[test]
    fn clone_is_shared_until_mutation() {
        let a = opq();
        let b = a.clone();
        assert!(a.shares_storage(&b));
        assert_eq!(a.generation(), b.generation());
        let mut c = b.clone();
        c.insert(tuple!["O9", "P9", 9]);
        assert!(!a.shares_storage(&c));
        assert_ne!(a.generation(), c.generation());
        // The original is untouched.
        assert_eq!(a, b);
        assert_eq!(a.len(), 4);
        assert_eq!(c.len(), 5);
    }

    #[test]
    fn noop_mutations_keep_generation() {
        let mut r = opq();
        let before = r.generation();
        let shared = r.clone();
        assert!(!r.insert(tuple!["O1", "P1", 2])); // duplicate
        assert!(!r.remove(&tuple!["nope", "nope", 0]));
        assert_eq!(r.absorb(&opq()), 0); // subset absorb
        r.retain(|_| true);
        r.extend(std::iter::empty());
        r.minus_in_place(&Relation::from_tuples([tuple!["zz", "zz", 0]]));
        assert_eq!(r.generation(), before);
        assert!(r.shares_storage(&shared), "no-ops must not unshare");
    }

    #[test]
    fn empty_relations_share_the_static_storage() {
        let a = Relation::new();
        let b = Relation::false_rel();
        assert!(a.shares_storage(&b));
        assert_eq!(a.generation(), 0);
    }

    #[test]
    fn absorb_into_empty_is_adoption() {
        let mut a = Relation::new();
        let b = opq();
        assert_eq!(a.absorb(&b), 4);
        assert!(a.shares_storage(&b));
    }

    #[test]
    fn minus_in_place_matches_minus() {
        let a = Relation::from_tuples([tuple![1], tuple![2], tuple![3], tuple![4]]);
        let b = Relation::from_tuples([tuple![2], tuple![4], tuple![9]]);
        let expected = a.minus(&b);
        let mut c = a.clone();
        c.minus_in_place(&b);
        assert_eq!(c, expected);
        // Self-difference empties.
        let mut d = a.clone();
        d.minus_in_place(&a.clone());
        assert!(d.is_empty());
    }

    #[test]
    fn retain_filters_and_restores_empty_storage() {
        let mut r = opq();
        r.retain(|t| t.values()[0] == Value::str("O1"));
        assert_eq!(r.len(), 2);
        r.retain(|_| false);
        assert!(r.is_empty());
        assert!(r.shares_storage(&Relation::new()), "emptied → shared empty");
    }

    #[test]
    fn fingerprint_is_content_based() {
        let a = Relation::from_tuples([tuple![1], tuple![2]]);
        let mut b = Relation::new();
        b.insert(tuple![2]);
        b.insert(tuple![1]);
        assert_eq!(a.fingerprint(), b.fingerprint());
        b.insert(tuple![3]);
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn generation_equality_implies_content_equality() {
        let a = opq();
        let b = a.clone();
        assert_eq!(a.generation(), b.generation());
        assert_eq!(a, b);
        let mut c = a.clone();
        c.insert(tuple!["O4", "P4", 4]);
        c.remove(&tuple!["O4", "P4", 4]);
        // Same content again, but a fresh generation: eq still holds.
        assert_ne!(a.generation(), c.generation());
        assert_eq!(a, c);
    }

    #[test]
    fn union_adopts_empty_sides() {
        let a = opq();
        let e = Relation::new();
        assert!(a.union(&e).shares_storage(&a));
        assert!(e.union(&a).shares_storage(&a));
        assert!(a.minus(&e).shares_storage(&a));
    }

    #[test]
    fn union_adopts_subset_sides() {
        let a = opq();
        let sub = Relation::from_tuples([tuple!["O1", "P1", 2]]);
        assert!(a.union(&sub).shares_storage(&a));
        assert!(sub.union(&a).shares_storage(&a));
        assert!(a.minus(&Relation::from_tuples([tuple!["zz", "zz", 0]])).shares_storage(&a));
    }

    // --- columnar projection ---------------------------------------------

    #[test]
    fn columnar_projection_matches_rows() {
        let r = opq();
        let Some(c) = r.columnar() else {
            // Switch forced off in this process: nothing to check.
            assert!(!crate::columnar::columnar_enabled());
            return;
        };
        assert_eq!(c.len(), r.len());
        assert_eq!(c.arity(), 3);
        for (i, t) in r.iter().enumerate() {
            for (col, v) in t.values().iter().enumerate() {
                assert_eq!(&c.cols()[col].value(i), v);
            }
        }
    }

    #[test]
    fn columnar_is_dropped_on_mutation() {
        let mut r = opq();
        let _ = r.columnar();
        r.insert(tuple!["O9", "P9", 9]);
        if let Some(c) = r.columnar() {
            assert_eq!(c.len(), 5, "projection must track the mutated rows");
        }
    }

    #[test]
    fn column_stats_surface() {
        let r = opq();
        let Some(stats) = r.column_stats() else {
            assert!(!crate::columnar::columnar_enabled());
            return;
        };
        assert_eq!(stats.len(), 3);
        assert_eq!(stats[0].distinct, 3); // O1, O2, O3
        assert_eq!(stats[1].distinct, 3); // P1, P2, P3
        assert_eq!(stats[2].distinct, 3); // 1, 2, 4
        assert_eq!(stats[2].min, Value::int(1));
        assert_eq!(stats[2].max, Value::int(4));
        assert!(Relation::new().column_stats().is_none());
    }

    #[test]
    fn set_ops_agree_across_layouts() {
        use crate::columnar::{columnar_enabled, set_columnar_enabled};
        let a = Relation::from_tuples((0..50).map(|i| tuple![i, i % 7])); // Int columns
        let b = Relation::from_tuples((25..75).map(|i| tuple![i, i % 7]));
        let prev = columnar_enabled();
        set_columnar_enabled(true);
        let (u1, i1, m1) = (a.union(&b), a.intersect(&b), a.minus(&b));
        set_columnar_enabled(false);
        let (u2, i2, m2) = (a.union(&b), a.intersect(&b), a.minus(&b));
        set_columnar_enabled(prev);
        assert_eq!(u1, u2);
        assert_eq!(i1, i2);
        assert_eq!(m1, m2);
        assert_eq!(u1.len(), 75);
    }
}
