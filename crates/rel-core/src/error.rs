//! Error types shared across the rel-rs workspace.

use std::fmt;

/// Result alias used throughout rel-rs.
pub type RelResult<T> = Result<T, RelError>;

/// Any error produced while compiling or running a Rel program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RelError {
    /// Lexical error: unexpected character, unterminated string, …
    Lex { line: u32, col: u32, msg: String },
    /// Syntax error with source position.
    Parse { line: u32, col: u32, msg: String },
    /// Name-resolution / arity error.
    Resolve(String),
    /// Safety violation: an expression could denote an infinite relation
    /// (§3.1–3.2 of the paper).
    Unsafe(String),
    /// Stratification / recursion error.
    Stratify(String),
    /// Type error during evaluation (e.g. adding a string to an integer).
    Type(String),
    /// Arithmetic error (overflow, division by zero).
    Arithmetic(String),
    /// Integrity-constraint violation: aborts the transaction (§3.5).
    ConstraintViolation {
        /// Name of the violated `ic`.
        name: String,
        /// Witness tuples (the populated violation relation), rendered.
        witnesses: String,
    },
    /// Graph-normal-form violation (§2).
    Gnf(String),
    /// Fixpoint iteration exceeded the configured cap without converging.
    Divergent { relation: String, iterations: usize },
    /// `reduce` applied to a non-functional or empty operand (§5.2).
    Reduce(String),
    /// I/O failure in the durability layer (WAL append, snapshot write,
    /// recovery read). Boxed: compiler recursion carries `RelResult`
    /// through deep call chains, so the rare durability variants must
    /// not widen the enum for everyone.
    Io(Box<IoError>),
    /// A durable store file failed validation at a precise offset:
    /// mid-log CRC mismatch, invalid framing, or a sequence-number gap.
    /// (A torn/truncated/corrupt *final* WAL record is **not** this
    /// error — it is treated as a clean crash point and recovered past;
    /// see the `rel-engine` recovery module.) Boxed for the same reason
    /// as [`RelError::Io`].
    Corrupt(Box<CorruptError>),
    /// Ambiguous first-/second-order application requiring `?`/`&`
    /// disambiguation (Addendum A).
    AmbiguousApplication(String),
    /// Anything else.
    Internal(String),
}

/// Payload of [`RelError::Io`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IoError {
    /// File or directory the operation targeted.
    pub path: String,
    /// What the engine was doing (e.g. "appending WAL record").
    pub context: String,
    /// The underlying OS error, rendered as a string so `RelError`
    /// stays `Clone + PartialEq + Eq`.
    pub source: String,
}

/// Payload of [`RelError::Corrupt`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CorruptError {
    /// File that failed validation.
    pub path: String,
    /// Byte offset within that file where validation failed.
    pub offset: u64,
    /// What was wrong at that offset.
    pub msg: String,
}

impl RelError {
    /// Shorthand constructor for resolution errors.
    pub fn resolve(msg: impl Into<String>) -> Self {
        RelError::Resolve(msg.into())
    }
    /// Shorthand constructor for safety errors.
    pub fn unsafe_expr(msg: impl Into<String>) -> Self {
        RelError::Unsafe(msg.into())
    }
    /// Shorthand constructor for type errors.
    pub fn type_err(msg: impl Into<String>) -> Self {
        RelError::Type(msg.into())
    }
    /// Shorthand constructor for internal errors.
    pub fn internal(msg: impl Into<String>) -> Self {
        RelError::Internal(msg.into())
    }
    /// Shorthand constructor for durability I/O errors.
    pub fn io(
        path: impl Into<String>,
        context: impl Into<String>,
        source: &std::io::Error,
    ) -> Self {
        RelError::Io(Box::new(IoError {
            path: path.into(),
            context: context.into(),
            source: source.to_string(),
        }))
    }
    /// Shorthand constructor for durable-store corruption errors.
    pub fn corrupt(path: impl Into<String>, offset: u64, msg: impl Into<String>) -> Self {
        RelError::Corrupt(Box::new(CorruptError {
            path: path.into(),
            offset,
            msg: msg.into(),
        }))
    }
}

impl fmt::Display for RelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelError::Lex { line, col, msg } => {
                write!(f, "lex error at {line}:{col}: {msg}")
            }
            RelError::Parse { line, col, msg } => {
                write!(f, "parse error at {line}:{col}: {msg}")
            }
            RelError::Resolve(m) => write!(f, "resolution error: {m}"),
            RelError::Unsafe(m) => write!(f, "safety error: {m}"),
            RelError::Stratify(m) => write!(f, "stratification error: {m}"),
            RelError::Type(m) => write!(f, "type error: {m}"),
            RelError::Arithmetic(m) => write!(f, "arithmetic error: {m}"),
            RelError::ConstraintViolation { name, witnesses } => {
                write!(f, "integrity constraint `{name}` violated: {witnesses}")
            }
            RelError::Gnf(m) => write!(f, "GNF violation: {m}"),
            RelError::Divergent { relation, iterations } => write!(
                f,
                "fixpoint for `{relation}` did not converge within {iterations} iterations"
            ),
            RelError::Reduce(m) => write!(f, "reduce error: {m}"),
            RelError::Io(e) => {
                write!(f, "io error while {} ({}): {}", e.context, e.path, e.source)
            }
            RelError::Corrupt(e) => {
                write!(
                    f,
                    "corrupt durable store: {} at byte {}: {}",
                    e.path, e.offset, e.msg
                )
            }
            RelError::AmbiguousApplication(m) => {
                write!(f, "ambiguous application (use ?{{}} or &{{}}): {m}")
            }
            RelError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for RelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = RelError::ConstraintViolation {
            name: "valid_products".into(),
            witnesses: "{(\"P9\")}".into(),
        };
        let s = e.to_string();
        assert!(s.contains("valid_products"));
        assert!(s.contains("P9"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&RelError::unsafe_expr("x unbounded"));
    }

    #[test]
    fn error_stays_small() {
        // `RelResult` rides through deeply recursive compilation paths
        // (specialization, strata analysis); a fatter enum means a
        // fatter stack frame for every one of them, and the
        // second-order instantiation-cap tests recurse close to the
        // thread stack limit. New variants with bulky payloads must be
        // boxed (see `Io` / `Corrupt`).
        assert!(
            std::mem::size_of::<RelError>() <= 56,
            "RelError grew to {} bytes — box the new variant's payload",
            std::mem::size_of::<RelError>()
        );
    }
}
