//! Error types shared across the rel-rs workspace.

use std::fmt;

/// Result alias used throughout rel-rs.
pub type RelResult<T> = Result<T, RelError>;

/// Any error produced while compiling or running a Rel program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RelError {
    /// Lexical error: unexpected character, unterminated string, …
    Lex { line: u32, col: u32, msg: String },
    /// Syntax error with source position.
    Parse { line: u32, col: u32, msg: String },
    /// Name-resolution / arity error.
    Resolve(String),
    /// Safety violation: an expression could denote an infinite relation
    /// (§3.1–3.2 of the paper).
    Unsafe(String),
    /// Stratification / recursion error.
    Stratify(String),
    /// Type error during evaluation (e.g. adding a string to an integer).
    Type(String),
    /// Arithmetic error (overflow, division by zero).
    Arithmetic(String),
    /// Integrity-constraint violation: aborts the transaction (§3.5).
    ConstraintViolation {
        /// Name of the violated `ic`.
        name: String,
        /// Witness tuples (the populated violation relation), rendered.
        witnesses: String,
    },
    /// Graph-normal-form violation (§2).
    Gnf(String),
    /// Fixpoint iteration exceeded the configured cap without converging.
    Divergent { relation: String, iterations: usize },
    /// `reduce` applied to a non-functional or empty operand (§5.2).
    Reduce(String),
    /// Ambiguous first-/second-order application requiring `?`/`&`
    /// disambiguation (Addendum A).
    AmbiguousApplication(String),
    /// Anything else.
    Internal(String),
}

impl RelError {
    /// Shorthand constructor for resolution errors.
    pub fn resolve(msg: impl Into<String>) -> Self {
        RelError::Resolve(msg.into())
    }
    /// Shorthand constructor for safety errors.
    pub fn unsafe_expr(msg: impl Into<String>) -> Self {
        RelError::Unsafe(msg.into())
    }
    /// Shorthand constructor for type errors.
    pub fn type_err(msg: impl Into<String>) -> Self {
        RelError::Type(msg.into())
    }
    /// Shorthand constructor for internal errors.
    pub fn internal(msg: impl Into<String>) -> Self {
        RelError::Internal(msg.into())
    }
}

impl fmt::Display for RelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelError::Lex { line, col, msg } => {
                write!(f, "lex error at {line}:{col}: {msg}")
            }
            RelError::Parse { line, col, msg } => {
                write!(f, "parse error at {line}:{col}: {msg}")
            }
            RelError::Resolve(m) => write!(f, "resolution error: {m}"),
            RelError::Unsafe(m) => write!(f, "safety error: {m}"),
            RelError::Stratify(m) => write!(f, "stratification error: {m}"),
            RelError::Type(m) => write!(f, "type error: {m}"),
            RelError::Arithmetic(m) => write!(f, "arithmetic error: {m}"),
            RelError::ConstraintViolation { name, witnesses } => {
                write!(f, "integrity constraint `{name}` violated: {witnesses}")
            }
            RelError::Gnf(m) => write!(f, "GNF violation: {m}"),
            RelError::Divergent { relation, iterations } => write!(
                f,
                "fixpoint for `{relation}` did not converge within {iterations} iterations"
            ),
            RelError::Reduce(m) => write!(f, "reduce error: {m}"),
            RelError::AmbiguousApplication(m) => {
                write!(f, "ambiguous application (use ?{{}} or &{{}}): {m}")
            }
            RelError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for RelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = RelError::ConstraintViolation {
            name: "valid_products".into(),
            witnesses: "{(\"P9\")}".into(),
        };
        let s = e.to_string();
        assert!(s.contains("valid_products"));
        assert!(s.contains("P9"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&RelError::unsafe_expr("x unbounded"));
    }
}
