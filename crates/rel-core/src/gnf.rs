//! Graph Normal Form (GNF) — §2 of the paper.
//!
//! GNF comprises two conditions:
//!
//! 1. **Indivisibility of facts** (6NF): every `k`-ary relation either has
//!    all `k` columns as its key, or its first `k−1` columns as its key
//!    (i.e. the relation is a *function* from composite keys to one atomic
//!    value — by convention the non-key column is last).
//! 2. **Things, not strings** — the *unique identifier property*: every
//!    entity is represented by an identifier unique within the entire
//!    database, so disjoint concepts (products, orders, …) never share an
//!    identifier.
//!
//! This module provides schema declarations ([`Schema`], [`RelationDecl`])
//! and validators for both conditions against a concrete [`Database`].

use crate::database::Database;
use crate::error::{RelError, RelResult};
use crate::relation::Relation;
use crate::value::Value;
use crate::{name, Name};
use std::collections::{BTreeMap, BTreeSet};

/// Which GNF key shape a relation has.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum KeyShape {
    /// All `k` columns form the key — a pure set of composite keys
    /// (e.g. `PaymentOrder(payment, order)` when modeling a many-to-many).
    AllColumns,
    /// The first `k−1` columns form the key; the last column is the single
    /// atomic value (e.g. `ProductPrice(product → price)`).
    AllButLast,
}

/// Declares how a relation participates in the GNF schema: its arity, key
/// shape, and which concept (if any) each key column ranges over.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RelationDecl {
    /// Relation name.
    pub name: Name,
    /// Expected arity of every tuple.
    pub arity: usize,
    /// Key shape (condition 1 of GNF).
    pub key: KeyShape,
    /// For each column: the concept whose identifiers populate it, or
    /// `None` for value columns (integers, strings-as-values, …).
    pub concepts: Vec<Option<Name>>,
}

impl RelationDecl {
    /// A relation whose every column is key (pure facts).
    pub fn all_key(rel: impl AsRef<str>, concepts: Vec<Option<Name>>) -> Self {
        RelationDecl {
            name: name(rel),
            arity: concepts.len(),
            key: KeyShape::AllColumns,
            concepts,
        }
    }

    /// A functional relation: first `k−1` columns key, last column value.
    pub fn functional(rel: impl AsRef<str>, concepts: Vec<Option<Name>>) -> Self {
        RelationDecl {
            name: name(rel),
            arity: concepts.len(),
            key: KeyShape::AllButLast,
            concepts,
        }
    }
}

/// A GNF schema: a set of concepts and relation declarations.
#[derive(Clone, Debug, Default)]
pub struct Schema {
    /// Declared concepts (entity types), e.g. `Order`, `Product`.
    pub concepts: Vec<Name>,
    /// Relation declarations by name.
    pub relations: BTreeMap<Name, RelationDecl>,
}

impl Schema {
    /// Empty schema.
    pub fn new() -> Self {
        Schema::default()
    }

    /// Register a concept, returning its index.
    pub fn add_concept(&mut self, c: impl AsRef<str>) -> u32 {
        let n = name(c);
        if let Some(i) = self.concepts.iter().position(|x| *x == n) {
            return i as u32;
        }
        self.concepts.push(n);
        (self.concepts.len() - 1) as u32
    }

    /// Register a relation declaration.
    pub fn add_relation(&mut self, decl: RelationDecl) {
        self.relations.insert(decl.name.clone(), decl);
    }

    /// The GNF schema for the running example of §2/§3 (Figure 1).
    pub fn figure1() -> Schema {
        let mut s = Schema::new();
        for c in ["Order", "Product", "Payment", "Customer"] {
            s.add_concept(c);
        }
        let order = Some(name("Order"));
        let product = Some(name("Product"));
        let payment = Some(name("Payment"));
        let customer = Some(name("Customer"));
        s.add_relation(RelationDecl::functional(
            "ProductPrice",
            vec![product.clone(), None],
        ));
        s.add_relation(RelationDecl::functional(
            "ProductName",
            vec![product.clone(), None],
        ));
        s.add_relation(RelationDecl::functional(
            "OrderCustomer",
            vec![order.clone(), customer],
        ));
        s.add_relation(RelationDecl::functional(
            "OrderProductQuantity",
            vec![order.clone(), product, None],
        ));
        s.add_relation(RelationDecl::functional(
            "PaymentAmount",
            vec![payment.clone(), None],
        ));
        s.add_relation(RelationDecl::functional(
            "PaymentOrder",
            vec![payment, order],
        ));
        s
    }

    /// Validate a database against this schema: arity conformance, the 6NF
    /// key condition, and the unique identifier property. Returns the first
    /// violation as an error.
    pub fn validate(&self, db: &Database) -> RelResult<()> {
        for decl in self.relations.values() {
            if let Some(rel) = db.get(&decl.name) {
                validate_relation(decl, rel)?;
            }
        }
        self.validate_unique_identifiers(db)
    }

    /// Condition 2: no identifier may populate two different concepts.
    /// Identifier values are whatever occupies concept-typed columns —
    /// entity ids or (as in Figure 1) strings acting as identifiers.
    pub fn validate_unique_identifiers(&self, db: &Database) -> RelResult<()> {
        let mut owner: BTreeMap<Value, Name> = BTreeMap::new();
        for decl in self.relations.values() {
            let Some(rel) = db.get(&decl.name) else { continue };
            for t in rel.iter() {
                for (i, concept) in decl.concepts.iter().enumerate() {
                    let Some(concept) = concept else { continue };
                    let Some(v) = t.get(i) else { continue };
                    match owner.get(v) {
                        None => {
                            owner.insert(v.clone(), concept.clone());
                        }
                        Some(prev) if prev == concept => {}
                        Some(prev) => {
                            return Err(RelError::Gnf(format!(
                                "identifier {v} is used for disjoint concepts \
                                 `{prev}` and `{concept}` (unique identifier \
                                 property, GNF condition 2)"
                            )));
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

/// Validate one relation against its declaration: arity and key shape.
pub fn validate_relation(decl: &RelationDecl, rel: &Relation) -> RelResult<()> {
    for t in rel.iter() {
        if t.arity() != decl.arity {
            return Err(RelError::Gnf(format!(
                "relation `{}` declared with arity {} contains tuple {} of arity {}",
                decl.name,
                decl.arity,
                t,
                t.arity()
            )));
        }
    }
    if decl.key == KeyShape::AllButLast && decl.arity > 0 {
        check_functional(&decl.name, rel, decl.arity - 1)?;
    }
    Ok(())
}

/// Check the functional dependency `columns[0..key_len] → rest`: no two
/// tuples may share a key prefix but differ afterwards. This is the 6NF
/// condition that makes a relation a function from keys to one value.
pub fn check_functional(relname: &str, rel: &Relation, key_len: usize) -> RelResult<()> {
    let mut seen: BTreeMap<Vec<Value>, &crate::Tuple> = BTreeMap::new();
    for t in rel.iter() {
        let key: Vec<Value> = t.values().iter().take(key_len).cloned().collect();
        if let Some(prev) = seen.get(&key) {
            if *prev != t {
                return Err(RelError::Gnf(format!(
                    "relation `{relname}` violates its key (first {key_len} \
                     column(s)): tuples {prev} and {t} share a key"
                )));
            }
        }
        seen.insert(key, t);
    }
    Ok(())
}

/// Decompose a wide record-style relation (one row = one entity with
/// attributes) into GNF: for a `k`-ary relation with a 1-column key this
/// yields `k−1` binary functional relations named `{base}{Attr}`. This is
/// the §2 move from `Product(product, name, price)` to `ProductName` +
/// `ProductPrice`.
pub fn decompose_to_gnf(
    base: &str,
    attr_names: &[&str],
    rel: &Relation,
) -> RelResult<BTreeMap<Name, Relation>> {
    let arity = attr_names.len() + 1;
    let mut out: BTreeMap<Name, Relation> = BTreeMap::new();
    for a in attr_names {
        out.insert(name(format!("{base}{a}")), Relation::new());
    }
    for t in rel.iter() {
        if t.arity() != arity {
            return Err(RelError::Gnf(format!(
                "decompose_to_gnf: expected arity {arity}, found tuple {t}"
            )));
        }
        let key = t.values()[0].clone();
        for (i, a) in attr_names.iter().enumerate() {
            out.get_mut(&name(format!("{base}{a}")))
                .expect("pre-inserted")
                .insert(crate::Tuple::from(vec![
                    key.clone(),
                    t.values()[i + 1].clone(),
                ]));
        }
    }
    Ok(out)
}

/// The set of identifiers populating a concept across all declared
/// relations. Useful for building per-concept domains.
pub fn concept_population(schema: &Schema, db: &Database, concept: &str) -> BTreeSet<Value> {
    let mut pop = BTreeSet::new();
    for decl in schema.relations.values() {
        let Some(rel) = db.get(&decl.name) else { continue };
        for (i, c) in decl.concepts.iter().enumerate() {
            if c.as_deref() == Some(concept) {
                for t in rel.iter() {
                    if let Some(v) = t.get(i) {
                        pop.insert(v.clone());
                    }
                }
            }
        }
    }
    pop
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::figure1_database;
    use crate::tuple;

    #[test]
    fn figure1_database_is_gnf() {
        let schema = Schema::figure1();
        let db = figure1_database();
        schema.validate(&db).expect("Figure 1 database is in GNF");
    }

    #[test]
    fn functional_violation_detected() {
        let mut db = figure1_database();
        // Second price for P1 violates ProductPrice's key.
        db.insert("ProductPrice", tuple!["P1", 11]);
        let err = Schema::figure1().validate(&db).unwrap_err();
        assert!(matches!(err, RelError::Gnf(_)), "{err}");
        assert!(err.to_string().contains("ProductPrice"));
    }

    #[test]
    fn unique_identifier_violation_detected() {
        let mut db = figure1_database();
        // "P1" already identifies a Product; use it as an Order.
        db.insert("OrderProductQuantity", tuple!["P1", "P2", 1]);
        let err = Schema::figure1().validate(&db).unwrap_err();
        assert!(err.to_string().contains("unique identifier"), "{err}");
    }

    #[test]
    fn arity_violation_detected() {
        let mut db = figure1_database();
        db.insert("ProductPrice", tuple!["P9"]);
        let err = Schema::figure1().validate(&db).unwrap_err();
        assert!(err.to_string().contains("arity"), "{err}");
    }

    #[test]
    fn decompose_wide_product() {
        // Product(product, name, price) — NOT in GNF (§2) — decomposes into
        // ProductName and ProductPrice.
        let wide = Relation::from_tuples([
            tuple!["P1", "apple", 10],
            tuple!["P2", "pear", 20],
        ]);
        let parts = decompose_to_gnf("Product", &["Name", "Price"], &wide).unwrap();
        assert_eq!(parts.len(), 2);
        assert_eq!(
            parts[&name("ProductName")],
            Relation::from_tuples([tuple!["P1", "apple"], tuple!["P2", "pear"]])
        );
        assert_eq!(
            parts[&name("ProductPrice")],
            Relation::from_tuples([tuple!["P1", 10], tuple!["P2", 20]])
        );
    }

    #[test]
    fn concept_population_collects_ids() {
        let schema = Schema::figure1();
        let db = figure1_database();
        let products = concept_population(&schema, &db, "Product");
        assert_eq!(products.len(), 4); // P1..P4
        let orders = concept_population(&schema, &db, "Order");
        assert_eq!(orders.len(), 3); // O1..O3
    }

    #[test]
    fn all_key_relation_never_fd_checked() {
        let mut s = Schema::new();
        s.add_relation(RelationDecl::all_key("Edge", vec![None, None]));
        let mut db = Database::new();
        db.insert("Edge", tuple![1, 2]);
        db.insert("Edge", tuple![1, 3]); // fine: all columns are the key
        s.validate(&db).unwrap();
    }
}
