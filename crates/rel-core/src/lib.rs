//! # rel-core
//!
//! Core data model for **rel-rs**, a Rust implementation of the Rel
//! programming language for relational data (Aref et al., SIGMOD 2025).
//!
//! This crate defines the first-order data model of the paper's Addendum A:
//!
//! * [`Value`] — the set *Values* of constant values (integers, floats,
//!   strings, entity identifiers, relation-name symbols);
//! * [`Tuple`] — the set *Tuples₁* of first-order tuples, including the
//!   empty tuple `⟨⟩`;
//! * [`Relation`] — the set *Rels₁* of first-order relations: **sets** of
//!   tuples under pure set semantics (no bags, no nulls), where tuples of
//!   different arities may coexist in one relation;
//! * [`Database`] — a mapping from relation names to base relations, with
//!   transactional delta application;
//! * [`codec`] — the binary codec (values, tuples, transaction deltas,
//!   whole-database images) plus CRC32, underpinning the engine's
//!   write-ahead log and snapshot files;
//! * [`convert`] — the typed-result layer ([`FromValue`] / [`FromRow`]):
//!   `out.rows::<(String, i64)>()?` instead of matching [`Value`]s;
//! * [`gnf`] — Graph Normal Form: the 6NF-style schema discipline of §2 of
//!   the paper (all-columns-key or all-but-last-columns-key, plus the
//!   unique-identifier property).
//!
//! Booleans are *not* values: as in the paper, `true` is the relation
//! `{⟨⟩}` containing the empty tuple and `false` is the empty relation `{}`
//! (see [`Relation::true_rel`] / [`Relation::false_rel`]).

pub mod codec;
pub mod columnar;
pub mod convert;
pub mod database;
pub mod error;
pub mod gnf;
pub mod relation;
pub mod tuple;
pub mod value;

pub use columnar::{columnar_enabled, set_columnar_enabled, ColumnStats};
pub use convert::{FromRow, FromValue};
pub use database::Database;
pub use error::{RelError, RelResult};
pub use relation::Relation;
pub use tuple::Tuple;
pub use value::{EntityId, OrdF64, Value};

/// Interned relation/identifier name. Cheap to clone and compare.
pub type Name = std::sync::Arc<str>;

/// Create a [`Name`] from anything string-like.
pub fn name(s: impl AsRef<str>) -> Name {
    Name::from(s.as_ref())
}
