//! First-order tuples (*Tuples₁*).
//!
//! A [`Tuple`] is an ordered, fixed-length sequence of [`Value`]s, written
//! `⟨v₁, …, vₙ⟩` in the paper. The empty tuple `⟨⟩` is a first-class
//! citizen: the relation `{⟨⟩}` encodes `true` and `{}` encodes `false`.

use crate::value::Value;
use std::fmt;
use std::ops::Deref;

/// An immutable first-order tuple. Stored as a boxed slice so the tuple
/// itself is two words; cloning copies the values (values themselves are
/// cheap to clone — strings are reference counted).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Tuple(Box<[Value]>);

impl Tuple {
    /// The empty tuple `⟨⟩`.
    pub fn empty() -> Self {
        Tuple(Box::from([]))
    }

    /// Build a tuple from values.
    pub fn new(values: impl Into<Box<[Value]>>) -> Self {
        Tuple(values.into())
    }

    /// Arity (number of positions).
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// Is this the empty tuple?
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Value at position `i` (0-based), if within arity.
    pub fn get(&self, i: usize) -> Option<&Value> {
        self.0.get(i)
    }

    /// All values as a slice.
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// Concatenation `self · other` (tuple product of Addendum A).
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut v = Vec::with_capacity(self.0.len() + other.0.len());
        v.extend_from_slice(&self.0);
        v.extend_from_slice(&other.0);
        Tuple(v.into_boxed_slice())
    }

    /// Prefix of length `n` (panics if `n > arity`).
    pub fn prefix(&self, n: usize) -> Tuple {
        Tuple(self.0[..n].to_vec().into_boxed_slice())
    }

    /// Suffix starting at position `n` (panics if `n > arity`).
    pub fn suffix(&self, n: usize) -> Tuple {
        Tuple(self.0[n..].to_vec().into_boxed_slice())
    }

    /// Does `self` start with `prefix` (element-wise equality)?
    pub fn starts_with(&self, prefix: &[Value]) -> bool {
        self.0.len() >= prefix.len() && self.0[..prefix.len()] == *prefix
    }

    /// Iterate over the values.
    pub fn iter(&self) -> std::slice::Iter<'_, Value> {
        self.0.iter()
    }
}

impl Deref for Tuple {
    type Target = [Value];
    fn deref(&self) -> &[Value] {
        &self.0
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(v: Vec<Value>) -> Self {
        Tuple(v.into_boxed_slice())
    }
}

impl FromIterator<Value> for Tuple {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Self {
        Tuple(iter.into_iter().collect())
    }
}

impl<'a> IntoIterator for &'a Tuple {
    type Item = &'a Value;
    type IntoIter = std::slice::Iter<'a, Value>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

/// Convenience macro: `tuple![1, 2.5, "x"]` builds a [`Tuple`] from
/// `Into<Value>` items.
#[macro_export]
macro_rules! tuple {
    ($($v:expr),* $(,)?) => {
        $crate::Tuple::from(vec![$($crate::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn empty_tuple() {
        let t = Tuple::empty();
        assert_eq!(t.arity(), 0);
        assert!(t.is_empty());
        assert_eq!(t.to_string(), "()");
    }

    #[test]
    fn concat_prefix_suffix() {
        let a = tuple![1, 2];
        let b = tuple![3];
        let c = a.concat(&b);
        assert_eq!(c.arity(), 3);
        assert_eq!(c.prefix(2), a);
        assert_eq!(c.suffix(2), b);
        assert_eq!(c.prefix(0), Tuple::empty());
        assert_eq!(c.suffix(3), Tuple::empty());
    }

    #[test]
    fn starts_with() {
        let t = tuple!["O1", "P1", 2];
        assert!(t.starts_with(&[Value::str("O1")]));
        assert!(t.starts_with(&[Value::str("O1"), Value::str("P1")]));
        assert!(!t.starts_with(&[Value::str("O2")]));
        assert!(t.starts_with(&[]));
    }

    #[test]
    fn ordering_shorter_first_on_tie() {
        let a = tuple![1];
        let b = tuple![1, 0];
        assert!(a < b);
    }

    #[test]
    fn display() {
        assert_eq!(tuple![1, "x"].to_string(), "(1, \"x\")");
    }
}
