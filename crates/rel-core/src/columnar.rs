//! Typed columnar projection of a relation.
//!
//! [`crate::Relation`] stores sorted rows of boxed [`Value`]s — the
//! canonical layout every external contract (iteration order, codec
//! bytes, `rows::<T>()`) is defined over. This module adds a *derived*
//! columnar view: for a uniform-arity relation, each column whose values
//! all share one [`Value`] variant is extracted into a contiguous typed
//! vector ([`Column::Int`] is a `Vec<i64>`, and so on), so hot kernels
//! (merge-walks, sort + dedup, trie seeks) compare raw primitives instead
//! of dispatching on `Value` tags per element.
//!
//! # Layout and fallback rules
//!
//! * The projection exists only for non-empty relations in which every
//!   tuple has the same arity ([`Columnar::build`] returns `None`
//!   otherwise; callers then stay on the boxed-row path).
//! * Within a qualifying relation, each column falls back *individually*:
//!   a column mixing variants (e.g. `Int` and `Float`) is stored as
//!   [`Column::Mixed`] — still contiguous, but compared through `Value`.
//! * Rows in the projection are index-aligned with the relation's sorted
//!   tuple slice: column `c` row `i` holds `tuples[i].values()[c]`.
//!
//! # Interner ordering guarantee
//!
//! String (and symbol) columns are dictionary-encoded *per column*: the
//! distinct strings are collected, sorted, and assigned dense codes in
//! lexicographic order. Code order therefore **equals** string order
//! within a column, so sorts and merge-walks over one column compare
//! `u32` codes. Comparisons *across* two different dictionaries fall back
//! to the underlying `&str` compare (with a pointer-equality fast path
//! when both sides share one dictionary allocation). Dictionaries are
//! immutable — a relation mutation drops the whole projection, and the
//! next build re-interns — which is what keeps the code ordering stable.
//!
//! # The `REL_COLUMNAR` switch
//!
//! [`columnar_enabled`] gates every columnar fast path in the workspace.
//! It defaults from the `REL_COLUMNAR` environment variable (on unless
//! `0`/`false`/`off`/`no`) and can be flipped at runtime with
//! [`set_columnar_enabled`] — the switch is **process-wide** (the kernels
//! live below any session context). Both layouts produce byte-identical
//! results; the switch exists as an escape hatch and test axis.

use crate::tuple::Tuple;
use crate::value::{EntityId, OrdF64, Value};
use std::cmp::Ordering;
use std::sync::atomic::{AtomicBool, Ordering as AtomicOrd};
use std::sync::{Arc, OnceLock};

static COLUMNAR: OnceLock<AtomicBool> = OnceLock::new();

fn switch() -> &'static AtomicBool {
    COLUMNAR.get_or_init(|| {
        let on = match std::env::var("REL_COLUMNAR") {
            Ok(v) => !matches!(v.to_ascii_lowercase().as_str(), "0" | "false" | "off" | "no"),
            Err(_) => true,
        };
        AtomicBool::new(on)
    })
}

/// Are columnar fast paths enabled? Process-wide; defaults from the
/// `REL_COLUMNAR` environment variable (on unless `0`/`false`/`off`/`no`).
pub fn columnar_enabled() -> bool {
    switch().load(AtomicOrd::Relaxed)
}

/// Flip the process-wide columnar switch (see module docs). Results are
/// byte-identical either way; this only selects which kernels run.
pub fn set_columnar_enabled(on: bool) {
    switch().store(on, AtomicOrd::Relaxed);
}

/// A dictionary-encoded string column: `codes[i]` indexes into `dict`,
/// and codes are assigned in lexicographic dictionary order, so
/// *code order equals string order* (module docs).
#[derive(Clone, Debug)]
pub struct StrCol {
    codes: Vec<u32>,
    dict: Arc<[Arc<str>]>,
}

impl StrCol {
    fn build(values: impl Iterator<Item = Arc<str>>, len: usize) -> StrCol {
        let raw: Vec<Arc<str>> = values.collect();
        debug_assert_eq!(raw.len(), len);
        let mut dict: Vec<Arc<str>> = raw.clone();
        dict.sort_unstable_by(|a, b| a.as_ref().cmp(b.as_ref()));
        dict.dedup_by(|a, b| a.as_ref() == b.as_ref());
        let codes = raw
            .iter()
            .map(|s| {
                dict.binary_search_by(|d| d.as_ref().cmp(s.as_ref()))
                    .expect("interned string must be in its own dictionary") as u32
            })
            .collect();
        StrCol { codes, dict: dict.into() }
    }

    /// The string at row `i`.
    pub fn get(&self, i: usize) -> &Arc<str> {
        &self.dict[self.codes[i] as usize]
    }

    /// Number of distinct strings (every dictionary entry is referenced).
    pub fn distinct(&self) -> usize {
        self.dict.len()
    }

    fn cmp_rows(&self, i: usize, other: &StrCol, j: usize) -> Ordering {
        if Arc::ptr_eq(&self.dict, &other.dict) {
            self.codes[i].cmp(&other.codes[j])
        } else {
            self.get(i).as_ref().cmp(other.get(j).as_ref())
        }
    }

    fn gather(&self, idx: &[u32]) -> StrCol {
        StrCol {
            codes: idx.iter().map(|&i| self.codes[i as usize]).collect(),
            dict: Arc::clone(&self.dict),
        }
    }
}

/// One column of a [`Columnar`] projection: a schema-specialized
/// contiguous vector, or [`Column::Mixed`] when the column's values span
/// more than one [`Value`] variant.
#[derive(Clone, Debug)]
pub enum Column {
    /// All-`Value::Int` column.
    Int(Vec<i64>),
    /// All-`Value::Float` column (total order via [`OrdF64`]).
    Float(Vec<OrdF64>),
    /// All-`Value::String` column, dictionary-encoded.
    Str(StrCol),
    /// All-`Value::Entity` column.
    Entity(Vec<EntityId>),
    /// All-`Value::Symbol` column, dictionary-encoded.
    Sym(StrCol),
    /// Fallback: boxed values (mixed variants), still contiguous.
    Mixed(Vec<Value>),
}

/// A borrowed view of one cell, cheap to copy and compare. Ordering
/// matches [`Value`]'s derived order exactly (`Int < Float < String <
/// Entity < Symbol`, then payload), so row-path and columnar kernels
/// agree on every comparison.
#[derive(Clone, Copy, Debug)]
pub enum Cell<'a> {
    /// An integer cell.
    Int(i64),
    /// A float cell.
    Float(OrdF64),
    /// A string cell (borrowed from a dictionary or a `Value`).
    Str(&'a Arc<str>),
    /// An entity cell.
    Entity(EntityId),
    /// A symbol cell.
    Sym(&'a Arc<str>),
}

impl<'a> Cell<'a> {
    /// View a boxed [`Value`] as a cell.
    pub fn of_value(v: &'a Value) -> Cell<'a> {
        match v {
            Value::Int(i) => Cell::Int(*i),
            Value::Float(x) => Cell::Float(*x),
            Value::String(s) => Cell::Str(s),
            Value::Entity(e) => Cell::Entity(*e),
            Value::Symbol(s) => Cell::Sym(s),
        }
    }

    /// Rebuild the boxed [`Value`] (an `Arc` bump for strings).
    pub fn to_value(self) -> Value {
        match self {
            Cell::Int(i) => Value::Int(i),
            Cell::Float(x) => Value::Float(x),
            Cell::Str(s) => Value::String(Arc::clone(s)),
            Cell::Entity(e) => Value::Entity(e),
            Cell::Sym(s) => Value::Symbol(Arc::clone(s)),
        }
    }

    fn rank(self) -> u8 {
        match self {
            Cell::Int(_) => 0,
            Cell::Float(_) => 1,
            Cell::Str(_) => 2,
            Cell::Entity(_) => 3,
            Cell::Sym(_) => 4,
        }
    }

    /// Total order identical to [`Value`]'s.
    pub fn cmp_cell(self, other: Cell<'_>) -> Ordering {
        match (self, other) {
            (Cell::Int(a), Cell::Int(b)) => a.cmp(&b),
            (Cell::Float(a), Cell::Float(b)) => a.cmp(&b),
            (Cell::Str(a), Cell::Str(b)) | (Cell::Sym(a), Cell::Sym(b)) => {
                if Arc::ptr_eq(a, b) {
                    Ordering::Equal
                } else {
                    a.as_ref().cmp(b.as_ref())
                }
            }
            (Cell::Entity(a), Cell::Entity(b)) => a.cmp(&b),
            (a, b) => a.rank().cmp(&b.rank()),
        }
    }

    /// Compare against a boxed [`Value`] (same total order).
    pub fn cmp_value(self, v: &Value) -> Ordering {
        self.cmp_cell(Cell::of_value(v))
    }
}

impl Column {
    fn build(rows: &[Tuple], col: usize) -> Column {
        let len = rows.len();
        let first = &rows[0].values()[col];
        let uniform = rows.iter().all(|t| {
            std::mem::discriminant(&t.values()[col]) == std::mem::discriminant(first)
        });
        if !uniform {
            return Column::Mixed(rows.iter().map(|t| t.values()[col].clone()).collect());
        }
        match first {
            Value::Int(_) => Column::Int(
                rows.iter()
                    .map(|t| match &t.values()[col] {
                        Value::Int(i) => *i,
                        _ => unreachable!("uniform Int column"),
                    })
                    .collect(),
            ),
            Value::Float(_) => Column::Float(
                rows.iter()
                    .map(|t| match &t.values()[col] {
                        Value::Float(x) => *x,
                        _ => unreachable!("uniform Float column"),
                    })
                    .collect(),
            ),
            Value::String(_) => Column::Str(StrCol::build(
                rows.iter().map(|t| match &t.values()[col] {
                    Value::String(s) => Arc::clone(s),
                    _ => unreachable!("uniform String column"),
                }),
                len,
            )),
            Value::Entity(_) => Column::Entity(
                rows.iter()
                    .map(|t| match &t.values()[col] {
                        Value::Entity(e) => *e,
                        _ => unreachable!("uniform Entity column"),
                    })
                    .collect(),
            ),
            Value::Symbol(_) => Column::Sym(StrCol::build(
                rows.iter().map(|t| match &t.values()[col] {
                    Value::Symbol(s) => Arc::clone(s),
                    _ => unreachable!("uniform Symbol column"),
                }),
                len,
            )),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Int(v) => v.len(),
            Column::Float(v) => v.len(),
            Column::Str(s) | Column::Sym(s) => s.codes.len(),
            Column::Entity(v) => v.len(),
            Column::Mixed(v) => v.len(),
        }
    }

    /// Is the column empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Borrow row `i` as a [`Cell`].
    pub fn cell(&self, i: usize) -> Cell<'_> {
        match self {
            Column::Int(v) => Cell::Int(v[i]),
            Column::Float(v) => Cell::Float(v[i]),
            Column::Str(s) => Cell::Str(s.get(i)),
            Column::Sym(s) => Cell::Sym(s.get(i)),
            Column::Entity(v) => Cell::Entity(v[i]),
            Column::Mixed(v) => Cell::of_value(&v[i]),
        }
    }

    /// Rebuild the boxed [`Value`] at row `i`.
    pub fn value(&self, i: usize) -> Value {
        self.cell(i).to_value()
    }

    /// Compare row `i` of `self` with row `j` of `other` — raw primitive
    /// compares on the typed same-variant paths, same-dictionary code
    /// compares for strings, `Value`-order fallback otherwise.
    pub fn cmp_rows(&self, i: usize, other: &Column, j: usize) -> Ordering {
        match (self, other) {
            (Column::Int(a), Column::Int(b)) => a[i].cmp(&b[j]),
            (Column::Float(a), Column::Float(b)) => a[i].cmp(&b[j]),
            (Column::Str(a), Column::Str(b)) | (Column::Sym(a), Column::Sym(b)) => {
                a.cmp_rows(i, b, j)
            }
            (Column::Entity(a), Column::Entity(b)) => a[i].cmp(&b[j]),
            _ => self.cell(i).cmp_cell(other.cell(j)),
        }
    }

    /// Select rows by index, preserving the typed layout (used to
    /// materialize permuted/sorted tries without touching tuples).
    pub fn gather(&self, idx: &[u32]) -> Column {
        match self {
            Column::Int(v) => Column::Int(idx.iter().map(|&i| v[i as usize]).collect()),
            Column::Float(v) => Column::Float(idx.iter().map(|&i| v[i as usize]).collect()),
            Column::Str(s) => Column::Str(s.gather(idx)),
            Column::Sym(s) => Column::Sym(s.gather(idx)),
            Column::Entity(v) => Column::Entity(idx.iter().map(|&i| v[i as usize]).collect()),
            Column::Mixed(v) => {
                Column::Mixed(idx.iter().map(|&i| v[i as usize].clone()).collect())
            }
        }
    }

    fn stats(&self) -> ColumnStats {
        fn minmax_distinct<T: Ord + Copy>(v: &[T], mk: impl Fn(T) -> Value) -> ColumnStats {
            let mut sorted: Vec<T> = v.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            ColumnStats {
                distinct: sorted.len(),
                min: mk(*sorted.first().expect("non-empty column")),
                max: mk(*sorted.last().expect("non-empty column")),
            }
        }
        match self {
            Column::Int(v) => minmax_distinct(v, Value::Int),
            Column::Float(v) => minmax_distinct(v, Value::Float),
            Column::Entity(v) => minmax_distinct(v, Value::Entity),
            Column::Str(s) => ColumnStats {
                distinct: s.distinct(),
                min: Value::String(Arc::clone(&s.dict[0])),
                max: Value::String(Arc::clone(&s.dict[s.dict.len() - 1])),
            },
            Column::Sym(s) => ColumnStats {
                distinct: s.distinct(),
                min: Value::Symbol(Arc::clone(&s.dict[0])),
                max: Value::Symbol(Arc::clone(&s.dict[s.dict.len() - 1])),
            },
            Column::Mixed(v) => {
                let distinct: std::collections::BTreeSet<&Value> = v.iter().collect();
                ColumnStats {
                    distinct: distinct.len(),
                    min: (*distinct.first().expect("non-empty column")).clone(),
                    max: (*distinct.last().expect("non-empty column")).clone(),
                }
            }
        }
    }
}

/// Per-column statistics computed over a columnar projection: the hook
/// the WCOJ planner's cardinality-based variable ordering will consume.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ColumnStats {
    /// Number of distinct values in the column.
    pub distinct: usize,
    /// Smallest value (in [`Value`] order).
    pub min: Value,
    /// Largest value (in [`Value`] order).
    pub max: Value,
}

/// The typed columnar projection of a uniform-arity relation; row `i`
/// across the columns reconstructs `tuples[i]` (see module docs).
#[derive(Clone, Debug)]
pub struct Columnar {
    len: usize,
    cols: Vec<Column>,
    stats: OnceLock<Arc<Vec<ColumnStats>>>,
}

impl Columnar {
    /// Build the projection over a sorted tuple slice. `None` when the
    /// slice is empty or tuples disagree on arity (the boxed-row layout
    /// stays canonical in that case).
    pub fn build(rows: &[Tuple]) -> Option<Columnar> {
        let first = rows.first()?;
        let arity = first.arity();
        if arity == 0 || rows.iter().any(|t| t.arity() != arity) {
            return None;
        }
        let cols = (0..arity).map(|c| Column::build(rows, c)).collect();
        Some(Columnar { len: rows.len(), cols, stats: OnceLock::new() })
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the projection empty? (Never true for a built projection.)
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.cols.len()
    }

    /// The columns.
    pub fn cols(&self) -> &[Column] {
        &self.cols
    }

    /// Lexicographic whole-row compare between `self[i]` and `other[j]`,
    /// identical to `Tuple` order (column-wise values, then arity).
    pub fn cmp_rows(&self, i: usize, other: &Columnar, j: usize) -> Ordering {
        let shared = self.arity().min(other.arity());
        for c in 0..shared {
            match self.cols[c].cmp_rows(i, &other.cols[c], j) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        self.arity().cmp(&other.arity())
    }

    /// Per-column statistics, computed once and cached on the projection
    /// (and therefore on the relation's shared storage).
    pub fn stats(&self) -> &Arc<Vec<ColumnStats>> {
        self.stats.get_or_init(|| Arc::new(self.cols.iter().map(Column::stats).collect()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn rows() -> Vec<Tuple> {
        vec![
            tuple![1, "b", 2.5],
            tuple![2, "a", 1.5],
            tuple![3, "b", 3.5],
        ]
    }

    #[test]
    fn build_types_columns() {
        let c = Columnar::build(&rows()).unwrap();
        assert_eq!(c.arity(), 3);
        assert_eq!(c.len(), 3);
        assert!(matches!(c.cols()[0], Column::Int(_)));
        assert!(matches!(c.cols()[1], Column::Str(_)));
        assert!(matches!(c.cols()[2], Column::Float(_)));
    }

    #[test]
    fn mixed_column_falls_back_per_column() {
        let rows = vec![tuple![1, "x"], tuple![2.5, "y"]];
        let c = Columnar::build(&rows).unwrap();
        assert!(matches!(c.cols()[0], Column::Mixed(_)));
        assert!(matches!(c.cols()[1], Column::Str(_)));
    }

    #[test]
    fn non_uniform_arity_has_no_projection() {
        assert!(Columnar::build(&[tuple![1], tuple![1, 2]]).is_none());
        assert!(Columnar::build(&[]).is_none());
        assert!(Columnar::build(&[Tuple::empty()]).is_none());
    }

    #[test]
    fn interner_code_order_is_string_order() {
        let rows = vec![tuple!["cherry"], tuple!["apple"], tuple!["banana"], tuple!["apple"]];
        let c = Columnar::build(&rows).unwrap();
        let Column::Str(s) = &c.cols()[0] else { panic!("expected Str column") };
        assert_eq!(s.distinct(), 3);
        // Codes compare exactly as the strings do.
        for i in 0..rows.len() {
            for j in 0..rows.len() {
                assert_eq!(
                    s.codes[i].cmp(&s.codes[j]),
                    s.get(i).as_ref().cmp(s.get(j).as_ref())
                );
            }
        }
    }

    #[test]
    fn cell_order_matches_value_order() {
        let vals = [
            Value::int(-3),
            Value::int(7),
            Value::float(-0.0),
            Value::float(0.0),
            Value::float(f64::NAN),
            Value::str("a"),
            Value::str("b"),
            Value::entity(0, 1),
            Value::entity(1, 0),
            Value::sym("s"),
        ];
        for a in &vals {
            for b in &vals {
                assert_eq!(Cell::of_value(a).cmp_cell(Cell::of_value(b)), a.cmp(b), "{a:?} vs {b:?}");
                assert_eq!(Cell::of_value(a).cmp_value(b), a.cmp(b));
            }
        }
    }

    #[test]
    fn cmp_rows_matches_tuple_order() {
        let a = rows();
        let b = vec![tuple![1, "b", 2.5], tuple![0, "z", 9.0]];
        let ca = Columnar::build(&a).unwrap();
        let cb = Columnar::build(&b).unwrap();
        for (i, ta) in a.iter().enumerate() {
            for (j, tb) in b.iter().enumerate() {
                assert_eq!(ca.cmp_rows(i, &cb, j), ta.cmp(tb));
            }
        }
    }

    #[test]
    fn cmp_rows_breaks_arity_ties_like_tuples() {
        let a = vec![tuple![1, 2]];
        let b = vec![tuple![1, 2, 3]];
        let ca = Columnar::build(&a).unwrap();
        let cb = Columnar::build(&b).unwrap();
        assert_eq!(ca.cmp_rows(0, &cb, 0), Ordering::Less);
        assert_eq!(cb.cmp_rows(0, &ca, 0), Ordering::Greater);
    }

    #[test]
    fn stats_distinct_and_minmax() {
        let rows = vec![
            tuple![3, "b"],
            tuple![1, "a"],
            tuple![3, "c"],
            tuple![2, "a"],
        ];
        let c = Columnar::build(&rows).unwrap();
        let stats = c.stats();
        assert_eq!(stats[0], ColumnStats { distinct: 3, min: Value::int(1), max: Value::int(3) });
        assert_eq!(
            stats[1],
            ColumnStats { distinct: 3, min: Value::str("a"), max: Value::str("c") }
        );
    }

    #[test]
    fn gather_preserves_layout() {
        let c = Columnar::build(&rows()).unwrap();
        let g = c.cols()[1].gather(&[2, 0]);
        assert_eq!(g.value(0), Value::str("b"));
        assert_eq!(g.value(1), Value::str("b"));
        assert!(matches!(g, Column::Str(_)));
    }
}
