//! A Rel database: named base relations plus transactional deltas.
//!
//! Per §3.4 of the paper, a *transaction* executes a query against the
//! database; the control relations `insert` and `delete` describe changes,
//! which are persisted when the transaction commits (and discarded when it
//! aborts, e.g. on an integrity-constraint violation). The engine crate
//! drives that protocol; this type provides the storage and the atomic
//! delta application.

use crate::relation::Relation;
use crate::tuple::Tuple;
use crate::{name, Name};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide count of database snapshots ([`Database::clone`] calls).
/// Cloning is O(#relations) CoW pointer bumps — cheap, but not free — so
/// batch APIs amortize it; this counter lets tests assert that e.g. a
/// whole `execute_many` batch really took a single snapshot.
static SNAPSHOTS: AtomicU64 = AtomicU64::new(0);

/// Process-wide count of database snapshots taken so far (see
/// [`Database::clone`]).
pub fn snapshots() -> u64 {
    SNAPSHOTS.load(Ordering::Relaxed)
}

/// A set of named base (EDB) relations.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct Database {
    relations: BTreeMap<Name, Relation>,
}

impl Clone for Database {
    /// An O(#relations) copy-on-write snapshot: every relation handle is
    /// a pointer bump, no tuple is copied. Bumps the process-wide
    /// [`snapshots`] counter so batch APIs can prove they snapshot once.
    fn clone(&self) -> Self {
        SNAPSHOTS.fetch_add(1, Ordering::Relaxed);
        Database { relations: self.relations.clone() }
    }
}

/// A pending change set produced by one transaction: per-relation tuples to
/// insert and to delete. Deletes are applied before inserts, matching the
/// paper's semantics where `insert`/`delete` are computed against the *old*
/// state and applied atomically at commit.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Delta {
    /// Tuples to insert, per relation. Relations are created on demand
    /// ("there is no need to declare a new base relation", §3.4).
    pub inserts: BTreeMap<Name, Vec<Tuple>>,
    /// Tuples to delete, per relation.
    pub deletes: BTreeMap<Name, Vec<Tuple>>,
}

impl Delta {
    /// Is this delta a no-op?
    pub fn is_empty(&self) -> bool {
        self.inserts.values().all(Vec::is_empty) && self.deletes.values().all(Vec::is_empty)
    }

    /// Record an insertion.
    pub fn insert(&mut self, rel: impl AsRef<str>, t: Tuple) {
        self.inserts.entry(name(rel)).or_default().push(t);
    }

    /// Record a deletion.
    pub fn delete(&mut self, rel: impl AsRef<str>, t: Tuple) {
        self.deletes.entry(name(rel)).or_default().push(t);
    }
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Look up a base relation. Unknown names read as the empty relation —
    /// Rel treats undefined relations as empty rather than erroring.
    pub fn get(&self, rel: &str) -> Option<&Relation> {
        self.relations.get(rel)
    }

    /// Mutable access, creating the relation if absent.
    pub fn get_mut(&mut self, rel: impl AsRef<str>) -> &mut Relation {
        self.relations.entry(name(rel)).or_default()
    }

    /// Replace or create a whole relation.
    pub fn set(&mut self, rel: impl AsRef<str>, r: Relation) {
        self.relations.insert(name(rel), r);
    }

    /// Insert one tuple into a (possibly new) relation.
    pub fn insert(&mut self, rel: impl AsRef<str>, t: Tuple) -> bool {
        self.get_mut(rel).insert(t)
    }

    /// Does the database define this relation name (even if empty)?
    pub fn defines(&self, rel: &str) -> bool {
        self.relations.contains_key(rel)
    }

    /// Names of all base relations, sorted.
    pub fn relation_names(&self) -> impl Iterator<Item = &Name> {
        self.relations.keys()
    }

    /// Iterate `(name, relation)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&Name, &Relation)> {
        self.relations.iter()
    }

    /// Total number of stored tuples across all relations.
    pub fn total_tuples(&self) -> usize {
        self.relations.values().map(Relation::len).sum()
    }

    /// The *active domain*: every value occurring in any stored tuple.
    /// Used by the reference interpreter's finite-universe semantics.
    pub fn active_domain(&self) -> std::collections::BTreeSet<crate::Value> {
        let mut dom = std::collections::BTreeSet::new();
        for rel in self.relations.values() {
            for t in rel.iter() {
                dom.extend(t.iter().cloned());
            }
        }
        dom
    }

    /// Atomically apply a transaction's delta: deletes first, then inserts
    /// (so a tuple both deleted and inserted survives). Creates relations
    /// referenced only by inserts; removes nothing but tuples.
    pub fn apply(&mut self, delta: &Delta) {
        for (rel, tuples) in &delta.deletes {
            if let Some(r) = self.relations.get_mut(rel) {
                for t in tuples {
                    r.remove(t);
                }
            }
        }
        for (rel, tuples) in &delta.inserts {
            let r = self.relations.entry(rel.clone()).or_default();
            for t in tuples {
                r.insert(t.clone());
            }
        }
    }
}

impl fmt::Display for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (n, r) in &self.relations {
            writeln!(f, "{n}: {r}")?;
        }
        Ok(())
    }
}

/// Build the example database of Figure 1 of the paper: orders, products
/// included in orders (with quantities), product prices, and payments.
/// Used pervasively by tests and examples.
pub fn figure1_database() -> Database {
    let mut db = Database::new();
    let pairs: &[(&str, &[(&str, &str)])] = &[
        ("PaymentOrder", &[("Pmt1", "O1"), ("Pmt2", "O2"), ("Pmt3", "O1"), ("Pmt4", "O3")]),
    ];
    for (rel, rows) in pairs {
        for (a, b) in rows.iter() {
            db.insert(*rel, Tuple::from(vec![crate::Value::str(a), crate::Value::str(b)]));
        }
    }
    for (p, amt) in [("Pmt1", 20), ("Pmt2", 10), ("Pmt3", 10), ("Pmt4", 90)] {
        db.insert(
            "PaymentAmount",
            Tuple::from(vec![crate::Value::str(p), crate::Value::int(amt)]),
        );
    }
    for (o, p, q) in [("O1", "P1", 2), ("O1", "P2", 1), ("O2", "P1", 1), ("O3", "P3", 4)] {
        db.insert(
            "OrderProductQuantity",
            Tuple::from(vec![
                crate::Value::str(o),
                crate::Value::str(p),
                crate::Value::int(q),
            ]),
        );
    }
    for (p, price) in [("P1", 10), ("P2", 20), ("P3", 30), ("P4", 40)] {
        db.insert(
            "ProductPrice",
            Tuple::from(vec![crate::Value::str(p), crate::Value::int(price)]),
        );
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{tuple, Value};

    #[test]
    fn figure1_shape() {
        let db = figure1_database();
        assert_eq!(db.get("PaymentOrder").unwrap().len(), 4);
        assert_eq!(db.get("PaymentAmount").unwrap().len(), 4);
        assert_eq!(db.get("OrderProductQuantity").unwrap().len(), 4);
        assert_eq!(db.get("ProductPrice").unwrap().len(), 4);
        assert_eq!(db.total_tuples(), 16);
    }

    #[test]
    fn unknown_relation_is_none() {
        let db = Database::new();
        assert!(db.get("Nope").is_none());
    }

    #[test]
    fn apply_delta_delete_then_insert() {
        let mut db = figure1_database();
        let mut delta = Delta::default();
        delta.delete("ProductPrice", tuple!["P4", 40]);
        delta.insert("ClosedOrders", tuple!["O1"]);
        db.apply(&delta);
        assert_eq!(db.get("ProductPrice").unwrap().len(), 3);
        assert!(db.get("ClosedOrders").unwrap().contains(&tuple!["O1"]));
    }

    #[test]
    fn insert_wins_over_delete_of_same_tuple() {
        let mut db = Database::new();
        db.insert("R", tuple![1]);
        let mut delta = Delta::default();
        delta.delete("R", tuple![1]);
        delta.insert("R", tuple![1]);
        db.apply(&delta);
        assert!(db.get("R").unwrap().contains(&tuple![1]));
    }

    #[test]
    fn active_domain_collects_all_values() {
        let db = figure1_database();
        let dom = db.active_domain();
        assert!(dom.contains(&Value::str("O1")));
        assert!(dom.contains(&Value::int(90)));
        assert!(dom.contains(&Value::str("P4")));
    }

    #[test]
    fn delta_is_empty() {
        assert!(Delta::default().is_empty());
        let mut d = Delta::default();
        d.insert("R", tuple![1]);
        assert!(!d.is_empty());
    }
}
