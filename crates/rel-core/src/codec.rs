//! Binary codec for durable storage.
//!
//! The engine's write-ahead log and snapshot files (see the `rel-engine`
//! durability modules) serialize exactly the types this crate owns:
//! [`Value`]s, [`Tuple`]s, per-transaction relation [`Delta`]s, and whole
//! [`Database`] images. The encoding is deliberately boring — little-endian
//! fixed-width integers and length-prefixed byte strings, one tag byte per
//! value — because the durability layer's integrity comes from framing
//! (length prefixes + [`crc32`] checksums), not from a clever format.
//!
//! Decoding never panics and never trusts a length field: every count is
//! bounds-checked against the bytes that remain, so a corrupt or truncated
//! input yields a [`DecodeError`] with the byte offset where decoding
//! stopped — the durability layer turns that into
//! [`crate::RelError::Corrupt`] with file context.
//!
//! Round-trip invariant (asserted by the unit tests below and the
//! randomized crash-recovery suite in `rel-engine`): for every value `x`
//! of an encodable type, `decode(encode(x)) == x`, and decoding consumes
//! exactly the encoded bytes.

use crate::database::{Database, Delta};
use crate::relation::Relation;
use crate::tuple::Tuple;
use crate::value::{EntityId, OrdF64, Value};
use crate::{name, Name};
use std::fmt;
use std::sync::OnceLock;

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3, reflected) — the checksum framing WAL records and
// snapshot payloads. Table-driven; the table is built once per process.
// ---------------------------------------------------------------------------

fn crc32_table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        let mut i = 0usize;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    })
}

/// IEEE CRC-32 of `bytes` (the polynomial used by zlib, PNG, Ethernet).
pub fn crc32(bytes: &[u8]) -> u32 {
    let table = crc32_table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = table[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Decode errors
// ---------------------------------------------------------------------------

/// A decoding failure: the input is corrupt or truncated at `offset`
/// (bytes from the start of the buffer handed to the decoder).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DecodeError {
    /// Byte offset (within the decoded buffer) where decoding stopped.
    pub offset: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "decode error at byte {}: {}", self.offset, self.msg)
    }
}

impl std::error::Error for DecodeError {}

type DecodeResult<T> = Result<T, DecodeError>;

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// A bounds-checked cursor over an encoded buffer.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Current offset from the start of the buffer.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Has every byte been consumed?
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn err(&self, msg: impl Into<String>) -> DecodeError {
        DecodeError { offset: self.pos, msg: msg.into() }
    }

    /// Consume `n` raw bytes (`what` names the field in errors).
    pub fn take(&mut self, n: usize, what: &str) -> DecodeResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(self.err(format!(
                "truncated {what}: need {n} bytes, {} remain",
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Consume one byte.
    pub fn u8(&mut self, what: &str) -> DecodeResult<u8> {
        Ok(self.take(1, what)?[0])
    }

    /// Consume a little-endian `u32`.
    pub fn u32(&mut self, what: &str) -> DecodeResult<u32> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Consume a little-endian `u64`.
    pub fn u64(&mut self, what: &str) -> DecodeResult<u64> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Consume a length-prefixed UTF-8 string (see [`encode_str`]).
    pub fn str(&mut self, what: &str) -> DecodeResult<&'a str> {
        let len = self.u32(what)? as usize;
        let at = self.pos;
        let bytes = self.take(len, what)?;
        std::str::from_utf8(bytes).map_err(|e| DecodeError {
            offset: at,
            msg: format!("{what} is not valid UTF-8: {e}"),
        })
    }
}

// ---------------------------------------------------------------------------
// Value / Tuple
// ---------------------------------------------------------------------------

const TAG_INT: u8 = 0;
const TAG_FLOAT: u8 = 1;
const TAG_STRING: u8 = 2;
const TAG_ENTITY: u8 = 3;
const TAG_SYMBOL: u8 = 4;

/// Append a length-prefixed UTF-8 string: `u32` byte length, then bytes.
pub fn encode_str(s: &str, out: &mut Vec<u8>) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// Append the encoding of one value.
pub fn encode_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Int(i) => {
            out.push(TAG_INT);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(OrdF64(x)) => {
            out.push(TAG_FLOAT);
            out.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        Value::String(s) => {
            out.push(TAG_STRING);
            encode_str(s, out);
        }
        Value::Entity(EntityId { concept, id }) => {
            out.push(TAG_ENTITY);
            out.extend_from_slice(&concept.to_le_bytes());
            out.extend_from_slice(&id.to_le_bytes());
        }
        Value::Symbol(s) => {
            out.push(TAG_SYMBOL);
            encode_str(s, out);
        }
    }
}

/// Decode one value.
pub fn decode_value(r: &mut Reader<'_>) -> DecodeResult<Value> {
    let at = r.pos();
    let tag = r.u8("value tag")?;
    match tag {
        TAG_INT => Ok(Value::Int(r.u64("int value")? as i64)),
        TAG_FLOAT => Ok(Value::Float(OrdF64(f64::from_bits(r.u64("float value")?)))),
        TAG_STRING => Ok(Value::str(r.str("string value")?)),
        TAG_ENTITY => {
            let concept = r.u32("entity concept")?;
            let id = r.u64("entity id")?;
            Ok(Value::Entity(EntityId { concept, id }))
        }
        TAG_SYMBOL => Ok(Value::sym(r.str("symbol value")?)),
        other => Err(DecodeError {
            offset: at,
            msg: format!("unknown value tag {other}"),
        }),
    }
}

/// Append the encoding of one tuple: `u32` arity, then its values.
pub fn encode_tuple(t: &Tuple, out: &mut Vec<u8>) {
    out.extend_from_slice(&(t.arity() as u32).to_le_bytes());
    for v in t.iter() {
        encode_value(v, out);
    }
}

/// Decode one tuple.
pub fn decode_tuple(r: &mut Reader<'_>) -> DecodeResult<Tuple> {
    let at = r.pos();
    let arity = r.u32("tuple arity")? as usize;
    // Every value costs at least one tag byte: an arity exceeding the
    // remaining bytes is corrupt, not merely truncated mid-value.
    if arity > r.remaining() {
        return Err(DecodeError {
            offset: at,
            msg: format!("tuple arity {arity} exceeds {} remaining bytes", r.remaining()),
        });
    }
    let mut vals = Vec::with_capacity(arity);
    for _ in 0..arity {
        vals.push(decode_value(r)?);
    }
    Ok(Tuple::from(vals))
}

fn encode_tuples<'a>(tuples: impl ExactSizeIterator<Item = &'a Tuple>, out: &mut Vec<u8>) {
    out.extend_from_slice(&(tuples.len() as u32).to_le_bytes());
    for t in tuples {
        encode_tuple(t, out);
    }
}

fn decode_tuples(r: &mut Reader<'_>, what: &str) -> DecodeResult<Vec<Tuple>> {
    let at = r.pos();
    let count = r.u32(what)? as usize;
    // Each tuple costs at least its 4-byte arity prefix.
    if count > r.remaining() / 4 {
        return Err(DecodeError {
            offset: at,
            msg: format!("{what} count {count} exceeds {} remaining bytes", r.remaining()),
        });
    }
    let mut tuples = Vec::with_capacity(count);
    for _ in 0..count {
        tuples.push(decode_tuple(r)?);
    }
    Ok(tuples)
}

/// Append the encoding of one relation: `u32` #tuples, then the tuples in
/// the relation's canonical (sorted) order — encoding the same relation
/// twice yields identical bytes. Used by the `rel-server` wire protocol
/// for query results and parameter bindings.
pub fn encode_relation(rel: &Relation, out: &mut Vec<u8>) {
    encode_tuples(rel.iter(), out);
}

/// Decode one relation (see [`encode_relation`]).
pub fn decode_relation(r: &mut Reader<'_>) -> DecodeResult<Relation> {
    Ok(Relation::from_tuples(decode_tuples(r, "relation tuple")?))
}

// ---------------------------------------------------------------------------
// Delta (one committed transaction's base-relation changes)
// ---------------------------------------------------------------------------

/// Append the encoding of a transaction delta: the insert map then the
/// delete map, each as `u32` #relations followed by `(name, tuples)`
/// groups in name order (the maps are `BTreeMap`s, so encoding the same
/// delta twice yields identical bytes).
pub fn encode_delta(delta: &Delta, out: &mut Vec<u8>) {
    for map in [&delta.inserts, &delta.deletes] {
        out.extend_from_slice(&(map.len() as u32).to_le_bytes());
        for (rel, tuples) in map {
            encode_str(rel, out);
            encode_tuples(tuples.iter(), out);
        }
    }
}

/// Decode a transaction delta.
pub fn decode_delta(r: &mut Reader<'_>) -> DecodeResult<Delta> {
    let mut delta = Delta::default();
    for side in 0..2 {
        let what = if side == 0 { "insert group" } else { "delete group" };
        let at = r.pos();
        let n_rels = r.u32(what)? as usize;
        if n_rels > r.remaining() / 8 {
            return Err(DecodeError {
                offset: at,
                msg: format!("{what} count {n_rels} exceeds {} remaining bytes", r.remaining()),
            });
        }
        let map = if side == 0 { &mut delta.inserts } else { &mut delta.deletes };
        for _ in 0..n_rels {
            let rel: Name = name(r.str("relation name")?);
            let tuples = decode_tuples(r, "delta tuple")?;
            map.insert(rel, tuples);
        }
    }
    Ok(delta)
}

// ---------------------------------------------------------------------------
// Database (full snapshot image)
// ---------------------------------------------------------------------------

/// Append the encoding of a whole database: `u32` #relations, then
/// `(name, tuples)` groups in name order. Empty relations are skipped —
/// an absent relation and an empty one are semantically identical in Rel
/// (undefined names read as empty), and the WAL's replayed deltas never
/// re-create empty relations either, so snapshots stay canonical.
pub fn encode_database(db: &Database, out: &mut Vec<u8>) {
    let non_empty: Vec<(&Name, &Relation)> = db.iter().filter(|(_, r)| !r.is_empty()).collect();
    out.extend_from_slice(&(non_empty.len() as u32).to_le_bytes());
    for (rel, tuples) in non_empty {
        encode_str(rel, out);
        out.extend_from_slice(&(tuples.len() as u32).to_le_bytes());
        for t in tuples.iter() {
            encode_tuple(t, out);
        }
    }
}

/// Decode a whole database image.
pub fn decode_database(r: &mut Reader<'_>) -> DecodeResult<Database> {
    let at = r.pos();
    let n_rels = r.u32("relation count")? as usize;
    if n_rels > r.remaining() / 8 {
        return Err(DecodeError {
            offset: at,
            msg: format!("relation count {n_rels} exceeds {} remaining bytes", r.remaining()),
        });
    }
    let mut db = Database::new();
    for _ in 0..n_rels {
        let rel = name(r.str("relation name")?);
        let tuples = decode_tuples(r, "relation tuple")?;
        db.set(rel, Relation::from_tuples(tuples));
    }
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn roundtrip_value(v: Value) {
        let mut buf = Vec::new();
        encode_value(&v, &mut buf);
        let mut r = Reader::new(&buf);
        assert_eq!(decode_value(&mut r).unwrap(), v);
        assert!(r.is_empty(), "decoding {v} left {} bytes", r.remaining());
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn value_roundtrips() {
        roundtrip_value(Value::int(0));
        roundtrip_value(Value::int(i64::MIN));
        roundtrip_value(Value::int(i64::MAX));
        roundtrip_value(Value::float(2.5));
        roundtrip_value(Value::float(-0.0));
        roundtrip_value(Value::float(f64::NAN));
        roundtrip_value(Value::str(""));
        roundtrip_value(Value::str("héllo ⟨⟩"));
        roundtrip_value(Value::sym("ClosedOrders"));
        roundtrip_value(Value::entity(7, u64::MAX));
    }

    #[test]
    fn nan_roundtrips_bit_exact() {
        // total_cmp distinguishes NaN payloads; the codec must preserve
        // the exact bit pattern, not re-canonicalize.
        let weird = f64::from_bits(0x7FF8_0000_0000_0001);
        let mut buf = Vec::new();
        encode_value(&Value::float(weird), &mut buf);
        let got = decode_value(&mut Reader::new(&buf)).unwrap();
        match got {
            Value::Float(OrdF64(x)) => assert_eq!(x.to_bits(), weird.to_bits()),
            other => panic!("expected float, got {other}"),
        }
    }

    #[test]
    fn tuple_roundtrips() {
        for t in [
            Tuple::empty(),
            tuple![1, 2.5, "x"],
            tuple![Value::sym("R"), Value::entity(1, 2)],
        ] {
            let mut buf = Vec::new();
            encode_tuple(&t, &mut buf);
            let mut r = Reader::new(&buf);
            assert_eq!(decode_tuple(&mut r).unwrap(), t);
            assert!(r.is_empty());
        }
    }

    #[test]
    fn delta_roundtrips() {
        let mut d = Delta::default();
        d.insert("R", tuple![1, "a"]);
        d.insert("R", tuple![2, "b"]);
        d.insert("S", Tuple::empty());
        d.delete("R", tuple![3]);
        let mut buf = Vec::new();
        encode_delta(&d, &mut buf);
        let mut r = Reader::new(&buf);
        assert_eq!(decode_delta(&mut r).unwrap(), d);
        assert!(r.is_empty());
    }

    #[test]
    fn database_roundtrips_and_skips_empty_relations() {
        let mut db = crate::database::figure1_database();
        db.set("Empty", Relation::new());
        let mut buf = Vec::new();
        encode_database(&db, &mut buf);
        let mut r = Reader::new(&buf);
        let got = decode_database(&mut r).unwrap();
        assert!(r.is_empty());
        assert!(!got.defines("Empty"), "empty relations are canonicalized away");
        for (name, rel) in db.iter().filter(|(_, r)| !r.is_empty()) {
            assert_eq!(got.get(name), Some(rel), "relation {name} must survive");
        }
        assert_eq!(got.total_tuples(), db.total_tuples());
    }

    #[test]
    fn truncated_input_reports_offset() {
        let mut buf = Vec::new();
        encode_value(&Value::str("hello"), &mut buf);
        let cut = &buf[..buf.len() - 2];
        let err = decode_value(&mut Reader::new(cut)).unwrap_err();
        assert!(err.msg.contains("truncated"), "{err}");
        assert!(err.offset <= cut.len());
    }

    #[test]
    fn absurd_count_is_corrupt_not_alloc() {
        // A length field claiming 4 billion tuples must fail fast on the
        // bounds check, not attempt the allocation.
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        let err = decode_database(&mut Reader::new(&buf)).unwrap_err();
        assert!(err.msg.contains("exceeds"), "{err}");
    }

    #[test]
    fn unknown_tag_is_corrupt() {
        let err = decode_value(&mut Reader::new(&[99])).unwrap_err();
        assert!(err.msg.contains("unknown value tag"), "{err}");
        assert_eq!(err.offset, 0);
    }
}
