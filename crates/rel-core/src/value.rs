//! The set *Values* of constant values.
//!
//! Rel is built on the "things, not strings" paradigm (§2 of the paper):
//! entities are represented by database-unique identifiers that are disjoint
//! from ordinary values. [`Value`] therefore carries a dedicated
//! [`Value::Entity`] variant alongside the primitive value types.
//!
//! All values are totally ordered (variant tag first, then payload) so that
//! relations — which are `BTreeSet`s of tuples — have a deterministic
//! iteration order, giving reproducible query output.

use std::fmt;
use std::sync::Arc;

/// An IEEE-754 double with a *total* order (via [`f64::total_cmp`]) so it
/// can participate in ordered sets. NaN sorts after all other floats;
/// `-0.0 < +0.0`.
#[derive(Clone, Copy, Debug)]
pub struct OrdF64(pub f64);

impl PartialEq for OrdF64 {
    fn eq(&self, other: &Self) -> bool {
        self.0.total_cmp(&other.0) == std::cmp::Ordering::Equal
    }
}
impl Eq for OrdF64 {}
impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}
impl std::hash::Hash for OrdF64 {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Normalise -0.0 to +0.0 only for hashing of equal values is NOT
        // needed: total_cmp distinguishes -0.0 from +0.0, so they are
        // *different* values and may hash differently.
        self.0.to_bits().hash(state);
    }
}
impl fmt::Display for OrdF64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.fract() == 0.0 && self.0.is_finite() && self.0.abs() < 1e15 {
            write!(f, "{:.1}", self.0)
        } else {
            write!(f, "{}", self.0)
        }
    }
}

/// A database-unique entity identifier (§2: the *unique identifier
/// property*). The `concept` tag records which concept population the
/// entity was minted for; [`crate::gnf`] uses it to verify that disjoint
/// concepts never share an identifier.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EntityId {
    /// Concept tag (index into a [`crate::gnf::Schema`]'s concept table).
    pub concept: u32,
    /// Identifier, unique within the whole database.
    pub id: u64,
}

impl fmt::Display for EntityId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}:{}", self.concept, self.id)
    }
}

/// A constant value: an element of the paper's set **Values**.
///
/// The ordering across variants is `Int < Float < String < Entity < Symbol`;
/// within a variant, the natural payload order applies. Mixed-type
/// comparisons are thus well defined (needed for ordered relations), while
/// the *arithmetic* comparison built-ins (`<`, `<=`, …) in the engine only
/// accept numerically comparable operands.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Value {
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float with total order.
    Float(OrdF64),
    /// Immutable UTF-8 string (cheap to clone).
    String(Arc<str>),
    /// Entity identifier (things, not strings).
    Entity(EntityId),
    /// Relation-name symbol, written `:Name` in Rel source. Used to pass
    /// relation *names* as parameters, e.g. `insert(:ClosedOrders, x)`.
    Symbol(Arc<str>),
}

impl Value {
    /// Integer constructor.
    pub fn int(i: i64) -> Self {
        Value::Int(i)
    }
    /// Float constructor.
    pub fn float(x: f64) -> Self {
        Value::Float(OrdF64(x))
    }
    /// String constructor.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::String(Arc::from(s.as_ref()))
    }
    /// Symbol (`:Name`) constructor.
    pub fn sym(s: impl AsRef<str>) -> Self {
        Value::Symbol(Arc::from(s.as_ref()))
    }
    /// Entity constructor.
    pub fn entity(concept: u32, id: u64) -> Self {
        Value::Entity(EntityId { concept, id })
    }

    /// Is this value an integer?
    pub fn is_int(&self) -> bool {
        matches!(self, Value::Int(_))
    }
    /// Is this value numeric (int or float)?
    pub fn is_number(&self) -> bool {
        matches!(self, Value::Int(_) | Value::Float(_))
    }
    /// Is this value a string?
    pub fn is_string(&self) -> bool {
        matches!(self, Value::String(_))
    }

    /// Numeric view as `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(OrdF64(x)) => Some(*x),
            _ => None,
        }
    }

    /// Integer view, if an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// String view, if a `String`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Compare two values *numerically* (promoting `Int` to `Float` when
    /// mixed). Returns `None` when either side is not a number and the
    /// variants differ; same-variant non-numeric values compare by their
    /// natural order (so `"a" < "b"` is meaningful for strings).
    pub fn numeric_cmp(&self, other: &Value) -> Option<std::cmp::Ordering> {
        use Value::*;
        match (self, other) {
            (Int(a), Int(b)) => Some(a.cmp(b)),
            (Float(a), Float(b)) => Some(a.cmp(b)),
            (Int(a), Float(b)) => Some(OrdF64(*a as f64).cmp(b)),
            (Float(a), Int(b)) => Some(a.cmp(&OrdF64(*b as f64))),
            (String(a), String(b)) => Some(a.cmp(b)),
            (Entity(a), Entity(b)) => Some(a.cmp(b)),
            (Symbol(a), Symbol(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// Equality with Int/Float promotion: `1 = 1.0` holds numerically.
    pub fn numeric_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Int(a), Value::Float(OrdF64(b))) => (*a as f64) == *b,
            (Value::Float(OrdF64(a)), Value::Int(b)) => *a == (*b as f64),
            _ => self == other,
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}
impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i as i64)
    }
}
impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Float(OrdF64(x))
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(Arc::from(s.as_str()))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::String(s) => write!(f, "{s:?}"),
            Value::Entity(e) => write!(f, "{e}"),
            Value::Symbol(s) => write!(f, ":{s}"),
        }
    }
}

// Values appear in every tuple of every relation; keep them small.
const _: () = assert!(std::mem::size_of::<Value>() <= 24);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_across_variants_is_total() {
        let vals = [
            Value::int(-1),
            Value::int(7),
            Value::float(0.5),
            Value::str("a"),
            Value::str("b"),
            Value::entity(0, 1),
            Value::sym("R"),
        ];
        for a in &vals {
            for b in &vals {
                // total: exactly one of <, =, > holds
                let ord = a.cmp(b);
                assert_eq!(ord == std::cmp::Ordering::Equal, a == b);
            }
        }
    }

    #[test]
    fn int_sorts_before_float_variant() {
        assert!(Value::int(100) < Value::float(0.0));
    }

    #[test]
    fn numeric_cmp_promotes() {
        use std::cmp::Ordering::*;
        assert_eq!(Value::int(1).numeric_cmp(&Value::float(1.5)), Some(Less));
        assert_eq!(Value::float(2.0).numeric_cmp(&Value::int(1)), Some(Greater));
        assert_eq!(Value::int(3).numeric_cmp(&Value::int(3)), Some(Equal));
        assert_eq!(Value::str("x").numeric_cmp(&Value::int(3)), None);
        assert_eq!(Value::str("a").numeric_cmp(&Value::str("b")), Some(Less));
    }

    #[test]
    fn numeric_eq_promotes() {
        assert!(Value::int(1).numeric_eq(&Value::float(1.0)));
        assert!(!Value::int(1).numeric_eq(&Value::float(1.5)));
        assert!(Value::str("s").numeric_eq(&Value::str("s")));
    }

    #[test]
    fn nan_is_ordered() {
        let nan = Value::float(f64::NAN);
        let one = Value::float(1.0);
        assert!(one < nan);
        assert_eq!(nan.cmp(&nan), std::cmp::Ordering::Equal);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::int(42).to_string(), "42");
        assert_eq!(Value::float(2.0).to_string(), "2.0");
        assert_eq!(Value::float(2.5).to_string(), "2.5");
        assert_eq!(Value::str("O1").to_string(), "\"O1\"");
        assert_eq!(Value::sym("ClosedOrders").to_string(), ":ClosedOrders");
        assert_eq!(Value::entity(1, 9).to_string(), "#1:9");
    }

    #[test]
    fn value_is_small() {
        assert!(std::mem::size_of::<Value>() <= 24);
    }
}
