//! Typed result conversion: [`FromValue`] and [`FromRow`].
//!
//! Query results come back as [`crate::Relation`]s of [`Tuple`]s of
//! [`Value`]s. The conversion layer lets callers move from the dynamic
//! representation to host types in one call instead of pattern-matching
//! `Value`s by hand:
//!
//! ```
//! use rel_core::{tuple, Relation};
//!
//! let out = Relation::from_tuples([tuple!["P1", 10], tuple!["P4", 40]]);
//! let rows: Vec<(String, i64)> = out.rows().unwrap();
//! assert_eq!(rows, vec![("P1".into(), 10), ("P4".into(), 40)]);
//! ```
//!
//! * [`FromValue`] converts one [`Value`] — implemented for the scalar
//!   types (`i64`, `i32`, `f64`, `String`, `Arc<str>`, [`EntityId`]),
//!   for [`Value`] itself (identity), and leniently for `Option<T>`
//!   (`None` when the value has a different shape).
//! * [`FromRow`] converts one [`Tuple`] — implemented for tuples of
//!   `FromValue` types up to arity 8, for the scalars themselves
//!   (unary rows), for `()` (the empty tuple, Rel's `true`), and for
//!   [`Tuple`] (identity).
//!
//! Conversions are strict about arity and type: a mismatch is a
//! [`RelError::Type`] naming the offending tuple, not a silent skip —
//! except under `Option`, which is the explicit opt-in for "this position
//! may be something else".

use crate::tuple::Tuple;
use crate::value::{EntityId, Value};
use crate::{RelError, RelResult};
use std::sync::Arc;

/// Conversion from a single relational [`Value`] to a host type.
pub trait FromValue: Sized {
    /// Convert, or report a [`RelError::Type`] naming the mismatch.
    fn from_value(v: &Value) -> RelResult<Self>;
}

impl FromValue for Value {
    fn from_value(v: &Value) -> RelResult<Self> {
        Ok(v.clone())
    }
}

impl FromValue for i64 {
    fn from_value(v: &Value) -> RelResult<Self> {
        match v {
            Value::Int(i) => Ok(*i),
            other => Err(conversion_err(other, "i64")),
        }
    }
}

impl FromValue for i32 {
    fn from_value(v: &Value) -> RelResult<Self> {
        match v {
            Value::Int(i) => i32::try_from(*i)
                .map_err(|_| RelError::type_err(format!("{i} does not fit in i32"))),
            other => Err(conversion_err(other, "i32")),
        }
    }
}

impl FromValue for f64 {
    fn from_value(v: &Value) -> RelResult<Self> {
        // Ints promote: Rel arithmetic mixes the two freely.
        v.as_f64().ok_or_else(|| conversion_err(v, "f64"))
    }
}

impl FromValue for String {
    fn from_value(v: &Value) -> RelResult<Self> {
        match v {
            Value::String(s) => Ok(s.to_string()),
            other => Err(conversion_err(other, "String")),
        }
    }
}

impl FromValue for Arc<str> {
    fn from_value(v: &Value) -> RelResult<Self> {
        match v {
            Value::String(s) => Ok(Arc::clone(s)),
            other => Err(conversion_err(other, "Arc<str>")),
        }
    }
}

impl FromValue for EntityId {
    fn from_value(v: &Value) -> RelResult<Self> {
        match v {
            Value::Entity(e) => Ok(*e),
            other => Err(conversion_err(other, "EntityId")),
        }
    }
}

/// Lenient conversion: `Some` when the inner conversion succeeds, `None`
/// when the value has a different shape. The escape hatch for relations
/// mixing value types in one column (legal under Rel's schema-free
/// semantics).
impl<T: FromValue> FromValue for Option<T> {
    fn from_value(v: &Value) -> RelResult<Self> {
        Ok(T::from_value(v).ok())
    }
}

fn conversion_err(v: &Value, target: &str) -> RelError {
    RelError::type_err(format!("cannot convert {v} to {target}"))
}

/// Conversion from a whole [`Tuple`] (one row of a relation) to a host
/// type.
pub trait FromRow: Sized {
    /// Convert, or report a [`RelError::Type`] naming the mismatch.
    fn from_row(t: &Tuple) -> RelResult<Self>;
}

/// The identity conversion.
impl FromRow for Tuple {
    fn from_row(t: &Tuple) -> RelResult<Self> {
        Ok(t.clone())
    }
}

/// The empty tuple `⟨⟩` — Rel's `true` witness.
impl FromRow for () {
    fn from_row(t: &Tuple) -> RelResult<Self> {
        if t.is_empty() {
            Ok(())
        } else {
            Err(arity_err(t, 0))
        }
    }
}

fn arity_err(t: &Tuple, want: usize) -> RelError {
    RelError::type_err(format!(
        "row {t} has arity {}, expected {want}",
        t.arity()
    ))
}

/// Scalars read unary rows, so `out.rows::<i64>()` works on a plain
/// unary relation without tuple-wrapping.
macro_rules! scalar_from_row {
    ($($ty:ty),* $(,)?) => {$(
        impl FromRow for $ty {
            fn from_row(t: &Tuple) -> RelResult<Self> {
                match t.values() {
                    [v] => <$ty as FromValue>::from_value(v),
                    _ => Err(arity_err(t, 1)),
                }
            }
        }
    )*};
}

scalar_from_row!(i64, i32, f64, String, Arc<str>, EntityId, Value);

macro_rules! tuple_from_row {
    ($n:literal; $($name:ident : $idx:tt),+) => {
        impl<$($name: FromValue),+> FromRow for ($($name,)+) {
            fn from_row(t: &Tuple) -> RelResult<Self> {
                if t.arity() != $n {
                    return Err(arity_err(t, $n));
                }
                Ok(($($name::from_value(&t.values()[$idx])?,)+))
            }
        }
    };
}

tuple_from_row!(1; A: 0);
tuple_from_row!(2; A: 0, B: 1);
tuple_from_row!(3; A: 0, B: 1, C: 2);
tuple_from_row!(4; A: 0, B: 1, C: 2, D: 3);
tuple_from_row!(5; A: 0, B: 1, C: 2, D: 3, E: 4);
tuple_from_row!(6; A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
tuple_from_row!(7; A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
tuple_from_row!(8; A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    #[test]
    fn scalar_conversions() {
        assert_eq!(i64::from_value(&Value::int(7)).unwrap(), 7);
        assert_eq!(i32::from_value(&Value::int(7)).unwrap(), 7);
        assert_eq!(f64::from_value(&Value::int(2)).unwrap(), 2.0);
        assert_eq!(f64::from_value(&Value::float(2.5)).unwrap(), 2.5);
        assert_eq!(String::from_value(&Value::str("x")).unwrap(), "x");
        assert_eq!(
            EntityId::from_value(&Value::entity(1, 9)).unwrap(),
            EntityId { concept: 1, id: 9 }
        );
        assert_eq!(Value::from_value(&Value::sym("R")).unwrap(), Value::sym("R"));
    }

    #[test]
    fn mismatches_are_type_errors() {
        assert!(matches!(
            i64::from_value(&Value::str("x")),
            Err(RelError::Type(_))
        ));
        assert!(matches!(
            String::from_value(&Value::int(1)),
            Err(RelError::Type(_))
        ));
        // i32 range check.
        assert!(i32::from_value(&Value::int(i64::MAX)).is_err());
        // Floats do NOT silently truncate to ints.
        assert!(i64::from_value(&Value::float(1.5)).is_err());
    }

    #[test]
    fn option_is_lenient() {
        assert_eq!(Option::<i64>::from_value(&Value::int(3)).unwrap(), Some(3));
        assert_eq!(Option::<i64>::from_value(&Value::str("x")).unwrap(), None);
    }

    #[test]
    fn tuple_rows() {
        let t = tuple!["O1", 30];
        let (name, total): (String, i64) = FromRow::from_row(&t).unwrap();
        assert_eq!((name.as_str(), total), ("O1", 30));
        // Arity mismatch reported, not truncated.
        let err = <(String,)>::from_row(&t).unwrap_err();
        assert!(err.to_string().contains("arity"), "{err}");
    }

    #[test]
    fn unary_rows_as_scalars() {
        assert_eq!(i64::from_row(&tuple![5]).unwrap(), 5);
        assert!(i64::from_row(&tuple![5, 6]).is_err());
        assert_eq!(<()>::from_row(&Tuple::empty()).unwrap(), ());
        assert!(<()>::from_row(&tuple![1]).is_err());
    }

    #[test]
    fn eight_way_tuple() {
        let t = tuple![1, 2, 3, 4, 5, 6, 7, 8];
        let row: (i64, i64, i64, i64, i64, i64, i64, i64) =
            FromRow::from_row(&t).unwrap();
        assert_eq!(row, (1, 2, 3, 4, 5, 6, 7, 8));
    }

    #[test]
    fn mixed_column_via_option() {
        let t = tuple![1, "x"];
        let row: (Option<String>, Option<i64>) = FromRow::from_row(&t).unwrap();
        assert_eq!(row, (None, None));
        let row: (Option<i64>, Option<String>) = FromRow::from_row(&t).unwrap();
        assert_eq!(row, (Some(1), Some("x".into())));
    }
}
