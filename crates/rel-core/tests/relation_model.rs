//! Randomized (seeded) equivalence tests: the merge-based, copy-on-write
//! `Relation` set operations against a naive `BTreeSet` reference model,
//! plus determinism checks that iteration order is exactly the sorted
//! tuple order regardless of construction history.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rel_core::{Relation, Tuple, Value};
use std::collections::BTreeSet;

/// A random relation over small integer tuples of arity 1–3, so prefix
/// collisions, subset relationships, and empty results all occur.
fn random_set(rng: &mut StdRng, max_len: usize) -> BTreeSet<Tuple> {
    let len = rng.gen_range(0..=max_len);
    let mut out = BTreeSet::new();
    for _ in 0..len {
        let arity = rng.gen_range(1..=3usize);
        let values: Vec<Value> = (0..arity).map(|_| Value::int(rng.gen_range(0..6))).collect();
        out.insert(Tuple::from(values));
    }
    out
}

fn relation_of(set: &BTreeSet<Tuple>) -> Relation {
    Relation::from_tuples(set.iter().cloned())
}

fn tuples_of(r: &Relation) -> Vec<Tuple> {
    r.iter().cloned().collect()
}

#[test]
fn union_intersect_minus_match_reference_model() {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    for case in 0..500 {
        let a_set = random_set(&mut rng, 24);
        let b_set = random_set(&mut rng, 24);
        let a = relation_of(&a_set);
        let b = relation_of(&b_set);

        let union_ref: Vec<Tuple> = a_set.union(&b_set).cloned().collect();
        let intersect_ref: Vec<Tuple> = a_set.intersection(&b_set).cloned().collect();
        let minus_ref: Vec<Tuple> = a_set.difference(&b_set).cloned().collect();

        assert_eq!(tuples_of(&a.union(&b)), union_ref, "union, case {case}");
        assert_eq!(
            tuples_of(&a.intersect(&b)),
            intersect_ref,
            "intersect, case {case}"
        );
        assert_eq!(tuples_of(&a.minus(&b)), minus_ref, "minus, case {case}");

        // In-place variants agree with the pure ones.
        let mut c = a.clone();
        c.minus_in_place(&b);
        assert_eq!(tuples_of(&c), minus_ref, "minus_in_place, case {case}");

        let mut d = a.clone();
        let added = d.absorb(&b);
        assert_eq!(tuples_of(&d), union_ref, "absorb, case {case}");
        assert_eq!(
            added,
            union_ref.len() - a_set.len(),
            "absorb reported count, case {case}"
        );
    }
}

#[test]
fn absorb_heuristic_paths_agree() {
    // Exercise both absorb paths (merge rebuild vs per-tuple inserts) by
    // absorbing small sets into large ones and vice versa.
    let mut rng = StdRng::seed_from_u64(7);
    for case in 0..200 {
        let big_set = random_set(&mut rng, 80);
        let small_set = random_set(&mut rng, 4);
        for (x, y) in [(&big_set, &small_set), (&small_set, &big_set)] {
            let mut r = relation_of(x);
            r.absorb(&relation_of(y));
            let expected: Vec<Tuple> = x.union(y).cloned().collect();
            assert_eq!(tuples_of(&r), expected, "absorb case {case}");
        }
    }
}

#[test]
fn partial_apply_matches_reference_model() {
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    for case in 0..500 {
        let set = random_set(&mut rng, 24);
        let r = relation_of(&set);
        let prefix_len = rng.gen_range(0..=2usize);
        let prefix: Vec<Value> =
            (0..prefix_len).map(|_| Value::int(rng.gen_range(0..6))).collect();

        let expected: Vec<Tuple> = set
            .iter()
            .filter(|t| t.starts_with(&prefix))
            .map(|t| t.suffix(prefix.len()))
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect();
        assert_eq!(
            tuples_of(&r.partial_apply(&prefix)),
            expected,
            "partial_apply, case {case}, prefix {prefix:?}"
        );
    }
}

#[test]
fn retain_matches_reference_model() {
    let mut rng = StdRng::seed_from_u64(0xFEED);
    for case in 0..300 {
        let set = random_set(&mut rng, 24);
        let threshold = Value::int(rng.gen_range(0..6));
        let mut r = relation_of(&set);
        // Randomly exercise the shared-storage pre-scan path too.
        let _pin = rng.gen_bool(0.5).then(|| r.clone());
        r.retain(|t| t.values()[0] >= threshold);
        let expected: Vec<Tuple> = set
            .iter()
            .filter(|t| t.values()[0] >= threshold)
            .cloned()
            .collect();
        assert_eq!(tuples_of(&r), expected, "retain, case {case}");
    }
}

#[test]
fn iteration_order_is_independent_of_history() {
    // The same tuple set reached through different operation histories
    // iterates identically: sorted order, no construction artifacts.
    let mut rng = StdRng::seed_from_u64(0xDECAF);
    for _ in 0..200 {
        let set = random_set(&mut rng, 30);
        let direct = relation_of(&set);

        // History 1: one-by-one inserts in shuffled order.
        let mut shuffled: Vec<Tuple> = set.iter().cloned().collect();
        for i in (1..shuffled.len()).rev() {
            shuffled.swap(i, rng.gen_range(0..=i));
        }
        let mut inserted = Relation::new();
        for t in shuffled {
            inserted.insert(t);
        }

        // History 2: union of two random halves plus an absorbed rest.
        let half: BTreeSet<Tuple> =
            set.iter().filter(|_| rng.gen_bool(0.5)).cloned().collect();
        let rest: BTreeSet<Tuple> = set.difference(&half).cloned().collect();
        let mut merged = relation_of(&half).union(&Relation::new());
        merged.absorb(&relation_of(&rest));

        let expected: Vec<Tuple> = set.iter().cloned().collect();
        assert_eq!(tuples_of(&direct), expected);
        assert_eq!(tuples_of(&inserted), expected);
        assert_eq!(tuples_of(&merged), expected);
        assert_eq!(direct, inserted);
        assert_eq!(direct, merged);
        assert_eq!(direct.fingerprint(), merged.fingerprint());
    }
}
