//! Randomized (seeded) round-trip tests for the typed-result conversion
//! layer (`FromValue` / `FromRow`), in the style of `relation_model`:
//! for every generated value, converting to the matching host type and
//! re-wrapping must reproduce the original `Value`/`Tuple` exactly, and
//! conversions to a *mismatched* type must error (never silently coerce)
//! except through the lenient `Option` adapter.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rel_core::{FromRow, FromValue, Relation, Tuple, Value};

fn random_value(rng: &mut StdRng) -> Value {
    match rng.gen_range(0..5) {
        0 => Value::int(rng.gen_range(-1_000_000..1_000_000)),
        1 => {
            // Finite floats, including negative and fractional.
            let x = rng.gen_range(-1_000_000i64..1_000_000) as f64 / 16.0;
            Value::float(x)
        }
        2 => {
            let len = rng.gen_range(0usize..12);
            let s: String = (0..len)
                .map(|_| char::from(b'a' + rng.gen_range(0u32..26) as u8))
                .collect();
            Value::str(s)
        }
        3 => Value::entity(rng.gen_range(0..8), rng.gen_range(0..1_000_000)),
        _ => Value::sym(format!("R{}", rng.gen_range(0..50))),
    }
}

/// Convert to the host type matching the value's variant and re-wrap.
fn roundtrip(v: &Value) -> Value {
    match v {
        Value::Int(_) => Value::int(i64::from_value(v).expect("int converts")),
        Value::Float(_) => Value::float(f64::from_value(v).expect("float converts")),
        Value::String(_) => Value::str(String::from_value(v).expect("string converts")),
        Value::Entity(_) => {
            let e = rel_core::EntityId::from_value(v).expect("entity converts");
            Value::Entity(e)
        }
        // Symbols have no dedicated host type; the identity conversion
        // must still hold.
        Value::Symbol(_) => Value::from_value(v).expect("identity converts"),
    }
}

#[test]
fn value_conversions_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0xF00D);
    for case in 0..2000 {
        let v = random_value(&mut rng);
        assert_eq!(roundtrip(&v), v, "case {case}: {v} did not round-trip");

        // The identity conversion is total.
        assert_eq!(Value::from_value(&v).unwrap(), v);

        // Lenient Option: Some exactly when the strict conversion
        // succeeds.
        assert_eq!(
            Option::<i64>::from_value(&v).unwrap().is_some(),
            i64::from_value(&v).is_ok(),
            "case {case}: Option leniency disagrees with strict result"
        );

        // Mismatched conversions error rather than coerce (floats are the
        // one deliberate promotion: ints widen into f64).
        if !matches!(v, Value::String(_)) {
            assert!(String::from_value(&v).is_err(), "case {case}: {v}");
        }
        if !matches!(v, Value::Int(_)) {
            assert!(i64::from_value(&v).is_err(), "case {case}: {v}");
        }
        if !v.is_number() {
            assert!(f64::from_value(&v).is_err(), "case {case}: {v}");
        }
    }
}

#[test]
fn int_to_f64_promotion_is_exact_in_range() {
    let mut rng = StdRng::seed_from_u64(0xCAFE);
    for _ in 0..500 {
        // Within ±2^53 the promotion is lossless.
        let i: i64 = rng.gen_range(-(1 << 53)..(1 << 53));
        assert_eq!(f64::from_value(&Value::int(i)).unwrap(), i as f64);
    }
}

#[test]
fn row_conversions_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    for case in 0..1000 {
        let arity = rng.gen_range(0..=8usize);
        let values: Vec<Value> = (0..arity).map(|_| random_value(&mut rng)).collect();
        let tuple = Tuple::from(values.clone());

        // Identity via Tuple.
        assert_eq!(Tuple::from_row(&tuple).unwrap(), tuple);

        // Through a fully dynamic row of Values, at every arity 1..=8.
        macro_rules! check_arity {
            ($( $n:literal => ($($name:ident),+) );* $(;)?) => {
                match arity {
                    $( $n => {
                        let ($($name,)+): ($(check_arity!(@ty $name),)+) =
                            FromRow::from_row(&tuple)
                                .unwrap_or_else(|e| panic!("case {case}: {e}"));
                        let rebuilt = Tuple::from(vec![$($name),+]);
                        assert_eq!(rebuilt, tuple, "case {case}");
                    } )*
                    0 => {
                        <()>::from_row(&tuple).unwrap();
                    }
                    _ => unreachable!(),
                }
            };
            (@ty $name:ident) => { Value };
        }
        check_arity! {
            1 => (a);
            2 => (a, b);
            3 => (a, b, c);
            4 => (a, b, c, d);
            5 => (a, b, c, d, e);
            6 => (a, b, c, d, e, f);
            7 => (a, b, c, d, e, f, g);
            8 => (a, b, c, d, e, f, g, h);
        }

        // Arity mismatches error.
        if arity != 2 {
            assert!(
                <(Value, Value)>::from_row(&tuple).is_err(),
                "case {case}: arity {arity} accepted as pair"
            );
        }
    }
}

#[test]
fn relation_rows_preserve_sorted_order() {
    let mut rng = StdRng::seed_from_u64(0x50_B7ED);
    for _ in 0..200 {
        let n = rng.gen_range(0..30);
        let rel = Relation::from_tuples((0..n).map(|_| {
            Tuple::from(vec![
                Value::int(rng.gen_range(0..10)),
                Value::int(rng.gen_range(0..10)),
            ])
        }));
        let rows: Vec<(i64, i64)> = rel.rows().unwrap();
        let reference: Vec<(i64, i64)> = rel
            .iter()
            .map(|t| (t.values()[0].as_int().unwrap(), t.values()[1].as_int().unwrap()))
            .collect();
        assert_eq!(rows, reference);
        // Sorted, deduplicated — exactly the relation's own order.
        let mut sorted = rows.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(rows, sorted);
    }
}

#[test]
fn single_and_single_opt_contracts() {
    let empty = Relation::new();
    assert!(empty.single::<i64>().is_err());
    assert_eq!(empty.single_opt::<i64>().unwrap(), None);

    let one = Relation::from_values([Value::int(7)]);
    assert_eq!(one.single::<i64>().unwrap(), 7);
    assert_eq!(one.single_opt::<i64>().unwrap(), Some(7));

    let two = Relation::from_values([Value::int(1), Value::int(2)]);
    assert!(two.single::<i64>().is_err());
    assert!(two.single_opt::<i64>().is_err());
}
