//! # rel-graph
//!
//! The Rel **graph library** of §5.4 of the paper — transitive closure,
//! reachability, degrees, both APSP variants, SSSP, the paper's PageRank
//! program (non-stratified, evaluated by partial fixpoint), triangle
//! queries, and connected components — written in Rel ([`GRAPH_LIB`]),
//! plus hand-written Rust baselines ([`native`]) used as correctness
//! oracles and as the imperative comparison in the benchmarks, and
//! random-graph generators ([`gen`]).

pub mod gen;
pub mod native;

use rel_core::Database;
use rel_engine::Session;

/// The graph library source (Rel).
pub const GRAPH_LIB: &str = include_str!("../rel/graph.rel");

/// A session with the standard library *and* the graph library installed.
pub fn with_graph_lib(db: Database) -> Session {
    rel_stdlib::with_stdlib(db).with_library(GRAPH_LIB)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::*;
    use rel_core::{tuple, Relation, Value};

    fn graph_session(g: &native::Graph) -> Session {
        with_graph_lib(graph_database(g))
    }

    #[test]
    fn tc_matches_native_on_random_graphs() {
        for seed in [1, 2, 3] {
            let g = random_graph(25, 2.0, seed);
            let s = graph_session(&g);
            let out = s.query("def output(x, y) : TC(E, x, y)").unwrap();
            let native: Relation = native::transitive_closure(&g)
                .into_iter()
                .map(|(u, v)| tuple![u as i64, v as i64])
                .collect();
            assert_eq!(out, native, "seed {seed}");
        }
    }

    #[test]
    fn reach_from_source() {
        let g = path_graph(5);
        let mut db = graph_database(&g);
        db.insert("S", tuple![2]);
        let s = with_graph_lib(db);
        let out = s.query("def output(x) : ReachFrom(S, E, x)").unwrap();
        assert_eq!(
            out,
            Relation::from_tuples([tuple![2], tuple![3], tuple![4]])
        );
    }

    #[test]
    fn degrees_match() {
        let g = native::Graph::new(3, vec![(0, 1), (0, 2), (1, 2)]);
        let s = graph_session(&g);
        let out = s.query("def output(x, d) : OutDegree(V, E, x, d)").unwrap();
        assert_eq!(
            out,
            Relation::from_tuples([tuple![0, 2], tuple![1, 1], tuple![2, 0]])
        );
        let ind = s.query("def output(x, d) : InDegree(V, E, x, d)").unwrap();
        assert_eq!(
            ind,
            Relation::from_tuples([tuple![0, 0], tuple![1, 1], tuple![2, 2]])
        );
    }

    #[test]
    fn apsp_aggregation_variant_matches_bfs() {
        let g = random_graph(12, 1.8, 7);
        let s = graph_session(&g);
        let out = s.query("def output(x, y, d) : APSP2(V, E, x, y, d)").unwrap();
        let native: Relation = native::apsp(&g)
            .into_iter()
            .map(|((u, v), d)| tuple![u as i64, v as i64, d as i64])
            .collect();
        assert_eq!(out, native);
    }

    #[test]
    fn apsp_negation_variant_matches_bfs() {
        let g = random_graph(10, 1.5, 11);
        let s = graph_session(&g);
        let out = s.query("def output(x, y, d) : APSP(V, E, x, y, d)").unwrap();
        let native: Relation = native::apsp(&g)
            .into_iter()
            .map(|((u, v), d)| tuple![u as i64, v as i64, d as i64])
            .collect();
        assert_eq!(out, native);
    }

    #[test]
    fn sssp_matches_bfs() {
        let g = random_graph(15, 2.0, 3);
        let mut db = graph_database(&g);
        db.insert("S", tuple![0]);
        let s = with_graph_lib(db);
        let out = s.query("def output(x, d) : SSSP(S, E, x, d)").unwrap();
        let native: Relation = native::sssp(&g, &[0])
            .into_iter()
            .map(|(v, d)| tuple![v as i64, d as i64])
            .collect();
        assert_eq!(out, native);
    }

    #[test]
    fn pagerank_matches_native_iteration() {
        let g = random_graph(8, 2.0, 5);
        let mut db = graph_database(&g);
        db.set("M", transition_matrix_relation(&g));
        let s = with_graph_lib(db);
        let out = s.query("def output(i, v) : PageRank[M](i, v)").unwrap();
        let m = native::transition_matrix(&g);
        let expected = native::pagerank_iterate(g.n, &m, 0.005, 10_000);
        assert_eq!(out.len(), expected.len(), "same sparse support: {out}");
        for t in out.iter() {
            let i = t.values()[0].as_int().unwrap() as usize;
            let v = t.values()[1].as_f64().unwrap();
            let want = expected[&i];
            assert!(
                (v - want).abs() < 1e-9,
                "rank of {i}: rel {v} vs native {want}"
            );
        }
    }

    #[test]
    fn triangle_count_matches() {
        let g = random_graph(15, 2.5, 9);
        let s = graph_session(&g);
        let out = s.query("def output[c] : c = TriangleCount[E]").unwrap();
        let count = out.iter().next().unwrap().values()[0].as_int().unwrap();
        assert_eq!(count as usize, native::triangle_count(&g));
    }

    #[test]
    fn components_match_native() {
        let g = native::Graph::new(6, vec![(0, 1), (1, 2), (4, 5)]);
        let s = graph_session(&g);
        let out = s.query("def output(x, c) : ComponentOf(V, E, x, c)").unwrap();
        let native: Relation = native::connected_components(&g)
            .into_iter()
            .map(|(v, c)| tuple![v as i64, c as i64])
            .collect();
        assert_eq!(out, native);
    }

    #[test]
    fn symm_and_noloops() {
        let g = native::Graph::new(3, vec![(0, 1), (1, 1)]);
        let s = graph_session(&g);
        let out = s.query("def output(x,y) : Symm(E, x, y)").unwrap();
        assert!(out.contains(&tuple![1, 0]));
        let out = s.query("def output(x,y) : NoLoops(E, x, y)").unwrap();
        assert_eq!(out, Relation::from_tuples([tuple![0, 1]]));
    }

    #[test]
    fn pagerank_uniform_on_cycle() {
        // On a directed cycle the stationary distribution is uniform; the
        // initial vector is already the fixpoint, so the program stops
        // immediately.
        let g = native::Graph::new(4, vec![(0, 1), (1, 2), (2, 3), (3, 0)]);
        let mut db = graph_database(&g);
        db.set("M", transition_matrix_relation(&g));
        let s = with_graph_lib(db);
        let out = s.query("def output(i, v) : PageRank[M](i, v)").unwrap();
        let quarter = Value::float(0.25);
        assert_eq!(out.len(), 4);
        assert!(out.iter().all(|t| t.values()[1] == quarter), "{out}");
    }
}
