//! Random graph and workload generators for tests and benchmarks.

use crate::native::Graph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rel_core::{Database, Relation, Tuple, Value};

/// A random directed graph with `n` vertices and ~`n · avg_degree` edges
/// (no self-loops, deduplicated).
pub fn random_graph(n: usize, avg_degree: f64, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let m = (n as f64 * avg_degree) as usize;
    let mut edges = Vec::with_capacity(m);
    for _ in 0..m {
        let u = rng.gen_range(0..n) as u32;
        let v = rng.gen_range(0..n) as u32;
        if u != v {
            edges.push((u, v));
        }
    }
    Graph::new(n, edges)
}

/// A skewed graph: a few hub vertices participate in most edges —
/// the regime where binary join plans explode (E8).
pub fn skewed_graph(n: usize, hubs: usize, edges_per_hub: usize, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::new();
    for h in 0..hubs.min(n) as u32 {
        for _ in 0..edges_per_hub {
            let v = rng.gen_range(0..n) as u32;
            if v != h {
                edges.push((h, v));
                edges.push((v, h));
            }
        }
    }
    Graph::new(n, edges)
}

/// A simple directed path `0 → 1 → … → n−1` (worst case for TC depth).
pub fn path_graph(n: usize) -> Graph {
    Graph::new(n, (0..n as u32 - 1).map(|i| (i, i + 1)).collect())
}

/// The edge relation `E` of a graph (integer vertex ids).
pub fn edge_relation(g: &Graph) -> Relation {
    Relation::from_tuples(
        g.edges
            .iter()
            .map(|&(u, v)| Tuple::from(vec![Value::Int(u as i64), Value::Int(v as i64)])),
    )
}

/// The vertex relation `V` of a graph.
pub fn vertex_relation(g: &Graph) -> Relation {
    Relation::from_values((0..g.n as i64).map(Value::Int))
}

/// A database holding `V` and `E` for a graph.
pub fn graph_database(g: &Graph) -> Database {
    let mut db = Database::new();
    db.set("V", vertex_relation(g));
    db.set("E", edge_relation(g));
    db
}

/// The 1-based column-stochastic transition matrix of `g` as the ternary
/// relation `M(row, col, value)` — the Rel encoding of §5.3.2.
pub fn transition_matrix_relation(g: &Graph) -> Relation {
    let m = crate::native::transition_matrix(g);
    Relation::from_tuples(m.into_iter().map(|((i, j), v)| {
        Tuple::from(vec![
            Value::Int(i as i64),
            Value::Int(j as i64),
            Value::float(v),
        ])
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_graph_is_reproducible() {
        let a = random_graph(50, 3.0, 42);
        let b = random_graph(50, 3.0, 42);
        assert_eq!(a.edges, b.edges);
        assert!(a.edges.len() > 100);
    }

    #[test]
    fn relations_match_graph() {
        let g = path_graph(5);
        assert_eq!(edge_relation(&g).len(), 4);
        assert_eq!(vertex_relation(&g).len(), 5);
        let db = graph_database(&g);
        assert!(db.get("E").is_some());
        assert!(db.get("V").is_some());
    }

    #[test]
    fn transition_relation_has_floats() {
        let g = path_graph(3);
        let m = transition_matrix_relation(&g);
        assert!(m.iter().all(|t| t.arity() == 3));
        // Vertex 2 (last) has no successors → self-loop.
        assert!(m.len() >= 3);
    }
}
