//! Hand-written Rust baselines for the graph algorithms in the Rel
//! library. These serve two purposes: (a) correctness oracles for the
//! Rel programs (differential tests), and (b) the "legacy imperative
//! implementation" side of the paper's §7 comparison (performance and
//! code size), used by the E4–E6 benchmarks.

use std::collections::{HashMap, HashSet, VecDeque};

/// A directed graph as an adjacency list over vertices `0..n`.
#[derive(Clone, Debug)]
pub struct Graph {
    /// Number of vertices.
    pub n: usize,
    /// Edge list.
    pub edges: Vec<(u32, u32)>,
    /// Adjacency: `adj[u]` = successors of `u`.
    pub adj: Vec<Vec<u32>>,
}

impl Graph {
    /// Build from an edge list over vertices `0..n`.
    pub fn new(n: usize, edges: Vec<(u32, u32)>) -> Self {
        let mut adj = vec![Vec::new(); n];
        for &(u, v) in &edges {
            adj[u as usize].push(v);
        }
        for a in &mut adj {
            a.sort_unstable();
            a.dedup();
        }
        Graph { n, edges, adj }
    }
}

/// Transitive closure by BFS from every vertex: the set of `(u, v)` with a
/// non-empty path `u ⇝ v`.
pub fn transitive_closure(g: &Graph) -> HashSet<(u32, u32)> {
    let mut out = HashSet::new();
    for s in 0..g.n as u32 {
        let mut seen = vec![false; g.n];
        let mut queue: VecDeque<u32> = g.adj[s as usize].iter().copied().collect();
        for &v in &g.adj[s as usize] {
            seen[v as usize] = true;
        }
        while let Some(v) = queue.pop_front() {
            out.insert((s, v));
            for &w in &g.adj[v as usize] {
                if !seen[w as usize] {
                    seen[w as usize] = true;
                    queue.push_back(w);
                }
            }
        }
    }
    out
}

/// All-pairs shortest path lengths in hops (BFS per source), including
/// the trivial `(v, v) → 0` paths — matching the Rel `APSP` definition.
pub fn apsp(g: &Graph) -> HashMap<(u32, u32), u32> {
    let mut out = HashMap::new();
    for s in 0..g.n as u32 {
        let mut dist = vec![u32::MAX; g.n];
        dist[s as usize] = 0;
        out.insert((s, s), 0);
        let mut queue = VecDeque::from([s]);
        while let Some(v) = queue.pop_front() {
            for &w in &g.adj[v as usize] {
                if dist[w as usize] == u32::MAX {
                    dist[w as usize] = dist[v as usize] + 1;
                    out.insert((s, w), dist[w as usize]);
                    queue.push_back(w);
                }
            }
        }
    }
    out
}

/// Single-source shortest hop counts from a source set.
pub fn sssp(g: &Graph, sources: &[u32]) -> HashMap<u32, u32> {
    let mut dist: HashMap<u32, u32> = HashMap::new();
    let mut queue = VecDeque::new();
    for &s in sources {
        dist.insert(s, 0);
        queue.push_back(s);
    }
    while let Some(v) = queue.pop_front() {
        let d = dist[&v];
        for &w in &g.adj[v as usize] {
            if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(w) {
                e.insert(d + 1);
                queue.push_back(w);
            }
        }
    }
    dist
}

/// The PageRank iteration exactly as the paper's Rel program runs it,
/// with Rel's **sparse** vector semantics: vector entries are relation
/// tuples, so positions whose sum is over an empty set simply vanish
/// (rather than holding 0), and the convergence `delta` only ranges over
/// positions present in *both* vectors. Starts from the uniform vector
/// over `1..=d`, repeats `P ← G·P` while `max_k |(G·P)_k − P_k| > eps`,
/// and returns the first `P` within `eps`. `g_matrix` maps
/// `(row, col) → value` (1-based, matching the Rel encoding).
pub fn pagerank_iterate(
    d: usize,
    g_matrix: &HashMap<(usize, usize), f64>,
    eps: f64,
    max_iters: usize,
) -> HashMap<usize, f64> {
    let mut p: HashMap<usize, f64> = (1..=d).map(|k| (k, 1.0 / d as f64)).collect();
    for _ in 0..max_iters {
        let next = mat_vec(g_matrix, &p);
        let delta = next
            .iter()
            .filter_map(|(k, a)| p.get(k).map(|b| (a - b).abs()))
            .fold(0.0f64, f64::max);
        if delta <= eps {
            return p;
        }
        p = next;
    }
    p
}

/// Sparse matrix–vector product over relation-style encodings: an output
/// position appears only when some matrix entry meets some vector entry.
fn mat_vec(m: &HashMap<(usize, usize), f64>, v: &HashMap<usize, f64>) -> HashMap<usize, f64> {
    let mut out: HashMap<usize, f64> = HashMap::new();
    for (&(i, j), &val) in m {
        if let Some(x) = v.get(&j) {
            *out.entry(i).or_insert(0.0) += val * x;
        }
    }
    out
}

/// Column-stochastic transition matrix of a graph, 1-based, as used by
/// PageRank: `G[i][j] = 1/outdeg(j)` for each edge `j → i`; vertices
/// without successors get a self-loop (so the matrix stays stochastic).
pub fn transition_matrix(g: &Graph) -> HashMap<(usize, usize), f64> {
    let mut m = HashMap::new();
    for u in 0..g.n {
        let outs = &g.adj[u];
        if outs.is_empty() {
            m.insert((u + 1, u + 1), 1.0);
        } else {
            let w = 1.0 / outs.len() as f64;
            for &v in outs {
                *m.entry((v as usize + 1, u + 1)).or_insert(0.0) += w;
            }
        }
    }
    m
}

/// Directed triangle count: `E(a,b) ∧ E(b,c) ∧ E(a,c)`.
pub fn triangle_count(g: &Graph) -> usize {
    let set: HashSet<(u32, u32)> = g.edges.iter().copied().collect();
    let mut count = 0;
    for &(a, b) in &set {
        for &c in &g.adj[b as usize] {
            if set.contains(&(a, c)) {
                count += 1;
            }
        }
    }
    count
}

/// Weakly connected components: vertex → smallest vertex id in its
/// component (matching the Rel `ComponentOf` labelling).
pub fn connected_components(g: &Graph) -> HashMap<u32, u32> {
    let mut undirected = vec![Vec::new(); g.n];
    for &(u, v) in &g.edges {
        undirected[u as usize].push(v);
        undirected[v as usize].push(u);
    }
    let mut label: HashMap<u32, u32> = HashMap::new();
    for s in 0..g.n as u32 {
        if label.contains_key(&s) {
            continue;
        }
        // BFS the whole component, label with its minimum.
        let mut members = vec![s];
        let mut seen = HashSet::from([s]);
        let mut queue = VecDeque::from([s]);
        while let Some(v) = queue.pop_front() {
            for &w in &undirected[v as usize] {
                if seen.insert(w) {
                    members.push(w);
                    queue.push_back(w);
                }
            }
        }
        let min = *members.iter().min().expect("nonempty");
        for m in members {
            label.insert(m, min);
        }
    }
    label
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph() -> Graph {
        Graph::new(4, vec![(0, 1), (1, 2), (2, 3)])
    }

    #[test]
    fn tc_of_path() {
        let tc = transitive_closure(&path_graph());
        assert_eq!(tc.len(), 6);
        assert!(tc.contains(&(0, 3)));
        assert!(!tc.contains(&(3, 0)));
    }

    #[test]
    fn apsp_of_path() {
        let d = apsp(&path_graph());
        assert_eq!(d[&(0, 3)], 3);
        assert_eq!(d[&(1, 1)], 0);
        assert!(!d.contains_key(&(3, 0)));
    }

    #[test]
    fn sssp_multi_source() {
        let d = sssp(&path_graph(), &[0, 2]);
        assert_eq!(d[&1], 1);
        assert_eq!(d[&3], 1); // closer via source 2
    }

    #[test]
    fn transition_matrix_is_stochastic() {
        let g = Graph::new(3, vec![(0, 1), (0, 2), (1, 2)]);
        let m = transition_matrix(&g);
        // Column sums = 1.
        for j in 1..=3 {
            let sum: f64 = m.iter().filter(|((_, c), _)| *c == j).map(|(_, v)| v).sum();
            assert!((sum - 1.0).abs() < 1e-12, "column {j} sums to {sum}");
        }
    }

    #[test]
    fn pagerank_converges_on_cycle() {
        let g = Graph::new(3, vec![(0, 1), (1, 2), (2, 0)]);
        let m = transition_matrix(&g);
        let p = pagerank_iterate(3, &m, 1e-9, 10_000);
        for k in 1..=3 {
            assert!((p[&k] - 1.0 / 3.0).abs() < 1e-6);
        }
    }

    #[test]
    fn triangles() {
        let g = Graph::new(3, vec![(0, 1), (1, 2), (0, 2)]);
        assert_eq!(triangle_count(&g), 1);
    }

    #[test]
    fn components() {
        let g = Graph::new(5, vec![(0, 1), (3, 4)]);
        let c = connected_components(&g);
        assert_eq!(c[&0], 0);
        assert_eq!(c[&1], 0);
        assert_eq!(c[&2], 2);
        assert_eq!(c[&3], 3);
        assert_eq!(c[&4], 3);
    }
}
