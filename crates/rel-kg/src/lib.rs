//! # rel-kg
//!
//! Relational knowledge graphs (§2 and §6 of the paper): conceptual
//! (ER/ORM-style) modeling compiled to **Graph Normal Form** schemas,
//! entity minting with the unique-identifier property, record ingestion
//! (wide rows → indivisible GNF facts), and automatic synthesis of Rel
//! integrity constraints from the model.
//!
//! An RKG = relational data model + GNF + Rel (the paper's three
//! components). This crate supplies the modeling layer; querying is plain
//! Rel through [`rel_engine::Session`].

use rel_core::gnf::{KeyShape, RelationDecl, Schema};
use rel_core::{name, Database, Name, RelError, RelResult, Relation, Tuple, Value};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// An attribute of a concept in the conceptual model.
#[derive(Clone, Debug, PartialEq)]
pub struct Attribute {
    /// Attribute name (becomes the suffix of the GNF relation name:
    /// `Product` + `price` → `ProductPrice`).
    pub name: String,
    /// Whether every entity of the concept must have this attribute
    /// (synthesizes a totality `ic`).
    pub required: bool,
}

/// A relationship between two concepts, with cardinality on the `to`
/// side (`OrderCustomer`: many orders, one customer ⇒ functional).
#[derive(Clone, Debug, PartialEq)]
pub struct Relationship {
    /// Relationship name (the GNF relation name, e.g. `PaymentOrder`).
    pub name: String,
    /// Source concept.
    pub from: String,
    /// Target concept.
    pub to: String,
    /// True when each `from`-entity relates to at most one `to`-entity
    /// (the relation is a function — all-but-last-column key).
    pub functional: bool,
}

/// A conceptual model: concepts with attributes, plus relationships.
/// Compiles to a GNF [`Schema`] and to Rel integrity constraints.
#[derive(Clone, Debug, Default)]
pub struct ConceptualModel {
    concepts: BTreeMap<String, Vec<Attribute>>,
    relationships: Vec<Relationship>,
}

impl ConceptualModel {
    /// Empty model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare a concept (entity type).
    pub fn concept(mut self, name: &str) -> Self {
        self.concepts.entry(name.to_string()).or_default();
        self
    }

    /// Declare an attribute of a concept.
    pub fn attribute(mut self, concept: &str, attr: &str, required: bool) -> Self {
        self.concepts
            .entry(concept.to_string())
            .or_default()
            .push(Attribute { name: attr.to_string(), required });
        self
    }

    /// Declare a relationship.
    pub fn relationship(mut self, name: &str, from: &str, to: &str, functional: bool) -> Self {
        self = self.concept(from).concept(to);
        self.relationships.push(Relationship {
            name: name.to_string(),
            from: from.to_string(),
            to: to.to_string(),
            functional,
        });
        self
    }

    /// The GNF relation name of an attribute.
    pub fn attr_relation(concept: &str, attr: &str) -> String {
        let mut chars = attr.chars();
        let capitalized = match chars.next() {
            Some(c) => c.to_uppercase().collect::<String>() + chars.as_str(),
            None => String::new(),
        };
        format!("{concept}{capitalized}")
    }

    /// Compile to a GNF schema: each attribute becomes a binary functional
    /// relation, each relationship a binary relation (functional per its
    /// cardinality) — §2's decomposition, with each relation holding one
    /// indivisible kind of fact.
    pub fn to_schema(&self) -> Schema {
        let mut schema = Schema::new();
        for c in self.concepts.keys() {
            schema.add_concept(c);
        }
        for (c, attrs) in &self.concepts {
            for a in attrs {
                schema.add_relation(RelationDecl::functional(
                    Self::attr_relation(c, &a.name),
                    vec![Some(name(c)), None],
                ));
            }
        }
        for r in &self.relationships {
            let decl = RelationDecl {
                name: name(&r.name),
                arity: 2,
                key: if r.functional { KeyShape::AllButLast } else { KeyShape::AllColumns },
                concepts: vec![Some(name(&r.from)), Some(name(&r.to))],
            };
            schema.add_relation(decl);
        }
        schema
    }

    /// Synthesize Rel integrity constraints from the model: foreign-key
    /// style domain constraints for relationships and totality constraints
    /// for required attributes (§3.5: "the rich language of integrity
    /// constraints — in place of a more classical database schema").
    pub fn to_constraints(&self) -> String {
        let mut out = String::new();
        for r in &self.relationships {
            let _ = writeln!(
                out,
                "ic {name}_from_domain(x) requires {name}(x, _) implies {from}(x)\n\
                 ic {name}_to_domain(y) requires {name}(_, y) implies {to}(y)",
                name = r.name,
                from = concept_population_rel(&r.from),
                to = concept_population_rel(&r.to),
            );
        }
        for (c, attrs) in &self.concepts {
            for a in attrs {
                let rel = Self::attr_relation(c, &a.name);
                let _ = writeln!(
                    out,
                    "ic {rel}_domain(x) requires {rel}(x, _) implies {pop}(x)",
                    pop = concept_population_rel(c),
                );
                if a.required {
                    let _ = writeln!(
                        out,
                        "ic {rel}_total(x) requires {pop}(x) implies {rel}(x, _)",
                        pop = concept_population_rel(c),
                    );
                }
            }
        }
        out
    }
}

/// Name of the unary population relation of a concept (`Order` entities
/// live in `OrderEntity`).
pub fn concept_population_rel(concept: &str) -> String {
    format!("{concept}Entity")
}

/// Mints database-unique entity identifiers per concept — the *things,
/// not strings* side of GNF (§2): entities get identifiers disjoint from
/// all values and from other concepts' identifiers.
#[derive(Clone, Debug, Default)]
pub struct EntityRegistry {
    /// Concept name → concept index.
    concepts: BTreeMap<String, u32>,
    /// External key (concept, surrogate string) → minted entity.
    minted: BTreeMap<(u32, String), Value>,
    next_id: u64,
}

impl EntityRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn concept_idx(&mut self, concept: &str) -> u32 {
        let next = self.concepts.len() as u32;
        *self.concepts.entry(concept.to_string()).or_insert(next)
    }

    /// Mint (or look up) the entity for an external key. The same
    /// `(concept, key)` always maps to the same entity; distinct concepts
    /// never share identifiers.
    pub fn entity(&mut self, concept: &str, key: &str) -> Value {
        let c = self.concept_idx(concept);
        if let Some(v) = self.minted.get(&(c, key.to_string())) {
            return v.clone();
        }
        self.next_id += 1;
        let v = Value::entity(c, self.next_id);
        self.minted.insert((c, key.to_string()), v.clone());
        v
    }

    /// Number of minted entities.
    pub fn len(&self) -> usize {
        self.minted.len()
    }

    /// True when nothing has been minted.
    pub fn is_empty(&self) -> bool {
        self.minted.is_empty()
    }
}

/// A wide record (one row of a CSV-ish import): an external key plus
/// attribute values.
#[derive(Clone, Debug)]
pub struct Record {
    /// External key of the entity this row describes.
    pub key: String,
    /// `(attribute name, value)` pairs; `None` = missing (GNF has no
    /// nulls — the fact is simply absent, §2).
    pub fields: Vec<(String, Option<Value>)>,
}

/// Ingest wide records for one concept into GNF facts: mints entities,
/// populates the concept's population relation and one binary relation
/// per attribute. Missing values produce **no** tuple (no nulls).
pub fn ingest_records(
    db: &mut Database,
    registry: &mut EntityRegistry,
    concept: &str,
    records: &[Record],
) -> RelResult<()> {
    for rec in records {
        let e = registry.entity(concept, &rec.key);
        db.insert(
            concept_population_rel(concept),
            Tuple::from(vec![e.clone()]),
        );
        for (attr, value) in &rec.fields {
            if let Some(v) = value {
                db.insert(
                    ConceptualModel::attr_relation(concept, attr),
                    Tuple::from(vec![e.clone(), v.clone()]),
                );
            }
        }
    }
    Ok(())
}

/// Link two already-minted entities through a relationship.
pub fn ingest_link(
    db: &mut Database,
    registry: &mut EntityRegistry,
    rel: &Relationship,
    from_key: &str,
    to_key: &str,
) {
    let f = registry.entity(&rel.from, from_key);
    let t = registry.entity(&rel.to, to_key);
    db.insert(&rel.name, Tuple::from(vec![f, t]));
}

/// Parse simple CSV text (header row defines attribute names; first
/// column is the external key). Values parse as int, then float, then
/// string; empty cells are missing.
pub fn parse_csv(text: &str) -> RelResult<Vec<Record>> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header: Vec<String> = lines
        .next()
        .ok_or_else(|| RelError::internal("empty CSV"))?
        .split(',')
        .map(|s| s.trim().to_string())
        .collect();
    if header.is_empty() {
        return Err(RelError::internal("CSV header has no columns"));
    }
    let mut out = Vec::new();
    for line in lines {
        let cells: Vec<&str> = line.split(',').map(str::trim).collect();
        if cells.len() != header.len() {
            return Err(RelError::internal(format!(
                "CSV row has {} cells, header has {}: {line:?}",
                cells.len(),
                header.len()
            )));
        }
        let key = cells[0].to_string();
        let fields = header[1..]
            .iter()
            .zip(&cells[1..])
            .map(|(h, c)| (h.clone(), parse_cell(c)))
            .collect();
        out.push(Record { key, fields });
    }
    Ok(out)
}

fn parse_cell(cell: &str) -> Option<Value> {
    if cell.is_empty() {
        return None;
    }
    if let Ok(i) = cell.parse::<i64>() {
        return Some(Value::Int(i));
    }
    if let Ok(f) = cell.parse::<f64>() {
        return Some(Value::float(f));
    }
    Some(Value::str(cell))
}

/// Build the full order-management knowledge graph of §2 (the paper's
/// running conceptual model) with the Figure 1 data, entity-minted.
pub fn orders_knowledge_graph() -> (ConceptualModel, Database, EntityRegistry) {
    let model = ConceptualModel::new()
        .attribute("Product", "price", true)
        .attribute("Product", "name", false)
        .attribute("Payment", "amount", true)
        .attribute("OrderLine", "quantity", true)
        .relationship("PaymentOrder", "Payment", "Order", true)
        .relationship("OrderCustomer", "Order", "Customer", true)
        .relationship("LineOrder", "OrderLine", "Order", true)
        .relationship("LineProduct", "OrderLine", "Product", true);

    let mut db = Database::new();
    let mut reg = EntityRegistry::new();
    let products = [("P1", 10), ("P2", 20), ("P3", 30), ("P4", 40)];
    for (k, price) in products {
        let recs = [Record {
            key: k.to_string(),
            fields: vec![
                ("price".into(), Some(Value::Int(price))),
                ("name".into(), Some(Value::str(format!("product {k}")))),
            ],
        }];
        ingest_records(&mut db, &mut reg, "Product", &recs).expect("ingest");
    }
    for k in ["O1", "O2", "O3"] {
        let recs = [Record { key: k.to_string(), fields: vec![] }];
        ingest_records(&mut db, &mut reg, "Order", &recs).expect("ingest");
    }
    for (k, amount) in [("Pmt1", 20), ("Pmt2", 10), ("Pmt3", 10), ("Pmt4", 90)] {
        let recs = [Record {
            key: k.to_string(),
            fields: vec![("amount".into(), Some(Value::Int(amount)))],
        }];
        ingest_records(&mut db, &mut reg, "Payment", &recs).expect("ingest");
    }
    let pay_order = model
        .relationships
        .iter()
        .find(|r| r.name == "PaymentOrder")
        .expect("declared")
        .clone();
    for (p, o) in [("Pmt1", "O1"), ("Pmt2", "O2"), ("Pmt3", "O1"), ("Pmt4", "O3")] {
        ingest_link(&mut db, &mut reg, &pay_order, p, o);
    }
    // Order lines: (order, product, quantity) of Figure 1.
    let line_order = model.relationships.iter().find(|r| r.name == "LineOrder").expect("d").clone();
    let line_product =
        model.relationships.iter().find(|r| r.name == "LineProduct").expect("d").clone();
    for (i, (o, p, q)) in [("O1", "P1", 2), ("O1", "P2", 1), ("O2", "P1", 1), ("O3", "P3", 4)]
        .iter()
        .enumerate()
    {
        let lk = format!("L{i}");
        let recs = [Record {
            key: lk.clone(),
            fields: vec![("quantity".into(), Some(Value::Int(*q)))],
        }];
        ingest_records(&mut db, &mut reg, "OrderLine", &recs).expect("ingest");
        ingest_link(&mut db, &mut reg, &line_order, &lk, o);
        ingest_link(&mut db, &mut reg, &line_product, &lk, p);
    }
    (model, db, reg)
}

/// Validate a database against a conceptual model: GNF key shapes and the
/// unique-identifier property.
pub fn validate(model: &ConceptualModel, db: &Database) -> RelResult<()> {
    model.to_schema().validate(db)
}

/// A wide single-relation encoding of the same data, for the E10 GNF
/// benchmark: `ProductWide(product, name, price)` — the §2 example of a
/// relation that is *not* in GNF.
pub fn wide_products(n: usize) -> Relation {
    Relation::from_tuples((0..n).map(|i| {
        Tuple::from(vec![
            Value::str(format!("P{i}")),
            Value::str(format!("product {i}")),
            Value::Int((i as i64 % 50 + 1) * 10),
        ])
    }))
}

/// The GNF decomposition of [`wide_products`].
pub fn gnf_products(n: usize) -> BTreeMap<Name, Relation> {
    rel_core::gnf::decompose_to_gnf("Product", &["Name", "Price"], &wide_products(n))
        .expect("well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rel_stdlib::SessionExt;

    #[test]
    fn model_compiles_to_gnf_schema() {
        let (model, db, _) = orders_knowledge_graph();
        validate(&model, &db).expect("the orders KG is in GNF");
    }

    #[test]
    fn entity_identifiers_are_unique_across_concepts() {
        let mut reg = EntityRegistry::new();
        let p = reg.entity("Product", "X1");
        let o = reg.entity("Order", "X1"); // same external key, distinct concept
        assert_ne!(p, o);
        // Stable minting.
        assert_eq!(p, reg.entity("Product", "X1"));
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn missing_values_produce_no_tuples() {
        let mut db = Database::new();
        let mut reg = EntityRegistry::new();
        let recs = [Record {
            key: "P9".into(),
            fields: vec![("price".into(), None), ("name".into(), Some(Value::str("x")))],
        }];
        ingest_records(&mut db, &mut reg, "Product", &recs).unwrap();
        assert!(db.get("ProductPrice").is_none());
        assert_eq!(db.get("ProductName").unwrap().len(), 1);
    }

    #[test]
    fn csv_parsing() {
        let recs = parse_csv("id,price,name\nP1,10,apple\nP2,,pear\n").unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].key, "P1");
        assert_eq!(recs[0].fields[0], ("price".into(), Some(Value::Int(10))));
        assert_eq!(recs[1].fields[0], ("price".into(), None));
        assert_eq!(recs[1].fields[1], ("name".into(), Some(Value::str("pear"))));
    }

    #[test]
    fn queries_run_over_the_kg() {
        let (_, db, _) = orders_knowledge_graph();
        let s = rel_engine::Session::with_stdlib(db);
        // Total paid per order, through minted entities.
        let out = s
            .query(
                "def OrderAmount(o, a) : \
                   exists((p) | PaymentOrder(p, o) and PaymentAmount(p, a))\n\
                 def Ord(o) : OrderEntity(o)\n\
                 def output[o in Ord] : sum[OrderAmount[o]] <++ 0",
            )
            .unwrap();
        assert_eq!(out.len(), 3);
        let totals: Vec<i64> =
            out.iter().map(|t| t.values()[1].as_int().unwrap()).collect();
        let mut sorted = totals.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![10, 30, 90]);
    }

    #[test]
    fn synthesized_constraints_hold() {
        let (model, db, _) = orders_knowledge_graph();
        let ics = model.to_constraints();
        let s = rel_engine::Session::new(db).with_library(&ics);
        s.query("def output(x) : ProductPrice(x, _)").unwrap();
    }

    #[test]
    fn synthesized_constraints_catch_violations() {
        let (model, mut db, _) = orders_knowledge_graph();
        // A payment amount for a non-entity violates the domain ic.
        db.insert("PaymentAmount", Tuple::from(vec![Value::str("ghost"), Value::Int(1)]));
        let ics = model.to_constraints();
        let s = rel_engine::Session::new(db).with_library(&ics);
        let err = s.query("def output(x) : ProductPrice(x, _)").unwrap_err();
        assert!(
            matches!(err, RelError::ConstraintViolation { .. }),
            "{err}"
        );
    }

    #[test]
    fn unique_identifier_property_validated() {
        let (model, mut db, mut reg) = orders_knowledge_graph();
        // Steal a Product entity id and use it as an Order by linking a
        // *fresh* payment to it (fresh so no functional key trips first).
        let product_entity = db
            .get("ProductPrice")
            .unwrap()
            .iter()
            .next()
            .unwrap()
            .values()[0]
            .clone();
        let fresh_payment = reg.entity("Payment", "PmtX");
        db.insert(
            "PaymentAmount",
            Tuple::from(vec![fresh_payment.clone(), Value::Int(7)]),
        );
        db.insert(
            "PaymentOrder",
            Tuple::from(vec![fresh_payment, product_entity]),
        );
        let err = validate(&model, &db).unwrap_err();
        assert!(err.to_string().contains("unique identifier"), "{err}");
    }

    #[test]
    fn wide_vs_gnf_decomposition_agree() {
        let wide = wide_products(20);
        let parts = gnf_products(20);
        assert_eq!(parts[&name("ProductName")].len(), 20);
        assert_eq!(parts[&name("ProductPrice")].len(), 20);
        // Rejoin the decomposition and compare with the wide relation.
        let mut rejoined = Relation::new();
        for t in parts[&name("ProductName")].iter() {
            let key = &t.values()[0];
            for p in parts[&name("ProductPrice")].partial_apply(std::slice::from_ref(key)).iter() {
                rejoined.insert(Tuple::from(vec![
                    key.clone(),
                    t.values()[1].clone(),
                    p.values()[0].clone(),
                ]));
            }
        }
        assert_eq!(rejoined, wide);
    }
}
