//! # rel-interp
//!
//! A **reference interpreter** implementing the denotational semantics of
//! Figures 3–4 of the paper (Addendum A) as literally as practical: an
//! environment µ maps identifiers to relations (first-order variables are
//! bound to singleton relations `{⟨v⟩}`, tuple variables to singleton
//! tuple sets), and every syntactic construct is evaluated by its ⟦·⟧µ
//! equation.
//!
//! **Substitution (documented in DESIGN.md §4):** the paper's universe
//! **Values** is infinite; this interpreter replaces it with the *active
//! domain* — every value in the database plus every constant in the
//! program (and `_...` ranges over active-domain tuples up to the widest
//! arity in scope). For range-restricted (safe) queries the two agree,
//! which is exactly what the safety analysis guarantees; the optimized
//! engine is differential-tested against this interpreter on such
//! queries.
//!
//! Programs are first specialized (second-order elimination) with
//! [`rel_sema::specialize`], then each stratum is evaluated to a fixpoint
//! by naive re-derivation (inflationary for monotone strata, synchronous
//! partial-fixpoint for non-monotone ones — mirroring the engine's
//! semantics at reference-implementation speed).
//!
//! The interpreter is deliberately *slow and obvious*: quantifiers and
//! abstractions enumerate the universe. A work budget guards against
//! blow-ups; exceeding it is an error, not a hang.

use rel_core::{Database, RelError, RelResult, Relation, Tuple, Value};
use rel_sema::specialize::{specialize, Specialized};
use rel_syntax::ast::{AppStyle, Arg, BindStyle, Binding, CmpOp, Def, Expr};
use std::collections::{BTreeMap, BTreeSet};

/// Evaluation budget: total number of elementary steps the interpreter
/// may take before giving up.
const DEFAULT_BUDGET: u64 = 2_000_000;

/// Iteration cap for fixpoints.
const FIX_CAP: usize = 1_000;

/// The reference interpreter.
pub struct Interp {
    /// Universe of first-order values (active domain + program constants).
    universe: Vec<Value>,
    /// Maximum tuple width `_...` and tuple variables may take.
    max_width: usize,
    /// Remaining work budget.
    budget: std::cell::Cell<u64>,
}

/// An environment: every binding is a relation (Fig. 3 — variables map to
/// singleton relations).
type Env = BTreeMap<String, Relation>;

impl Interp {
    /// Interpret `src` against `db` and return the `output` relation.
    pub fn run(db: &Database, src: &str) -> RelResult<Relation> {
        Self::run_relation(db, src, "output")
    }

    /// Interpret `src` against `db` and return an arbitrary defined
    /// relation.
    pub fn run_relation(db: &Database, src: &str, want: &str) -> RelResult<Relation> {
        let program = rel_syntax::parse_program(src)?;
        let sp = specialize(&program)?;

        // Universe: active domain + program constants.
        let mut universe: BTreeSet<Value> = db.active_domain();
        for defs in sp.defs.values() {
            for def in defs {
                collect_constants(&def.body, &mut universe);
                for p in &def.params {
                    if let Binding::Lit(v) = p {
                        universe.insert(v.clone());
                    }
                }
            }
        }
        let max_width = db
            .iter()
            .flat_map(|(_, r)| r.iter().map(Tuple::arity))
            .chain(sp.defs.values().flatten().map(|d| d.params.len()))
            .max()
            .unwrap_or(0)
            .max(2);

        let interp = Interp {
            universe: universe.into_iter().collect(),
            max_width,
            budget: std::cell::Cell::new(DEFAULT_BUDGET),
        };
        let rels = interp.fixpoint(db, &sp)?;
        Ok(rels.get(want).cloned().unwrap_or_default())
    }

    fn spend(&self, amount: u64) -> RelResult<()> {
        let left = self.budget.get();
        if left < amount {
            return Err(RelError::internal(
                "reference interpreter budget exhausted (query too large for \
                 naive enumeration)",
            ));
        }
        self.budget.set(left - amount);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Program evaluation
    // ------------------------------------------------------------------

    /// Evaluate all definitions: stratified naive fixpoints.
    fn fixpoint(&self, db: &Database, sp: &Specialized) -> RelResult<BTreeMap<String, Relation>> {
        let mut rels: BTreeMap<String, Relation> =
            db.iter().map(|(n, r)| (n.to_string(), r.clone())).collect();
        for group in strata_of(sp) {
            if !group.recursive {
                let name = &group.names[0];
                let derived = self.eval_pred(&rels, sp, name)?;
                rels.entry(name.clone()).or_default().absorb(&derived);
                continue;
            }
            for n in &group.names {
                rels.entry(n.clone()).or_default();
            }
            for _ in 0..FIX_CAP {
                let mut next: BTreeMap<String, Relation> = BTreeMap::new();
                for n in &group.names {
                    next.insert(n.clone(), self.eval_pred(&rels, sp, n)?);
                }
                if group.monotone {
                    let mut changed = false;
                    for n in &group.names {
                        let cur = rels.get_mut(n.as_str()).expect("seeded");
                        changed |= cur.absorb(&next[n]) > 0;
                    }
                    if !changed {
                        break;
                    }
                } else {
                    let stable = group.names.iter().all(|n| rels[n.as_str()] == next[n]);
                    for n in &group.names {
                        rels.insert(n.clone(), next[n].clone());
                    }
                    if stable {
                        break;
                    }
                }
            }
        }
        Ok(rels)
    }

    fn eval_pred(
        &self,
        rels: &BTreeMap<String, Relation>,
        sp: &Specialized,
        pred: &str,
    ) -> RelResult<Relation> {
        let mut out = Relation::new();
        for def in sp.defs.get(pred).map(Vec::as_slice).unwrap_or(&[]) {
            out.absorb(&self.eval_rule(rels, def)?);
        }
        Ok(out)
    }

    /// ⟦def p(params): body⟧ — enumerate parameter bindings over the
    /// universe (Fig. 3's abstraction semantics) and collect head·value
    /// tuples.
    fn eval_rule(&self, rels: &BTreeMap<String, Relation>, def: &Def) -> RelResult<Relation> {
        let mut out = Relation::new();
        let env: Env = rels.clone();
        self.enum_bindings(&env, &def.params, &mut Vec::new(), &mut |env2, prefix| {
            let body = self.eval(env2, &def.body)?;
            match def.style {
                BindStyle::Paren => {
                    if body.is_true() {
                        out.insert(Tuple::from(prefix.to_vec()));
                    }
                }
                BindStyle::Bracket => {
                    for t in body.iter() {
                        out.insert(Tuple::from(prefix.to_vec()).concat(t));
                    }
                }
            }
            Ok(())
        })?;
        Ok(out)
    }

    /// Enumerate all bindings of a binding list over the universe,
    /// invoking `k(env, prefix-values)` for each.
    fn enum_bindings(
        &self,
        env: &Env,
        bindings: &[Binding],
        prefix: &mut Vec<Value>,
        k: &mut dyn FnMut(&Env, &[Value]) -> RelResult<()>,
    ) -> RelResult<()> {
        let Some((first, rest)) = bindings.split_first() else {
            return k(env, prefix);
        };
        match first {
            Binding::Var(_) | Binding::Wildcard => {
                let name = first.var_name().unwrap_or("_anon");
                for v in &self.universe {
                    self.spend(1)?;
                    let mut env2 = env.clone();
                    env2.insert(
                        name.to_string(),
                        Relation::singleton(Tuple::from(vec![v.clone()])),
                    );
                    prefix.push(v.clone());
                    self.enum_bindings(&env2, rest, prefix, k)?;
                    prefix.pop();
                }
                Ok(())
            }
            Binding::In(x, dom) => {
                let d = self.eval(env, dom)?;
                for t in d.iter().filter(|t| t.arity() == 1) {
                    self.spend(1)?;
                    let v = &t.values()[0];
                    let mut env2 = env.clone();
                    env2.insert(
                        x.clone(),
                        Relation::singleton(Tuple::from(vec![v.clone()])),
                    );
                    prefix.push(v.clone());
                    self.enum_bindings(&env2, rest, prefix, k)?;
                    prefix.pop();
                }
                Ok(())
            }
            Binding::TupleVar(x) => {
                for t in self.all_tuples()? {
                    self.spend(1)?;
                    let mut env2 = env.clone();
                    env2.insert(x.clone(), Relation::singleton(t.clone()));
                    let before = prefix.len();
                    prefix.extend(t.values().iter().cloned());
                    self.enum_bindings(&env2, rest, prefix, k)?;
                    prefix.truncate(before);
                }
                Ok(())
            }
            Binding::Lit(v) => {
                prefix.push(v.clone());
                self.enum_bindings(env, rest, prefix, k)?;
                prefix.pop();
                Ok(())
            }
            Binding::RelVar(n) => Err(RelError::resolve(format!(
                "relation variable `{{{n}}}` in the reference interpreter \
                 (specialization should have removed it)"
            ))),
        }
    }

    /// All active-domain tuples up to the maximum width (the finite
    /// stand-in for *Tuples₁*).
    fn all_tuples(&self) -> RelResult<Vec<Tuple>> {
        let mut out = vec![Tuple::empty()];
        let mut layer = vec![Vec::<Value>::new()];
        for _ in 0..self.max_width {
            let mut next = Vec::new();
            for base in &layer {
                for v in &self.universe {
                    self.spend(1)?;
                    let mut t = base.clone();
                    t.push(v.clone());
                    out.push(Tuple::from(t.clone()));
                    next.push(t);
                }
            }
            layer = next;
        }
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Expression semantics (Fig. 3) — every construct denotes a Relation.
    // ------------------------------------------------------------------

    /// ⟦e⟧µ.
    pub fn eval(&self, env: &Env, e: &Expr) -> RelResult<Relation> {
        self.spend(1)?;
        match e {
            // J c Kµ = {⟨c⟩}
            Expr::Lit(v) => Ok(Relation::singleton(Tuple::from(vec![v.clone()]))),
            // J x Kµ = µ(x); relation names denote their extent.
            Expr::Ident(x) | Expr::TupleVar(x) => {
                Ok(env.get(x).cloned().unwrap_or_default())
            }
            // J ?p Kµ = the extent of the reserved relation `?p` (the
            // prepared-query API injects it at execute time; absent = ∅).
            Expr::Param(p) => {
                Ok(env.get(&format!("?{p}")).cloned().unwrap_or_default())
            }
            // J _ Kµ = {⟨v⟩ | v ∈ Values}
            Expr::Wildcard => Ok(Relation::from_values(self.universe.iter().cloned())),
            // J _... Kµ = Tuples₁
            Expr::TupleWildcard => Ok(Relation::from_tuples(self.all_tuples()?)),
            // J (e₁, e₂) Kµ = JE₁Kµ × JE₂Kµ
            Expr::Product(es) => {
                let mut acc = Relation::true_rel();
                for x in es {
                    acc = acc.product(&self.eval(env, x)?);
                }
                Ok(acc)
            }
            // J {e₁; e₂} Kµ = JE₁Kµ ∪ JE₂Kµ
            Expr::Union(es) => {
                let mut acc = Relation::new();
                for x in es {
                    acc.absorb(&self.eval(env, x)?);
                }
                Ok(acc)
            }
            // J e where F Kµ = JeKµ × JFKµ
            Expr::Where(body, cond) => {
                let c = self.eval(env, cond)?;
                if c.is_true() {
                    self.eval(env, body)
                } else {
                    Ok(Relation::new())
                }
            }
            Expr::Abstraction { bindings, style, body } => {
                let mut out = Relation::new();
                self.enum_bindings(env, bindings, &mut Vec::new(), &mut |env2, prefix| {
                    let b = self.eval(env2, body)?;
                    match style {
                        BindStyle::Paren => {
                            if b.is_true() {
                                out.insert(Tuple::from(prefix.to_vec()));
                            }
                        }
                        BindStyle::Bracket => {
                            for t in b.iter() {
                                out.insert(Tuple::from(prefix.to_vec()).concat(t));
                            }
                        }
                    }
                    Ok(())
                })?;
                Ok(out)
            }
            Expr::App { func, args, style } => self.eval_app(env, func, args, *style),
            // Connectives on boolean relations (Fig. 4).
            Expr::And(a, b) => Ok(self.eval(env, a)?.intersect(&self.eval(env, b)?)),
            Expr::Or(a, b) => Ok(self.eval(env, a)?.union(&self.eval(env, b)?)),
            Expr::Not(a) => Ok(bool_rel(!self.eval(env, a)?.is_true())),
            Expr::Implies(a, b) => {
                Ok(bool_rel(!self.eval(env, a)?.is_true() || self.eval(env, b)?.is_true()))
            }
            Expr::Iff(a, b) => {
                Ok(bool_rel(self.eval(env, a)?.is_true() == self.eval(env, b)?.is_true()))
            }
            Expr::Xor(a, b) => {
                Ok(bool_rel(self.eval(env, a)?.is_true() != self.eval(env, b)?.is_true()))
            }
            Expr::Exists { bindings, body } => {
                let mut found = false;
                self.enum_bindings(env, bindings, &mut Vec::new(), &mut |env2, _| {
                    if !found && self.eval(env2, body)?.is_true() {
                        found = true;
                    }
                    Ok(())
                })?;
                Ok(bool_rel(found))
            }
            Expr::Forall { bindings, body } => {
                let mut all = true;
                self.enum_bindings(env, bindings, &mut Vec::new(), &mut |env2, _| {
                    if all && !self.eval(env2, body)?.is_true() {
                        all = false;
                    }
                    Ok(())
                })?;
                Ok(bool_rel(all))
            }
            Expr::Cmp(op, a, b) => {
                let l = self.eval(env, a)?;
                let r = self.eval(env, b)?;
                Ok(bool_rel(cmp_rels(*op, &l, &r)))
            }
            Expr::Arith(op, a, b) => {
                let l = self.eval(env, a)?;
                let r = self.eval(env, b)?;
                let mut out = Relation::new();
                for x in l.iter().filter(|t| t.arity() == 1) {
                    for y in r.iter().filter(|t| t.arity() == 1) {
                        self.spend(1)?;
                        let solved = rel_engine::builtins::solve(
                            op_name(*op),
                            &[
                                Some(x.values()[0].clone()),
                                Some(y.values()[0].clone()),
                                None,
                            ],
                        )?;
                        for t in solved {
                            out.insert(Tuple::from(vec![t[2].clone()]));
                        }
                    }
                }
                Ok(out)
            }
            Expr::Neg(a) => self.eval(
                env,
                &Expr::Arith(
                    rel_syntax::ast::ArithOp::Mul,
                    Box::new(Expr::Lit(Value::Int(-1))),
                    a.clone(),
                ),
            ),
            Expr::DotJoin(a, b) => {
                let l = self.eval(env, a)?;
                let r = self.eval(env, b)?;
                let mut out = Relation::new();
                for x in l.iter().filter(|t| !t.is_empty()) {
                    for y in r.iter().filter(|t| !t.is_empty()) {
                        if x.values()[x.arity() - 1] == y.values()[0] {
                            let mut vals = x.values()[..x.arity() - 1].to_vec();
                            vals.extend(y.values()[1..].iter().cloned());
                            out.insert(Tuple::from(vals));
                        }
                    }
                }
                Ok(out)
            }
            Expr::LeftOverride(a, b) => {
                let l = self.eval(env, a)?;
                let r = self.eval(env, b)?;
                let mut out = l.clone();
                for t in r.iter().filter(|t| !t.is_empty()) {
                    let key = &t.values()[..t.arity() - 1];
                    if !l.iter().any(|x| x.starts_with(key)) {
                        out.insert(t.clone());
                    }
                }
                Ok(out)
            }
        }
    }

    /// Application semantics (Figs. 3–4): full applications intersect with
    /// `{⟨⟩}`; partial applications produce suffix relations; argument
    /// expressions are first-order value sets.
    fn eval_app(
        &self,
        env: &Env,
        func: &Expr,
        args: &[Arg],
        style: AppStyle,
    ) -> RelResult<Relation> {
        // `reduce` is the built-in second-order primitive (§5.2).
        if let Expr::Ident(n) = func {
            if n == "reduce" && (args.len() == 2 || args.len() == 3) {
                let input = self.eval(env, &args[1].expr)?;
                let folded = self.reduce_with(env, &args[0].expr, &input)?;
                if args.len() == 2 {
                    return Ok(folded);
                }
                let v = self.eval(env, &args[2].expr)?;
                return Ok(bool_rel(!folded.is_empty() && folded == v));
            }
        }
        let f = match func {
            Expr::Ident(n) if !env.contains_key(n) && rel_sema::builtins::is_builtin(n) => {
                return self.eval_builtin_app(env, n, args, style);
            }
            other => self.eval(other_env(env), other)?,
        };
        let mut result = f;
        for a in args {
            let mut narrowed = Relation::new();
            match &a.expr {
                Expr::Wildcard => {
                    // J{E}[_]K = {t | ⟨v⟩·t ∈ E}
                    for t in result.iter().filter(|t| !t.is_empty()) {
                        narrowed.insert(t.suffix(1));
                    }
                }
                Expr::TupleWildcard => {
                    // J{E}[_...]K = {t | s·t ∈ E}
                    for t in result.iter() {
                        for cut in 0..=t.arity() {
                            narrowed.insert(t.suffix(cut));
                        }
                    }
                }
                Expr::TupleVar(x) => {
                    // J{E}[x...]K — x... is bound to a singleton tuple set.
                    let bound = env.get(x).cloned().unwrap_or_default();
                    for s in bound.iter() {
                        for t in result.iter() {
                            if t.starts_with(s.values()) {
                                narrowed.insert(t.suffix(s.arity()));
                            }
                        }
                    }
                }
                other => {
                    // First-order argument: a set of values.
                    let vals = self.eval(env, other)?;
                    for v in vals.iter().filter(|t| t.arity() == 1) {
                        for t in result.iter() {
                            if t.starts_with(v.values()) {
                                narrowed.insert(t.suffix(1));
                            }
                        }
                    }
                }
            }
            result = narrowed;
        }
        match style {
            AppStyle::Partial => Ok(result),
            // Full application: J{E}(args)K = J{E}[args]K ∩ {⟨⟩}.
            AppStyle::Full => Ok(bool_rel(result.is_true())),
        }
    }

    fn eval_builtin_app(
        &self,
        env: &Env,
        name: &str,
        args: &[Arg],
        style: AppStyle,
    ) -> RelResult<Relation> {
        let sig = rel_sema::builtins::lookup(name).expect("checked by caller");
        let canonical = rel_sema::builtins::canonical(name).expect("checked");
        let arg_sets: Vec<Relation> = args
            .iter()
            .map(|a| self.eval(env, &a.expr))
            .collect::<RelResult<_>>()?;
        let mut out = Relation::new();
        let mut stack: Vec<Vec<Value>> = vec![Vec::new()];
        for set in &arg_sets {
            let mut next = Vec::new();
            for base in &stack {
                for t in set.iter().filter(|t| t.arity() == 1) {
                    self.spend(1)?;
                    let mut b = base.clone();
                    b.push(t.values()[0].clone());
                    next.push(b);
                }
            }
            stack = next;
        }
        for combo in stack {
            let mut inputs: Vec<Option<Value>> = combo.iter().cloned().map(Some).collect();
            if style == AppStyle::Partial && combo.len() + 1 == sig.arity {
                inputs.push(None);
                for t in rel_engine::builtins::solve(canonical, &inputs)? {
                    out.insert(Tuple::from(vec![t[sig.arity - 1].clone()]));
                }
            } else if combo.len() == sig.arity
                && !rel_engine::builtins::solve(canonical, &inputs)?.is_empty()
            {
                return Ok(Relation::true_rel());
            }
        }
        if style == AppStyle::Full {
            return Ok(Relation::false_rel());
        }
        Ok(out)
    }

    /// Fold the last column (Fig. 3's `reduce` equation) in sorted order.
    /// Builtin op names (`add`, `minimum`, …) denote their infinite
    /// relations and are applied directly; other ops evaluate to a finite
    /// function table.
    fn reduce_with(&self, env: &Env, op: &Expr, input: &Relation) -> RelResult<Relation> {
        if let Expr::Ident(n) = op {
            if !env.contains_key(n) {
                if let Some(canonical) = rel_sema::builtins::canonical(n) {
                    let values = input.last_column();
                    let Some(first) = values.first() else {
                        return Ok(Relation::new());
                    };
                    let mut acc = first.clone();
                    for v in &values[1..] {
                        acc = rel_engine::builtins::fold_step(canonical, &acc, v)?;
                    }
                    return Ok(Relation::singleton(Tuple::from(vec![acc])));
                }
            }
        }
        let table = self.eval(env, op)?;
        self.reduce(&table, input)
    }

    /// Fold with a finite op relation used as a function table.
    fn reduce(&self, op: &Relation, input: &Relation) -> RelResult<Relation> {
        let values = input.last_column();
        let Some(first) = values.first() else {
            return Ok(Relation::new());
        };
        let mut acc = first.clone();
        for v in &values[1..] {
            let suffix = op.partial_apply(&[acc.clone(), v.clone()]);
            let mut it = suffix.iter();
            match (it.next(), it.next()) {
                (Some(t), None) if t.arity() == 1 => acc = t.values()[0].clone(),
                _ => {
                    return Err(RelError::Reduce(
                        "reference reduce: op is not a binary function".into(),
                    ))
                }
            }
        }
        Ok(Relation::singleton(Tuple::from(vec![acc])))
    }
}

/// Identity helper (keeps borrowck simple at one call site).
fn other_env(env: &Env) -> &Env {
    env
}

/// Stratum info computed on the specialized program by reusing the precise
/// IR-level stratifier.
struct AstStratum {
    names: Vec<String>,
    recursive: bool,
    monotone: bool,
}

fn strata_of(sp: &Specialized) -> Vec<AstStratum> {
    let Ok((rules, _)) = rel_sema::lower::lower(sp) else {
        return vec![AstStratum {
            names: sp.defs.keys().cloned().collect(),
            recursive: true,
            monotone: false,
        }];
    };
    rel_sema::strata::stratify(&rules)
        .into_iter()
        .map(|s| AstStratum {
            names: s.preds.iter().map(|p| p.to_string()).collect(),
            recursive: s.recursive,
            monotone: s.monotone,
        })
        .collect()
}

fn bool_rel(b: bool) -> Relation {
    if b {
        Relation::true_rel()
    } else {
        Relation::false_rel()
    }
}

fn cmp_rels(op: CmpOp, l: &Relation, r: &Relation) -> bool {
    for a in l.iter().filter(|t| t.arity() == 1) {
        for b in r.iter().filter(|t| t.arity() == 1) {
            let x = &a.values()[0];
            let y = &b.values()[0];
            let holds = match op {
                CmpOp::Eq => x.numeric_eq(y),
                CmpOp::Neq => !x.numeric_eq(y),
                _ => match x.numeric_cmp(y) {
                    Some(ord) => match op {
                        CmpOp::Lt => ord.is_lt(),
                        CmpOp::Le => ord.is_le(),
                        CmpOp::Gt => ord.is_gt(),
                        CmpOp::Ge => ord.is_ge(),
                        _ => unreachable!(),
                    },
                    None => false,
                },
            };
            if holds {
                return true;
            }
        }
    }
    false
}

fn op_name(op: rel_syntax::ast::ArithOp) -> &'static str {
    match op {
        rel_syntax::ast::ArithOp::Add => "rel_primitive_add",
        rel_syntax::ast::ArithOp::Sub => "rel_primitive_subtract",
        rel_syntax::ast::ArithOp::Mul => "rel_primitive_multiply",
        rel_syntax::ast::ArithOp::Div => "rel_primitive_divide",
        rel_syntax::ast::ArithOp::Mod => "rel_primitive_modulo",
        rel_syntax::ast::ArithOp::Pow => "rel_primitive_power",
    }
}

fn collect_constants(e: &Expr, out: &mut BTreeSet<Value>) {
    e.walk(&mut |x| {
        if let Expr::Lit(v) = x {
            out.insert(v.clone());
        }
    });
}

/// Convenience: evaluate `src` with both the optimized engine and this
/// reference interpreter, returning `(engine, reference)` outputs.
pub fn differential(db: &Database, src: &str) -> RelResult<(Relation, Relation)> {
    let engine = rel_engine::Session::new(db.clone()).query(src)?;
    let reference = Interp::run(db, src)?;
    Ok((engine, reference))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rel_core::database::figure1_database;
    use rel_core::tuple;

    fn agree(src: &str) {
        let db = figure1_database();
        let (engine, reference) = differential(&db, src).unwrap();
        assert_eq!(engine, reference, "disagreement on {src:?}");
    }

    #[test]
    fn basic_projection() {
        agree("def output(y) : PaymentOrder(_, y)");
    }

    #[test]
    fn join() {
        agree("def output(x,y) : OrderProductQuantity(_,x,_) and ProductPrice(x,y)");
    }

    #[test]
    fn negation() {
        agree("def output(x) : ProductPrice(x,_) and not OrderProductQuantity(_,x,_)");
    }

    #[test]
    fn forall_quantifier() {
        agree(
            "def output(x) : ProductPrice(x,_) and \
             forall((y1,y2) | not OrderProductQuantity(y1,x,y2))",
        );
    }

    #[test]
    fn comparison_and_arith() {
        agree("def output(x) : exists((y) | ProductPrice(x,y) and y % 100 = 99)");
        agree("def output(x) : exists((y) | ProductPrice(x,y) and y > 15)");
    }

    #[test]
    fn inverted_builtin() {
        // Active-domain semantics: the discounted prices must be in the
        // domain for the enumerating reference to see them (the engine
        // computes them via `add`'s inverse mode regardless). This is the
        // documented substitution — DESIGN.md §4.
        let mut db = figure1_database();
        for v in [5, 15, 25, 35] {
            db.insert("Num", tuple![v]);
        }
        let src = "def output(x,y) : exists((z) | ProductPrice(x,z) and add(y,5,z))";
        let (engine, reference) = differential(&db, src).unwrap();
        assert_eq!(engine, reference);
        assert_eq!(engine.len(), 4);
    }

    #[test]
    fn recursion_tc() {
        let mut db = Database::new();
        for (a, b) in [(1, 2), (2, 3), (3, 1), (3, 4)] {
            db.insert("E", tuple![a, b]);
        }
        let src = "def TC(x,y) : E(x,y)\n\
                   def TC(x,y) : exists((z) | E(x,z) and TC(z,y))\n\
                   def output(x,y) : TC(x,y)";
        let (engine, reference) = differential(&db, src).unwrap();
        assert_eq!(engine, reference);
        assert!(engine.contains(&tuple![1, 1])); // cycle closes
    }

    #[test]
    fn partial_application() {
        agree("def output : OrderProductQuantity[\"O1\"]");
    }

    #[test]
    fn union_and_product_literals() {
        agree("def output : {(1,2,3); (4,5,6)}");
        agree("def output : (ProductPrice, PaymentOrder)");
    }

    #[test]
    fn tuple_wildcard_prefixes() {
        agree("def output(x...) : OrderProductQuantity(x..., _...)");
    }

    #[test]
    fn reduce_sum() {
        // The folded total (100) is not an active-domain value, so the
        // reference can only see it in *expression* position (not by
        // re-enumerating it through a variable).
        agree("def output : reduce[add, ProductPrice]");
    }

    #[test]
    fn where_and_override() {
        agree("def output : ProductPrice[\"P1\"] <++ 0");
        agree("def output : ProductPrice[\"P9\"] <++ 0");
        agree("def output[] : 1 where ProductPrice(\"P1\", 10)");
    }

    #[test]
    fn second_order_through_specialization() {
        agree(
            "def Biggest({A}) : {A.(reduce[maximum, A])}\n\
             def output : Biggest[ProductPrice]",
        );
    }

    #[test]
    fn win_move_pfp() {
        let mut db = Database::new();
        for (a, b) in [(1, 2), (2, 3), (3, 4)] {
            db.insert("Move", tuple![a, b]);
        }
        let src = "def Win(x) : exists((y) | Move(x,y) and not Win(y))\n\
                   def output(x) : Win(x)";
        let (engine, reference) = differential(&db, src).unwrap();
        assert_eq!(engine, reference);
        assert_eq!(engine, Relation::from_tuples([tuple![1], tuple![3]]));
    }

    #[test]
    fn budget_guards_blowup() {
        // A 7-way cross product of the universe exhausts the budget
        // rather than hanging; the engine rejects it as unsafe anyway.
        let db = figure1_database();
        let src = "def output(a,b,c,d,e,f,g) : \
                   Int(a) and Int(b) and Int(c) and Int(d) and Int(e) and Int(f) and Int(g)";
        let r = Interp::run(&db, src);
        assert!(r.is_err() || r.unwrap().is_empty());
    }
}
