//! # rel-bench
//!
//! Workload generators and measurement helpers for the experiments in
//! EXPERIMENTS.md (E1–E12). Criterion benches live in `benches/`; report
//! binaries (one per experiment) in `src/bin/`.

use rand::distributions::Distribution;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rel_core::{Database, Relation, Tuple, Value};

/// Rel sources of the workload programs, shared by benches, report
/// binaries, and the E11 code-size comparison.
pub mod programs {
    /// Transitive closure (§3.3).
    pub const TC: &str = "def TC(x,y) : E(x,y)\n\
                          def TC(x,y) : exists((z) | E(x,z) and TC(z,y))\n\
                          def output(x,y) : TC(x,y)";
    /// APSP, aggregation variant (§5.4; guarded — see EXPERIMENTS.md E1).
    pub const APSP: &str = "def output(x,y,d) : APSP2(V, E, x, y, d)";
    /// PageRank with the paper's stop-condition program (§5.4).
    pub const PAGERANK: &str = "def output(i,v) : PageRank[M](i,v)";
    /// Matrix multiplication (§1, §5.3.2).
    pub const MATMUL: &str = "def output : MatrixMult[A, B]";
    /// Triangle query (§5.4).
    pub const TRIANGLES: &str = "def output(a,b,c) : Triangles(E, a, b, c)";
    /// Grouped aggregation (§5.2): revenue per order.
    pub const REVENUE: &str = "\
        def Ord(o) : Line(o, _, _)\n\
        def LineAmount(o, l, a) : exists((p) | Line(o, l, p) and Price(p, a))\n\
        def output[o in Ord] : sum[LineAmount[o]] <++ 0";

    /// The `repeated_query` workload's program (client API v2): the
    /// server-shaped point lookup — one order's lines, priced — with the
    /// order id a `?order` parameter bound per execute.
    pub const REPEATED_QUERY: &str = "\
        def output(l, p, a) : exists((o) | o = ?order and Line(o, l, p) and Price(p, a))";

    /// The same query with the parameter spliced into the source — the
    /// string-interpolation pattern the unprepared (v1) path forces.
    pub fn repeated_query_inlined(order: i64) -> String {
        REPEATED_QUERY.replace("?order", &order.to_string())
    }
}

/// An order/payment workload scaled from Figure 1's schema: `n_orders`
/// orders with 1–4 lines each over `n_products` products whose popularity
/// is Zipf-ish skewed.
pub struct OrderWorkload {
    /// The populated database (relations `Line(order, line, product)` and
    /// `Price(product, price)`).
    pub db: Database,
    /// Number of orders.
    pub n_orders: usize,
}

impl OrderWorkload {
    /// Generate a reproducible workload.
    pub fn generate(n_orders: usize, n_products: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut db = Database::new();
        for p in 0..n_products {
            db.insert(
                "Price",
                Tuple::from(vec![
                    Value::Int(p as i64),
                    Value::Int(rng.gen_range(1..100)),
                ]),
            );
        }
        // Skewed product popularity: product k chosen ∝ 1/(k+1).
        let weights: Vec<f64> = (0..n_products).map(|k| 1.0 / (k + 1) as f64).collect();
        let dist = rand::distributions::WeightedIndex::new(&weights).expect("nonempty");
        let mut line_id = 0i64;
        for o in 0..n_orders {
            let lines = rng.gen_range(1..=4);
            for _ in 0..lines {
                let p = dist.sample(&mut rng) as i64;
                db.insert(
                    "Line",
                    Tuple::from(vec![
                        Value::Int(o as i64),
                        Value::Int(line_id),
                        Value::Int(p),
                    ]),
                );
                line_id += 1;
            }
        }
        OrderWorkload { db, n_orders }
    }

    /// The native (imperative) revenue-per-order baseline.
    pub fn native_revenue(&self) -> std::collections::BTreeMap<i64, i64> {
        let mut price = std::collections::HashMap::new();
        for t in self.db.get("Price").expect("generated").iter() {
            price.insert(t.values()[0].clone(), t.values()[1].as_int().expect("int"));
        }
        let mut out: std::collections::BTreeMap<i64, i64> = (0..self.n_orders as i64)
            .map(|o| (o, 0))
            .collect();
        for t in self.db.get("Line").expect("generated").iter() {
            let o = t.values()[0].as_int().expect("int");
            *out.entry(o).or_insert(0) += price[&t.values()[2]];
        }
        out
    }
}

/// Dense `d×d` matrix relation with deterministic values.
pub fn dense_matrix(name_: &str, d: usize, db: &mut Database) {
    let mut rel = Relation::new();
    for i in 1..=d {
        for j in 1..=d {
            rel.insert(Tuple::from(vec![
                Value::Int(i as i64),
                Value::Int(j as i64),
                Value::Int(((i * 31 + j * 17) % 10 + 1) as i64),
            ]));
        }
    }
    db.set(name_, rel);
}

/// Sparse `d×d` matrix relation with ~`density` fill.
pub fn sparse_matrix(name_: &str, d: usize, density: f64, seed: u64, db: &mut Database) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rel = Relation::new();
    for i in 1..=d {
        for j in 1..=d {
            if rng.gen_bool(density) {
                rel.insert(Tuple::from(vec![
                    Value::Int(i as i64),
                    Value::Int(j as i64),
                    Value::Int(rng.gen_range(1..10)),
                ]));
            }
        }
    }
    db.set(name_, rel);
}

/// Native dense matmul baseline over the same relation encoding.
pub fn native_matmul(a: &Relation, b: &Relation) -> Relation {
    use std::collections::HashMap;
    let mut b_by_row: HashMap<&Value, Vec<(&Value, i64)>> = HashMap::new();
    for t in b.iter() {
        b_by_row
            .entry(&t.values()[0])
            .or_default()
            .push((&t.values()[1], t.values()[2].as_int().expect("int")));
    }
    let mut acc: HashMap<(Value, Value), i64> = HashMap::new();
    for t in a.iter() {
        let (i, k, v) = (&t.values()[0], &t.values()[1], t.values()[2].as_int().expect("int"));
        if let Some(cols) = b_by_row.get(k) {
            for (j, w) in cols {
                *acc.entry((i.clone(), (*j).clone())).or_insert(0) += v * w;
            }
        }
    }
    acc.into_iter()
        .map(|((i, j), v)| Tuple::from(vec![i, j, Value::Int(v)]))
        .collect()
}

/// Non-comment, non-blank line count of a source text (the E11 code-size
/// metric; `//`-style comments for both Rel and Rust).
pub fn loc(src: &str) -> usize {
    src.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with("//"))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rel_stdlib::SessionExt;

    #[test]
    fn order_workload_matches_native() {
        let w = OrderWorkload::generate(50, 20, 1);
        let session = rel_engine::Session::with_stdlib(w.db.clone());
        let out = session.query(programs::REVENUE).unwrap();
        let native = w.native_revenue();
        assert_eq!(out.len(), native.len());
        for t in out.iter() {
            let o = t.values()[0].as_int().unwrap();
            let v = t.values()[1].as_int().unwrap();
            assert_eq!(v, native[&o], "order {o}");
        }
    }

    #[test]
    fn dense_matmul_matches_native() {
        let mut db = Database::new();
        dense_matrix("A", 6, &mut db);
        dense_matrix("B", 6, &mut db);
        let native = native_matmul(db.get("A").unwrap(), db.get("B").unwrap());
        let session = rel_engine::Session::with_stdlib(db);
        let out = session.query(programs::MATMUL).unwrap();
        assert_eq!(out, native);
    }

    #[test]
    fn sparse_matmul_same_code() {
        // Data independence (§1): the same Rel program runs on sparse data.
        let mut db = Database::new();
        sparse_matrix("A", 10, 0.2, 3, &mut db);
        sparse_matrix("B", 10, 0.2, 4, &mut db);
        let native = native_matmul(db.get("A").unwrap(), db.get("B").unwrap());
        let session = rel_engine::Session::with_stdlib(db);
        let out = session.query(programs::MATMUL).unwrap();
        assert_eq!(out, native);
    }

    #[test]
    fn loc_counts_code_only() {
        assert_eq!(loc("// comment\n\ndef F(x) : R(x)\n"), 1);
    }
}
