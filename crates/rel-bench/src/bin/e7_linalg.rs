//! E7 — MatrixMult: dense and sparse, same Rel code (data independence).
use rel_bench::{dense_matrix, native_matmul, sparse_matrix};
use rel_core::Database;
use rel_stdlib::SessionExt;
use std::time::Instant;

fn main() {
    println!("E7 — MatrixMult (§1): identical Rel code, dense vs sparse data");
    println!("{:>14} {:>9} {:>12} {:>12}", "matrix", "|out|", "rel", "native");
    for d in [8usize, 16, 24] {
        let mut db = Database::new();
        dense_matrix("A", d, &mut db);
        dense_matrix("B", d, &mut db);
        let a = db.get("A").unwrap().clone();
        let b = db.get("B").unwrap().clone();
        let session = rel_engine::Session::with_stdlib(db);
        let t = Instant::now();
        let out = session.query(rel_bench::programs::MATMUL).unwrap();
        let rel_t = t.elapsed();
        let t = Instant::now();
        let nat = native_matmul(&a, &b);
        let nat_t = t.elapsed();
        assert_eq!(out, nat, "differential check");
        println!("{:>14} {:>9} {rel_t:>12.2?} {nat_t:>12.2?}", format!("dense {d}x{d}"), out.len());
    }
    for d in [32usize, 64] {
        let mut db = Database::new();
        sparse_matrix("A", d, 0.05, 5, &mut db);
        sparse_matrix("B", d, 0.05, 6, &mut db);
        let a = db.get("A").unwrap().clone();
        let b = db.get("B").unwrap().clone();
        let session = rel_engine::Session::with_stdlib(db);
        let t = Instant::now();
        let out = session.query(rel_bench::programs::MATMUL).unwrap();
        let rel_t = t.elapsed();
        let t = Instant::now();
        let nat = native_matmul(&a, &b);
        let nat_t = t.elapsed();
        assert_eq!(out, nat, "differential check");
        println!("{:>14} {:>9} {rel_t:>12.2?} {nat_t:>12.2?}", format!("sparse {d}x{d}"), out.len());
    }
}
