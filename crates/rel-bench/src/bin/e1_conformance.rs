//! E1 — paper-conformance report: re-runs the headline §3–§5 queries and
//! prints paper-expected vs measured results.
use rel_stdlib::SessionExt;

fn main() {
    let db = rel_core::database::figure1_database();
    let s = rel_engine::Session::with_stdlib(db);
    let cases: &[(&str, &str, &str)] = &[
        ("OrderWithPayment (§3.1)",
         "def output(y) : exists((x) | PaymentOrder(x,y))",
         r#"{("O1"); ("O2"); ("O3")}"#),
        ("NotOrdered (§3.1)",
         "def output(x) : ProductPrice(x,_) and not OrderProductQuantity(_,x,_)",
         r#"{("P4")}"#),
        ("DiscountedproductPrice (§3.2)",
         "def output(x,y) : exists((z) | ProductPrice(x,z) and add(y,5,z))",
         r#"{("P1", 5); ("P2", 15); ("P3", 25); ("P4", 35)}"#),
        ("BoughtWithExpensiveProduct (§3.3)",
         "def SameOrder(p1,p2) : exists((o) | OrderProductQuantity(o,p1,_) and OrderProductQuantity(o,p2,_))\n\
          def SODP(p1,p2) : SameOrder(p1,p2) and p1 != p2\n\
          def Expensive(p) : exists((pr) | ProductPrice(p,pr) and pr > 15)\n\
          def output(p) : exists((x in Expensive) | SODP(x,p))",
         r#"{("P1")}"#),
        ("OrderProductQuantity[\"O1\"] (§4.3)",
         "def output : OrderProductQuantity[\"O1\"]",
         r#"{("P1", 2); ("P2", 1)}"#),
        ("OrderPaid (§5.2)",
         "def Ord(x) : OrderProductQuantity(x,_,_)\n\
          def OPA(x,y,z) : PaymentOrder(y,x) and PaymentAmount(y,z)\n\
          def output[x in Ord] : sum[OPA[x]]",
         r#"{("O1", 30); ("O2", 10); ("O3", 90)}"#),
        ("ScalarProd (§5.3.2)",
         "def U(i,x) : {(1,4); (2,2)}(i,x)\ndef Vv(i,x) : {(1,3); (2,6)}(i,x)\n\
          def output : ScalarProd[U, Vv]",
         "{(24)}"),
    ];
    println!("E1 — paper conformance (Figure 1 database)");
    println!("{:<38} {:>7}", "query", "status");
    let mut ok = 0;
    for (label, src, expected) in cases {
        let got = s.query(src).map(|r| r.to_string()).unwrap_or_else(|e| format!("ERR {e}"));
        let status = if got == *expected { ok += 1; "match" } else { "MISMATCH" };
        println!("{label:<38} {status:>7}");
        if status == "MISMATCH" {
            println!("  expected {expected}\n  got      {got}");
        }
    }
    println!("{ok}/{} queries reproduce the paper's stated results", cases.len());
}
