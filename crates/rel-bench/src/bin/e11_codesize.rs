//! E11 — code size: Rel programs vs the native Rust baselines implementing
//! the same workloads (the §7 "drastically smaller code bases" claim).
use rel_bench::{loc, programs};

fn main() {
    println!("E11 — code size (non-comment, non-blank lines)");
    println!("{:>14} {:>8} {:>8} {:>10}", "workload", "Rel", "Rust", "reduction");
    // Rust baselines measured from the native module sources.
    let native_src = include_str!("../../../rel-graph/src/native.rs");
    // Extract function bodies by marker comments is overkill; measure the
    // whole functions by line ranges via simple delimiters.
    let rust_tc = slice_fn(native_src, "pub fn transitive_closure");
    let rust_apsp = slice_fn(native_src, "pub fn apsp");
    let rust_pr = slice_fn(native_src, "pub fn pagerank_iterate")
        + slice_fn(native_src, "fn mat_vec")
        + slice_fn(native_src, "pub fn transition_matrix");
    let bench_src = include_str!("../lib.rs");
    let rust_rev = slice_fn(bench_src, "pub fn native_revenue");
    let rust_mm = slice_fn(bench_src, "pub fn native_matmul");

    // Rel library definitions backing each workload (graph.rel/la.rel
    // excerpts actually used).
    let rel_tc = loc(programs::TC);
    let rel_apsp = loc("def APSP2({V},{E},x,y,0) : V(x) and V(y) and x = y\n\
def APSP2({V},{E},x,y,i) : x != y and i = min[(j) : exists((z) | E(x,z) and APSP2[V,E](z,y,j-1))]\n\
def output(x,y,d) : APSP2(V,E,x,y,d)");
    let rel_pr = loc("def pr_next[{G},{P}] : {MatrixVector[G,P]}\n\
def pr_stop({G},{P}) : {delta[pr_next[G,P],P] > 0.005}\n\
def PageRank[{G}] : {vector[dimension[G]] where empty(PageRank[G])}\n\
def PageRank[{G}] : {pr_next[G,PageRank[G]] where not empty(PageRank[G]) and pr_stop(G,PageRank[G])}\n\
def PageRank[{G}] : {PageRank[G] where not empty(PageRank[G]) and not pr_stop(G,PageRank[G])}\n\
def output(i,v) : PageRank[M](i,v)");
    let rel_rev = loc(programs::REVENUE);
    let rel_mm = loc("def MatrixMult[{A},{B},i,j] : { sum[[k] : A[i,k]*B[k,j]] }\n\
def output : MatrixMult[A,B]");

    for (label, rel_n, rust_n) in [
        ("TC", rel_tc, rust_tc),
        ("APSP", rel_apsp, rust_apsp),
        ("PageRank", rel_pr, rust_pr),
        ("revenue", rel_rev, rust_rev),
        ("matmul", rel_mm, rust_mm),
    ] {
        let red = 100.0 * (1.0 - rel_n as f64 / rust_n as f64);
        println!("{label:>14} {rel_n:>8} {rust_n:>8} {red:>9.0}%");
    }
    println!("(paper §7 claims up to 95% smaller code bases vs legacy applications)");
}

/// Lines of the top-level `fn` starting at `marker` (to its closing brace
/// at column 0), comments/blanks excluded.
fn slice_fn(src: &str, marker: &str) -> usize {
    let Some(start) = src.find(marker) else { return 0 };
    let rest = &src[start..];
    let mut depth = 0usize;
    let mut end = rest.len();
    for (i, c) in rest.char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    end = i;
                    break;
                }
            }
            _ => {}
        }
    }
    loc(&rest[..end])
}
