//! `bench_report` — the perf-trajectory runner.
//!
//! Runs the TC, triangles, revenue-aggregation, and PageRank workloads at
//! two scales each — plus the repeated-query (prepared vs unprepared),
//! multi-stratum (1 vs 4 scheduler workers), incremental-transaction
//! (delta propagation vs full re-materialization), durable-transaction
//! (WAL commit overhead vs ephemeral, plus recovery replay on reopen),
//! serving (open-loop client fleets against an in-process `rel-server`,
//! p50/p99 + throughput), watch-push (standing-query delivery:
//! commit-to-delivery latency for 1/8 subscribers vs the same fleet
//! re-querying after every commit), group-commit (fsync=always with and
//! without coalescing windows), and observability-overhead (the same
//! serving-shaped stream with the metrics registry dark vs hot)
//! workloads — and writes a JSON report
//! (default `BENCH_1.json`) so the engine's performance is tracked from
//! PR 1 onward.
//!
//! ```text
//! bench_report [--out PATH] [--baseline PATH] [--runs N] [--smoke]
//! ```
//!
//! `--baseline` points at a report produced by a *previous* build (e.g.
//! the pre-optimization engine compiled in the same profile); its
//! `median_ms` figures are embedded as `baseline_ms` with a computed
//! `speedup`, making regressions and wins visible in one file.
//!
//! `--smoke` shrinks every workload to a tiny scale: the CI bench-smoke
//! job runs it on every PR so the binary, its workload registrations,
//! and the cross-mode result assertions cannot bit-rot between the PRs
//! that actually measure (no numbers from a smoke run are meaningful —
//! don't commit its JSON).

use rel_bench::{programs, OrderWorkload};
use rel_engine::SharedIndexCache;
use rel_graph::gen;
use rel_stdlib::SessionExt;
use std::fmt::Write as _;
use std::time::Instant;

struct Measurement {
    name: &'static str,
    scale: String,
    median_ms: f64,
    result_size: usize,
    /// Extra numeric fields appended to the JSON entry (e.g. the parallel
    /// scheduler's speedup against its own 1-worker run).
    extra: Vec<(&'static str, f64)>,
}

/// One watch-push measurement stream: a server over a length-`n0` chain
/// whose transitive closure is the standing query, `watchers` subscriber
/// (or poller) clients, and a committer extending the chain one edge per
/// commit. Latency is commit-submit → the watcher holding that commit's
/// output — for the push side that is the arrival of the pushed
/// [`rel_engine::WatchDelta`]; for the poll side it is the naive
/// alternative, a full re-query of the standing query after the commit
/// is acknowledged. Commits are paced (every watcher confirms receipt
/// before the next commit), so push deltas never lag and both sides
/// measure a clean per-commit delivery time. Returns the per-delivery
/// latencies (ms), the wall-clock seconds of the commit stream, and the
/// final output size — after asserting every watcher's mirror equals a
/// fresh query of the same program.
fn watch_stream(n0: usize, commits: usize, watchers: usize, push: bool) -> (Vec<f64>, f64, usize) {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{mpsc, Arc, Barrier};

    let mut db = rel_core::Database::new();
    for i in 0..n0 {
        db.insert("E", rel_core::tuple![i as i64, (i + 1) as i64]);
    }
    let server = rel_server::Server::start(
        rel_engine::Session::with_stdlib(db),
        rel_server::ServerConfig::default(),
    )
    .expect("watch benchmark server starts");
    let addr = server.addr();
    let clock = Instant::now();
    // Commit-submit timestamps (ns offsets from `clock`), one per commit,
    // written by the committer before the transact ships.
    let starts: Arc<Vec<AtomicU64>> =
        Arc::new((0..commits).map(|_| AtomicU64::new(0)).collect());
    let ready = Arc::new(Barrier::new(watchers + 1));
    let (done_tx, done_rx) = mpsc::channel::<f64>();
    let mut kick_txs = Vec::with_capacity(watchers);
    let handles: Vec<_> = (0..watchers)
        .map(|_| {
            let starts = Arc::clone(&starts);
            let ready = Arc::clone(&ready);
            let done = done_tx.clone();
            let (kick_tx, kick_rx) = mpsc::channel::<usize>();
            kick_txs.push(kick_tx);
            std::thread::spawn(move || {
                let mut c = rel_server::Client::connect(addr).expect("watcher connects");
                let latency = |i: usize| {
                    (clock.elapsed().as_nanos() as u64 - starts[i - 1].load(Ordering::Acquire))
                        as f64
                        / 1e6
                };
                if push {
                    let mut sub = c
                        .subscribe(programs::TC, &rel_engine::Params::new())
                        .expect("standing query subscribes");
                    let first = sub.recv().expect("registration snapshot");
                    assert!(first.snapshot, "first batch must be the snapshot");
                    let mut mirror = first.apply_to(&rel_core::Relation::new());
                    ready.wait();
                    for i in 1..=commits {
                        let d = sub.recv().expect("pushed delta");
                        assert_eq!(d.seq as usize, i, "paced watchers cannot lag");
                        mirror = d.apply_to(&mirror);
                        done.send(latency(i)).expect("committer is draining");
                    }
                    sub.unsubscribe().expect("unsubscribe");
                    mirror
                } else {
                    let stmt = c.prepare(programs::TC).expect("poll query prepares");
                    let mut last = rel_core::Relation::new();
                    ready.wait();
                    while let Ok(i) = kick_rx.recv() {
                        last = c
                            .execute(&stmt, &rel_engine::Params::new())
                            .expect("poll re-query");
                        done.send(latency(i)).expect("committer is draining");
                    }
                    last
                }
            })
        })
        .collect();

    let mut committer = rel_server::Client::connect(addr).expect("committer connects");
    ready.wait();
    let mut latencies = Vec::with_capacity(commits * watchers);
    let t0 = clock.elapsed();
    for i in 0..commits {
        let (x, y) = ((n0 + i) as i64, (n0 + i + 1) as i64);
        starts[i].store(clock.elapsed().as_nanos() as u64, Ordering::Release);
        committer
            .transact(&format!("def insert(:E, x, y) : x = {x} and y = {y}"))
            .expect("chain-extension commit");
        if !push {
            for kick in &kick_txs {
                kick.send(i + 1).expect("poller is waiting");
            }
        }
        for _ in 0..watchers {
            latencies.push(done_rx.recv().expect("watcher delivers"));
        }
    }
    let wall = (clock.elapsed() - t0).as_secs_f64();
    drop(kick_txs);
    let fresh = committer.query(programs::TC).expect("final fresh query");
    for h in handles {
        let mirror = h.join().expect("watcher panicked");
        assert_eq!(mirror, fresh, "watcher state diverged from a fresh query");
    }
    // Wire parity: the mirror was reassembled from decoded frames, so the
    // same typed-row extraction the embedded API offers must work on it.
    let pairs: Vec<(i64, i64)> = fresh.rows().expect("typed rows decode over the wire");
    server.shutdown().expect("watch server shuts down");
    (latencies, wall, pairs.len())
}

fn median_ms(runs: usize, mut f: impl FnMut() -> usize) -> (f64, usize) {
    let mut times = Vec::with_capacity(runs);
    let mut size = 0;
    for _ in 0..runs {
        let t = Instant::now();
        size = f();
        times.push(t.elapsed().as_secs_f64() * 1e3);
    }
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    (times[times.len() / 2], size)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = "BENCH_1.json".to_string();
    let mut baseline_path: Option<String> = None;
    let mut runs = 3usize;
    let mut smoke = false;
    let usage = || -> ! {
        eprintln!("usage: bench_report [--out PATH] [--baseline PATH] [--runs N] [--smoke]");
        std::process::exit(2);
    };
    let mut i = 0;
    while i < args.len() {
        let value = || {
            args.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!("bench_report: {} expects a value", args[i]);
                usage();
            })
        };
        match args[i].as_str() {
            "--smoke" => {
                smoke = true;
                i += 1;
                continue;
            }
            "--out" => out_path = value(),
            "--baseline" => baseline_path = Some(value()),
            "--runs" => {
                runs = value().parse().unwrap_or(0);
                if runs == 0 {
                    eprintln!("bench_report: --runs expects a positive number");
                    usage();
                }
            }
            other => {
                eprintln!("bench_report: unknown argument {other}");
                usage();
            }
        }
        i += 2;
    }

    // Workload scales: real measurement scales by default, tiny smoke
    // scales for the per-PR CI job.
    let tc_scales: &[usize] = if smoke { &[40] } else { &[100, 300] };
    let tri_scales: &[usize] = if smoke { &[60] } else { &[150, 300] };
    let rev_scales: &[usize] = if smoke { &[60] } else { &[200, 600] };
    let pr_scales: &[usize] = if smoke { &[16] } else { &[32, 64] };
    let rq_execs = if smoke { 40 } else { 500 };
    let (ms_components, ms_n) = if smoke { (3, 40) } else { (8, 120) };
    let (inc_n, inc_commits) = if smoke { (40, 20) } else { (120, 200) };
    let wcoj_scales: &[(usize, f64)] =
        if smoke { &[(80, 8.0)] } else { &[(250, 12.0), (500, 16.0)] };
    let (dur_n, dur_commits) = if smoke { (40, 20) } else { (120, 200) };

    let mut results: Vec<Measurement> = Vec::new();

    // --- TC: semi-naive transitive closure over random digraphs ---------
    for &n in tc_scales {
        let g = gen::random_graph(n, 3.0, 42);
        let db = gen::graph_database(&g);
        let module = rel_sema::compile(programs::TC).expect("TC compiles");
        let (ms, size) = median_ms(runs, || {
            let rels = rel_engine::materialize(&module, &db).expect("TC evaluates");
            rels.get("TC").map(rel_core::Relation::len).unwrap_or(0)
        });
        results.push(Measurement {
            name: "tc_semi_naive",
            scale: format!("n={n},deg=3"),
            median_ms: ms,
            result_size: size,
            extra: Vec::new(),
        });
    }

    // --- Triangles: three-way join through the generic evaluator --------
    // The session-based legacy workloads pin incremental maintenance off:
    // they re-run one identical query over an unchanged database, which
    // the incremental engine short-circuits to an O(#relations) pointer
    // bump (~0 ms — see `incremental_txn` for the number that tracks the
    // new mode). These entries deliberately keep measuring raw
    // evaluation throughput so the trajectory stays comparable across
    // BENCH reports.
    for &n in tri_scales {
        let g = gen::random_graph(n, 6.0, 13);
        let mut session = rel_graph::with_graph_lib(gen::graph_database(&g));
        session.set_incremental(false);
        let (ms, size) = median_ms(runs, || {
            session.query(programs::TRIANGLES).expect("triangles").len()
        });
        results.push(Measurement {
            name: "triangles",
            scale: format!("n={n},deg=6"),
            median_ms: ms,
            result_size: size,
            extra: Vec::new(),
        });
    }

    // --- Revenue: grouped aggregation over the order workload -----------
    for &orders in rev_scales {
        let w = OrderWorkload::generate(orders, 50, 1);
        let mut session = rel_engine::Session::with_stdlib(w.db.clone());
        session.set_incremental(false);
        let (ms, size) = median_ms(runs, || {
            session.query(programs::REVENUE).expect("revenue").len()
        });
        results.push(Measurement {
            name: "revenue_aggregation",
            scale: format!("orders={orders}"),
            median_ms: ms,
            result_size: size,
            extra: Vec::new(),
        });
    }

    // --- PageRank: the paper's PFP program ------------------------------
    for &n in pr_scales {
        let g = gen::random_graph(n, 3.0, 11);
        let mut db = gen::graph_database(&g);
        db.set("M", gen::transition_matrix_relation(&g));
        let mut session = rel_graph::with_graph_lib(db);
        session.set_incremental(false);
        let (ms, size) = median_ms(runs, || {
            session.query(programs::PAGERANK).expect("pagerank").len()
        });
        results.push(Measurement {
            name: "pagerank_pfp",
            scale: format!("n={n},deg=3"),
            median_ms: ms,
            result_size: size,
            extra: Vec::new(),
        });
    }

    // --- Repeated query: prepared vs unprepared (client API v2) ---------
    // The server-shaped access pattern: one parameterized query executed
    // 500 times with a fresh binding each time. The prepared path
    // compiles once (`Session::prepare`) and re-executes; the unprepared
    // path re-compiles `library + query` per execution with the value
    // spliced into the source — exactly what the v1 API forced. The
    // `speedup_vs_unprepared` field on the prepared entry is the
    // acceptance number (>= 5x).
    {
        let executions = rq_execs;
        let w = OrderWorkload::generate(120, 40, 9);
        let session = rel_engine::Session::with_stdlib(w.db.clone());
        let prepared = session
            .prepare(programs::REPEATED_QUERY)
            .expect("repeated query prepares");
        let bind = |i: usize| (i % 120) as i64;
        let (prep_ms, prep_size) = median_ms(runs, || {
            let mut total = 0usize;
            for i in 0..executions {
                let params = rel_engine::Params::new().set("order", bind(i));
                total += prepared
                    .execute_with(&session, &params)
                    .expect("prepared executes")
                    .len();
            }
            total
        });
        let library = rel_stdlib::full_library();
        let unprep_cache = rel_engine::SharedIndexCache::default();
        let (unprep_ms, unprep_size) = median_ms(runs, || {
            let mut total = 0usize;
            for i in 0..executions {
                let src = programs::repeated_query_inlined(bind(i));
                let full = format!("{library}\n{src}");
                let module = rel_sema::compile(&full).expect("unprepared compiles");
                let rels = rel_engine::materialize_with_cache(
                    &module,
                    session.db(),
                    unprep_cache.clone(),
                )
                .expect("unprepared evaluates");
                total += rels.get("output").map(rel_core::Relation::len).unwrap_or(0);
            }
            total
        });
        assert_eq!(prep_size, unprep_size, "prepared path changed the result");
        let scale = format!("orders=120,execs={executions}");
        results.push(Measurement {
            name: "repeated_query",
            scale: format!("{scale},prepared"),
            median_ms: prep_ms,
            result_size: prep_size,
            extra: vec![("speedup_vs_unprepared", unprep_ms / prep_ms)],
        });
        results.push(Measurement {
            name: "repeated_query",
            scale: format!("{scale},unprepared"),
            median_ms: unprep_ms,
            result_size: unprep_size,
            extra: Vec::new(),
        });
    }

    // --- Parallel strata: k independent TC components + roll-up ---------
    // The stratum DAG is k independent recursive strata, a per-component
    // aggregation layer, and one sink — the wide shape the parallel
    // scheduler exists for. Measured once with the scheduler pinned to a
    // single worker and once with 4 workers; `speedup_vs_1worker` on the
    // 4-worker entry is the parallel win (bounded by `host_cpus`).
    {
        let components = ms_components;
        let n = ms_n;
        let mut db = rel_core::Database::new();
        let mut src = String::from("def agg_count[{A}] : reduce[add, (A, 1)]\n");
        for c in 0..components {
            let g = gen::random_graph(n, 3.0, 200 + c as u64);
            db.set(format!("E{c}").as_str(), gen::edge_relation(&g));
            let _ = writeln!(src, "def TC{c}(x,y) : E{c}(x,y)");
            let _ = writeln!(src, "def TC{c}(x,y) : exists((z) | E{c}(x,z) and TC{c}(z,y))");
            let _ = writeln!(src, "def Size{c}(s) : s = agg_count[TC{c}]");
            let _ = writeln!(src, "def output(k,s) : k = {c} and Size{c}(s)");
        }
        let module = rel_sema::compile(&src).expect("multi-stratum program compiles");
        let scale = format!("k={components},n={n},deg=3");
        let run_with = |workers: usize| {
            rel_engine::materialize_with_threads(
                &module,
                &db,
                SharedIndexCache::default(),
                workers,
            )
            .expect("multi-stratum evaluates")
            .get("output")
            .map(rel_core::Relation::len)
            .unwrap_or(0)
        };
        let (seq_ms, seq_size) = median_ms(runs, || run_with(1));
        let (par_ms, par_size) = median_ms(runs, || run_with(4));
        assert_eq!(seq_size, par_size, "parallel scheduler changed the result");
        results.push(Measurement {
            name: "multi_stratum_tc",
            scale: format!("{scale},workers=1"),
            median_ms: seq_ms,
            result_size: seq_size,
            extra: Vec::new(),
        });
        results.push(Measurement {
            name: "multi_stratum_tc",
            scale: format!("{scale},workers=4"),
            median_ms: par_ms,
            result_size: par_size,
            extra: vec![("speedup_vs_1worker", seq_ms / par_ms)],
        });
    }

    // --- Incremental transactions: small-delta commits over a big TC ----
    // The transaction-maintenance shape the incremental engine exists
    // for: a session holds a large transitive closure (plus an integrity
    // constraint over it), and 200 commits each insert a handful of base
    // tuples through a prepared step. Incremental mode reuses the
    // captured fixpoint and delta-seeds the TC stratum per commit (both
    // for the step's evaluation and the commit-time constraint
    // re-check); full mode re-materializes the closure twice per commit.
    // `speedup_vs_full` on the incremental entry is the acceptance
    // number (>= 5x).
    {
        let n = inc_n;
        let commits = inc_commits;
        let lib = "def TC(x,y) : E(x,y)\n\
                   def TC(x,y) : exists((z) | E(x,z) and TC(z,y))\n\
                   ic closed(x, y) requires E(x,y) implies TC(x,y)";
        let g = gen::random_graph(n, 3.0, 77);
        let base_db = gen::graph_database(&g);
        let run_mode = |incremental: bool| {
            median_ms(runs, || {
                let mut session =
                    rel_engine::Session::new(base_db.clone()).with_library(lib);
                session.set_incremental(incremental);
                let insert = session
                    .prepare("def insert(:E, x, y) : x = ?src and y = ?dst")
                    .expect("insert step prepares");
                for i in 0..commits {
                    let params = rel_engine::Params::new()
                        .set("src", (i * 13 % n) as i64)
                        .set("dst", ((i * 7 + 3) % n) as i64);
                    let mut txn = session.begin();
                    txn.run_prepared(&insert, &params).expect("step runs");
                    txn.commit().expect("commit");
                }
                session.db().get("E").map(rel_core::Relation::len).unwrap_or(0)
            })
        };
        let (inc_ms, inc_size) = run_mode(true);
        let (full_ms, full_size) = run_mode(false);
        assert_eq!(inc_size, full_size, "incremental mode changed the result");
        let scale = format!("n={n},deg=3,commits={commits}");
        results.push(Measurement {
            name: "incremental_txn",
            scale: format!("{scale},incremental"),
            median_ms: inc_ms,
            result_size: inc_size,
            extra: vec![("speedup_vs_full", full_ms / inc_ms)],
        });
        results.push(Measurement {
            name: "incremental_txn",
            scale: format!("{scale},full"),
            median_ms: full_ms,
            result_size: full_size,
            extra: Vec::new(),
        });
    }

    // --- WCOJ triangles: leapfrog-in-eval_conj vs binary joins ----------
    // The same triangle conjunction evaluated by the generic rule
    // evaluator twice: once with the WCOJ planner routing the 3-atom
    // cyclic group through the leapfrog kernel (`WcojMode::Auto` — the
    // default), once pinned to the pairwise binary-join scheduler
    // (`WcojMode::Off`). Unlike the `triangles` workload above (which
    // goes through the second-order graph library), this one measures
    // the join itself on denser graphs, where the binary plan's
    // length-2-path intermediate is Θ(n·deg²). Both modes must agree on
    // the result; `speedup_vs_binary` on the wcoj entry at the largest
    // scale is the acceptance number (>= 2x).
    {
        let src = "def output(a,b,c) : E(a,b) and E(b,c) and E(a,c)";
        for &(n, deg) in wcoj_scales {
            let g = gen::random_graph(n, deg, 23);
            let db = gen::graph_database(&g);
            let run_mode = |mode: rel_engine::WcojMode| {
                let mut session = rel_engine::Session::new(db.clone());
                session.set_incremental(false);
                session.set_wcoj(mode);
                median_ms(runs, || session.query(src).expect("triangles").len())
            };
            let (wcoj_ms, wcoj_size) = run_mode(rel_engine::WcojMode::Auto);
            let (bin_ms, bin_size) = run_mode(rel_engine::WcojMode::Off);
            assert_eq!(wcoj_size, bin_size, "WCOJ changed the triangle result");
            let scale = format!("n={n},deg={deg}");
            results.push(Measurement {
                name: "wcoj_triangles",
                scale: format!("{scale},wcoj"),
                median_ms: wcoj_ms,
                result_size: wcoj_size,
                extra: vec![("speedup_vs_binary", bin_ms / wcoj_ms)],
            });
            results.push(Measurement {
                name: "wcoj_triangles",
                scale: format!("{scale},binary"),
                median_ms: bin_ms,
                result_size: bin_size,
                extra: Vec::new(),
            });
        }
    }

    // --- Columnar layout: typed kernels vs boxed-row fallback -----------
    // The same three workloads the trajectory already tracks — TC,
    // PageRank, revenue aggregation — at their larger BENCH_1 scales,
    // each run once with `REL_COLUMNAR` on (schema-specialized columns
    // drive the set-operation merges, sort keys, and trie seeks) and
    // once with the layout pinned to boxed `Value` rows. Results must
    // match exactly; `speedup_vs_row` on each columnar entry is the
    // acceptance number (>= 1.5x on at least two of the three).
    {
        let (ctc_n, cpr_n, crev_orders) = if smoke { (40, 16, 60) } else { (300, 64, 600) };
        let bench_layouts =
            |tag: &str, scale: String, run: &mut dyn FnMut() -> usize, results: &mut Vec<Measurement>| {
                rel_core::set_columnar_enabled(true);
                let (col_ms, col_size) = median_ms(runs, &mut *run);
                rel_core::set_columnar_enabled(false);
                let (row_ms, row_size) = median_ms(runs, &mut *run);
                rel_core::set_columnar_enabled(true);
                assert_eq!(col_size, row_size, "{tag}: columnar layout changed the result");
                results.push(Measurement {
                    name: "columnar_tc",
                    scale: format!("{tag},{scale},columnar"),
                    median_ms: col_ms,
                    result_size: col_size,
                    extra: vec![("speedup_vs_row", row_ms / col_ms)],
                });
                results.push(Measurement {
                    name: "columnar_tc",
                    scale: format!("{tag},{scale},row"),
                    median_ms: row_ms,
                    result_size: row_size,
                    extra: Vec::new(),
                });
            };
        {
            let g = gen::random_graph(ctc_n, 3.0, 42);
            let db = gen::graph_database(&g);
            let module = rel_sema::compile(programs::TC).expect("TC compiles");
            bench_layouts(
                "tc",
                format!("n={ctc_n}"),
                &mut || {
                    let rels = rel_engine::materialize(&module, &db).expect("TC evaluates");
                    rels.get("TC").map(rel_core::Relation::len).unwrap_or(0)
                },
                &mut results,
            );
        }
        {
            let g = gen::random_graph(cpr_n, 3.0, 11);
            let mut db = gen::graph_database(&g);
            db.set("M", gen::transition_matrix_relation(&g));
            let mut session = rel_graph::with_graph_lib(db);
            session.set_incremental(false);
            bench_layouts(
                "pagerank",
                format!("n={cpr_n}"),
                &mut || session.query(programs::PAGERANK).expect("pagerank").len(),
                &mut results,
            );
        }
        {
            let w = OrderWorkload::generate(crev_orders, 50, 1);
            let mut session = rel_engine::Session::with_stdlib(w.db.clone());
            session.set_incremental(false);
            bench_layouts(
                "revenue",
                format!("orders={crev_orders}"),
                &mut || session.query(programs::REVENUE).expect("revenue").len(),
                &mut results,
            );
        }
    }

    // --- Durable transactions: WAL logging overhead vs ephemeral --------
    // The same 200-commit stream run once against a durable session
    // (every commit appends a CRC-framed delta record to the WAL; fsync
    // policy `batch`, i.e. the default) and once against a plain
    // in-memory session. The commits are realistic, not degenerate: each
    // one executes a prepared insert step and re-checks an integrity
    // constraint over a maintained transitive closure — the same
    // transaction shape `incremental_txn` measures — so the number
    // reflects what durability costs on the commit path clients actually
    // run, not fsync versus an empty loop. `overhead_vs_ephemeral` on
    // the durable entry is the acceptance number (<= 1.5x): durability
    // rides the commit path, it must not dominate it.
    {
        let n = dur_n;
        let commits = dur_commits;
        let lib = "def TC(x,y) : E(x,y)\n\
                   def TC(x,y) : exists((z) | E(x,z) and TC(z,y))\n\
                   ic closed(x, y) requires E(x,y) implies TC(x,y)";
        let g = gen::random_graph(n, 3.0, 77);
        let run_stream = |session: &mut rel_engine::Session| {
            session.install_library(lib);
            // Bulk-load the base graph as commit #0 (for the durable
            // session this is the one fat WAL record at the head of the
            // log), then stream the per-commit inserts.
            let mut load = session.begin();
            for &(u, v) in &g.edges {
                load.stage_insert("E", rel_core::tuple![u as i64, v as i64]);
            }
            load.commit().expect("base graph loads");
            let insert = session
                .prepare("def insert(:E, x, y) : x = ?src and y = ?dst")
                .expect("insert step prepares");
            for i in 0..commits {
                let params = rel_engine::Params::new()
                    .set("src", (i * 13 % n) as i64)
                    .set("dst", ((i * 7 + 3) % n) as i64);
                let mut txn = session.begin();
                txn.run_prepared(&insert, &params).expect("step runs");
                txn.commit().expect("commit");
            }
            session.db().total_tuples()
        };
        let dur_cfg = rel_engine::DurabilityConfig {
            fsync: rel_engine::FsyncPolicy::Batch,
            ..Default::default()
        };
        let dir = std::env::temp_dir()
            .join(format!("rel-bench-durable-{}", std::process::id()));
        let (dur_ms, dur_size) = median_ms(runs, || {
            let _ = std::fs::remove_dir_all(&dir);
            let mut session = rel_engine::Session::open_with(&dir, dur_cfg)
                .expect("durable store opens");
            assert!(session.is_durable(), "durability must be enabled for durable_txn");
            run_stream(&mut session)
        });
        let _ = std::fs::remove_dir_all(&dir);
        let (eph_ms, eph_size) = median_ms(runs, || {
            let mut session = rel_engine::Session::new(rel_core::Database::new());
            run_stream(&mut session)
        });
        assert_eq!(dur_size, eph_size, "durability changed the committed state");
        let scale = format!("n={n},deg=3,commits={commits}");
        results.push(Measurement {
            name: "durable_txn",
            scale: format!("{scale},durable"),
            median_ms: dur_ms,
            result_size: dur_size,
            extra: vec![("overhead_vs_ephemeral", dur_ms / eph_ms)],
        });
        results.push(Measurement {
            name: "durable_txn",
            scale: format!("{scale},ephemeral"),
            median_ms: eph_ms,
            result_size: eph_size,
            extra: Vec::new(),
        });

        // --- Recovery replay: reopening the store after the stream -----
        // One store holding the full 200-record WAL (no snapshot — every
        // record must be decoded, CRC-checked and applied), reopened per
        // run. This is the restart-latency number.
        let _ = std::fs::remove_dir_all(&dir);
        let replay_cfg = rel_engine::DurabilityConfig {
            fsync: rel_engine::FsyncPolicy::Off,
            ..Default::default()
        };
        let mut session = rel_engine::Session::open_with(&dir, replay_cfg)
            .expect("replay store opens");
        let committed = run_stream(&mut session);
        drop(session);
        let (replay_ms, replay_size) = median_ms(runs, || {
            rel_engine::Session::open_with(&dir, replay_cfg)
                .expect("recovery succeeds")
                .db()
                .total_tuples()
        });
        assert_eq!(replay_size, committed, "recovery lost committed tuples");
        let _ = std::fs::remove_dir_all(&dir);
        results.push(Measurement {
            name: "recovery_replay",
            scale: format!("n={n},deg=3,commits={commits}"),
            median_ms: replay_ms,
            result_size: replay_size,
            extra: Vec::new(),
        });
    }

    // --- Serving: concurrent clients against the network server ---------
    // The paper's deployment shape: clients reach the database over the
    // wire, not in-process. An in-process `rel-server` serves the order
    // workload; fleets of 1 / 8 / 32 clients drive an *open-loop* mixed
    // load (fixed arrival interval per client, ~90% prepared reads, ~10%
    // one-shot writes through the group-commit queue). Latency is
    // measured from each request's *scheduled* arrival, so queueing
    // delay under load is visible, not hidden coordinated-omission
    // style. `median_ms` is the p50 request latency; p99 and sustained
    // throughput ride along as extra fields.
    {
        let client_counts: &[usize] = if smoke { &[1, 4] } else { &[1, 8, 32] };
        let per_client = if smoke { 20 } else { 200 };
        let interval = std::time::Duration::from_micros(1000);
        for &clients in client_counts {
            let w = OrderWorkload::generate(120, 40, 9);
            let server = rel_server::Server::start(
                rel_engine::Session::with_stdlib(w.db.clone()),
                rel_server::ServerConfig::default(),
            )
            .expect("serving benchmark server starts");
            let addr = server.addr();
            let barrier = std::sync::Arc::new(std::sync::Barrier::new(clients));
            let handles: Vec<_> = (0..clients)
                .map(|ci| {
                    let barrier = barrier.clone();
                    std::thread::spawn(move || {
                        let mut c = rel_server::Client::connect(addr)
                            .expect("serving client connects");
                        let stmt = c
                            .prepare(programs::REPEATED_QUERY)
                            .expect("serving query prepares");
                        barrier.wait();
                        let start = Instant::now();
                        let mut latencies = Vec::with_capacity(per_client);
                        let mut rows = 0usize;
                        for i in 0..per_client {
                            let scheduled = interval * i as u32;
                            if let Some(wait) =
                                scheduled.checked_sub(start.elapsed())
                            {
                                std::thread::sleep(wait);
                            }
                            if i % 10 == 9 {
                                let src = format!(
                                    "def insert(:ServeLog, x, y) : x = {ci} and y = {i}"
                                );
                                rows += c
                                    .transact(&src)
                                    .expect("serving write commits")
                                    .inserted as usize;
                            } else {
                                let params = rel_engine::Params::new()
                                    .set("order", ((ci * 31 + i) % 120) as i64);
                                // Wire parity: decode the (line, product,
                                // amount) rows typed, exactly as the
                                // embedded API would.
                                let lines: Vec<(i64, i64, i64)> = c
                                    .execute(&stmt, &params)
                                    .expect("serving read executes")
                                    .rows()
                                    .expect("serving rows decode typed");
                                rows += lines.len();
                            }
                            latencies.push(
                                (start.elapsed().saturating_sub(scheduled))
                                    .as_secs_f64()
                                    * 1e3,
                            );
                        }
                        (latencies, rows, start.elapsed().as_secs_f64())
                    })
                })
                .collect();
            let mut latencies = Vec::new();
            let mut rows = 0usize;
            let mut wall: f64 = 0.0;
            for h in handles {
                let (l, r, w) = h.join().expect("serving client panicked");
                latencies.extend(l);
                rows += r;
                wall = wall.max(w);
            }
            server.shutdown().expect("serving server shuts down");
            latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            let pct = |p: f64| latencies[((latencies.len() - 1) as f64 * p) as usize];
            let total = clients * per_client;
            results.push(Measurement {
                name: "serving",
                scale: format!("clients={clients},reqs={total}"),
                median_ms: pct(0.50),
                result_size: rows,
                extra: vec![
                    ("p99_ms", pct(0.99)),
                    ("throughput_rps", total as f64 / wall),
                ],
            });
        }
    }

    // --- Watch push: standing-query delivery vs poll-after-commit -------
    // The tentpole's acceptance shape: subscribers hold a standing
    // transitive-closure query over a growing chain while a committer
    // extends the chain edge by edge. The push side receives each
    // commit's output change as a pushed delta (computed once on the
    // commit path, fanned out to every watcher); the poll side is the
    // naive alternative the watch API replaces — every watcher re-runs
    // the full query after every acknowledged commit, recomputing and
    // re-shipping the entire closure each time. `median_ms` is the p50
    // commit-submit→delivery latency across all watcher deliveries;
    // `speedup_vs_poll` on the push entry (>= 2x at 8 watchers) is the
    // acceptance number.
    {
        let watcher_counts: &[usize] = if smoke { &[1, 2] } else { &[1, 8] };
        let (wp_n0, wp_commits) = if smoke { (8, 6) } else { (128, 60) };
        for &watchers in watcher_counts {
            let (push_lat, push_wall, push_size) =
                watch_stream(wp_n0, wp_commits, watchers, true);
            let (poll_lat, poll_wall, poll_size) =
                watch_stream(wp_n0, wp_commits, watchers, false);
            assert_eq!(push_size, poll_size, "push and poll streams landed different states");
            let pct = |mut l: Vec<f64>, p: f64| {
                l.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
                l[((l.len() - 1) as f64 * p) as usize]
            };
            let (push_p50, push_p99) = (pct(push_lat.clone(), 0.50), pct(push_lat, 0.99));
            let (poll_p50, poll_p99) = (pct(poll_lat.clone(), 0.50), pct(poll_lat, 0.99));
            let scale = format!("chain={wp_n0}+{wp_commits},watchers={watchers}");
            results.push(Measurement {
                name: "watch_push",
                scale: format!("{scale},push"),
                median_ms: push_p50,
                result_size: push_size,
                extra: vec![
                    ("p99_ms", push_p99),
                    ("throughput_cps", wp_commits as f64 / push_wall),
                    ("speedup_vs_poll", poll_p50 / push_p50),
                ],
            });
            results.push(Measurement {
                name: "watch_push",
                scale: format!("{scale},poll"),
                median_ms: poll_p50,
                result_size: poll_size,
                extra: vec![
                    ("p99_ms", poll_p99),
                    ("throughput_cps", wp_commits as f64 / poll_wall),
                ],
            });
        }
    }

    // --- Group commit: fsync=always with and without coalescing ---------
    // The durable_txn stream re-measured where durability is most
    // expensive — one fsync per commit — against the same stream pushed
    // through group-commit windows of 8 (what the server's commit queue
    // does under concurrent load). Both runs land the same state; the
    // grouped run must issue ~1/8th the fsyncs, and
    // `speedup_vs_ungrouped` is the wall-clock effect.
    {
        let commits = if smoke { 16 } else { 100 };
        let window = 8usize;
        let always = rel_engine::DurabilityConfig {
            fsync: rel_engine::FsyncPolicy::Always,
            compact_after_commits: u64::MAX,
            compact_after_bytes: u64::MAX,
            ..Default::default()
        };
        let dir = std::env::temp_dir()
            .join(format!("rel-bench-group-{}", std::process::id()));
        let run_grouped = |grouped: bool| {
            let before = rel_engine::durability::fsync_count();
            let (ms, size) = median_ms(runs, || {
                let _ = std::fs::remove_dir_all(&dir);
                let mut session = rel_engine::Session::open_with(&dir, always)
                    .expect("group-commit store opens");
                assert!(session.is_durable());
                let mut i = 0usize;
                while i < commits {
                    let span = if grouped { window.min(commits - i) } else { 1 };
                    if grouped {
                        session.begin_commit_group();
                    }
                    for _ in 0..span {
                        let mut txn = session.begin();
                        txn.stage_insert("E", rel_core::tuple![i as i64, i as i64]);
                        txn.commit().expect("commit");
                        i += 1;
                    }
                    if grouped {
                        session.end_commit_group().expect("group sync");
                    }
                }
                session.db().total_tuples()
            });
            let fsyncs = rel_engine::durability::fsync_count() - before;
            (ms, size, fsyncs as f64 / runs as f64)
        };
        let (grp_ms, grp_size, grp_fsyncs) = run_grouped(true);
        let (ung_ms, ung_size, ung_fsyncs) = run_grouped(false);
        let _ = std::fs::remove_dir_all(&dir);
        assert_eq!(grp_size, ung_size, "group commit changed the committed state");
        assert!(
            grp_fsyncs < ung_fsyncs,
            "group commit must coalesce fsyncs ({grp_fsyncs} vs {ung_fsyncs})"
        );
        let scale = format!("commits={commits},fsync=always");
        results.push(Measurement {
            name: "group_commit_txn",
            scale: format!("{scale},grouped"),
            median_ms: grp_ms,
            result_size: grp_size,
            extra: vec![
                ("fsyncs_per_run", grp_fsyncs),
                ("speedup_vs_ungrouped", ung_ms / grp_ms),
            ],
        });
        results.push(Measurement {
            name: "group_commit_txn",
            scale: format!("{scale},ungrouped"),
            median_ms: ung_ms,
            result_size: ung_size,
            extra: vec![("fsyncs_per_run", ung_fsyncs)],
        });
    }

    // --- Observability overhead: the same stream, metrics off vs on -----
    // The observability layer's acceptance guard: a serving-shaped mix
    // (prepared point reads over a maintained transitive closure,
    // interleaved with prepared-insert commits) run once with the
    // metrics registry dark and once with every hot-path counter,
    // histogram, and profile dispatch point ticking (`set_metrics(true)`
    // — what `REL_METRICS=1` does at startup). Both streams must land
    // identical results; `overhead_x` on the metrics-on entry is the
    // acceptance number (<= 1.05x): metering the engine must cost
    // almost nothing when on and exactly nothing when off.
    {
        let (n, ops) = if smoke { (40, 20) } else { (120, 150) };
        let lib = "def TC(x,y) : E(x,y)\n\
                   def TC(x,y) : exists((z) | E(x,z) and TC(z,y))";
        let g = gen::random_graph(n, 3.0, 77);
        let base_db = gen::graph_database(&g);
        let stream = |metrics_on: bool| -> usize {
            let mut session = rel_engine::Session::new(base_db.clone()).with_library(lib);
            session.set_metrics(metrics_on);
            let insert = session
                .prepare("def insert(:E, x, y) : x = ?src and y = ?dst")
                .expect("insert step prepares");
            let read = session
                .prepare("def output(y) : exists((x) | x = ?src and TC(x, y))")
                .expect("point read prepares");
            let mut total = 0usize;
            for i in 0..ops {
                let params = rel_engine::Params::new()
                    .set("src", (i * 13 % n) as i64)
                    .set("dst", ((i * 7 + 3) % n) as i64);
                let mut txn = session.begin();
                txn.run_prepared(&insert, &params).expect("step runs");
                txn.commit().expect("commit");
                let point = rel_engine::Params::new().set("src", (i % n) as i64);
                total += read.execute_with(&session, &point).expect("read executes").len();
            }
            total
        };
        // One untimed pass per mode so allocator/compile warm-up lands on
        // neither measured stream.
        let _ = stream(false);
        let _ = stream(true);
        let (off_ms, off_size) = median_ms(runs, || stream(false));
        let (on_ms, on_size) = median_ms(runs, || stream(true));
        rel_engine::metrics::set_metrics(false);
        assert_eq!(off_size, on_size, "enabling metrics changed query results");
        let scale = format!("n={n},deg=3,ops={ops}");
        results.push(Measurement {
            name: "observability_overhead",
            scale: format!("{scale},metrics-on"),
            median_ms: on_ms,
            result_size: on_size,
            extra: vec![("overhead_x", on_ms / off_ms)],
        });
        results.push(Measurement {
            name: "observability_overhead",
            scale: format!("{scale},metrics-off"),
            median_ms: off_ms,
            result_size: off_size,
            extra: Vec::new(),
        });
    }

    // --- Smoke-only: print per-query profiles of the core workloads -----
    // CI's bench-smoke job exercises the QueryProfile plumbing end to
    // end: one profiled run each of TC and triangles at smoke scale,
    // renderings printed so the profiler and its renderer cannot bit-rot
    // between the PRs that actually read them (timings are meaningless
    // at this scale; nothing here lands in the JSON).
    if smoke {
        let g = gen::random_graph(40, 3.0, 23);
        let mut session = rel_graph::with_graph_lib(gen::graph_database(&g));
        session.set_metrics(true);
        for (tag, src) in [("tc", programs::TC), ("triangles", programs::TRIANGLES)] {
            let (rows, profile) =
                session.query_profiled(src).expect("profiled smoke workload runs");
            println!("--- profile: {tag} (rows={}) ---", rows.len());
            print!("{}", profile.render());
        }
        println!("--- metrics registry after profiled smoke runs ---");
        print!("{}", rel_engine::metrics::registry().snapshot().render());
        session.set_metrics(false);
    }

    let baseline = baseline_path.map(|p| {
        let text = std::fs::read_to_string(&p).unwrap_or_else(|e| {
            eprintln!("bench_report: cannot read baseline {p}: {e}");
            std::process::exit(2);
        });
        parse_medians(&text)
    });

    let report_name = std::path::Path::new(&out_path)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "BENCH".to_string());
    let profile = if cfg!(debug_assertions) { "debug" } else { "release" };
    let host_cpus = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"report\": \"{report_name}\",");
    let _ = writeln!(json, "  \"profile\": \"{profile}\",");
    let _ = writeln!(json, "  \"host_cpus\": {host_cpus},");
    let _ = writeln!(json, "  \"runs_per_workload\": {runs},");
    json.push_str("  \"workloads\": [\n");
    for (i, m) in results.iter().enumerate() {
        let key = format!("{}@{}", m.name, m.scale);
        let _ = write!(
            json,
            "    {{\"name\": \"{}\", \"scale\": \"{}\", \"median_ms\": {:.3}, \"result_size\": {}",
            m.name, m.scale, m.median_ms, m.result_size
        );
        for (k, v) in &m.extra {
            let _ = write!(json, ", \"{k}\": {v:.2}");
        }
        if let Some(base) = &baseline {
            if let Some(b) = base.iter().find(|(k, _)| *k == key).map(|(_, v)| *v) {
                let _ = write!(
                    json,
                    ", \"baseline_ms\": {:.3}, \"speedup\": {:.2}",
                    b,
                    b / m.median_ms
                );
            }
        }
        json.push('}');
        if i + 1 < results.len() {
            json.push(',');
        }
        json.push('\n');
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write report");

    println!("{:<24} {:>16} {:>12} {:>10}", "workload", "scale", "median_ms", "size");
    for m in &results {
        println!(
            "{:<24} {:>16} {:>12.2} {:>10}",
            m.name, m.scale, m.median_ms, m.result_size
        );
    }
    println!("wrote {out_path}");
}

/// Extract `(name@scale, median_ms)` pairs from a previous report without
/// a JSON dependency: one workload object per line, fixed key order (the
/// format this binary itself writes).
fn parse_medians(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let Some(name) = extract(line, "\"name\": \"", "\"") else { continue };
        let Some(scale) = extract(line, "\"scale\": \"", "\"") else { continue };
        let Some(ms) = extract(line, "\"median_ms\": ", ",").or_else(|| extract(line, "\"median_ms\": ", "}"))
        else {
            continue;
        };
        if let Ok(v) = ms.trim().parse::<f64>() {
            out.push((format!("{name}@{scale}"), v));
        }
    }
    out
}

fn extract<'a>(line: &'a str, prefix: &str, terminator: &str) -> Option<&'a str> {
    let start = line.find(prefix)? + prefix.len();
    let rest = &line[start..];
    let end = rest.find(terminator)?;
    Some(&rest[..end])
}
