//! E4 — transitive closure scaling: semi-naive vs naive vs native BFS.
use rel_bench::programs;
use rel_graph::{gen, native};
use std::time::Instant;

fn main() {
    println!("E4 — transitive closure (random digraphs, avg degree 3)");
    println!("{:>6} {:>9} {:>12} {:>12} {:>12}", "n", "|TC|", "semi-naive", "naive", "native BFS");
    for n in [50usize, 100, 200, 400] {
        let g = gen::random_graph(n, 3.0, 42);
        let db = gen::graph_database(&g);
        let module = rel_sema::compile(programs::TC).unwrap();
        let t = Instant::now();
        let rels = rel_engine::materialize(&module, &db).unwrap();
        let semi = t.elapsed();
        let size = rels.get("TC").map(rel_core::Relation::len).unwrap_or(0);
        let t = Instant::now();
        rel_engine::materialize_naive(&module, &db).unwrap();
        let naive = t.elapsed();
        let t = Instant::now();
        let nat = native::transitive_closure(&g);
        let native_t = t.elapsed();
        assert_eq!(size, nat.len(), "differential check");
        println!("{n:>6} {size:>9} {semi:>12.2?} {naive:>12.2?} {native_t:>12.2?}");
    }
}
