//! E12 — tuple-variable (arity-generic) programs across an arity sweep.
use rel_core::{Database, Relation, Tuple, Value};
use rel_stdlib::SessionExt;
use std::time::Instant;

fn main() {
    println!("E12 — arity-generic Product / Prefixes (tuple variables, §4.1)");
    println!("{:>7} {:>9} {:>12} {:>12}", "arity", "rows", "Product[R,S]", "Prefixes[R]");
    for arity in [1usize, 2, 4, 6, 8] {
        let mut db = Database::new();
        let rel: Relation = (0..50i64)
            .map(|r| Tuple::from((0..arity).map(|c| Value::Int(r * 10 + c as i64)).collect::<Vec<_>>()))
            .collect();
        db.set("R", rel);
        db.set("S", Relation::from_tuples([Tuple::from(vec![Value::Int(-1)])]));
        let session = rel_engine::Session::with_stdlib(db);
        let t = Instant::now();
        let p = session.query("def output : Product[R, S]").unwrap();
        let pt = t.elapsed();
        assert_eq!(p.len(), 50);
        let t = Instant::now();
        let pre = session.query("def output : Prefixes[R]").unwrap();
        let prt = t.elapsed();
        assert!(pre.len() >= 50 * arity);
        println!("{arity:>7} {:>9} {pt:>12.2?} {prt:>12.2?}", 50);
    }
}
