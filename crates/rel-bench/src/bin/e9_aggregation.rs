//! E9 — grouped aggregation throughput vs a native fold.
use rel_bench::{programs, OrderWorkload};
use rel_stdlib::SessionExt;
use std::time::Instant;

fn main() {
    println!("E9 — revenue per order (sum + <++ 0, Zipf-skewed lines)");
    println!("{:>8} {:>9} {:>12} {:>12}", "orders", "lines", "rel", "native");
    for n in [200usize, 1000, 5000] {
        let w = OrderWorkload::generate(n, 50, 3);
        let lines = w.db.get("Line").unwrap().len();
        let session = rel_engine::Session::with_stdlib(w.db.clone());
        let t = Instant::now();
        let out = session.query(programs::REVENUE).unwrap();
        let rel_t = t.elapsed();
        let t = Instant::now();
        let nat = w.native_revenue();
        let nat_t = t.elapsed();
        assert_eq!(out.len(), nat.len(), "differential check");
        println!("{n:>8} {lines:>9} {rel_t:>12.2?} {nat_t:>12.2?}");
    }
}
