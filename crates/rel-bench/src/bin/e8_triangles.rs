//! E8 — triangle counting: leapfrog triejoin (WCOJ) vs binary hash joins.
use rel_engine::leapfrog::{triangle_count_hash, triangle_count_lftj};
use rel_graph::gen;
use std::time::Instant;

fn main() {
    println!("E8 — triangles: WCOJ vs binary-join plan ([38,47], §7)");
    println!("{:>22} {:>9} {:>12} {:>12}", "graph", "count", "lftj", "hash-join");
    for (label, rel) in [
        ("uniform n=300 d=6", gen::edge_relation(&gen::random_graph(300, 6.0, 13))),
        ("uniform n=1000 d=8", gen::edge_relation(&gen::random_graph(1000, 8.0, 14))),
        ("skewed 4 hubs x400", gen::edge_relation(&gen::skewed_graph(800, 4, 400, 17))),
        ("skewed 8 hubs x600", gen::edge_relation(&gen::skewed_graph(2000, 8, 600, 19))),
    ] {
        let t = Instant::now();
        let l = triangle_count_lftj(&rel);
        let lt = t.elapsed();
        let t = Instant::now();
        let h = triangle_count_hash(&rel);
        let ht = t.elapsed();
        assert_eq!(l, h, "differential check");
        println!("{label:>22} {l:>9} {lt:>12.2?} {ht:>12.2?}");
    }
}
