//! E10 — GNF decomposition vs wide records: rejoin cost of §2's schema.
use rel_core::Database;
use rel_stdlib::SessionExt;
use std::time::Instant;

fn main() {
    println!("E10 — GNF (6NF) rejoin vs wide-record scan");
    println!("{:>8} {:>14} {:>14}", "n", "wide scan", "GNF rejoin");
    for n in [500usize, 2000, 8000] {
        let mut wide_db = Database::new();
        wide_db.set("ProductWide", rel_kg::wide_products(n));
        let mut gnf_db = Database::new();
        for (name, rel) in rel_kg::gnf_products(n) {
            gnf_db.set(&name, rel);
        }
        let wide_s = rel_engine::Session::with_stdlib(wide_db);
        let gnf_s = rel_engine::Session::with_stdlib(gnf_db);
        let t = Instant::now();
        let w = wide_s.query("def output(p, nm, pr) : ProductWide(p, nm, pr)").unwrap();
        let wt = t.elapsed();
        let t = Instant::now();
        let g = gnf_s
            .query("def output(p, nm, pr) : ProductName(p, nm) and ProductPrice(p, pr)")
            .unwrap();
        let gt = t.elapsed();
        assert_eq!(w, g, "decomposition is lossless");
        println!("{n:>8} {wt:>14.2?} {gt:>14.2?}");
    }
}
