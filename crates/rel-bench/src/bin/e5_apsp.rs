//! E5 — all-pairs shortest paths: Rel APSP2 vs native BFS-per-source.
use rel_graph::{gen, native};
use std::time::Instant;

fn main() {
    println!("E5 — APSP (aggregation variant, partial fixpoint)");
    println!("{:>6} {:>9} {:>12} {:>12}", "n", "paths", "rel APSP2", "native BFS");
    for n in [16usize, 32, 64] {
        let g = gen::random_graph(n, 2.0, 7);
        let session = rel_graph::with_graph_lib(gen::graph_database(&g));
        let t = Instant::now();
        let out = session.query(rel_bench::programs::APSP).unwrap();
        let rel_t = t.elapsed();
        let t = Instant::now();
        let nat = native::apsp(&g);
        let nat_t = t.elapsed();
        assert_eq!(out.len(), nat.len(), "differential check");
        println!("{n:>6} {:>9} {rel_t:>12.2?} {nat_t:>12.2?}", out.len());
    }
}
