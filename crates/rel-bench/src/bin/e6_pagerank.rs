//! E6 — PageRank: the paper's §5.4 program (partial fixpoint) vs native.
use rel_graph::{gen, native};
use std::time::Instant;

fn main() {
    println!("E6 — PageRank (eps = 0.005, the paper's stop condition)");
    println!("{:>6} {:>12} {:>12} {:>12}", "n", "rel", "native", "max |diff|");
    for n in [16usize, 32, 64, 128] {
        let g = gen::random_graph(n, 3.0, 11);
        let mut db = gen::graph_database(&g);
        db.set("M", gen::transition_matrix_relation(&g));
        let session = rel_graph::with_graph_lib(db);
        let t = Instant::now();
        let out = session.query(rel_bench::programs::PAGERANK).unwrap();
        let rel_t = t.elapsed();
        let m = native::transition_matrix(&g);
        let t = Instant::now();
        let nat = native::pagerank_iterate(g.n, &m, 0.005, 10_000);
        let nat_t = t.elapsed();
        let max_err = out.iter().map(|t| {
            let i = t.values()[0].as_int().unwrap() as usize;
            (t.values()[1].as_f64().unwrap() - nat[&i]).abs()
        }).fold(0.0f64, f64::max);
        println!("{n:>6} {rel_t:>12.2?} {nat_t:>12.2?} {max_err:>12.2e}");
    }
}
