use criterion::{criterion_group, criterion_main, Criterion};
use rel_graph::{gen, native};

/// E6 — PageRank: the paper's stop-condition program vs a native loop.
fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_pagerank");
    group.sample_size(10);
    for n in [16usize, 48] {
        let g = gen::random_graph(n, 3.0, 11);
        let mut db = gen::graph_database(&g);
        db.set("M", gen::transition_matrix_relation(&g));
        let session = rel_graph::with_graph_lib(db);
        let m = native::transition_matrix(&g);
        group.bench_function(format!("rel_pagerank/n{n}"), |b| {
            b.iter(|| session.query(rel_bench::programs::PAGERANK).unwrap())
        });
        group.bench_function(format!("native_iterate/n{n}"), |b| {
            b.iter(|| native::pagerank_iterate(g.n, &m, 0.005, 10_000))
        });
    }
    group.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
