use criterion::{criterion_group, criterion_main, Criterion};
use rel_stdlib::SessionExt;
use rel_core::{Database, Relation, Tuple, Value};

/// E12 — tuple-variable programs: arity-generic Product/Prefixes across a
/// relation-arity sweep.
fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e12_tuplevars");
    group.sample_size(10);
    for arity in [2usize, 4, 6] {
        let mut db = Database::new();
        let rel: Relation = (0..40i64)
            .map(|r| Tuple::from((0..arity).map(|c| Value::Int(r * 10 + c as i64)).collect::<Vec<_>>()))
            .collect();
        db.set("R", rel);
        db.set("S", Relation::from_tuples([Tuple::from(vec![Value::Int(-1), Value::Int(-2)])]));
        let session = rel_engine::Session::with_stdlib(db);
        group.bench_function(format!("generic_product/arity{arity}"), |b| {
            b.iter(|| session.query("def output : Product[R, S]").unwrap())
        });
        group.bench_function(format!("prefixes/arity{arity}"), |b| {
            b.iter(|| session.query("def output : Prefixes[R]").unwrap())
        });
    }
    group.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
