use criterion::{criterion_group, criterion_main, Criterion};
use rel_engine::leapfrog::{triangle_count_hash, triangle_count_lftj};
use rel_graph::gen;

/// E8 — triangle counting: leapfrog triejoin (WCOJ) vs binary hash joins,
/// on uniform and hub-skewed graphs (where binary plans blow up).
fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_triangles");
    group.sample_size(10);
    let uniform = gen::edge_relation(&gen::random_graph(300, 6.0, 13));
    group.bench_function("lftj/uniform_n300", |b| b.iter(|| triangle_count_lftj(&uniform)));
    group.bench_function("hash/uniform_n300", |b| b.iter(|| triangle_count_hash(&uniform)));
    let skewed = gen::edge_relation(&gen::skewed_graph(800, 4, 400, 17));
    group.bench_function("lftj/skewed_hubs", |b| b.iter(|| triangle_count_lftj(&skewed)));
    group.bench_function("hash/skewed_hubs", |b| b.iter(|| triangle_count_hash(&skewed)));
    group.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
