use criterion::{criterion_group, criterion_main, Criterion};
use rel_stdlib::SessionExt;
use rel_core::Database;

/// E10 — GNF decomposition vs a wide record relation: the rejoin cost of
/// §2's normalization (name+price lookup for every product).
fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_gnf");
    group.sample_size(10);
    for n in [500usize, 2000] {
        let mut wide_db = Database::new();
        wide_db.set("ProductWide", rel_kg::wide_products(n));
        let mut gnf_db = Database::new();
        for (name, rel) in rel_kg::gnf_products(n) {
            gnf_db.set(&name, rel);
        }
        let wide_s = rel_engine::Session::with_stdlib(wide_db);
        let gnf_s = rel_engine::Session::with_stdlib(gnf_db);
        group.bench_function(format!("wide_scan/n{n}"), |b| {
            b.iter(|| wide_s.query("def output(p, nm, pr) : ProductWide(p, nm, pr)").unwrap())
        });
        group.bench_function(format!("gnf_rejoin/n{n}"), |b| {
            b.iter(|| {
                gnf_s
                    .query("def output(p, nm, pr) : ProductName(p, nm) and ProductPrice(p, pr)")
                    .unwrap()
            })
        });
    }
    group.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
