use criterion::{criterion_group, criterion_main, Criterion};
use rel_stdlib::SessionExt;
use rel_bench::{dense_matrix, native_matmul, sparse_matrix};
use rel_core::Database;

/// E7 — MatrixMult on dense and sparse encodings (same Rel code) vs native.
fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_linalg");
    group.sample_size(10);
    for d in [8usize, 16] {
        let mut db = Database::new();
        dense_matrix("A", d, &mut db);
        dense_matrix("B", d, &mut db);
        let session = rel_engine::Session::with_stdlib(db.clone());
        group.bench_function(format!("rel_dense/d{d}"), |b| {
            b.iter(|| session.query(rel_bench::programs::MATMUL).unwrap())
        });
        let (a, bm) = (db.get("A").unwrap().clone(), db.get("B").unwrap().clone());
        group.bench_function(format!("native_dense/d{d}"), |b| {
            b.iter(|| native_matmul(&a, &bm))
        });
    }
    // Sparse: same Rel code, different data shape (data independence).
    let mut db = Database::new();
    sparse_matrix("A", 32, 0.05, 5, &mut db);
    sparse_matrix("B", 32, 0.05, 6, &mut db);
    let session = rel_engine::Session::with_stdlib(db);
    group.bench_function("rel_sparse/d32", |b| {
        b.iter(|| session.query(rel_bench::programs::MATMUL).unwrap())
    });
    group.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
