use criterion::{criterion_group, criterion_main, Criterion};
use rel_graph::gen;

/// E5 — all-pairs shortest paths: Rel (PFP + aggregation) vs native BFS.
fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_apsp");
    group.sample_size(10);
    for n in [16usize, 32] {
        let g = gen::random_graph(n, 2.0, 7);
        let db = gen::graph_database(&g);
        let session = rel_graph::with_graph_lib(db);
        group.bench_function(format!("rel_apsp2/n{n}"), |b| {
            b.iter(|| session.query(rel_bench::programs::APSP).unwrap())
        });
        group.bench_function(format!("native_bfs/n{n}"), |b| {
            b.iter(|| rel_graph::native::apsp(&g))
        });
    }
    group.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
