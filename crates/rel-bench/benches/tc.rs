use criterion::{criterion_group, criterion_main, Criterion};
use rel_bench::programs;
use rel_graph::gen;

/// E4 — transitive closure: semi-naive vs naive vs native BFS.
fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_tc");
    group.sample_size(10);
    for n in [50usize, 150] {
        let g = gen::random_graph(n, 3.0, 42);
        let db = gen::graph_database(&g);
        let module = rel_sema::compile(programs::TC).unwrap();
        group.bench_function(format!("semi_naive/n{n}"), |b| {
            b.iter(|| rel_engine::materialize(&module, &db).unwrap())
        });
        group.bench_function(format!("naive/n{n}"), |b| {
            b.iter(|| rel_engine::materialize_naive(&module, &db).unwrap())
        });
        group.bench_function(format!("native_bfs/n{n}"), |b| {
            b.iter(|| rel_graph::native::transitive_closure(&g))
        });
    }
    group.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
