use criterion::{criterion_group, criterion_main, Criterion};
use rel_stdlib::SessionExt;
use rel_bench::{programs, OrderWorkload};

/// E9 — grouped aggregation under set semantics vs a native fold.
fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_aggregation");
    group.sample_size(10);
    for n in [200usize, 1000] {
        let w = OrderWorkload::generate(n, 50, 3);
        let session = rel_engine::Session::with_stdlib(w.db.clone());
        group.bench_function(format!("rel_sum/orders{n}"), |b| {
            b.iter(|| session.query(programs::REVENUE).unwrap())
        });
        group.bench_function(format!("native_fold/orders{n}"), |b| {
            b.iter(|| w.native_revenue())
        });
    }
    group.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
