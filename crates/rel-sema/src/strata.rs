//! Predicate dependency analysis and stratification.
//!
//! The dependency graph has an edge `p → q` when a rule for `p` mentions
//! `q` in its body. Edges are **negative** when the mention sits under
//! negation, inside a `reduce` input (aggregation), or on either side of a
//! left-override (which hides an implicit negation). The graph is condensed
//! into SCCs (Tarjan); each SCC becomes a [`Stratum`], ordered dependencies
//! first.
//!
//! Unlike textbook Datalog, a negative edge *inside* an SCC is not an
//! error: per §3.3/Addendum A, Rel admits non-stratified programs. Such
//! strata are marked non-monotone and the engine evaluates them with
//! partial-fixpoint iteration instead of semi-naive (DESIGN.md §2.3).

use crate::builtins;
use crate::ir::{Formula, RExpr, Rule, Stratum, StratumReads};
use rel_core::Name;
use std::collections::{BTreeMap, BTreeSet};

/// Edge polarity.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Polarity {
    /// Monotone dependency.
    Positive,
    /// Non-monotone dependency (negation / aggregation / override).
    Negative,
}

/// Collect `(dependency, polarity)` pairs from one rule body.
pub fn rule_deps(rule: &Rule) -> BTreeSet<(Name, Polarity)> {
    let mut out = BTreeSet::new();
    for p in &rule.params {
        if let crate::ir::AbsParam::In(_, dom) = p {
            rexpr_deps(dom, Polarity::Positive, &mut out);
        }
    }
    rexpr_deps(&rule.body, Polarity::Positive, &mut out);
    out
}

fn flip(p: Polarity) -> Polarity {
    match p {
        Polarity::Positive => Polarity::Negative,
        Polarity::Negative => Polarity::Negative, // stay conservative
    }
}

fn add(pred: &Name, pol: Polarity, out: &mut BTreeSet<(Name, Polarity)>) {
    if !builtins::is_builtin(pred) {
        out.insert((pred.clone(), pol));
    }
}

fn formula_deps(f: &Formula, pol: Polarity, out: &mut BTreeSet<(Name, Polarity)>) {
    match f {
        Formula::True | Formula::False => {}
        Formula::Conj(items) | Formula::Disj(items) => {
            for i in items {
                formula_deps(i, pol, out);
            }
        }
        Formula::Not(inner) => formula_deps(inner, flip(pol), out),
        Formula::Atom(a) => add(&a.pred, pol, out),
        Formula::DynAtom { rel, .. } => rexpr_deps(rel, pol, out),
        Formula::Cmp { lhs, rhs, .. } => {
            rexpr_deps(lhs, pol, out);
            rexpr_deps(rhs, pol, out);
        }
        Formula::Member { of, .. } => rexpr_deps(of, pol, out),
        Formula::Exists { body, .. } => formula_deps(body, pol, out),
        Formula::OfExpr(e) => rexpr_deps(e, pol, out),
    }
}

fn rexpr_deps(e: &RExpr, pol: Polarity, out: &mut BTreeSet<(Name, Polarity)>) {
    match e {
        RExpr::Pred(p) => add(p, pol, out),
        RExpr::PApp { pred, .. } => add(pred, pol, out),
        RExpr::DynPApp { rel, .. } => rexpr_deps(rel, pol, out),
        RExpr::Product(es) | RExpr::Union(es) => {
            for x in es {
                rexpr_deps(x, pol, out);
            }
        }
        RExpr::Singleton(_) => {}
        RExpr::Where { body, cond } => {
            rexpr_deps(body, pol, out);
            formula_deps(cond, pol, out);
        }
        RExpr::Abstract { params, body, .. } => {
            for p in params {
                if let crate::ir::AbsParam::In(_, dom) = p {
                    rexpr_deps(dom, pol, out);
                }
            }
            rexpr_deps(body, pol, out);
        }
        RExpr::Reduce { op, input, .. } => {
            // Aggregation is non-monotone in its input.
            rexpr_deps(op, pol, out);
            rexpr_deps(input, flip(pol), out);
        }
        RExpr::BuiltinApp { args, .. } => {
            for a in args {
                rexpr_deps(a, pol, out);
            }
        }
        RExpr::DotJoin(a, b) => {
            rexpr_deps(a, pol, out);
            rexpr_deps(b, pol, out);
        }
        RExpr::LeftOverride(a, b) => {
            // `a <++ b` contains `… and not a(…)` — treat both sides as
            // non-monotone to be safe.
            rexpr_deps(a, flip(pol), out);
            rexpr_deps(b, flip(pol), out);
        }
        RExpr::OfFormula(f) => formula_deps(f, pol, out),
    }
}

/// Compute strata for a rule set: Tarjan SCC condensation in dependency
/// order (dependencies first).
pub fn stratify(rules: &BTreeMap<Name, Vec<Rule>>) -> Vec<Stratum> {
    // Adjacency: pred → (dep, polarity), restricted to IDB preds.
    let idb: BTreeSet<&Name> = rules.keys().collect();
    let mut adj: BTreeMap<&Name, Vec<(&Name, Polarity)>> = BTreeMap::new();
    let mut dep_store: BTreeMap<&Name, BTreeSet<(Name, Polarity)>> = BTreeMap::new();
    for (pred, rs) in rules {
        let mut deps = BTreeSet::new();
        for r in rs {
            deps.extend(rule_deps(r));
        }
        dep_store.insert(pred, deps);
    }
    for (pred, deps) in &dep_store {
        let entry = adj.entry(pred).or_default();
        for (d, pol) in deps.iter() {
            if let Some(key) = idb.get(d) {
                entry.push((key, *pol));
            }
        }
    }

    // Iterative Tarjan.
    struct T<'a> {
        index: BTreeMap<&'a Name, usize>,
        low: BTreeMap<&'a Name, usize>,
        on_stack: BTreeSet<&'a Name>,
        stack: Vec<&'a Name>,
        next: usize,
        sccs: Vec<Vec<&'a Name>>,
    }
    let mut t = T {
        index: BTreeMap::new(),
        low: BTreeMap::new(),
        on_stack: BTreeSet::new(),
        stack: Vec::new(),
        next: 0,
        sccs: Vec::new(),
    };

    // Explicit DFS stack frames: (node, child cursor).
    for start in rules.keys() {
        if t.index.contains_key(start) {
            continue;
        }
        let mut frames: Vec<(&Name, usize)> = vec![(start, 0)];
        t.index.insert(start, t.next);
        t.low.insert(start, t.next);
        t.next += 1;
        t.stack.push(start);
        t.on_stack.insert(start);
        while let Some((node, cursor)) = frames.last().copied() {
            let children = adj.get(&node).map(Vec::as_slice).unwrap_or(&[]);
            if cursor < children.len() {
                frames.last_mut().expect("nonempty").1 += 1;
                let (child, _) = children[cursor];
                if !t.index.contains_key(child) {
                    t.index.insert(child, t.next);
                    t.low.insert(child, t.next);
                    t.next += 1;
                    t.stack.push(child);
                    t.on_stack.insert(child);
                    frames.push((child, 0));
                } else if t.on_stack.contains(child) {
                    let cl = t.index[child];
                    let nl = t.low[&node].min(cl);
                    t.low.insert(node, nl);
                }
            } else {
                frames.pop();
                if let Some((parent, _)) = frames.last() {
                    let nl = t.low[parent].min(t.low[&node]);
                    t.low.insert(parent, nl);
                }
                if t.low[&node] == t.index[&node] {
                    let mut scc = Vec::new();
                    while let Some(top) = t.stack.pop() {
                        t.on_stack.remove(top);
                        scc.push(top);
                        if top == node {
                            break;
                        }
                    }
                    scc.sort();
                    t.sccs.push(scc);
                }
            }
        }
    }

    // Tarjan emits SCCs with all (transitive) dependencies already emitted
    // (successors complete first), which is exactly evaluation order.
    t.sccs
        .into_iter()
        .map(|members| {
            let set: BTreeSet<&&Name> = members.iter().collect();
            let mut recursive = members.len() > 1;
            let mut monotone = true;
            for m in &members {
                for (d, pol) in adj.get(*m).map(Vec::as_slice).unwrap_or(&[]) {
                    if set.contains(d) {
                        if *d == *m || members.len() > 1 {
                            recursive = true;
                        }
                        if *pol == Polarity::Negative {
                            monotone = false;
                        }
                    }
                }
            }
            Stratum {
                preds: members.into_iter().cloned().collect(),
                recursive,
                monotone: !recursive || monotone,
            }
        })
        .collect()
}

/// Compute the condensation's dependency edges over already-computed
/// strata: `deps[i]` lists the indices of the strata that stratum `i`
/// reads from (sorted, deduplicated, self-edges omitted). Because
/// [`stratify`] emits strata dependencies-first, every entry of `deps[i]`
/// is `< i` — the result is a DAG in topological order, which is exactly
/// what a parallel scheduler needs: stratum `i` may start as soon as all
/// of `deps[i]` have finished, and strata with disjoint ancestries may
/// run concurrently.
pub fn stratum_deps(rules: &BTreeMap<Name, Vec<Rule>>, strata: &[Stratum]) -> Vec<Vec<usize>> {
    let stratum_of: BTreeMap<&Name, usize> = strata
        .iter()
        .enumerate()
        .flat_map(|(i, s)| s.preds.iter().map(move |p| (p, i)))
        .collect();
    strata
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let mut deps = BTreeSet::new();
            for p in &s.preds {
                for r in rules.get(p).map(Vec::as_slice).unwrap_or(&[]) {
                    for (d, _) in rule_deps(r) {
                        if let Some(&j) = stratum_of.get(&d) {
                            if j != i {
                                debug_assert!(j < i, "strata not in dependency order");
                                deps.insert(j);
                            }
                        }
                    }
                }
            }
            deps.into_iter().collect()
        })
        .collect()
}

/// Compute each stratum's read set: every non-builtin relation name its
/// rules reference (including the stratum's own SCC members), split by
/// the polarity of the reference — [`rule_deps`]' notion of polarity, so
/// "negative" covers negation, aggregation inputs, and left-override.
///
/// Indexing matches `strata`. The result feeds
/// [`crate::ir::Module::dependent_cone`] (which relations can invalidate
/// which strata) and the engine's incremental maintenance (which changed
/// inputs admit delta-seeded restart vs force recomputation).
pub fn stratum_read_sets(
    rules: &BTreeMap<Name, Vec<Rule>>,
    strata: &[Stratum],
) -> Vec<StratumReads> {
    strata
        .iter()
        .map(|s| {
            let mut positive = BTreeSet::new();
            let mut negative = BTreeSet::new();
            for p in &s.preds {
                for r in rules.get(p).map(Vec::as_slice).unwrap_or(&[]) {
                    for (d, pol) in rule_deps(r) {
                        match pol {
                            Polarity::Positive => positive.insert(d),
                            Polarity::Negative => negative.insert(d),
                        };
                    }
                }
            }
            StratumReads {
                positive: positive.into_iter().collect(),
                negative: negative.into_iter().collect(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower;
    use crate::specialize::specialize;
    use rel_syntax::parse_program;

    fn strata_of(src: &str) -> Vec<Stratum> {
        let sp = specialize(&parse_program(src).unwrap()).unwrap();
        let (rules, _) = lower(&sp).unwrap();
        stratify(&rules)
    }

    fn strata_and_deps_of(src: &str) -> (Vec<Stratum>, Vec<Vec<usize>>) {
        let sp = specialize(&parse_program(src).unwrap()).unwrap();
        let (rules, _) = lower(&sp).unwrap();
        let strata = stratify(&rules);
        let deps = stratum_deps(&rules, &strata);
        (strata, deps)
    }

    #[test]
    fn linear_chain() {
        let s = strata_of(
            "def A(x) : E(x)\n\
             def B(x) : A(x)\n\
             def C(x) : B(x)",
        );
        assert_eq!(s.len(), 3);
        assert_eq!(&*s[0].preds[0], "A");
        assert_eq!(&*s[1].preds[0], "B");
        assert_eq!(&*s[2].preds[0], "C");
        assert!(s.iter().all(|st| !st.recursive && st.monotone));
    }

    #[test]
    fn tc_is_recursive_monotone() {
        let s = strata_of(
            "def TC(x,y) : E(x,y)\n\
             def TC(x,y) : exists((z) | E(x,z) and TC(z,y))",
        );
        assert_eq!(s.len(), 1);
        assert!(s[0].recursive);
        assert!(s[0].monotone);
    }

    #[test]
    fn negation_between_strata_is_fine() {
        let s = strata_of(
            "def A(x) : E(x)\n\
             def B(x) : V(x) and not A(x)",
        );
        assert_eq!(s.len(), 2);
        assert!(s.iter().all(|st| st.monotone));
    }

    #[test]
    fn negation_through_recursion_is_nonmonotone() {
        let s = strata_of(
            "def Win(x) : exists((y) | Move(x,y) and not Win(y))",
        );
        assert_eq!(s.len(), 1);
        assert!(s[0].recursive);
        assert!(!s[0].monotone);
    }

    #[test]
    fn aggregation_through_recursion_is_nonmonotone() {
        let s = strata_of(
            "def D({V},{E},x,y,0) : V(x) and V(y) and x = y\n\
             def D({V},{E},x,y,i) : i = min[(j) : exists((z) | E(x,z) and D[V,E](z,y,j-1))]\n\
             def min[{A}] : reduce[minimum,A]\n\
             def out(x,y,d) : D(N, NN, x, y, d)",
        );
        let apsp = s
            .iter()
            .find(|st| st.preds.iter().any(|p| p.starts_with("D@")))
            .expect("instance stratum");
        assert!(apsp.recursive);
        assert!(!apsp.monotone, "aggregation inside recursion must force PFP");
    }

    #[test]
    fn mutual_recursion_single_scc() {
        let s = strata_of(
            "def Even(x) : Zero(x)\n\
             def Even(x) : exists((y) | Succ(y,x) and Odd(y))\n\
             def Odd(x) : exists((y) | Succ(y,x) and Even(y))",
        );
        let scc = s.iter().find(|st| st.preds.len() == 2).expect("mutual SCC");
        assert!(scc.recursive);
        assert!(scc.monotone);
    }

    #[test]
    fn dependencies_precede_dependents() {
        let s = strata_of(
            "def Out(x) : Mid(x)\n\
             def Mid(x) : Base(x)\n\
             def Base(x) : E(x)",
        );
        let pos = |n: &str| {
            s.iter()
                .position(|st| st.preds.iter().any(|p| &**p == n))
                .unwrap()
        };
        assert!(pos("Base") < pos("Mid"));
        assert!(pos("Mid") < pos("Out"));
    }

    #[test]
    fn dag_edges_point_at_dependencies() {
        let (strata, deps) = strata_and_deps_of(
            "def A(x) : E(x)\n\
             def B(x) : F(x)\n\
             def C(x) : A(x) and B(x)",
        );
        assert_eq!(deps.len(), strata.len());
        let pos = |n: &str| {
            strata
                .iter()
                .position(|st| st.preds.iter().any(|p| &**p == n))
                .unwrap()
        };
        // A and B are independent roots; C depends on exactly both.
        assert!(deps[pos("A")].is_empty());
        assert!(deps[pos("B")].is_empty());
        let mut c_deps = deps[pos("C")].clone();
        c_deps.sort_unstable();
        let mut expected = vec![pos("A"), pos("B")];
        expected.sort_unstable();
        assert_eq!(c_deps, expected);
    }

    #[test]
    fn dag_is_topologically_ordered_without_self_edges() {
        let (strata, deps) = strata_and_deps_of(
            "def TC(x,y) : E(x,y)\n\
             def TC(x,y) : exists((z) | E(x,z) and TC(z,y))\n\
             def Big(x) : exists((y) | TC(x,y) and not Small(x))\n\
             def Small(x) : E(x,x)",
        );
        for (i, ds) in deps.iter().enumerate() {
            for &d in ds {
                assert!(d < i, "edge {i} -> {d} breaks topological order");
            }
        }
        // The recursive TC stratum must not list itself as a dependency.
        let tc = strata
            .iter()
            .position(|st| st.preds.iter().any(|p| &**p == "TC"))
            .unwrap();
        assert!(!deps[tc].contains(&tc));
    }

    #[test]
    fn read_sets_split_by_polarity() {
        let sp = specialize(&parse_program(
            "def TC(x,y) : E(x,y)\n\
             def TC(x,y) : exists((z) | E(x,z) and TC(z,y))\n\
             def Far(x,y) : TC(x,y) and not E(x,y)",
        )
        .unwrap())
        .unwrap();
        let (rules, _) = lower(&sp).unwrap();
        let strata = stratify(&rules);
        let reads = stratum_read_sets(&rules, &strata);
        assert_eq!(reads.len(), strata.len());
        let of = |n: &str| {
            let i = strata
                .iter()
                .position(|s| s.preds.iter().any(|p| &**p == n))
                .unwrap();
            &reads[i]
        };
        // TC reads E and itself, all positively.
        let tc = of("TC");
        assert!(tc.reads_positively(&rel_core::name("E")));
        assert!(tc.reads_positively(&rel_core::name("TC")));
        assert!(tc.negative.is_empty());
        // Far reads TC positively and E under negation.
        let far = of("Far");
        assert!(far.reads_positively(&rel_core::name("TC")));
        assert!(far.reads_negatively(&rel_core::name("E")));
        assert!(!far.reads_positively(&rel_core::name("E")));
    }

    #[test]
    fn aggregation_input_reads_negatively() {
        // Specialization lifts the aggregation lambda into its own
        // predicate, so the negative (reduce-input) read of E lives in the
        // lifted/instance stratum — and the consumer still lands in E's
        // dependent cone through the stratum DAG.
        let m = crate::compile(
            "def agg_sum[{A}] : reduce[add, A]\n\
             def Tot(x,s) : exists((q) | E(x,q)) and s = agg_sum[(v) : E(x,v)]",
        )
        .unwrap();
        let e = rel_core::name("E");
        assert!(
            m.stratum_reads.iter().any(|r| r.reads_negatively(&e)),
            "no stratum records the aggregation input as a negative read"
        );
        let tot = m
            .strata
            .iter()
            .position(|s| s.preds.iter().any(|p| &**p == "Tot"))
            .unwrap();
        let cone = m.dependent_cone(&[e].into_iter().collect());
        assert!(cone.contains(&tot), "aggregation consumer escaped the cone");
    }

    #[test]
    fn dependent_cone_closes_transitively() {
        let m = crate::compile(
            "def A(x) : E(x)\n\
             def B(x) : A(x)\n\
             def C(x) : B(x)\n\
             def D(x) : F(x)",
        )
        .unwrap();
        let pos = |n: &str| {
            m.strata
                .iter()
                .position(|s| s.preds.iter().any(|p| &**p == n))
                .unwrap()
        };
        let touched = |names: &[&str]| -> std::collections::BTreeSet<rel_core::Name> {
            names.iter().map(|n| rel_core::name(*n)).collect()
        };
        // Touching E pulls in A, B, C but not the disjoint D.
        let cone = m.dependent_cone(&touched(&["E"]));
        assert!(cone.contains(&pos("A")));
        assert!(cone.contains(&pos("B")));
        assert!(cone.contains(&pos("C")));
        assert!(!cone.contains(&pos("D")));
        // Touching F pulls in only D.
        assert_eq!(m.dependent_cone(&touched(&["F"])), vec![pos("D")]);
        // Touching nothing yields an empty cone.
        assert!(m.dependent_cone(&touched(&[])).is_empty());
        // Touching a base relation named after an IDB predicate puts that
        // predicate's stratum (and its dependents) in the cone even though
        // no rule *reads* the name.
        let cone = m.dependent_cone(&touched(&["C"]));
        assert_eq!(cone, vec![pos("C")]);
    }

    #[test]
    fn dependent_cone_without_read_sets_is_conservative() {
        let mut m = crate::compile("def A(x) : E(x)\ndef B(x) : F(x)").unwrap();
        m.stratum_reads.clear();
        let touched = [rel_core::name("E")].into_iter().collect();
        assert_eq!(m.dependent_cone(&touched).len(), m.strata.len());
    }

    #[test]
    fn dag_independent_components_share_no_ancestry() {
        // Two disjoint TC components: neither stratum depends on the other,
        // so a DAG scheduler may materialize them concurrently.
        let (strata, deps) = strata_and_deps_of(
            "def TC1(x,y) : E1(x,y)\n\
             def TC1(x,y) : exists((z) | E1(x,z) and TC1(z,y))\n\
             def TC2(x,y) : E2(x,y)\n\
             def TC2(x,y) : exists((z) | E2(x,z) and TC2(z,y))",
        );
        assert_eq!(strata.len(), 2);
        assert!(deps.iter().all(Vec::is_empty));
    }
}
