//! Lowering from the (specialized, first-order) AST to the IR.
//!
//! Performed here:
//!
//! * variable numbering and scope resolution (idents not in scope are
//!   relation references);
//! * desugaring: `implies`/`iff`/`xor` to and/or/not; `forall` to
//!   `not exists not`; `x in E` domains to `Member` conjuncts;
//! * negation normal form (negations pushed to literals) so the engine's
//!   planner sees generators early;
//! * flattening of application chains `p[a](b)` to single atoms;
//! * conversion of complex argument expressions into fresh variables plus
//!   `Member` constraints (the first-order application semantics of
//!   Fig. 3: `R(E)` ≡ `∃v ∈ E. R(v)`);
//! * infix arithmetic to [`RExpr::BuiltinApp`] (expression position) or
//!   builtin atoms via `Member` (formula position);
//! * `reduce[F, R]` to the dedicated [`RExpr::Reduce`] node.

use crate::builtins;
use crate::ir::{self, AbsParam, Atom, Formula, RExpr, Rule, Term, VarTable};
use crate::specialize::Specialized;
use rel_core::{name, Name, RelError, RelResult, Value};
use rel_syntax::ast::{self, AppStyle, Arg, BindStyle, Binding, CmpOp, Expr};
use std::collections::BTreeMap;

/// Rules grouped by predicate name.
pub type RuleSet = BTreeMap<Name, Vec<Rule>>;

/// Lower a specialized program into IR rules and constraints.
pub fn lower(sp: &Specialized) -> RelResult<(RuleSet, Vec<ir::ConstraintIr>)> {
    let mut rules: BTreeMap<Name, Vec<Rule>> = BTreeMap::new();
    for (pred, defs) in &sp.defs {
        for def in defs {
            let rule = lower_def(def)?;
            rules.entry(name(pred)).or_default().push(rule);
        }
    }
    let mut constraints = Vec::new();
    for c in &sp.constraints {
        constraints.push(lower_constraint(c)?);
    }
    Ok((rules, constraints))
}

/// Lower one definition into a rule.
pub fn lower_def(def: &ast::Def) -> RelResult<Rule> {
    let mut cx = Cx::default();
    let params = cx.lower_params(&def.params)?;
    let body = match def.style {
        BindStyle::Paren => {
            let f = cx.lower_formula(&def.body)?;
            RExpr::OfFormula(Box::new(f))
        }
        BindStyle::Bracket => cx.lower_rexpr(&def.body)?,
    };
    Ok(Rule { pred: name(&def.name), params, body, vars: cx.vars })
}

/// Lower a constraint. The stored body is the **violation query**: for
/// parameterised constraints, witnesses are parameter bindings where the
/// requirement fails; for boolean constraints, the violation is `{()}`
/// when the requirement is false.
fn lower_constraint(c: &ast::Constraint) -> RelResult<ir::ConstraintIr> {
    let mut cx = Cx::default();
    let params = cx.lower_params(&c.params)?;
    let req = cx.lower_formula(&c.body)?;
    let violation = negate(req);
    Ok(ir::ConstraintIr {
        name: name(&c.name),
        params,
        body: RExpr::OfFormula(Box::new(violation)),
        is_violation_query: true,
        vars: cx.vars,
    })
}

/// Lowering context: the scope stack and variable table.
#[derive(Default)]
struct Cx {
    vars: VarTable,
    /// Scope stack: name → (var, is_tuple).
    scopes: Vec<BTreeMap<String, (ir::Var, bool)>>,
}

impl Cx {
    fn lookup(&self, n: &str) -> Option<(ir::Var, bool)> {
        self.scopes.iter().rev().find_map(|s| s.get(n)).copied()
    }

    fn bind(&mut self, n: &str, tuple: bool) -> ir::Var {
        // A repeated variable in one binding list (`def R(x, x)`) denotes
        // the *same* variable — reuse it so both positions unify.
        if let Some(&(v, t)) = self
            .scopes
            .last()
            .expect("scope stack never empty during binding")
            .get(n)
        {
            if t == tuple {
                return v;
            }
        }
        let v = self.vars.fresh(n);
        self.scopes
            .last_mut()
            .expect("scope stack never empty during binding")
            .insert(n.to_string(), (v, tuple));
        v
    }

    fn fresh(&mut self, hint: &str) -> ir::Var {
        self.vars.fresh(format!("_{hint}"))
    }

    /// Lower a head/abstraction binding list, pushing a scope. The caller
    /// is responsible for popping (we keep the scope open for the body —
    /// rule heads never pop).
    fn lower_params(&mut self, params: &[Binding]) -> RelResult<Vec<AbsParam>> {
        self.scopes.push(BTreeMap::new());
        let mut out = Vec::with_capacity(params.len());
        for p in params {
            out.push(match p {
                Binding::Var(v) => AbsParam::Val(self.bind(v, false)),
                Binding::TupleVar(v) => AbsParam::Tup(self.bind(v, true)),
                Binding::In(v, dom) => {
                    let d = self.lower_rexpr(dom)?;
                    AbsParam::In(self.bind(v, false), Box::new(d))
                }
                Binding::Lit(c) => AbsParam::Fixed(c.clone()),
                Binding::Wildcard => AbsParam::Val(self.fresh("w")),
                Binding::RelVar(n) => {
                    return Err(RelError::resolve(format!(
                        "relation variable `{{{n}}}` survived specialization \
                         (unused second-order definition reached lowering)"
                    )))
                }
            });
        }
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Formulas
    // ------------------------------------------------------------------

    fn lower_formula(&mut self, e: &Expr) -> RelResult<Formula> {
        Ok(match e {
            Expr::And(a, b) => {
                Formula::conj(vec![self.lower_formula(a)?, self.lower_formula(b)?])
            }
            Expr::Or(a, b) => {
                Formula::Disj(vec![self.lower_formula(a)?, self.lower_formula(b)?])
            }
            Expr::Not(a) => negate(self.lower_formula(a)?),
            Expr::Implies(a, b) => {
                let na = negate(self.lower_formula(a)?);
                Formula::Disj(vec![na, self.lower_formula(b)?])
            }
            Expr::Iff(a, b) => {
                let fa = self.lower_formula(a)?;
                let fb = self.lower_formula(b)?;
                Formula::conj(vec![
                    Formula::Disj(vec![negate(fa.clone()), fb.clone()]),
                    Formula::Disj(vec![negate(fb), fa]),
                ])
            }
            Expr::Xor(a, b) => {
                let fa = self.lower_formula(a)?;
                let fb = self.lower_formula(b)?;
                Formula::Disj(vec![
                    Formula::conj(vec![fa.clone(), negate(fb.clone())]),
                    Formula::conj(vec![negate(fa), fb]),
                ])
            }
            Expr::Exists { bindings, body } => self.lower_exists(bindings, body)?,
            Expr::Forall { bindings, body } => {
                // forall xs: F  ≡  not exists xs: not F  (domains stay
                // positive inside the existential).
                let inner = Expr::Not(body.clone());
                let ex = self.lower_exists(bindings, &inner)?;
                negate(ex)
            }
            Expr::Cmp(op, a, b) => {
                let lhs = self.lower_rexpr(a)?;
                let rhs = self.lower_rexpr(b)?;
                Formula::Cmp { op: *op, lhs: Box::new(lhs), rhs: Box::new(rhs) }
            }
            Expr::App { .. } => self.lower_app_formula(e)?,
            // `true` / `false` literals.
            Expr::Product(es) if es.is_empty() => Formula::True,
            Expr::Union(es) if es.is_empty() => Formula::False,
            // Anything else used as a formula: holds iff its relation
            // contains the empty tuple (J{Expr}()K = JExprK ∩ {⟨⟩}).
            other => Formula::OfExpr(Box::new(self.lower_rexpr(other)?)),
        })
    }

    fn lower_exists(&mut self, bindings: &[Binding], body: &Expr) -> RelResult<Formula> {
        let lo = self.vars.len() as ir::Var;
        self.scopes.push(BTreeMap::new());
        let mut vars = Vec::new();
        let mut tuple_vars = Vec::new();
        let mut members = Vec::new();
        for b in bindings {
            match b {
                Binding::Var(v) => vars.push(self.bind(v, false)),
                Binding::TupleVar(v) => tuple_vars.push(self.bind(v, true)),
                Binding::In(v, dom) => {
                    let d = self.lower_rexpr(dom)?;
                    let var = self.bind(v, false);
                    vars.push(var);
                    members.push(Formula::Member { term: Term::Var(var), of: Box::new(d) });
                }
                Binding::Wildcard => vars.push(self.fresh("w")),
                Binding::Lit(_) | Binding::RelVar(_) => {
                    return Err(RelError::resolve(
                        "only variables may be bound by quantifiers",
                    ))
                }
            }
        }
        let mut inner = members;
        inner.push(self.lower_formula(body)?);
        self.scopes.pop();
        let hi = self.vars.len() as ir::Var;
        Ok(Formula::Exists {
            vars,
            tuple_vars,
            body: Box::new(Formula::conj(inner)),
            intro: (lo, hi),
        })
    }

    /// Lower a full application in formula position.
    fn lower_app_formula(&mut self, e: &Expr) -> RelResult<Formula> {
        let (base, all_args, style) = flatten_app(e);
        match style {
            AppStyle::Full => {}
            AppStyle::Partial => {
                // A partial application used as a formula holds iff its
                // result contains the empty tuple.
                return Ok(Formula::OfExpr(Box::new(self.lower_rexpr(e)?)));
            }
        }
        if let Expr::Ident(fname) = &base {
            if self.lookup(fname).is_none() {
                // reduce(&F, &R, v): v = reduce[F, R].
                if fname == "reduce" && all_args.len() == 3 {
                    let op = self.lower_rexpr(&all_args[0].expr)?;
                    let lo = self.vars.len() as ir::Var;
                    let input = self.lower_rexpr(&all_args[1].expr)?;
                    let hi = self.vars.len() as ir::Var;
                    let val = self.lower_rexpr(&all_args[2].expr)?;
                    return Ok(Formula::Cmp {
                        op: CmpOp::Eq,
                        lhs: Box::new(val),
                        rhs: Box::new(RExpr::Reduce {
                            op: Box::new(op),
                            input: Box::new(input),
                            intro: (lo, hi),
                        }),
                    });
                }
                let pred = resolve_pred(fname);
                let mut pre = Vec::new();
                let mut args = Vec::with_capacity(all_args.len());
                for a in &all_args {
                    args.push(self.lower_term(&a.expr, &mut pre)?);
                }
                let atom = Formula::Atom(Atom { pred, args });
                pre.push(atom);
                return Ok(Formula::conj(pre));
            }
        }
        // Dynamic: applying a computed relation.
        let rel = self.lower_rexpr(&base)?;
        let mut pre = Vec::new();
        let mut args = Vec::with_capacity(all_args.len());
        for a in &all_args {
            args.push(self.lower_term(&a.expr, &mut pre)?);
        }
        pre.push(Formula::DynAtom { rel: Box::new(rel), args });
        Ok(Formula::conj(pre))
    }

    /// Lower an argument expression into a [`Term`], emitting auxiliary
    /// `Member` conjuncts for complex expressions.
    fn lower_term(&mut self, e: &Expr, pre: &mut Vec<Formula>) -> RelResult<Term> {
        Ok(match e {
            Expr::Lit(v) => Term::Const(v.clone()),
            Expr::Wildcard => Term::Var(self.fresh("w")),
            Expr::TupleWildcard => Term::TupleVar(self.fresh("tw")),
            Expr::Ident(n) => match self.lookup(n) {
                Some((v, false)) => Term::Var(v),
                Some((v, true)) => Term::TupleVar(v),
                None => {
                    // A relation name in argument position: first-order
                    // application semantics — join against its values.
                    let t = self.fresh(n);
                    pre.push(Formula::Member {
                        term: Term::Var(t),
                        of: Box::new(RExpr::Pred(resolve_pred(n))),
                    });
                    Term::Var(t)
                }
            },
            Expr::TupleVar(n) => match self.lookup(n) {
                Some((v, _)) => Term::TupleVar(v),
                None => {
                    return Err(RelError::resolve(format!(
                        "unbound tuple variable `{n}...`"
                    )))
                }
            },
            // A query parameter in argument position: join against the
            // reserved singleton relation injected at execute time, exactly
            // like a relation name in argument position.
            Expr::Param(n) => {
                let t = self.fresh(&format!("?{n}"));
                pre.push(Formula::Member {
                    term: Term::Var(t),
                    of: Box::new(RExpr::Pred(ir::param_relation(n))),
                });
                Term::Var(t)
            }
            // Arithmetic arguments flatten into *builtin atoms* rather than
            // `Member` constraints so the planner can invert them
            // (`R(x, j-1)` lets `j` be solved from R's third column via
            // `subtract`'s `fbb` mode).
            Expr::Arith(op, a, b) => {
                let ta = self.lower_term(a, pre)?;
                let tb = self.lower_term(b, pre)?;
                let t = self.fresh("t");
                pre.push(Formula::Atom(Atom {
                    pred: name(op_builtin(*op)),
                    args: vec![ta, tb, Term::Var(t)],
                }));
                Term::Var(t)
            }
            Expr::Neg(a) => {
                let ta = self.lower_term(a, pre)?;
                let t = self.fresh("t");
                pre.push(Formula::Atom(Atom {
                    pred: name("rel_primitive_multiply"),
                    args: vec![Term::Const(Value::Int(-1)), ta, Term::Var(t)],
                }));
                Term::Var(t)
            }
            other => {
                // Complex argument: fresh variable constrained to range
                // over the argument expression's (unary) value set.
                let rel = self.lower_rexpr(other)?;
                let t = self.fresh("a");
                pre.push(Formula::Member { term: Term::Var(t), of: Box::new(rel) });
                Term::Var(t)
            }
        })
    }

    // ------------------------------------------------------------------
    // Relation expressions
    // ------------------------------------------------------------------

    fn lower_rexpr(&mut self, e: &Expr) -> RelResult<RExpr> {
        Ok(match e {
            Expr::Lit(v) => RExpr::Singleton(vec![Term::Const(v.clone())]),
            Expr::Ident(n) => match self.lookup(n) {
                Some((v, false)) => RExpr::Singleton(vec![Term::Var(v)]),
                Some((v, true)) => RExpr::Singleton(vec![Term::TupleVar(v)]),
                None => RExpr::Pred(resolve_pred(n)),
            },
            Expr::TupleVar(n) => match self.lookup(n) {
                Some((v, _)) => RExpr::Singleton(vec![Term::TupleVar(v)]),
                None => {
                    return Err(RelError::resolve(format!(
                        "unbound tuple variable `{n}...`"
                    )))
                }
            },
            // A query parameter in expression position is the whole
            // reserved singleton relation (unary, one tuple at execute
            // time), so `y > ?min` compares against its value.
            Expr::Param(n) => RExpr::Pred(ir::param_relation(n)),
            Expr::Wildcard => {
                return Err(RelError::unsafe_expr(
                    "`_` denotes all values and cannot be used as a standalone \
                     expression",
                ))
            }
            Expr::TupleWildcard => {
                return Err(RelError::unsafe_expr(
                    "`_...` denotes all tuples and cannot be used as a standalone \
                     expression",
                ))
            }
            Expr::Product(es) => {
                RExpr::Product(es.iter().map(|x| self.lower_rexpr(x)).collect::<RelResult<_>>()?)
            }
            Expr::Union(es) => {
                RExpr::Union(es.iter().map(|x| self.lower_rexpr(x)).collect::<RelResult<_>>()?)
            }
            Expr::Where(a, b) => {
                let cond = self.lower_formula(b)?;
                let body = self.lower_rexpr(a)?;
                RExpr::Where { body: Box::new(body), cond: Box::new(cond) }
            }
            Expr::Abstraction { bindings, style, body } => {
                let lo = self.vars.len() as ir::Var;
                let params = self.lower_params(bindings)?;
                let inner = match style {
                    BindStyle::Paren => {
                        RExpr::OfFormula(Box::new(self.lower_formula(body)?))
                    }
                    BindStyle::Bracket => self.lower_rexpr(body)?,
                };
                self.scopes.pop();
                let hi = self.vars.len() as ir::Var;
                RExpr::Abstract { params, body: Box::new(inner), intro: (lo, hi) }
            }
            Expr::App { .. } => self.lower_app_rexpr(e)?,
            Expr::Arith(op, a, b) => {
                let la = self.lower_rexpr(a)?;
                let lb = self.lower_rexpr(b)?;
                RExpr::BuiltinApp {
                    op: name(op_builtin(*op)),
                    args: vec![la, lb],
                }
            }
            Expr::Neg(a) => {
                let la = self.lower_rexpr(a)?;
                RExpr::BuiltinApp {
                    op: name("rel_primitive_multiply"),
                    args: vec![
                        RExpr::Singleton(vec![Term::Const(Value::Int(-1))]),
                        la,
                    ],
                }
            }
            Expr::DotJoin(a, b) => RExpr::DotJoin(
                Box::new(self.lower_rexpr(a)?),
                Box::new(self.lower_rexpr(b)?),
            ),
            Expr::LeftOverride(a, b) => RExpr::LeftOverride(
                Box::new(self.lower_rexpr(a)?),
                Box::new(self.lower_rexpr(b)?),
            ),
            // Formulas in expression position.
            Expr::And(..)
            | Expr::Or(..)
            | Expr::Not(..)
            | Expr::Implies(..)
            | Expr::Iff(..)
            | Expr::Xor(..)
            | Expr::Exists { .. }
            | Expr::Forall { .. }
            | Expr::Cmp(..) => RExpr::OfFormula(Box::new(self.lower_formula(e)?)),
        })
    }

    /// Lower an application in expression position.
    fn lower_app_rexpr(&mut self, e: &Expr) -> RelResult<RExpr> {
        let (base, all_args, style) = flatten_app(e);
        if style == AppStyle::Full {
            // Full application evaluates to a boolean.
            return Ok(RExpr::OfFormula(Box::new(self.lower_app_formula(e)?)));
        }
        if let Expr::Ident(fname) = &base {
            if self.lookup(fname).is_none() {
                if fname == "reduce" && all_args.len() == 2 {
                    let op = self.lower_rexpr(&all_args[0].expr)?;
                    let lo = self.vars.len() as ir::Var;
                    let input = self.lower_rexpr(&all_args[1].expr)?;
                    let hi = self.vars.len() as ir::Var;
                    return Ok(RExpr::Reduce {
                        op: Box::new(op),
                        input: Box::new(input),
                        intro: (lo, hi),
                    });
                }
                let pred = resolve_pred(fname);
                let mut pre = Vec::new();
                let mut args = Vec::with_capacity(all_args.len());
                for a in &all_args {
                    args.push(self.lower_term(&a.expr, &mut pre)?);
                }
                let app = RExpr::PApp { pred, args };
                return Ok(wrap_members(app, pre));
            }
        }
        let rel = self.lower_rexpr(&base)?;
        let mut pre = Vec::new();
        let mut args = Vec::with_capacity(all_args.len());
        for a in &all_args {
            args.push(self.lower_term(&a.expr, &mut pre)?);
        }
        Ok(wrap_members(RExpr::DynPApp { rel: Box::new(rel), args }, pre))
    }
}

/// Wrap an expression in `Where` conditions that bind auxiliary variables
/// introduced for complex arguments.
fn wrap_members(body: RExpr, pre: Vec<Formula>) -> RExpr {
    if pre.is_empty() {
        body
    } else {
        RExpr::Where { body: Box::new(body), cond: Box::new(Formula::conj(pre)) }
    }
}

/// Flatten chained applications `p[a](b)` / `p[a][b]` into a single
/// argument list over the base functor.
fn flatten_app(e: &Expr) -> (Expr, Vec<Arg>, AppStyle) {
    match e {
        Expr::App { func, args, style } => {
            match &**func {
                Expr::App { style: AppStyle::Partial, .. } => {
                    let (base, mut inner_args, _) = flatten_app(func);
                    inner_args.extend(args.iter().cloned());
                    (base, inner_args, *style)
                }
                _ => ((**func).clone(), args.clone(), *style),
            }
        }
        other => (other.clone(), Vec::new(), AppStyle::Partial),
    }
}

/// Resolve a relation name: builtins map to their canonical primitive
/// names; everything else is an EDB/IDB name.
pub fn resolve_pred(n: &str) -> Name {
    match builtins::canonical(n) {
        Some(c) => name(c),
        None => name(n),
    }
}

/// The builtin implementing an arithmetic operator.
fn op_builtin(op: ast::ArithOp) -> &'static str {
    match op {
        ast::ArithOp::Add => "rel_primitive_add",
        ast::ArithOp::Sub => "rel_primitive_subtract",
        ast::ArithOp::Mul => "rel_primitive_multiply",
        ast::ArithOp::Div => "rel_primitive_divide",
        ast::ArithOp::Mod => "rel_primitive_modulo",
        ast::ArithOp::Pow => "rel_primitive_power",
    }
}

/// Push negation to the leaves (negation normal form). Leaves are atoms,
/// comparisons, membership and `OfExpr`; quantifier-free residual `Not`s
/// remain only directly above leaves or `Exists`.
pub fn negate(f: Formula) -> Formula {
    match f {
        Formula::True => Formula::False,
        Formula::False => Formula::True,
        Formula::Not(inner) => *inner,
        Formula::Conj(items) => Formula::Disj(items.into_iter().map(negate).collect()),
        Formula::Disj(items) => Formula::conj(items.into_iter().map(negate).collect()),
        Formula::Cmp { op, lhs, rhs } => {
            let flipped = match op {
                CmpOp::Eq => CmpOp::Neq,
                CmpOp::Neq => CmpOp::Eq,
                CmpOp::Lt => CmpOp::Ge,
                CmpOp::Le => CmpOp::Gt,
                CmpOp::Gt => CmpOp::Le,
                CmpOp::Ge => CmpOp::Lt,
            };
            Formula::Cmp { op: flipped, lhs, rhs }
        }
        other @ (Formula::Atom(_)
        | Formula::DynAtom { .. }
        | Formula::Member { .. }
        | Formula::Exists { .. }
        | Formula::OfExpr(_)) => Formula::Not(Box::new(other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::specialize::specialize;
    use rel_syntax::parse_program;

    fn lower_src(src: &str) -> BTreeMap<Name, Vec<Rule>> {
        let sp = specialize(&parse_program(src).unwrap()).unwrap();
        lower(&sp).unwrap().0
    }

    #[test]
    fn simple_rule() {
        let rules = lower_src("def F(x) : R(x) and not S(x)");
        let rule = &rules[&name("F")][0];
        assert_eq!(rule.params.len(), 1);
        match &rule.body {
            RExpr::OfFormula(f) => match &**f {
                Formula::Conj(items) => {
                    assert_eq!(items.len(), 2);
                    assert!(matches!(items[0], Formula::Atom(_)));
                    assert!(matches!(items[1], Formula::Not(_)));
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn arith_in_arg_becomes_builtin_atom() {
        let rules = lower_src("def F(x,j) : R(x, j-1)");
        let rule = &rules[&name("F")][0];
        // Body: subtract(j, 1, t) ∧ R(x, t) — invertible builtin atom.
        let RExpr::OfFormula(f) = &rule.body else { panic!() };
        let Formula::Conj(items) = &**f else { panic!("{f:?}") };
        let preds: Vec<_> = items
            .iter()
            .filter_map(|i| match i {
                Formula::Atom(a) => Some(a.pred.to_string()),
                _ => None,
            })
            .collect();
        assert_eq!(preds, vec!["rel_primitive_subtract".to_string(), "R".to_string()]);
    }

    #[test]
    fn forall_desugars_to_not_exists_not() {
        let rules =
            lower_src("def F(x) : P(x) and forall((o in V) | Q(o,x))");
        let rule = &rules[&name("F")][0];
        let RExpr::OfFormula(f) = &rule.body else { panic!() };
        let Formula::Conj(items) = &**f else { panic!() };
        // Second conjunct: Not(Exists(...)).
        assert!(matches!(&items[1], Formula::Not(inner) if matches!(**inner, Formula::Exists { .. })));
    }

    #[test]
    fn infix_ops_resolve_to_primitives() {
        let rules = lower_src("def F[x] : x + 1");
        let rule = &rules[&name("F")][0];
        match &rule.body {
            RExpr::BuiltinApp { op, args } => {
                assert_eq!(&**op, "rel_primitive_add");
                assert_eq!(args.len(), 2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn alias_add_resolves() {
        let rules = lower_src("def F(x,y) : add(x,5,y)");
        let rule = &rules[&name("F")][0];
        let RExpr::OfFormula(f) = &rule.body else { panic!() };
        match &**f {
            Formula::Atom(a) => assert_eq!(&*a.pred, "rel_primitive_add"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn reduce_lowering() {
        let rules = lower_src("def s[{A}] : reduce[add,A]\ndef out[] : s[R]");
        // instance of s.
        let inst = rules.keys().find(|k| k.starts_with("s@")).unwrap();
        let rule = &rules[inst][0];
        assert!(matches!(rule.body, RExpr::Reduce { .. }), "{:?}", rule.body);
    }

    #[test]
    fn nnf_pushes_through_implies() {
        // ic violation body: not (A implies B) = A and not B.
        let sp = specialize(
            &parse_program("ic c(x) requires R(x) implies S(x)").unwrap(),
        )
        .unwrap();
        let (_, constraints) = lower(&sp).unwrap();
        let RExpr::OfFormula(f) = &constraints[0].body else { panic!() };
        let Formula::Conj(items) = &**f else { panic!("{f:?}") };
        assert!(matches!(items[0], Formula::Atom(_)));
        assert!(matches!(items[1], Formula::Not(_)));
    }

    #[test]
    fn negate_is_involutive_on_leaves() {
        let f = Formula::Atom(Atom { pred: name("R"), args: vec![] });
        assert_eq!(negate(negate(f.clone())), f);
    }

    #[test]
    fn cmp_negation_flips_operator() {
        let f = Formula::Cmp {
            op: CmpOp::Lt,
            lhs: Box::new(RExpr::Singleton(vec![Term::Var(0)])),
            rhs: Box::new(RExpr::Singleton(vec![Term::Var(1)])),
        };
        match negate(f) {
            Formula::Cmp { op, .. } => assert_eq!(op, CmpOp::Ge),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn wildcards_become_fresh_vars() {
        let rules = lower_src("def P(y) : OPQ(_,y,_)");
        let rule = &rules[&name("P")][0];
        let RExpr::OfFormula(f) = &rule.body else { panic!() };
        let Formula::Atom(a) = &**f else { panic!() };
        assert_eq!(a.args.len(), 3);
        // All three args are variables, two of them fresh.
        assert!(a.args.iter().all(|t| matches!(t, Term::Var(_))));
    }

    #[test]
    fn tuple_wildcard_in_atom() {
        let rules = lower_src("def Prefix(x...) : R(x...,_...)");
        let rule = &rules[&name("Prefix")][0];
        let RExpr::OfFormula(f) = &rule.body else { panic!() };
        let Formula::Atom(a) = &**f else { panic!() };
        assert!(matches!(a.args[0], Term::TupleVar(_)));
        assert!(matches!(a.args[1], Term::TupleVar(_)));
    }
}
