//! Catalogue of built-in (conceptually infinite) relations — §3.2.
//!
//! Each builtin carries a set of **modes**: strings over `b` (argument must
//! be bound) and `f` (argument may be free and is produced). `add` has
//! modes `bbf`, `bfb`, `fbb` and `bbb`: any two bound arguments determine
//! the third, and with all three bound it is a check. The safety analysis
//! (`crate::safety`) and the engine's conjunct planner both consult this
//! table; the *implementations* live in `rel-engine::builtins`.
//!
//! Following §5.1 of the paper, user-visible relations such as `add` are
//! defined in the standard library as wrappers over `rel_primitive_*`
//! names; both spellings are registered here so programs work with or
//! without the library loaded.

/// Signature of one builtin relation.
#[derive(Clone, Copy, Debug)]
pub struct BuiltinSig {
    /// Relation name.
    pub name: &'static str,
    /// Arity.
    pub arity: usize,
    /// Accepted modes (`b` = must be bound, `f` = produced).
    pub modes: &'static [&'static str],
    /// True for type-test predicates that are *checks only* and can never
    /// enumerate (e.g. `Int`).
    pub type_test: bool,
}

/// Arithmetic: any two of three bound.
const MODES_2OF3: &[&str] = &["bbf", "bfb", "fbb", "bbb"];
/// Last argument computed from the others.
const MODES_LASTF: &[&str] = &["bbf", "bbb"];
/// Binary function: output last.
const MODES_BF: &[&str] = &["bf", "bb"];
/// Pure check.
const MODES_B: &[&str] = &["b"];

/// The builtin table.
pub const BUILTINS: &[BuiltinSig] = &[
    // --- arithmetic (ternary, relational views of + - * / % ^) ---
    BuiltinSig { name: "rel_primitive_add", arity: 3, modes: MODES_2OF3, type_test: false },
    BuiltinSig { name: "rel_primitive_subtract", arity: 3, modes: MODES_2OF3, type_test: false },
    BuiltinSig { name: "rel_primitive_multiply", arity: 3, modes: MODES_2OF3, type_test: false },
    BuiltinSig { name: "rel_primitive_divide", arity: 3, modes: MODES_2OF3, type_test: false },
    BuiltinSig { name: "rel_primitive_modulo", arity: 3, modes: MODES_LASTF, type_test: false },
    BuiltinSig { name: "rel_primitive_power", arity: 3, modes: MODES_LASTF, type_test: false },
    // min/max of two numbers (used by reduce for min/max aggregates)
    BuiltinSig { name: "rel_primitive_minimum", arity: 3, modes: MODES_LASTF, type_test: false },
    BuiltinSig { name: "rel_primitive_maximum", arity: 3, modes: MODES_LASTF, type_test: false },
    // --- unary-ish numeric functions (binary relations: input, output) ---
    BuiltinSig { name: "rel_primitive_abs", arity: 2, modes: MODES_BF, type_test: false },
    BuiltinSig { name: "rel_primitive_natural_log", arity: 2, modes: MODES_BF, type_test: false },
    BuiltinSig { name: "rel_primitive_exp", arity: 2, modes: MODES_BF, type_test: false },
    BuiltinSig { name: "rel_primitive_sqrt", arity: 2, modes: MODES_BF, type_test: false },
    BuiltinSig { name: "rel_primitive_sin", arity: 2, modes: MODES_BF, type_test: false },
    BuiltinSig { name: "rel_primitive_cos", arity: 2, modes: MODES_BF, type_test: false },
    BuiltinSig { name: "rel_primitive_tan", arity: 2, modes: MODES_BF, type_test: false },
    BuiltinSig { name: "rel_primitive_floor", arity: 2, modes: MODES_BF, type_test: false },
    BuiltinSig { name: "rel_primitive_ceil", arity: 2, modes: MODES_BF, type_test: false },
    // log[base, x] = result (ternary per §5.1's `def log[x, y] = …`)
    BuiltinSig { name: "rel_primitive_log", arity: 3, modes: MODES_LASTF, type_test: false },
    // --- conversions ---
    BuiltinSig { name: "rel_primitive_int_to_float", arity: 2, modes: MODES_BF, type_test: false },
    BuiltinSig { name: "rel_primitive_float_to_int", arity: 2, modes: MODES_BF, type_test: false },
    BuiltinSig { name: "rel_primitive_parse_int", arity: 2, modes: MODES_BF, type_test: false },
    BuiltinSig { name: "rel_primitive_parse_float", arity: 2, modes: MODES_BF, type_test: false },
    BuiltinSig { name: "rel_primitive_to_string", arity: 2, modes: MODES_BF, type_test: false },
    // --- strings ---
    BuiltinSig { name: "rel_primitive_concat", arity: 3, modes: MODES_LASTF, type_test: false },
    BuiltinSig { name: "rel_primitive_string_length", arity: 2, modes: MODES_BF, type_test: false },
    BuiltinSig { name: "rel_primitive_uppercase", arity: 2, modes: MODES_BF, type_test: false },
    BuiltinSig { name: "rel_primitive_lowercase", arity: 2, modes: MODES_BF, type_test: false },
    BuiltinSig { name: "rel_primitive_starts_with", arity: 2, modes: &["bb"], type_test: false },
    BuiltinSig { name: "rel_primitive_contains", arity: 2, modes: &["bb"], type_test: false },
    BuiltinSig { name: "rel_primitive_substring", arity: 4, modes: &["bbbf", "bbbb"], type_test: false },
    // regex-lite matching (anchored glob-style `*`/`?` patterns)
    BuiltinSig { name: "rel_primitive_like_match", arity: 2, modes: &["bb"], type_test: false },
    // --- type tests (infinite, check-only) ---
    BuiltinSig { name: "Int", arity: 1, modes: MODES_B, type_test: true },
    BuiltinSig { name: "Float", arity: 1, modes: MODES_B, type_test: true },
    BuiltinSig { name: "Number", arity: 1, modes: MODES_B, type_test: true },
    BuiltinSig { name: "String", arity: 1, modes: MODES_B, type_test: true },
    BuiltinSig { name: "Entity", arity: 1, modes: MODES_B, type_test: true },
    // --- enumeration ---
    // range(lo, hi, step, out): out = lo, lo+step, …, ≤ hi (§5.4 PageRank).
    BuiltinSig { name: "range", arity: 4, modes: &["bbbf", "bbbb"], type_test: false },
];

/// Aliases: the library-level names (`add`, …) double as builtins so that
/// programs run even without the standard library loaded, exactly like the
/// `rel_primitive_*` forms (§5.1 note: "These could be treated as language
/// primitives, but in Rel we prefer to think about them as library
/// functions"). When the standard library *is* loaded, its definitions
/// shadow nothing — they are wrappers resolving to the same primitives.
pub const ALIASES: &[(&str, &str)] = &[
    ("add", "rel_primitive_add"),
    ("subtract", "rel_primitive_subtract"),
    ("multiply", "rel_primitive_multiply"),
    ("divide", "rel_primitive_divide"),
    ("modulo", "rel_primitive_modulo"),
    ("power", "rel_primitive_power"),
    ("minimum", "rel_primitive_minimum"),
    ("maximum", "rel_primitive_maximum"),
    ("concat", "rel_primitive_concat"),
    ("string_length", "rel_primitive_string_length"),
    ("abs_value", "rel_primitive_abs"),
];

/// Look up a builtin by name (resolving aliases).
pub fn lookup(name: &str) -> Option<&'static BuiltinSig> {
    let resolved = ALIASES
        .iter()
        .find(|(a, _)| *a == name)
        .map(|(_, target)| *target)
        .unwrap_or(name);
    BUILTINS.iter().find(|b| b.name == resolved)
}

/// Is this name a builtin (or alias of one)?
pub fn is_builtin(name: &str) -> bool {
    lookup(name).is_some()
}

/// The canonical (primitive) name for a builtin or alias.
pub fn canonical(name: &str) -> Option<&'static str> {
    lookup(name).map(|b| b.name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_direct_and_alias() {
        assert!(is_builtin("rel_primitive_add"));
        assert!(is_builtin("add"));
        assert_eq!(canonical("add"), Some("rel_primitive_add"));
        assert_eq!(canonical("multiply"), Some("rel_primitive_multiply"));
        assert!(!is_builtin("no_such_builtin"));
    }

    #[test]
    fn arithmetic_modes_allow_inversion() {
        let add = lookup("add").unwrap();
        assert!(add.modes.contains(&"bfb")); // add(x, ?, z) solves y
        assert!(add.modes.contains(&"fbb"));
    }

    #[test]
    fn type_tests_are_check_only() {
        let int = lookup("Int").unwrap();
        assert!(int.type_test);
        assert_eq!(int.modes, &["b"]);
    }

    #[test]
    fn arities_match_modes() {
        for b in BUILTINS {
            for m in b.modes {
                assert_eq!(m.len(), b.arity, "mode {m} of {}", b.name);
            }
        }
    }

    #[test]
    fn aliases_resolve() {
        for (alias, target) in ALIASES {
            assert!(
                BUILTINS.iter().any(|b| b.name == *target),
                "alias {alias} targets unknown {target}"
            );
        }
    }
}
