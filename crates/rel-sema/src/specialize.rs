//! Second-order **specialization** (monomorphisation).
//!
//! Rel's relation variables (`def Product({A},{B},x...,y...)`) make
//! definitions second-order: `Product` is conceptually an infinite relation
//! whose first columns range over all of *Rels₁* (§4.2). Following the Data
//! HiLog-style parameter passing the paper cites (§7, ref. 50), we implement
//! them by *instantiation*: every application `Product[R,S]` creates — once,
//! memoised — a first-order predicate `Product@k` whose rules are the
//! original rules with `A ↦ R`, `B ↦ S` substituted.
//!
//! Relation arguments may contain free first-order variables
//! (`sum[OrderPaymentAmount[x]]`, §5.2). These are *lambda-lifted*: the
//! instance predicate gains leading parameters (`$0`, `$1`, …) for them and
//! call sites pass the actual variables. Canonicalising the free variables
//! ensures `sum[OPA[x]]` and `sum[OPA[y]]` share one instance.
//!
//! Recursive second-order definitions (`APSP[V,E]` calling itself with the
//! same relation arguments) hit the memo table and become ordinary
//! first-order recursion. A global instance cap guards against programs
//! that would generate unboundedly many instances.

use crate::builtins;
use rel_core::{RelError, RelResult};
use rel_syntax::ast::*;
use std::collections::{BTreeMap, BTreeSet};

/// Maximum number of generated instances before we assume divergence.
const INSTANCE_CAP: usize = 10_000;
/// Maximum instantiation nesting depth (a rule whose relation arguments
/// grow on every recursive call would otherwise recurse unboundedly).
const DEPTH_CAP: usize = 64;

/// Result of specialization: a purely first-order program.
#[derive(Clone, Debug, Default)]
pub struct Specialized {
    /// Rules grouped by (possibly instance-) predicate name.
    pub defs: BTreeMap<String, Vec<Def>>,
    /// Transformed integrity constraints.
    pub constraints: Vec<Constraint>,
    /// Instance provenance: instance name → (original name, canonical
    /// relation-argument keys).
    pub instances: BTreeMap<String, (String, Vec<String>)>,
}

/// A definition group: the rules for one name, split by order.
#[derive(Clone, Debug, Default)]
struct Group {
    /// Rules with no relation parameters.
    first_order: Vec<Def>,
    /// Rules with relation parameters (positions in `rel_positions`).
    second_order: Vec<Def>,
    /// Parameter positions (into the full param list) that are relation
    /// variables, shared by all second-order rules of the group.
    rel_positions: Vec<usize>,
}

/// Specialize `program`: eliminate all relation variables.
pub fn specialize(program: &Program) -> RelResult<Specialized> {
    let mut groups: BTreeMap<String, Group> = BTreeMap::new();
    for def in program.defs() {
        let rel_pos = rel_param_positions(def);
        let group = groups.entry(def.name.clone()).or_default();
        if rel_pos.is_empty() {
            group.first_order.push(def.clone());
        } else {
            if !group.second_order.is_empty() && group.rel_positions != rel_pos {
                return Err(RelError::resolve(format!(
                    "rules for `{}` disagree on which parameters are relation \
                     variables",
                    def.name
                )));
            }
            group.rel_positions = rel_pos;
            group.second_order.push(def.clone());
        }
    }

    let mut sp = Sp {
        groups,
        out: Specialized::default(),
        keys: BTreeMap::new(),
        counter: 0,
        depth: 0,
    };

    // Roots: every first-order definition, transformed in place.
    let root_names: Vec<String> = sp
        .groups
        .iter()
        .filter(|(_, g)| !g.first_order.is_empty())
        .map(|(n, _)| n.clone())
        .collect();
    for name in root_names {
        let defs = sp.groups[&name].first_order.clone();
        for def in defs {
            let new = sp.transform_def(&def, &BTreeMap::new())?;
            sp.out.defs.entry(name.clone()).or_default().push(new);
        }
    }
    for c in program.constraints() {
        let mut scope = Scope::new();
        for p in &c.params {
            if let Some(v) = p.var_name() {
                scope.bind(v);
            }
        }
        let body = sp.transform_expr(&c.body, &scope, &BTreeMap::new())?;
        let params = c.params.clone();
        sp.out.constraints.push(Constraint { name: c.name.clone(), params, body });
    }
    Ok(sp.out)
}

/// Which parameter positions of this def are relation variables. Includes
/// the inference rule: a plain `Var` parameter *applied* in the body
/// (`R(x…)`) is a relation parameter (`def empty(R) : not exists((x...) |
/// R(x...))` — the paper drops the braces).
fn rel_param_positions(def: &Def) -> Vec<usize> {
    let mut applied = BTreeSet::new();
    collect_applied_names(&def.body, &mut applied);
    def.params
        .iter()
        .enumerate()
        .filter(|(_, p)| match p {
            Binding::RelVar(_) => true,
            Binding::Var(v) => applied.contains(v.as_str()),
            _ => false,
        })
        .map(|(i, _)| i)
        .collect()
}

/// Names used in applied (functor) position anywhere in `e`.
fn collect_applied_names(e: &Expr, out: &mut BTreeSet<String>) {
    e.walk(&mut |x| {
        if let Expr::App { func, .. } = x {
            if let Expr::Ident(n) = &**func {
                out.insert(n.clone());
            }
        }
    });
}

/// Lexical scope: variables currently bound (first-order and tuple).
#[derive(Clone, Debug, Default)]
struct Scope {
    vars: BTreeSet<String>,
}

impl Scope {
    fn new() -> Self {
        Scope::default()
    }
    fn bind(&mut self, v: &str) {
        self.vars.insert(v.to_string());
    }
    fn contains(&self, v: &str) -> bool {
        self.vars.contains(v)
    }
}

/// Relation-variable substitution: name → argument expression.
type Subst = BTreeMap<String, Expr>;

struct Sp {
    groups: BTreeMap<String, Group>,
    out: Specialized,
    /// (orig name, canonical arg keys) → instance name.
    keys: BTreeMap<(String, Vec<String>), String>,
    counter: usize,
    /// Current instantiation nesting depth.
    depth: usize,
}

impl Sp {
    fn transform_def(&mut self, def: &Def, subst: &Subst) -> RelResult<Def> {
        let mut scope = Scope::new();
        let mut params = Vec::with_capacity(def.params.len());
        for p in &def.params {
            match p {
                Binding::In(v, dom) => {
                    let dom = self.transform_expr(dom, &scope, subst)?;
                    scope.bind(v);
                    params.push(Binding::In(v.clone(), dom));
                }
                other => {
                    if let Some(v) = other.var_name() {
                        scope.bind(v);
                    }
                    params.push(other.clone());
                }
            }
        }
        let body = self.transform_expr(&def.body, &scope, subst)?;
        Ok(Def { name: def.name.clone(), params, style: def.style, body })
    }

    /// Core rewrite: apply the relation-variable substitution, instantiate
    /// second-order calls, recurse structurally.
    fn transform_expr(&mut self, e: &Expr, scope: &Scope, subst: &Subst) -> RelResult<Expr> {
        Ok(match e {
            Expr::Ident(n) => {
                if let Some(repl) = subst.get(n) {
                    repl.clone()
                } else {
                    e.clone()
                }
            }
            Expr::Lit(_)
            | Expr::TupleVar(_)
            | Expr::Wildcard
            | Expr::TupleWildcard
            | Expr::Param(_) => e.clone(),
            Expr::App { func, args, style } => {
                self.transform_app(func, args, *style, scope, subst)?
            }
            Expr::Product(es) => Expr::Product(
                es.iter()
                    .map(|x| self.transform_expr(x, scope, subst))
                    .collect::<RelResult<_>>()?,
            ),
            Expr::Union(es) => Expr::Union(
                es.iter()
                    .map(|x| self.transform_expr(x, scope, subst))
                    .collect::<RelResult<_>>()?,
            ),
            Expr::Where(a, b) => Expr::Where(
                Box::new(self.transform_expr(a, scope, subst)?),
                Box::new(self.transform_expr(b, scope, subst)?),
            ),
            Expr::And(a, b) => Expr::And(
                Box::new(self.transform_expr(a, scope, subst)?),
                Box::new(self.transform_expr(b, scope, subst)?),
            ),
            Expr::Or(a, b) => Expr::Or(
                Box::new(self.transform_expr(a, scope, subst)?),
                Box::new(self.transform_expr(b, scope, subst)?),
            ),
            Expr::Implies(a, b) => Expr::Implies(
                Box::new(self.transform_expr(a, scope, subst)?),
                Box::new(self.transform_expr(b, scope, subst)?),
            ),
            Expr::Iff(a, b) => Expr::Iff(
                Box::new(self.transform_expr(a, scope, subst)?),
                Box::new(self.transform_expr(b, scope, subst)?),
            ),
            Expr::Xor(a, b) => Expr::Xor(
                Box::new(self.transform_expr(a, scope, subst)?),
                Box::new(self.transform_expr(b, scope, subst)?),
            ),
            Expr::Not(a) => Expr::Not(Box::new(self.transform_expr(a, scope, subst)?)),
            Expr::Neg(a) => Expr::Neg(Box::new(self.transform_expr(a, scope, subst)?)),
            Expr::Cmp(op, a, b) => Expr::Cmp(
                *op,
                Box::new(self.transform_expr(a, scope, subst)?),
                Box::new(self.transform_expr(b, scope, subst)?),
            ),
            Expr::Arith(op, a, b) => Expr::Arith(
                *op,
                Box::new(self.transform_expr(a, scope, subst)?),
                Box::new(self.transform_expr(b, scope, subst)?),
            ),
            Expr::DotJoin(a, b) => Expr::DotJoin(
                Box::new(self.transform_expr(a, scope, subst)?),
                Box::new(self.transform_expr(b, scope, subst)?),
            ),
            Expr::LeftOverride(a, b) => Expr::LeftOverride(
                Box::new(self.transform_expr(a, scope, subst)?),
                Box::new(self.transform_expr(b, scope, subst)?),
            ),
            Expr::Abstraction { bindings, style, body } => {
                let (bindings, inner) = self.transform_bindings(bindings, scope, subst)?;
                Expr::Abstraction {
                    bindings,
                    style: *style,
                    body: Box::new(self.transform_expr(body, &inner, subst)?),
                }
            }
            Expr::Exists { bindings, body } => {
                let (bindings, inner) = self.transform_bindings(bindings, scope, subst)?;
                Expr::Exists {
                    bindings,
                    body: Box::new(self.transform_expr(body, &inner, subst)?),
                }
            }
            Expr::Forall { bindings, body } => {
                let (bindings, inner) = self.transform_bindings(bindings, scope, subst)?;
                Expr::Forall {
                    bindings,
                    body: Box::new(self.transform_expr(body, &inner, subst)?),
                }
            }
        })
    }

    fn transform_bindings(
        &mut self,
        bindings: &[Binding],
        scope: &Scope,
        subst: &Subst,
    ) -> RelResult<(Vec<Binding>, Scope)> {
        let mut out = Vec::with_capacity(bindings.len());
        let mut inner = scope.clone();
        for b in bindings {
            match b {
                Binding::In(v, dom) => {
                    let dom = self.transform_expr(dom, &inner, subst)?;
                    inner.bind(v);
                    out.push(Binding::In(v.clone(), dom));
                }
                other => {
                    if let Some(v) = other.var_name() {
                        inner.bind(v);
                    }
                    out.push(other.clone());
                }
            }
        }
        Ok((out, inner))
    }

    fn transform_app(
        &mut self,
        func: &Expr,
        args: &[Arg],
        style: AppStyle,
        scope: &Scope,
        subst: &Subst,
    ) -> RelResult<Expr> {
        // Resolve the functor through the substitution first.
        let func_t = self.transform_expr(func, scope, subst)?;
        // Flatten `App(App(f, a1), a2)` into `App(f, a1 ++ a2)` when the
        // inner application is partial — this happens when a relation
        // variable was substituted by a partial application.
        let (base, mut pre_args): (Expr, Vec<Arg>) = match func_t {
            Expr::App { func: inner, args: inner_args, style: AppStyle::Partial } => {
                (*inner, inner_args)
            }
            other => (other, Vec::new()),
        };

        let callee = match &base {
            Expr::Ident(n) => Some(n.clone()),
            _ => None,
        };

        // Second-order instantiation?
        if let Some(name) = &callee {
            let is_so = self
                .groups
                .get(name)
                .map(|g| !g.second_order.is_empty())
                .unwrap_or(false);
            let has_fo = self
                .groups
                .get(name)
                .map(|g| !g.first_order.is_empty())
                .unwrap_or(false)
                || builtins::is_builtin(name);

            // The argument list the callee sees is pre_args ++ args.
            let mut all_args: Vec<Arg> = pre_args.clone();
            all_args.extend(args.iter().cloned());

            // `f[?x]` once spelled the first-order annotation; today `?x`
            // lexes as a query parameter. In exactly the position where an
            // annotation would be meaningful — the first argument of a
            // predicate with second-order rules — a bare parameter is far
            // more likely a mis-spelled annotation than a genuine binding,
            // so reject it with the `?{x}` spelling instead of failing
            // later with a confusing unbound-parameter error.
            if is_so {
                if let Some(Arg { expr: Expr::Param(p), .. }) = all_args.first() {
                    return Err(RelError::AmbiguousApplication(format!(
                        "`{name}` has second-order rules, so `?{p}` reads like \
                         the retired brace-less annotation — but `?{p}` is a \
                         query parameter; write `{name}[?{{{p}}}]` to annotate \
                         the argument as first-order"
                    )));
                }
            }

            let forced_first = all_args.first().map(|a| a.ann == ArgAnnotation::First).unwrap_or(false)
                || (has_fo && all_args.iter().all(|a| definitely_first_order(&a.expr, scope)));
            let forced_second =
                all_args.first().map(|a| a.ann == ArgAnnotation::Second).unwrap_or(false);

            if is_so && !forced_first {
                if has_fo && !forced_second && could_be_first_order(&all_args, scope) {
                    return Err(RelError::AmbiguousApplication(format!(
                        "`{name}` has both first- and second-order rules; \
                         annotate the argument with ?{{…}} or &{{…}}"
                    )));
                }
                return self.instantiate(name, &all_args, style, scope, subst);
            }
        }

        // Ordinary application: transform arguments.
        let mut out_args = Vec::with_capacity(pre_args.len() + args.len());
        for a in pre_args.drain(..) {
            out_args.push(a); // already transformed
        }
        for a in args {
            out_args.push(Arg {
                expr: self.transform_expr(&a.expr, scope, subst)?,
                ann: a.ann,
            });
        }
        Ok(Expr::App { func: Box::new(base), args: out_args, style })
    }

    /// Instantiate a second-order call.
    fn instantiate(
        &mut self,
        name: &str,
        all_args: &[Arg],
        style: AppStyle,
        scope: &Scope,
        subst: &Subst,
    ) -> RelResult<Expr> {
        let group = self.groups.get(name).cloned().expect("checked by caller");
        let rel_positions = group.rel_positions.clone();
        let n_rel = rel_positions.len();
        // The paper's usage always passes relation arguments first; require
        // that the relation parameters are a prefix of the provided args.
        if rel_positions.iter().enumerate().any(|(i, p)| *p != i) {
            return Err(RelError::resolve(format!(
                "relation parameters of `{name}` must be leading parameters"
            )));
        }
        if all_args.len() < n_rel {
            return Err(RelError::resolve(format!(
                "`{name}` requires {n_rel} relation argument(s), got {}",
                all_args.len()
            )));
        }

        // Transform the relation arguments, then canonicalize their free
        // variables to `$0`, `$1`, ….
        let mut canon_args = Vec::with_capacity(n_rel);
        let mut lifted: Vec<String> = Vec::new(); // actual free vars, in order
        for arg in &all_args[..n_rel] {
            let t = self.transform_expr(&arg.expr, scope, subst)?;
            let canon = canonicalize(&t, scope, &mut lifted)?;
            canon_args.push(canon);
        }
        let keys: Vec<String> = canon_args
            .iter()
            .map(|e| rel_syntax::pretty::ExprPrinter(e).to_string())
            .collect();

        let key = (name.to_string(), keys.clone());
        let inst_name = if let Some(n) = self.keys.get(&key) {
            n.clone()
        } else {
            self.counter += 1;
            if self.counter > INSTANCE_CAP || self.depth > DEPTH_CAP {
                return Err(RelError::Stratify(format!(
                    "second-order instantiation diverged (relation `{name}`: \
                     {} instances, nesting depth {}); a recursive call is \
                     probably growing its relation arguments",
                    self.counter, self.depth
                )));
            }
            let inst = format!("{name}@{}", self.counter);
            self.keys.insert(key, inst.clone());
            self.out
                .instances
                .insert(inst.clone(), (name.to_string(), keys));
            // Number of lifted parameters for the instance.
            let n_lift = lifted.len();
            // Generate instance rules (tracking nesting depth: the rule
            // bodies may instantiate further).
            self.depth += 1;
            for rule in &group.second_order {
                let new_def =
                    self.instantiate_rule(rule, &inst, &rel_positions, &canon_args, n_lift);
                match new_def {
                    Ok(d) => {
                        self.out.defs.entry(inst.clone()).or_default().push(d);
                    }
                    Err(e) => {
                        self.depth -= 1;
                        return Err(e);
                    }
                }
            }
            self.depth -= 1;
            inst
        };

        // Build the call: instance[lifted…, remaining args…].
        let mut call_args: Vec<Arg> =
            lifted.iter().map(|v| Arg::plain(Expr::Ident(v.clone()))).collect();
        for a in &all_args[n_rel..] {
            call_args.push(Arg {
                expr: self.transform_expr(&a.expr, scope, subst)?,
                ann: ArgAnnotation::None,
            });
        }
        if call_args.is_empty() {
            return Ok(Expr::Ident(inst_name));
        }
        Ok(Expr::App { func: Box::new(Expr::Ident(inst_name)), args: call_args, style })
    }

    /// Instantiate one second-order rule for an instance predicate.
    fn instantiate_rule(
        &mut self,
        def: &Def,
        inst_name: &str,
        rel_positions: &[usize],
        canon_args: &[Expr],
        n_lift: usize,
    ) -> RelResult<Def> {
        // Fresh-rename the rule's own local variables to avoid clashing
        // with the canonical `$i` names (they can't clash with call-site
        // variables because the body is re-transformed afterwards in terms
        // of `$i` only).
        let renamed = alpha_rename(def, &format!("{inst_name}%"));

        // Substitution: relation parameter name → canonical argument.
        let mut inner_subst = Subst::new();
        let mut new_params: Vec<Binding> =
            (0..n_lift).map(|i| Binding::Var(format!("${i}"))).collect();
        for (i, p) in renamed.params.iter().enumerate() {
            if rel_positions.contains(&i) {
                let orig = p
                    .var_name()
                    .ok_or_else(|| RelError::resolve("relation parameter must be named"))?;
                let idx = rel_positions.iter().position(|x| *x == i).expect("checked");
                inner_subst.insert(orig.to_string(), canon_args[idx].clone());
            } else {
                new_params.push(p.clone());
            }
        }

        let shell = Def {
            name: inst_name.to_string(),
            params: new_params,
            style: renamed.style,
            body: renamed.body.clone(),
        };
        self.transform_def(&shell, &inner_subst)
    }
}

/// Is this argument *unambiguously* a first-order (value) expression?
/// Literals, in-scope variables, and arithmetic over those cannot denote
/// relations, so the engine routes them to first-order rules without an
/// annotation (Addendum A: "We can drop & and ? if the engine can figure
/// out whether the argument should be passed as first-order").
fn definitely_first_order(e: &Expr, scope: &Scope) -> bool {
    match e {
        Expr::Lit(_) => true,
        // A query parameter is a singleton of values — first-order.
        Expr::Param(_) => true,
        Expr::Ident(n) => scope.contains(n),
        Expr::Arith(_, a, b) => {
            definitely_first_order(a, scope) && definitely_first_order(b, scope)
        }
        Expr::Neg(a) => definitely_first_order(a, scope),
        _ => false,
    }
}

/// Could this argument list be a first-order application? (Used only to
/// detect the ambiguous `addUp[{11;22}]` case of Addendum A: a call is
/// potentially first-order when its arguments are value-like.)
fn could_be_first_order(args: &[Arg], scope: &Scope) -> bool {
    args.iter().all(|a| {
        matches!(
            &a.expr,
            Expr::Lit(_)
                | Expr::Wildcard
                | Expr::Union(_)
                | Expr::Arith(..)
                | Expr::Neg(..)
                | Expr::Param(_)
        ) || matches!(&a.expr, Expr::Ident(n) if scope.contains(n))
    })
}

/// Rename the free variables of a (transformed) relation argument to
/// `$0, $1, …` in first-occurrence order, extending `lifted` with the
/// original names. Identifiers not in scope are relation names and are left
/// alone.
fn canonicalize(e: &Expr, scope: &Scope, lifted: &mut Vec<String>) -> RelResult<Expr> {
    fn go(
        e: &Expr,
        scope: &Scope,
        local: &mut BTreeSet<String>,
        lifted: &mut Vec<String>,
    ) -> RelResult<Expr> {
        Ok(match e {
            Expr::Ident(n) => {
                if local.contains(n) {
                    e.clone()
                } else if scope.contains(n) {
                    let idx = match lifted.iter().position(|v| v == n) {
                        Some(i) => i,
                        None => {
                            lifted.push(n.clone());
                            lifted.len() - 1
                        }
                    };
                    Expr::Ident(format!("${idx}"))
                } else {
                    e.clone()
                }
            }
            Expr::TupleVar(n) if scope.contains(n) && !local.contains(n) => {
                return Err(RelError::resolve(format!(
                    "free tuple variable `{n}...` cannot be lifted into a \
                     relation argument"
                )))
            }
            Expr::Lit(_)
            | Expr::TupleVar(_)
            | Expr::Wildcard
            | Expr::TupleWildcard
            | Expr::Param(_) => e.clone(),
            Expr::Abstraction { bindings, style, body } => {
                let mut inner = local.clone();
                let mut bs = Vec::new();
                for b in bindings {
                    match b {
                        Binding::In(v, dom) => {
                            let dom = go(dom, scope, &mut inner.clone(), lifted)?;
                            inner.insert(v.clone());
                            bs.push(Binding::In(v.clone(), dom));
                        }
                        other => {
                            if let Some(v) = other.var_name() {
                                inner.insert(v.to_string());
                            }
                            bs.push(other.clone());
                        }
                    }
                }
                Expr::Abstraction {
                    bindings: bs,
                    style: *style,
                    body: Box::new(go(body, scope, &mut inner, lifted)?),
                }
            }
            Expr::Exists { bindings, body } | Expr::Forall { bindings, body } => {
                let mut inner = local.clone();
                let mut bs = Vec::new();
                for b in bindings {
                    match b {
                        Binding::In(v, dom) => {
                            let dom = go(dom, scope, &mut inner.clone(), lifted)?;
                            inner.insert(v.clone());
                            bs.push(Binding::In(v.clone(), dom));
                        }
                        other => {
                            if let Some(v) = other.var_name() {
                                inner.insert(v.to_string());
                            }
                            bs.push(other.clone());
                        }
                    }
                }
                let body = Box::new(go(body, scope, &mut inner, lifted)?);
                if matches!(e, Expr::Exists { .. }) {
                    Expr::Exists { bindings: bs, body }
                } else {
                    Expr::Forall { bindings: bs, body }
                }
            }
            Expr::App { func, args, style } => Expr::App {
                func: Box::new(go(func, scope, local, lifted)?),
                args: args
                    .iter()
                    .map(|a| {
                        Ok(Arg { expr: go(&a.expr, scope, local, lifted)?, ann: a.ann })
                    })
                    .collect::<RelResult<_>>()?,
                style: *style,
            },
            Expr::Product(es) => Expr::Product(
                es.iter().map(|x| go(x, scope, local, lifted)).collect::<RelResult<_>>()?,
            ),
            Expr::Union(es) => Expr::Union(
                es.iter().map(|x| go(x, scope, local, lifted)).collect::<RelResult<_>>()?,
            ),
            Expr::Where(a, b) => Expr::Where(
                Box::new(go(a, scope, local, lifted)?),
                Box::new(go(b, scope, local, lifted)?),
            ),
            Expr::And(a, b) => Expr::And(
                Box::new(go(a, scope, local, lifted)?),
                Box::new(go(b, scope, local, lifted)?),
            ),
            Expr::Or(a, b) => Expr::Or(
                Box::new(go(a, scope, local, lifted)?),
                Box::new(go(b, scope, local, lifted)?),
            ),
            Expr::Implies(a, b) => Expr::Implies(
                Box::new(go(a, scope, local, lifted)?),
                Box::new(go(b, scope, local, lifted)?),
            ),
            Expr::Iff(a, b) => Expr::Iff(
                Box::new(go(a, scope, local, lifted)?),
                Box::new(go(b, scope, local, lifted)?),
            ),
            Expr::Xor(a, b) => Expr::Xor(
                Box::new(go(a, scope, local, lifted)?),
                Box::new(go(b, scope, local, lifted)?),
            ),
            Expr::Not(a) => Expr::Not(Box::new(go(a, scope, local, lifted)?)),
            Expr::Neg(a) => Expr::Neg(Box::new(go(a, scope, local, lifted)?)),
            Expr::Cmp(op, a, b) => Expr::Cmp(
                *op,
                Box::new(go(a, scope, local, lifted)?),
                Box::new(go(b, scope, local, lifted)?),
            ),
            Expr::Arith(op, a, b) => Expr::Arith(
                *op,
                Box::new(go(a, scope, local, lifted)?),
                Box::new(go(b, scope, local, lifted)?),
            ),
            Expr::DotJoin(a, b) => Expr::DotJoin(
                Box::new(go(a, scope, local, lifted)?),
                Box::new(go(b, scope, local, lifted)?),
            ),
            Expr::LeftOverride(a, b) => Expr::LeftOverride(
                Box::new(go(a, scope, local, lifted)?),
                Box::new(go(b, scope, local, lifted)?),
            ),
        })
    }
    let mut local = BTreeSet::new();
    go(e, scope, &mut local, lifted)
}

/// Alpha-rename all locally bound variables of a def with a prefix. The
/// canonical `$i` names and relation names are untouched.
fn alpha_rename(def: &Def, prefix: &str) -> Def {
    let mut map: BTreeMap<String, String> = BTreeMap::new();
    let mut params = Vec::with_capacity(def.params.len());
    for p in &def.params {
        params.push(rename_binding(p, prefix, &mut map));
    }
    let body = rename_expr(&def.body, prefix, &mut map);
    Def { name: def.name.clone(), params, style: def.style, body }
}

fn renamed(name: &str, prefix: &str, map: &mut BTreeMap<String, String>) -> String {
    map.entry(name.to_string())
        .or_insert_with(|| format!("{prefix}{name}"))
        .clone()
}

fn rename_binding(b: &Binding, prefix: &str, map: &mut BTreeMap<String, String>) -> Binding {
    match b {
        Binding::Var(v) => Binding::Var(renamed(v, prefix, map)),
        Binding::TupleVar(v) => Binding::TupleVar(renamed(v, prefix, map)),
        Binding::RelVar(v) => Binding::RelVar(v.clone()),
        Binding::In(v, dom) => {
            let dom = rename_expr(dom, prefix, map);
            Binding::In(renamed(v, prefix, map), dom)
        }
        Binding::Lit(v) => Binding::Lit(v.clone()),
        Binding::Wildcard => Binding::Wildcard,
    }
}

fn rename_expr(e: &Expr, prefix: &str, map: &mut BTreeMap<String, String>) -> Expr {
    match e {
        Expr::Ident(n) => match map.get(n) {
            Some(r) => Expr::Ident(r.clone()),
            None => e.clone(),
        },
        Expr::TupleVar(n) => match map.get(n) {
            Some(r) => Expr::TupleVar(r.clone()),
            None => e.clone(),
        },
        Expr::Lit(_) | Expr::Wildcard | Expr::TupleWildcard | Expr::Param(_) => e.clone(),
        Expr::Product(es) => {
            Expr::Product(es.iter().map(|x| rename_expr(x, prefix, map)).collect())
        }
        Expr::Union(es) => Expr::Union(es.iter().map(|x| rename_expr(x, prefix, map)).collect()),
        Expr::Where(a, b) => Expr::Where(
            Box::new(rename_expr(a, prefix, map)),
            Box::new(rename_expr(b, prefix, map)),
        ),
        Expr::And(a, b) => Expr::And(
            Box::new(rename_expr(a, prefix, map)),
            Box::new(rename_expr(b, prefix, map)),
        ),
        Expr::Or(a, b) => Expr::Or(
            Box::new(rename_expr(a, prefix, map)),
            Box::new(rename_expr(b, prefix, map)),
        ),
        Expr::Implies(a, b) => Expr::Implies(
            Box::new(rename_expr(a, prefix, map)),
            Box::new(rename_expr(b, prefix, map)),
        ),
        Expr::Iff(a, b) => Expr::Iff(
            Box::new(rename_expr(a, prefix, map)),
            Box::new(rename_expr(b, prefix, map)),
        ),
        Expr::Xor(a, b) => Expr::Xor(
            Box::new(rename_expr(a, prefix, map)),
            Box::new(rename_expr(b, prefix, map)),
        ),
        Expr::Not(a) => Expr::Not(Box::new(rename_expr(a, prefix, map))),
        Expr::Neg(a) => Expr::Neg(Box::new(rename_expr(a, prefix, map))),
        Expr::Cmp(op, a, b) => Expr::Cmp(
            *op,
            Box::new(rename_expr(a, prefix, map)),
            Box::new(rename_expr(b, prefix, map)),
        ),
        Expr::Arith(op, a, b) => Expr::Arith(
            *op,
            Box::new(rename_expr(a, prefix, map)),
            Box::new(rename_expr(b, prefix, map)),
        ),
        Expr::DotJoin(a, b) => Expr::DotJoin(
            Box::new(rename_expr(a, prefix, map)),
            Box::new(rename_expr(b, prefix, map)),
        ),
        Expr::LeftOverride(a, b) => Expr::LeftOverride(
            Box::new(rename_expr(a, prefix, map)),
            Box::new(rename_expr(b, prefix, map)),
        ),
        Expr::Abstraction { bindings, style, body } => {
            let bindings = bindings.iter().map(|b| rename_binding(b, prefix, map)).collect();
            Expr::Abstraction {
                bindings,
                style: *style,
                body: Box::new(rename_expr(body, prefix, map)),
            }
        }
        Expr::Exists { bindings, body } => {
            let bindings = bindings.iter().map(|b| rename_binding(b, prefix, map)).collect();
            Expr::Exists { bindings, body: Box::new(rename_expr(body, prefix, map)) }
        }
        Expr::Forall { bindings, body } => {
            let bindings = bindings.iter().map(|b| rename_binding(b, prefix, map)).collect();
            Expr::Forall { bindings, body: Box::new(rename_expr(body, prefix, map)) }
        }
        Expr::App { func, args, style } => Expr::App {
            func: Box::new(rename_expr(func, prefix, map)),
            args: args
                .iter()
                .map(|a| Arg { expr: rename_expr(&a.expr, prefix, map), ann: a.ann })
                .collect(),
            style: *style,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rel_syntax::parse_program;

    fn run(src: &str) -> Specialized {
        specialize(&parse_program(src).unwrap()).unwrap()
    }

    #[test]
    fn plain_first_order_untouched() {
        let sp = run("def F(x) : R(x) and not S(x)");
        assert_eq!(sp.defs.len(), 1);
        assert!(sp.instances.is_empty());
    }

    #[test]
    fn product_instantiation() {
        let sp = run(
            "def Product({A},{B},x...,y...) : A(x...) and B(y...)\n\
             def output(a,b,c,d) : Product(R, S, a, b, c, d)",
        );
        // One instance for Product⟨R,S⟩.
        assert_eq!(sp.instances.len(), 1);
        let (inst, (orig, keys)) = sp.instances.iter().next().unwrap();
        assert_eq!(orig, "Product");
        assert_eq!(keys, &vec!["R".to_string(), "S".to_string()]);
        // Instance has rules.
        assert!(sp.defs.contains_key(inst));
        // output's body calls the instance.
        let out = &sp.defs["output"][0];
        let mut found = false;
        out.body.walk(&mut |e| {
            if let Expr::App { func, .. } = e {
                if **func == Expr::Ident(inst.clone()) {
                    found = true;
                }
            }
        });
        assert!(found, "output should call the instance: {:?}", out.body);
    }

    #[test]
    fn same_args_share_instance() {
        let sp = run(
            "def Union({A},{B},x...) : A(x...) or B(x...)\n\
             def o1(x) : Union(R, S, x)\n\
             def o2(x,y) : Union(R, S, x, y)",
        );
        assert_eq!(sp.instances.len(), 1);
    }

    #[test]
    fn different_args_different_instances() {
        let sp = run(
            "def Union({A},{B},x...) : A(x...) or B(x...)\n\
             def o1(x) : Union(R, S, x)\n\
             def o2(x) : Union(S, R, x)",
        );
        assert_eq!(sp.instances.len(), 2);
    }

    #[test]
    fn recursive_second_order_terminates() {
        let sp = run(
            "def APSP({V},{E},x,y,0) : V(x) and V(y) and x = y\n\
             def APSP({V},{E},x,y,i) :\n\
               i = min[(j) : exists((z) | E(x,z) and APSP[V,E](z,y,j-1))]\n\
             def min[{A}] : reduce[minimum,A]\n\
             def output(x,y,d) : APSP(N, NN, x, y, d)",
        );
        // APSP⟨N,NN⟩ plus the min instance(s).
        let apsp_insts: Vec<_> =
            sp.instances.values().filter(|(o, _)| o == "APSP").collect();
        assert_eq!(apsp_insts.len(), 1, "{:?}", sp.instances);
        // The instance's rules exist (two of them).
        let inst_name = sp
            .instances
            .iter()
            .find(|(_, (o, _))| o == "APSP")
            .map(|(n, _)| n.clone())
            .unwrap();
        assert_eq!(sp.defs[&inst_name].len(), 2);
    }

    #[test]
    fn free_variable_lifting() {
        let sp = run(
            "def sum[{A}] : reduce[add,A]\n\
             def Ord(x) : OrderProductQuantity(x,_,_)\n\
             def OrderPaid[x in Ord] : sum[OrderPaymentAmount[x]]",
        );
        // sum instantiated with canonical key OrderPaymentAmount[$0].
        let sum_inst = sp
            .instances
            .iter()
            .find(|(_, (o, _))| o == "sum")
            .expect("sum instance");
        assert!(
            sum_inst.1 .1[0].contains("$0"),
            "canonical key should use $0: {:?}",
            sum_inst.1
        );
        // The instance def has one lifted param `$0`.
        let rules = &sp.defs[sum_inst.0];
        assert_eq!(rules[0].params.len(), 1);
        assert_eq!(rules[0].params[0], Binding::Var("$0".into()));
    }

    #[test]
    fn lifted_instances_shared_across_variables() {
        let sp = run(
            "def sum[{A}] : reduce[add,A]\n\
             def P1[x] : sum[R[x]]\n\
             def P2[y] : sum[R[y]]",
        );
        let sum_insts: Vec<_> = sp.instances.values().filter(|(o, _)| o == "sum").collect();
        assert_eq!(sum_insts.len(), 1, "x and y calls must share the instance");
    }

    #[test]
    fn inferred_relation_param_without_braces() {
        // `def empty(R)` — plain R applied in the body is inferred second
        // order (the paper omits the braces in §5.4).
        let sp = run(
            "def empty(R) : not exists((x...) | R(x...))\n\
             def out() : empty(Q)",
        );
        assert_eq!(sp.instances.len(), 1);
        let (_, (orig, keys)) = sp.instances.iter().next().unwrap();
        assert_eq!(orig, "empty");
        assert_eq!(keys[0], "Q");
    }

    #[test]
    fn ambiguous_application_rejected() {
        let err = specialize(
            &parse_program(
                "def addUp[{A}] : sum[A]\n\
                 def addUp[x in Int] : x\n\
                 def sum[{A}] : reduce[add,A]\n\
                 def out(v) : addUp[{11;22}](v)",
            )
            .unwrap(),
        )
        .unwrap_err();
        assert!(matches!(err, RelError::AmbiguousApplication(_)), "{err}");
    }

    #[test]
    fn braceless_annotation_spelling_suggests_braced_form() {
        // `addUp[?x]` lexes `?x` as a query parameter; in the first
        // argument of a second-order predicate that is almost certainly
        // the retired brace-less annotation, so the diagnostic must spell
        // out the `?{x}` fix — exactly this text.
        let err = specialize(
            &parse_program(
                "def addUp[{A}] : sum[A]\n\
                 def sum[{A}] : reduce[add,A]\n\
                 def out(v) : addUp[?x](v)",
            )
            .unwrap(),
        )
        .unwrap_err();
        assert_eq!(
            err.to_string(),
            "ambiguous application (use ?{} or &{}): `addUp` has \
             second-order rules, so `?x` reads like the retired brace-less \
             annotation — but `?x` is a query parameter; write `addUp[?{x}]` \
             to annotate the argument as first-order"
        );
        // A parameter argument to a plain first-order predicate stays a
        // parameter — no spurious diagnostic.
        let ok = specialize(
            &parse_program("def out(y) : ProductPrice[?product](y)").unwrap(),
        );
        assert!(ok.is_ok(), "{ok:?}");
    }

    #[test]
    fn annotation_disambiguates() {
        let sp = run(
            "def addUp[{A}] : sum[A]\n\
             def addUp[x in Int] : x\n\
             def sum[{A}] : reduce[add,A]\n\
             def out(v) : addUp[&{11;22}](v)\n\
             def out2(v) : addUp[?{11;22}](v)",
        );
        // & creates an instance; ? goes to the first-order rules.
        let addup_insts: Vec<_> =
            sp.instances.values().filter(|(o, _)| o == "addUp").collect();
        assert_eq!(addup_insts.len(), 1);
    }

    #[test]
    fn pagerank_instances_converge() {
        let src = r#"
def sum[{A}] : reduce[add,A]
def max[{A}] : reduce[maximum,A]
def MatrixVector[{A},{V},i] : { sum[[k] : A[i,k]*V[k]] }
def dimension[{Matrix}] : max[(k) : Matrix(k,_,_)]
def vector[d,i] : 1.0/d where range(1,d,1,i)
def myabs(x,y) : (x >= 0 and y = x) or (x < 0 and y = -1 * x)
def delta[{Vec1},{Vec2}] : max[[k] : myabs[Vec1[k] - Vec2[k]]]
def next[{G},{P}]: {MatrixVector[G,P]}
def stop({G},{P}): {delta[next[G,P],P] > 0.005}
def empty(R) : not exists( (x...) | R(x...))
def PageRank[{G}] : {vector[dimension[G]] where empty(PageRank[G])}
def PageRank[{G}] : {next[G,PageRank[G]]
    where not empty(PageRank[G]) and stop(G,PageRank[G])}
def PageRank[{G}] : {PageRank[G] where
    not empty(PageRank[G]) and not stop(G,PageRank[G])}
def output(i,v) : PageRank[M](i,v)
"#;
        let sp = run(src);
        let pr: Vec<_> = sp.instances.values().filter(|(o, _)| o == "PageRank").collect();
        assert_eq!(pr.len(), 1, "PageRank⟨M⟩ must be a single instance");
    }
}
