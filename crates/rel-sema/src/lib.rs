//! # rel-sema
//!
//! Semantic analysis for Rel: turns a parsed [`rel_syntax::Program`] into an
//! executable [`ir::Module`] through four passes:
//!
//! 1. **Specialization** ([`specialize`]) — eliminates second-order relation
//!    variables by HiLog-style instantiation with lambda lifting (§4.2–4.4
//!    of the paper; DESIGN.md §2.1);
//! 2. **Lowering** ([`lower`]) — desugars to a first-order IR in negation
//!    normal form with numbered variables;
//! 3. **Safety analysis** ([`safety`]) — mode-based range-restriction
//!    checking over infinite built-ins (§3.1–3.2; ref. 28), assigning each
//!    predicate a bottom-up or demand-driven evaluation mode;
//! 4. **Stratification** ([`strata`]) — SCC condensation of the dependency
//!    graph, marking each stratum monotone (semi-naive) or non-monotone
//!    (partial fixpoint, for the non-stratified programs Rel permits).

pub mod builtins;
pub mod ir;
pub mod lower;
pub mod safety;
pub mod specialize;
pub mod strata;

use ir::{Module, PredInfo};
use rel_core::RelResult;
use rel_syntax::Program;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of full semantic-analysis runs performed by this process.
/// Every compilation (parse-and-analyze or analyze-only) bumps this
/// exactly once, so tests can assert that a prepared query really is
/// compiled a single time no matter how often it executes.
static COMPILATIONS: AtomicU64 = AtomicU64::new(0);

/// Process-wide count of semantic-analysis runs (see [`analyze`]).
pub fn compilations() -> u64 {
    COMPILATIONS.load(Ordering::Relaxed)
}

/// Run the full analysis pipeline on a parsed program.
pub fn analyze(program: &Program) -> RelResult<Module> {
    COMPILATIONS.fetch_add(1, Ordering::Relaxed);
    let sp = specialize::specialize(program)?;
    let (rules, constraints) = lower::lower(&sp)?;
    let modes = safety::infer_modes(&rules)?;
    let strata = strata::stratify(&rules);
    let stratum_deps = strata::stratum_deps(&rules, &strata);
    let stratum_reads = strata::stratum_read_sets(&rules, &strata);
    let mut pred_info = std::collections::BTreeMap::new();
    for (i, s) in strata.iter().enumerate() {
        for p in &s.preds {
            pred_info.insert(
                p.clone(),
                PredInfo { mode: modes[p].clone(), stratum: i },
            );
        }
    }
    // Collect the `?name` query parameters the program references: they
    // lower to reserved `?`-prefixed base relations, which only the
    // prepared-query execute path may populate.
    let mut params = std::collections::BTreeSet::new();
    let mut see = |n: &rel_core::Name| {
        if let Some(p) = ir::param_name(n) {
            params.insert(rel_core::name(p));
        }
    };
    for rs in rules.values() {
        for r in rs {
            ir::visit_rule_preds(r, &mut see);
        }
    }
    for c in &constraints {
        for p in &c.params {
            if let ir::AbsParam::In(_, dom) = p {
                ir::visit_rexpr_preds(dom, &mut see);
            }
        }
        ir::visit_rexpr_preds(&c.body, &mut see);
    }
    let params: Vec<rel_core::Name> = params.into_iter().collect();
    Ok(Module { rules, constraints, strata, stratum_deps, stratum_reads, pred_info, params })
}

/// Parse and analyze in one step.
pub fn compile(src: &str) -> RelResult<Module> {
    analyze(&rel_syntax::parse_program(src)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_small_program() {
        let m = compile(
            "def OrderWithPayment(y) : exists((x) | PaymentOrder(x,y))\n\
             def output(y) : OrderWithPayment(y)",
        )
        .unwrap();
        assert_eq!(m.rules.len(), 2);
        assert_eq!(m.strata.len(), 2);
        assert!(m.pred_info.contains_key(&rel_core::name("output")));
    }

    #[test]
    fn compile_reports_unsafe() {
        let err = compile("def Bad() : exists((x) | not R(x))").unwrap_err();
        assert!(matches!(err, rel_core::RelError::Unsafe(_)), "{err}");
    }

    #[test]
    fn params_are_collected_and_lower_to_reserved_relations() {
        let m = compile(
            "def output(x) : exists((y) | ProductPrice(x, y) and y > ?min)\n\
             def Also(x) : R(x, ?min) and S(x, ?other)",
        )
        .unwrap();
        assert_eq!(
            m.params,
            vec![rel_core::name("min"), rel_core::name("other")]
        );
        // The reserved relation is a plain materializable EDB reference.
        assert!(!m.rules.contains_key("?min"));
        let mut preds = std::collections::BTreeSet::new();
        for rs in m.rules.values() {
            for r in rs {
                ir::visit_rule_preds(r, &mut |n| {
                    preds.insert(n.clone());
                });
            }
        }
        assert!(preds.contains(&ir::param_relation("min")));
        assert!(preds.contains(&ir::param_relation("other")));
    }

    #[test]
    fn param_free_module_has_no_params() {
        let m = compile("def output(x) : R(x)").unwrap();
        assert!(m.params.is_empty());
    }

    #[test]
    fn compilations_counter_moves() {
        let before = compilations();
        compile("def output(x) : R(x)").unwrap();
        assert!(compilations() > before);
    }

    #[test]
    fn compile_full_paper_pipeline() {
        // The APSP program end to end.
        let m = compile(
            "def min[{A}] : reduce[minimum,A]\n\
             def APSP({V},{E},x,y,0) : V(x) and V(y) and x = y\n\
             def APSP({V},{E},x,y,i) :\n\
               i = min[(j) : exists((z) | E(x,z) and APSP[V,E](z,y,j-1))]\n\
             def output(x,y,d) : APSP(N, NN, x, y, d)",
        )
        .unwrap();
        // Strata: APSP instance must be recursive + non-monotone.
        let apsp_stratum = m
            .strata
            .iter()
            .find(|s| s.preds.iter().any(|p| p.starts_with("APSP@")))
            .expect("APSP stratum");
        assert!(apsp_stratum.recursive);
        assert!(!apsp_stratum.monotone);
    }
}
