//! Safety (range-restriction) analysis — §3.1–3.2 of the paper,
//! following the mode-based approach of "Queries with External
//! Predicates" (ref. 28): built-in relations are infinite but evaluable under
//! *modes*, and an expression is safe when some conjunct ordering grounds
//! every variable from finite sources or mode outputs rooted in finite
//! sources.
//!
//! The analysis is an abstract interpretation of the engine's greedy
//! planner over *sets of bound variables*. A central notion is **open
//! evaluation**: a relation-valued expression may ground its own free
//! variables from its internal structure — e.g. the aggregation input
//! `min[(j): exists((z) | E(x,z) ∧ APSP(z,y,j-1))]` grounds the group
//! variables `x, y` from `E` and `APSP`. This is how grouped aggregation
//! generates its groups.
//!
//! The output is an [`EvalMode`] per predicate:
//!
//! * [`EvalMode::Materialize`] — every rule grounds all head variables with
//!   no outside help: the predicate can be computed bottom-up.
//! * [`EvalMode::Demand`] — rules become safe once a prefix of the head
//!   parameters is bound: the predicate is evaluated on demand (tabled),
//!   like `vector[d, i]` (needs `d`) or the digit-summing `addUp` of
//!   Addendum A (needs its argument). This matches the paper's stance that
//!   unsafe expressions "can be written and used in other queries" as long
//!   as the context grounds them.
//!
//! Predicates with no safe mode at all are rejected, mirroring "the engine
//! never attempts to evaluate an expression that could be unsafe".

use crate::builtins;
use crate::ir::{AbsParam, EvalMode, Formula, RExpr, Rule, Term, Var};
use rel_core::{Name, RelError, RelResult};
use std::collections::{BTreeMap, BTreeSet};

/// Per-predicate evaluation modes, inferred to a fixpoint.
pub fn infer_modes(rules: &BTreeMap<Name, Vec<Rule>>) -> RelResult<BTreeMap<Name, EvalMode>> {
    let mut modes: BTreeMap<Name, EvalMode> = rules
        .keys()
        .map(|k| (k.clone(), EvalMode::Materialize))
        .collect();
    // Iterate to a fixpoint: demand requirements propagate through call
    // chains (bounded: prefixes only grow, capped by arity).
    for _round in 0..rules.len() + 2 {
        let mut changed = false;
        for (pred, rs) in rules {
            let mut needed = match &modes[pred] {
                EvalMode::Materialize => 0,
                EvalMode::Demand { bound_prefix } => *bound_prefix,
            };
            for rule in rs {
                let k = minimal_prefix(rule, &modes).ok_or_else(|| {
                    RelError::unsafe_expr(format!(
                        "no safe evaluation order for a rule of `{pred}`: some \
                         variable cannot be grounded even with all parameters bound"
                    ))
                })?;
                needed = needed.max(k);
            }
            let new_mode = if needed == 0 {
                EvalMode::Materialize
            } else {
                EvalMode::Demand { bound_prefix: needed }
            };
            if new_mode != modes[pred] {
                modes.insert(pred.clone(), new_mode);
                changed = true;
            }
        }
        if !changed {
            return Ok(modes);
        }
    }
    Ok(modes)
}

/// Smallest `k` such that binding the first `k` head parameters makes the
/// rule safe, or `None` if no `k` works.
fn minimal_prefix(rule: &Rule, modes: &BTreeMap<Name, EvalMode>) -> Option<usize> {
    for k in 0..=rule.params.len() {
        let mut bound = BTreeSet::new();
        for p in rule.params.iter().take(k) {
            if let Some(v) = p.var() {
                bound.insert(v);
            }
        }
        if rule_safe(rule, bound, modes) {
            return Some(k);
        }
    }
    None
}

/// Is the rule fully groundable starting from `bound`?
fn rule_safe(rule: &Rule, bound: BTreeSet<Var>, modes: &BTreeMap<Name, EvalMode>) -> bool {
    let cx = Cx { modes };
    let mut gen: Vec<Formula> = Vec::new();
    for p in &rule.params {
        if let AbsParam::In(v, dom) = p {
            gen.push(Formula::Member { term: Term::Var(*v), of: dom.clone() });
        }
    }
    let head_vars: BTreeSet<Var> = rule.params.iter().filter_map(AbsParam::var).collect();
    cx.check_body(&rule.body, gen, bound, &head_vars)
}

struct Cx<'a> {
    modes: &'a BTreeMap<Name, EvalMode>,
}

impl Cx<'_> {
    /// Check one rule/abstraction body given pre-collected generator
    /// conjuncts. All `need` variables must end up bound, and the value
    /// part must be (openly) evaluable.
    fn check_body(
        &self,
        body: &RExpr,
        mut gen: Vec<Formula>,
        bound: BTreeSet<Var>,
        need: &BTreeSet<Var>,
    ) -> bool {
        match body {
            RExpr::OfFormula(f) => {
                gen.push((**f).clone());
                match self.run_conj(&gen, bound) {
                    Some(b) => need.iter().all(|v| b.contains(v)),
                    None => false,
                }
            }
            RExpr::Where { body: inner, cond } => {
                gen.push((**cond).clone());
                match self.run_conj(&gen, bound) {
                    Some(b) => match self.expr_open(inner, &b) {
                        Some(newly) => {
                            let all: BTreeSet<Var> = b.union(&newly).copied().collect();
                            need.iter().all(|v| all.contains(v))
                        }
                        None => false,
                    },
                    None => false,
                }
            }
            RExpr::Union(branches) => branches
                .iter()
                .all(|br| self.check_body(br, gen.clone(), bound.clone(), need)),
            other => match self.run_conj(&gen, bound) {
                Some(b) => match self.expr_open(other, &b) {
                    Some(newly) => {
                        let all: BTreeSet<Var> = b.union(&newly).copied().collect();
                        need.iter().all(|v| all.contains(v))
                    }
                    None => false,
                },
                None => false,
            },
        }
    }

    /// Greedy abstract scheduling of a conjunction. Returns the bound set
    /// on success.
    fn run_conj(&self, conjuncts: &[Formula], mut bound: BTreeSet<Var>) -> Option<BTreeSet<Var>> {
        let mut pending: Vec<&Formula> = conjuncts.iter().collect();
        flatten_pending(&mut pending);
        while !pending.is_empty() {
            let mut progressed = false;
            let mut i = 0;
            while i < pending.len() {
                if let Some(newly) = self.try_run(pending[i], &bound) {
                    bound.extend(newly);
                    pending.remove(i);
                    progressed = true;
                } else {
                    i += 1;
                }
            }
            if !progressed {
                return None;
            }
        }
        Some(bound)
    }

    /// Can this conjunct run under `bound`? Returns newly bound vars.
    fn try_run(&self, f: &Formula, bound: &BTreeSet<Var>) -> Option<BTreeSet<Var>> {
        match f {
            Formula::True | Formula::False => Some(BTreeSet::new()),
            Formula::Conj(items) => {
                let b = self.run_conj(items, bound.clone())?;
                Some(&b - bound)
            }
            Formula::Disj(branches) => {
                let mut common: Option<BTreeSet<Var>> = None;
                for br in branches {
                    let b = self.run_conj(std::slice::from_ref(br), bound.clone())?;
                    let newly = &b - bound;
                    common = Some(match common {
                        None => newly,
                        Some(c) => &c & &newly,
                    });
                }
                Some(common.unwrap_or_default())
            }
            Formula::Not(inner) => {
                // Negation is a filter; the subformula must be evaluable
                // (it may bind its own local variables internally).
                self.try_run(inner, bound)?;
                Some(BTreeSet::new())
            }
            Formula::Atom(a) => self.atom_newly(&a.pred, &a.args, bound),
            Formula::DynAtom { rel, args } => {
                self.expr_open(rel, bound)?;
                Some(new_vars_of(args, bound))
            }
            Formula::Member { term, of } => {
                match &**of {
                    RExpr::Pred(p) => {
                        if let Some(b) = builtins::lookup(p) {
                            // Infinite builtin as a domain: check-only
                            // (type tests with the term already bound);
                            // anything else cannot be enumerated.
                            return (b.type_test && term_bound(term, bound))
                                .then(BTreeSet::new);
                        }
                        // Finite relation: generates.
                        Some(new_vars_of(std::slice::from_ref(term), bound))
                    }
                    other => {
                        let newly = self.expr_open(other, bound)?;
                        let mut out = newly;
                        out.extend(new_vars_of(std::slice::from_ref(term), bound));
                        Some(out)
                    }
                }
            }
            Formula::Cmp { op, lhs, rhs } => {
                let l_open = self.expr_open(lhs, bound);
                let r_open = self.expr_open(rhs, bound);
                match (l_open, r_open) {
                    (Some(a), Some(b)) => Some(a.union(&b).copied().collect()),
                    (l, r) if *op == rel_syntax::ast::CmpOp::Eq => {
                        // `x = E` binds x when E is evaluable.
                        if let (RExpr::Singleton(ts), Some(rb)) = (&**lhs, &r) {
                            if let [t] = ts.as_slice() {
                                let mut out = rb.clone();
                                out.extend(new_vars_of(std::slice::from_ref(t), bound));
                                return Some(out);
                            }
                        }
                        if let (Some(lb), RExpr::Singleton(ts)) = (&l, &**rhs) {
                            if let [t] = ts.as_slice() {
                                let mut out = lb.clone();
                                out.extend(new_vars_of(std::slice::from_ref(t), bound));
                                return Some(out);
                            }
                        }
                        None
                    }
                    _ => None,
                }
            }
            Formula::Exists { vars, tuple_vars, body, .. } => {
                let inner = self.run_conj(std::slice::from_ref(&**body), bound.clone())?;
                // All quantified variables must be grounded inside the
                // scope, otherwise the existential ranges over an infinite
                // universe.
                if !vars.iter().chain(tuple_vars).all(|v| inner.contains(v)) {
                    return None;
                }
                let mut newly = &inner - bound;
                for v in vars.iter().chain(tuple_vars) {
                    newly.remove(v);
                }
                Some(newly)
            }
            Formula::OfExpr(e) => self.expr_open(e, bound),
        }
    }

    /// Newly bound vars from an atom over `pred`, or `None` if unschedulable.
    fn atom_newly(
        &self,
        pred: &Name,
        args: &[Term],
        bound: &BTreeSet<Var>,
    ) -> Option<BTreeSet<Var>> {
        if let Some(sig) = builtins::lookup(pred) {
            if args.len() + 1 == sig.arity {
                // Partial application computing the output position:
                // all provided arguments must be bound.
                return args
                    .iter()
                    .all(|t| term_bound(t, bound))
                    .then(BTreeSet::new);
            }
            if args.len() != sig.arity {
                return None;
            }
            'modes: for mode in sig.modes {
                let mut newly = BTreeSet::new();
                for (c, t) in mode.chars().zip(args) {
                    match c {
                        'b' => {
                            if !term_bound(t, bound) {
                                continue 'modes;
                            }
                        }
                        _ => {
                            if let Term::Var(v) = t {
                                if !bound.contains(v) {
                                    newly.insert(*v);
                                }
                            }
                        }
                    }
                }
                return Some(newly);
            }
            return None;
        }
        match self.modes.get(pred) {
            Some(EvalMode::Demand { bound_prefix }) => {
                if args.iter().any(|t| matches!(t, Term::TupleVar(_))) {
                    // Tuple-variable args over a demand predicate: only a
                    // fully-bound filter is supported.
                    return args
                        .iter()
                        .all(|t| term_bound(t, bound))
                        .then(BTreeSet::new);
                }
                if args.len() < *bound_prefix {
                    return None;
                }
                if !args.iter().take(*bound_prefix).all(|t| term_bound(t, bound)) {
                    return None;
                }
                Some(new_vars_of(&args[*bound_prefix..], bound))
            }
            // Materialized IDB or EDB (unknown names are empty EDBs):
            // binds everything.
            _ => Some(new_vars_of(args, bound)),
        }
    }

    /// **Open evaluation** check: is this expression evaluable under
    /// `bound`, and which of its free variables does it ground? Returns
    /// `None` when unevaluable.
    fn expr_open(&self, e: &RExpr, bound: &BTreeSet<Var>) -> Option<BTreeSet<Var>> {
        match e {
            // A bare builtin is an infinite relation and cannot be
            // materialized; finite EDB/IDB relations are fine.
            RExpr::Pred(p) => {
                if builtins::lookup(p).is_some() {
                    None
                } else {
                    Some(BTreeSet::new())
                }
            }
            RExpr::PApp { pred, args } => self.atom_newly(pred, args, bound),
            RExpr::DynPApp { rel, args } => {
                let mut newly = self.expr_open(rel, bound)?;
                newly.extend(new_vars_of(args, bound));
                Some(newly)
            }
            RExpr::Product(es) => {
                // Sequential: later factors may use variables ground by
                // earlier ones (and vice versa — iterate greedily).
                let mut b = bound.clone();
                let mut pending: Vec<&RExpr> = es.iter().collect();
                while !pending.is_empty() {
                    let mut progressed = false;
                    let mut i = 0;
                    while i < pending.len() {
                        if let Some(n) = self.expr_open(pending[i], &b) {
                            b.extend(n);
                            pending.remove(i);
                            progressed = true;
                        } else {
                            i += 1;
                        }
                    }
                    if !progressed {
                        return None;
                    }
                }
                Some(&b - bound)
            }
            RExpr::Union(es) => {
                let mut common: Option<BTreeSet<Var>> = None;
                for x in es {
                    let n = self.expr_open(x, bound)?;
                    common = Some(match common {
                        None => n,
                        Some(c) => &c & &n,
                    });
                }
                Some(common.unwrap_or_default())
            }
            RExpr::Singleton(ts) => {
                if ts.iter().all(|t| term_bound(t, bound)) {
                    Some(BTreeSet::new())
                } else {
                    None
                }
            }
            RExpr::Where { body, cond } => {
                let b = self.run_conj(std::slice::from_ref(&**cond), bound.clone())?;
                let n = self.expr_open(body, &b)?;
                let mut out = &b - bound;
                out.extend(n);
                Some(out)
            }
            RExpr::Abstract { params, body, .. } => {
                // A mini-rule: domains + the body's generating part must
                // ground the parameters; free outer variables ground too
                // and propagate out.
                let mut members: Vec<Formula> = Vec::new();
                for p in params {
                    if let AbsParam::In(v, dom) = p {
                        members.push(Formula::Member { term: Term::Var(*v), of: dom.clone() });
                    }
                }
                let param_vars: BTreeSet<Var> =
                    params.iter().filter_map(AbsParam::var).collect();
                let inner_bound = match &**body {
                    RExpr::OfFormula(f) => {
                        members.push((**f).clone());
                        self.run_conj(&members, bound.clone())?
                    }
                    RExpr::Where { body: vb, cond } => {
                        members.push((**cond).clone());
                        let b = self.run_conj(&members, bound.clone())?;
                        let n = self.expr_open(vb, &b)?;
                        b.union(&n).copied().collect()
                    }
                    other => {
                        let b = self.run_conj(&members, bound.clone())?;
                        let n = self.expr_open(other, &b)?;
                        b.union(&n).copied().collect()
                    }
                };
                if !param_vars.iter().all(|v| inner_bound.contains(v)) {
                    return None;
                }
                let mut newly = &inner_bound - bound;
                for v in &param_vars {
                    newly.remove(v);
                }
                Some(newly)
            }
            RExpr::Reduce { op, input, .. } => {
                // The op is applied as a binary operation, never
                // materialized — a builtin name (e.g. `add`) is fine.
                if !matches!(&**op, RExpr::Pred(_)) {
                    self.expr_open(op, bound)?;
                }
                self.expr_open(input, bound)
            }
            RExpr::BuiltinApp { args, .. } => {
                let mut newly = BTreeSet::new();
                for a in args {
                    let mut b = bound.clone();
                    b.extend(newly.iter().copied());
                    newly.extend(self.expr_open(a, &b)?);
                }
                Some(newly)
            }
            RExpr::DotJoin(a, b) | RExpr::LeftOverride(a, b) => {
                let na = self.expr_open(a, bound)?;
                let nb = self.expr_open(b, bound)?;
                Some(na.union(&nb).copied().collect())
            }
            RExpr::OfFormula(f) => self.try_run(f, bound),
        }
    }
}

fn term_bound(t: &Term, bound: &BTreeSet<Var>) -> bool {
    match t {
        Term::Const(_) => true,
        Term::Var(v) | Term::TupleVar(v) => bound.contains(v),
    }
}

fn new_vars_of(ts: &[Term], bound: &BTreeSet<Var>) -> BTreeSet<Var> {
    ts.iter()
        .filter_map(|t| match t {
            Term::Var(v) | Term::TupleVar(v) if !bound.contains(v) => Some(*v),
            _ => None,
        })
        .collect()
}

fn flatten_pending(pending: &mut Vec<&Formula>) {
    let mut i = 0;
    while i < pending.len() {
        if let Formula::Conj(items) = pending[i] {
            let rest: Vec<&Formula> = items.iter().collect();
            pending.remove(i);
            for (j, it) in rest.into_iter().enumerate() {
                pending.insert(i + j, it);
            }
        } else {
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower;
    use crate::specialize::specialize;
    use rel_syntax::parse_program;

    fn modes_of(src: &str) -> RelResult<BTreeMap<Name, EvalMode>> {
        let sp = specialize(&parse_program(src).unwrap()).unwrap();
        let (rules, _) = lower(&sp).unwrap();
        infer_modes(&rules)
    }

    #[test]
    fn plain_rules_materialize() {
        let m = modes_of("def F(x) : R(x) and not S(x)").unwrap();
        assert_eq!(m[&rel_core::name("F")], EvalMode::Materialize);
    }

    #[test]
    fn tc_materializes() {
        let m = modes_of(
            "def TC(x,y) : E(x,y)\n\
             def TC(x,y) : exists((z) | E(x,z) and TC(z,y))",
        )
        .unwrap();
        assert_eq!(m[&rel_core::name("TC")], EvalMode::Materialize);
    }

    #[test]
    fn negated_price_becomes_demand() {
        // NotP1Price is unsafe standalone but fine when its argument is
        // bound by context (§3.1) — it becomes demand-driven.
        let m = modes_of("def NotP1Price(x) : not ProductPrice(\"P1\",x)").unwrap();
        assert_eq!(
            m[&rel_core::name("NotP1Price")],
            EvalMode::Demand { bound_prefix: 1 }
        );
    }

    #[test]
    fn additive_inverse_becomes_demand() {
        // Infinite standalone; evaluable once x is bound (§3.2: "such
        // expressions can be written and used in other queries").
        let m =
            modes_of("def AdditiveInverse(x,y) : Int(x) and Int(y) and add(x,y,0)").unwrap();
        assert_eq!(
            m[&rel_core::name("AdditiveInverse")],
            EvalMode::Demand { bound_prefix: 1 }
        );
    }

    #[test]
    fn truly_ungroundable_is_rejected() {
        // The quantified variable can never be grounded.
        let err = modes_of("def Bad() : exists((x) | not R(x))").unwrap_err();
        assert!(matches!(err, RelError::Unsafe(_)), "{err}");
    }

    #[test]
    fn intersection_with_finite_is_safe() {
        let m = modes_of(
            "def Fin2(x,y) : FinA(x) and FinB(y)\n\
             def Safe(x,y) : Fin2(x,y) and Int(x) and Int(y) and add(x,y,0)",
        )
        .unwrap();
        assert_eq!(m[&rel_core::name("Safe")], EvalMode::Materialize);
    }

    #[test]
    fn inverted_arithmetic_mode() {
        // DiscountedproductPrice: add(y,5,z) with z bound solves y (§3.2).
        let m = modes_of(
            "def D(x,y) : exists((z) | ProductPrice(x,z) and add(y,5,z))",
        )
        .unwrap();
        assert_eq!(m[&rel_core::name("D")], EvalMode::Materialize);
    }

    #[test]
    fn inverted_arith_in_argument_position() {
        // R(x, j-1): j is solved from R's second column.
        let m = modes_of("def F(x,j) : R(x, j-1) and Int(j)").unwrap();
        assert_eq!(m[&rel_core::name("F")], EvalMode::Materialize);
    }

    #[test]
    fn vector_needs_demand() {
        let m = modes_of("def vector[d,i] : 1.0/d where range(1,d,1,i)").unwrap();
        assert_eq!(
            m[&rel_core::name("vector")],
            EvalMode::Demand { bound_prefix: 1 }
        );
    }

    #[test]
    fn addup_needs_demand() {
        let m = modes_of(
            "def addUp[x in Int] : x%10 + addUp[(x-x%10)/10] where x >= 0",
        )
        .unwrap();
        assert_eq!(
            m[&rel_core::name("addUp")],
            EvalMode::Demand { bound_prefix: 1 }
        );
    }

    #[test]
    fn grouped_aggregation_materializes() {
        // The sum instance grounds its group variable from the aggregation
        // input (open evaluation).
        let m = modes_of(
            "def sum[{A}] : reduce[add,A]\n\
             def OrderPaymentAmount(x,y,z) : PaymentOrder(y,x) and PaymentAmount(y,z)\n\
             def Ord(x) : OrderProductQuantity(x,_,_)\n\
             def OrderPaid[x in Ord] : sum[OrderPaymentAmount[x]]",
        )
        .unwrap();
        assert_eq!(m[&rel_core::name("OrderPaid")], EvalMode::Materialize);
    }

    #[test]
    fn matmul_materializes() {
        let m = modes_of(
            "def sum[{A}] : reduce[add,A]\n\
             def MatrixMult[{A},{B},i,j] : { sum[[k] : A[i,k]*B[k,j]] }\n\
             def output(i,j,v) : MatrixMult(M1, M2, i, j, v)",
        )
        .unwrap();
        assert_eq!(m[&rel_core::name("output")], EvalMode::Materialize);
        let mm = m.iter().find(|(k, _)| k.starts_with("MatrixMult@")).unwrap();
        assert_eq!(*mm.1, EvalMode::Materialize);
    }

    #[test]
    fn demand_propagates_to_callers() {
        let m = modes_of(
            "def g[x] : x + 1\n\
             def f(y) : exists((x) | R(x) and g(x, y))",
        )
        .unwrap();
        assert_eq!(m[&rel_core::name("g")], EvalMode::Demand { bound_prefix: 1 });
        assert_eq!(m[&rel_core::name("f")], EvalMode::Materialize);
    }

    #[test]
    fn caller_without_binding_becomes_demand() {
        let m = modes_of(
            "def g[x] : x + 1\n\
             def f(x, y) : g(x, y)",
        )
        .unwrap();
        assert_eq!(m[&rel_core::name("f")], EvalMode::Demand { bound_prefix: 1 });
    }
}
