//! Lowered intermediate representation.
//!
//! After second-order **specialization** (see [`crate::specialize`]) every
//! predicate is first-order. Rules are lowered from the AST into this IR:
//!
//! * all variables are numbered ([`Var`]), with names kept in a side table
//!   for diagnostics;
//! * `implies`/`iff`/`xor`/`forall` are desugared into `and`/`or`/`not`/
//!   `exists`;
//! * infix arithmetic in *term positions* is flattened into built-in atoms
//!   over fresh variables (`R(x, y-1)` ⇒ `subtract(y,1,t) ∧ R(x,t)`);
//! * `x in E` domains become explicit [`Formula::Member`] conjuncts;
//! * applications of *predicates* become [`Atom`]s / [`RExpr::PApp`]s;
//!   applications of computed relations become `DynAtom` / `DynPApp`.
//!
//! A rule `def p(params) : body` evaluates to
//! `{ ⟨params(µ)⟩ · t | µ ∈ envs(body), t ∈ ⟦value-part⟧µ }` — for formula
//! bodies the value part is `{⟨⟩}`, so heads alone produce the tuples.

use rel_core::{name, Name, Value};
use rel_syntax::ast::CmpOp;
use std::collections::BTreeMap;
use std::fmt;

/// The reserved base-relation name backing the query parameter `?param`.
/// The `?` prefix cannot appear in a source identifier, so these names can
/// never collide with user relations; the engine injects a singleton
/// relation under this name at execute time (prepared queries, client API
/// v2).
pub fn param_relation(param: &str) -> Name {
    name(format!("?{param}"))
}

/// The bare parameter name of a reserved `?name` relation, if `rel` is
/// one (inverse of [`param_relation`]).
pub fn param_name(rel: &str) -> Option<&str> {
    rel.strip_prefix('?')
}

/// A numbered variable. Names live in [`VarTable`].
pub type Var = u32;

/// Side table mapping variable numbers to source names (for diagnostics).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct VarTable {
    names: Vec<String>,
}

impl VarTable {
    /// Allocate a fresh variable with the given display name.
    pub fn fresh(&mut self, name: impl Into<String>) -> Var {
        self.names.push(name.into());
        (self.names.len() - 1) as Var
    }

    /// Display name of `v`.
    pub fn name(&self, v: Var) -> &str {
        self.names.get(v as usize).map(String::as_str).unwrap_or("?")
    }

    /// Number of variables allocated.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when no variables were allocated.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// A term in an atom-argument or head position.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Term {
    /// First-order variable.
    Var(Var),
    /// Tuple variable (binds to a sub-tuple of any length).
    TupleVar(Var),
    /// Constant.
    Const(Value),
}

impl Term {
    /// Is this a tuple variable?
    pub fn is_tuple_var(&self) -> bool {
        matches!(self, Term::TupleVar(_))
    }
}

/// A positive atom `pred(args…)` over a named predicate.
#[derive(Clone, PartialEq, Debug)]
pub struct Atom {
    /// Predicate name (EDB, IDB instance, or builtin).
    pub pred: Name,
    /// Argument terms.
    pub args: Vec<Term>,
}

/// Boolean-valued IR (the grammar's `Formula`).
#[derive(Clone, PartialEq, Debug)]
pub enum Formula {
    /// `{()}`.
    True,
    /// `{}`.
    False,
    /// Conjunction (empty = true).
    Conj(Vec<Formula>),
    /// Disjunction (empty = false).
    Disj(Vec<Formula>),
    /// Negation.
    Not(Box<Formula>),
    /// Full application of a named predicate; free variables in `args` are
    /// *bound* by matching (relational application, §4.3).
    Atom(Atom),
    /// Full application of a computed relation.
    DynAtom {
        /// Expression producing the relation to match against.
        rel: Box<RExpr>,
        /// Argument terms (may bind).
        args: Vec<Term>,
    },
    /// Comparison; the sides are expressions evaluating to unary relations
    /// (typically singleton values). `=` can bind a free variable on one
    /// side; other operators only filter.
    Cmp {
        /// Operator.
        op: CmpOp,
        /// Left side.
        lhs: Box<RExpr>,
        /// Right side.
        rhs: Box<RExpr>,
    },
    /// `term ∈ unary-relation` (lowered `x in E` domains).
    Member {
        /// The member term.
        term: Term,
        /// The domain expression.
        of: Box<RExpr>,
    },
    /// Existential quantification. Domains were lowered to `Member`
    /// conjuncts in `body`.
    Exists {
        /// Quantified first-order variables.
        vars: Vec<Var>,
        /// Quantified tuple variables.
        tuple_vars: Vec<Var>,
        /// Scope.
        body: Box<Formula>,
        /// Variable-id range `[lo, hi)` allocated while lowering this
        /// scope: every binding in the range is *local* and is discarded
        /// (projected away) when the quantifier closes. Bindings of outer
        /// variables established inside the scope survive.
        intro: (Var, Var),
    },
    /// An arbitrary expression used in formula position: holds iff the
    /// relation contains the empty tuple.
    OfExpr(Box<RExpr>),
}

impl Formula {
    /// Build a conjunction, flattening nested `Conj`s and dropping `True`s
    /// recursively.
    pub fn conj(items: Vec<Formula>) -> Formula {
        fn flatten(items: Vec<Formula>, out: &mut Vec<Formula>) {
            for f in items {
                match f {
                    Formula::True => {}
                    Formula::Conj(inner) => flatten(inner, out),
                    other => out.push(other),
                }
            }
        }
        let mut out = Vec::with_capacity(items.len());
        flatten(items, &mut out);
        match out.len() {
            0 => Formula::True,
            1 => out.pop().expect("len checked"),
            _ => Formula::Conj(out),
        }
    }
}

/// Relation-valued IR (the grammar's `Expr`).
#[derive(Clone, PartialEq, Debug)]
pub enum RExpr {
    /// Whole named relation.
    Pred(Name),
    /// Partial application `pred[args…]`; argument terms must be bound at
    /// evaluation time; evaluates to the suffix relation.
    PApp {
        /// Predicate.
        pred: Name,
        /// Bound-prefix terms.
        args: Vec<Term>,
    },
    /// Partial application of a computed relation.
    DynPApp {
        /// Relation expression.
        rel: Box<RExpr>,
        /// Bound-prefix terms.
        args: Vec<Term>,
    },
    /// Cartesian product (empty = `{()}` i.e. true).
    Product(Vec<RExpr>),
    /// Union (empty = `{}` i.e. false).
    Union(Vec<RExpr>),
    /// Singleton tuple `{⟨t₁ … tₙ⟩}`; tuple-variable terms splice their
    /// bound sub-tuple.
    Singleton(Vec<Term>),
    /// `body where cond`.
    Where {
        /// Value part.
        body: Box<RExpr>,
        /// Condition.
        cond: Box<Formula>,
    },
    /// Abstraction `[params] : body` — for each binding of `params`
    /// (satisfying domains) emit `⟨params⟩ · t` for `t ∈ body`.
    Abstract {
        /// Bound parameters.
        params: Vec<AbsParam>,
        /// Body.
        body: Box<RExpr>,
        /// Variable-id range allocated while lowering this abstraction
        /// (params and everything below). Open evaluation groups results
        /// by bindings of variables *outside* this range — those are the
        /// outer free variables (e.g. the group-by variables of an
        /// aggregation input).
        intro: (Var, Var),
    },
    /// The `reduce` primitive (§5.2): fold the last column of `input`
    /// with the binary operation denoted by `op`.
    Reduce {
        /// Operation relation (e.g. `add`).
        op: Box<RExpr>,
        /// Relation whose last column is folded.
        input: Box<RExpr>,
        /// Variable-id range allocated while lowering `input`; bindings
        /// outside the range are group keys (grouped aggregation, §5.2).
        intro: (Var, Var),
    },
    /// Application of a builtin operation to unary-relation-valued
    /// arguments (lowered infix arithmetic): the result is the set of
    /// outputs for every combination of argument values — empty operands
    /// propagate emptiness (`sum[∅] + 1 = ∅`), matching the first-order
    /// application semantics of Fig. 3.
    BuiltinApp {
        /// Canonical builtin name (e.g. `rel_primitive_add`).
        op: Name,
        /// Input argument expressions (the builtin's last position is the
        /// produced output).
        args: Vec<RExpr>,
    },
    /// Dot-join `a . b` (join last column of `a` with first of `b`,
    /// dropping the join position).
    DotJoin(Box<RExpr>, Box<RExpr>),
    /// Left override `a <++ b`.
    LeftOverride(Box<RExpr>, Box<RExpr>),
    /// A formula in expression position: `{()}` if it holds, else `{}`.
    OfFormula(Box<Formula>),
}

/// A parameter of an abstraction or rule head.
#[derive(Clone, PartialEq, Debug)]
pub enum AbsParam {
    /// Plain first-order variable — must be grounded by the body (safety).
    Val(Var),
    /// Tuple variable.
    Tup(Var),
    /// Domain-restricted variable `x in E`.
    In(Var, Box<RExpr>),
    /// Fixed constant position (e.g. the `0` in `APSP(…,0)`).
    Fixed(Value),
}

impl AbsParam {
    /// The variable introduced, if any.
    pub fn var(&self) -> Option<Var> {
        match self {
            AbsParam::Val(v) | AbsParam::Tup(v) | AbsParam::In(v, _) => Some(*v),
            AbsParam::Fixed(_) => None,
        }
    }
}

/// A lowered rule.
#[derive(Clone, PartialEq, Debug)]
pub struct Rule {
    /// Head predicate.
    pub pred: Name,
    /// Head parameters in order.
    pub params: Vec<AbsParam>,
    /// Body; its tuples are appended to the head parameters' values.
    pub body: RExpr,
    /// Variable name table for this rule.
    pub vars: VarTable,
}

/// A lowered integrity constraint: violation witnesses are the tuples of a
/// rule-like query; the constraint holds iff that query is empty (for
/// parameterless constraints the body formula must hold).
#[derive(Clone, PartialEq, Debug)]
pub struct ConstraintIr {
    /// Constraint name.
    pub name: Name,
    /// Witness parameters (empty = boolean constraint).
    pub params: Vec<AbsParam>,
    /// For parameterised constraints: the *violation* formula (already
    /// negated as needed). For boolean constraints: the requirement itself.
    pub body: RExpr,
    /// True when `body` computes violations (non-empty ⇒ abort); false when
    /// `body` is the requirement (false ⇒ abort).
    pub is_violation_query: bool,
    /// Variable table.
    pub vars: VarTable,
}

/// How a predicate may be evaluated (assigned by safety analysis).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum EvalMode {
    /// Fully materialisable bottom-up with no external bindings.
    Materialize,
    /// Requires the first `bound_prefix` arguments bound at call sites;
    /// evaluated on demand with tabling.
    Demand {
        /// Number of leading arguments that must be bound.
        bound_prefix: usize,
    },
}

/// Per-predicate metadata.
#[derive(Clone, Debug)]
pub struct PredInfo {
    /// Evaluation mode.
    pub mode: EvalMode,
    /// Stratum index (position in [`Module::strata`]).
    pub stratum: usize,
}

/// One stratum: a set of mutually recursive predicates (an SCC of the
/// dependency graph), evaluated together.
#[derive(Clone, Debug)]
pub struct Stratum {
    /// Predicates in this stratum.
    pub preds: Vec<Name>,
    /// Whether any member depends on itself (directly or mutually).
    pub recursive: bool,
    /// Whether all intra-stratum dependencies are monotone (no negation /
    /// aggregation / emptiness through the cycle). Monotone strata use
    /// semi-naive evaluation; non-monotone ones use partial-fixpoint
    /// iteration (see DESIGN.md §2.3).
    pub monotone: bool,
}

/// The relations one stratum's rules *read* (its inputs plus its own SCC
/// members), split by the polarity of the reference. A name can appear in
/// both lists when different occurrences read it in different contexts.
///
/// Computed by [`crate::strata::stratum_read_sets`] and stored on
/// [`Module::stratum_reads`]; the engine's incremental-maintenance
/// subsystem uses the split to decide whether a changed input admits
/// delta-seeded semi-naive restart (insertions into positively-read
/// inputs) or forces a stratum recomputation (any change to a
/// negatively-read input — negation, aggregation, override).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StratumReads {
    /// Names read only through monotone contexts, sorted and deduplicated.
    pub positive: Vec<Name>,
    /// Names read under negation, aggregation input, or left-override,
    /// sorted and deduplicated.
    pub negative: Vec<Name>,
}

impl StratumReads {
    /// Every name the stratum reads: the sorted positive list followed by
    /// the sorted negative list (not globally sorted; a name read in both
    /// polarities appears twice).
    pub fn all(&self) -> impl Iterator<Item = &Name> {
        self.positive.iter().chain(self.negative.iter())
    }

    /// Does the stratum read any of the given names (either polarity)?
    pub fn reads_any(&self, names: &std::collections::BTreeSet<Name>) -> bool {
        self.all().any(|n| names.contains(n))
    }

    /// Is `name` read under a non-monotone context (negation, aggregation,
    /// override) anywhere in the stratum?
    pub fn reads_negatively(&self, name: &Name) -> bool {
        self.negative.binary_search(name).is_ok()
    }

    /// Is `name` read in a monotone context anywhere in the stratum?
    pub fn reads_positively(&self, name: &Name) -> bool {
        self.positive.binary_search(name).is_ok()
    }
}

/// A fully analysed program, ready for the engine.
#[derive(Clone, Debug, Default)]
pub struct Module {
    /// Rules grouped by head predicate.
    pub rules: BTreeMap<Name, Vec<Rule>>,
    /// Integrity constraints.
    pub constraints: Vec<ConstraintIr>,
    /// Evaluation strata in dependency order.
    pub strata: Vec<Stratum>,
    /// The condensation's dependency edges: `stratum_deps[i]` holds the
    /// (sorted, deduplicated) indices of the strata that stratum `i` reads
    /// from. Since [`Module::strata`] is in dependency order, every entry
    /// of `stratum_deps[i]` is `< i`. The engine's parallel scheduler
    /// walks this DAG: a stratum may materialize as soon as all of its
    /// dependency strata have, independent strata concurrently.
    pub stratum_deps: Vec<Vec<usize>>,
    /// Per-stratum read sets (same indexing as [`Module::strata`]): the
    /// relation names each stratum's rules reference, split by polarity.
    /// Together with [`Module::stratum_deps`] this is what
    /// [`Module::dependent_cone`] — and the engine's incremental
    /// transaction maintenance — is computed from.
    pub stratum_reads: Vec<StratumReads>,
    /// Per-predicate info.
    pub pred_info: BTreeMap<Name, PredInfo>,
    /// Bare names of the query parameters (`?name` placeholders) this
    /// module references, sorted. A module with a non-empty parameter list
    /// can only be executed with bindings for every listed name (see the
    /// engine's `Prepared::execute_with`).
    pub params: Vec<Name>,
}

impl Module {
    /// All IDB predicate names (those with rules).
    pub fn idb_preds(&self) -> impl Iterator<Item = &Name> {
        self.rules.keys()
    }

    /// Rules for one predicate (empty slice if none).
    pub fn rules_for(&self, pred: &str) -> &[Rule] {
        self.rules.get(pred).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The *dependent cone* of a set of touched base relations: the
    /// (sorted) indices of every stratum whose result can differ once the
    /// touched relations change. A stratum is in the cone when
    ///
    /// * one of its rules reads a touched name (either polarity),
    /// * one of its own predicates *is* a touched name (a base relation
    ///   feeding the predicate's EDB seed changed), or
    /// * it depends — transitively, via [`Module::stratum_deps`] — on an
    ///   in-cone stratum.
    ///
    /// Everything **outside** the cone is guaranteed to re-materialize to
    /// its previous value, so an incremental engine may reuse the
    /// pre-state result wholesale (the engine's `incremental` module does
    /// exactly that). Because [`Module::strata`] is in dependency order,
    /// one forward pass closes the cone transitively.
    ///
    /// A module without read-set metadata (hand-assembled, out of sync)
    /// conservatively returns *every* stratum.
    pub fn dependent_cone(&self, touched: &std::collections::BTreeSet<Name>) -> Vec<usize> {
        let n = self.strata.len();
        if self.stratum_reads.len() != n || self.stratum_deps.len() != n {
            return (0..n).collect();
        }
        let mut in_cone = vec![false; n];
        for i in 0..n {
            in_cone[i] = self.strata[i].preds.iter().any(|p| touched.contains(p))
                || self.stratum_reads[i].reads_any(touched)
                || self.stratum_deps[i].iter().any(|&d| in_cone[d]);
        }
        in_cone
            .iter()
            .enumerate()
            .filter_map(|(i, &in_c)| in_c.then_some(i))
            .collect()
    }
}

/// Visit every predicate name referenced by a formula (pre-order).
pub fn visit_formula_preds(f: &Formula, visit: &mut impl FnMut(&Name)) {
    match f {
        Formula::True | Formula::False => {}
        Formula::Conj(items) | Formula::Disj(items) => {
            for i in items {
                visit_formula_preds(i, visit);
            }
        }
        Formula::Not(inner) => visit_formula_preds(inner, visit),
        Formula::Atom(a) => visit(&a.pred),
        Formula::DynAtom { rel, .. } => visit_rexpr_preds(rel, visit),
        Formula::Cmp { lhs, rhs, .. } => {
            visit_rexpr_preds(lhs, visit);
            visit_rexpr_preds(rhs, visit);
        }
        Formula::Member { of, .. } => visit_rexpr_preds(of, visit),
        Formula::Exists { body, .. } => visit_formula_preds(body, visit),
        Formula::OfExpr(e) => visit_rexpr_preds(e, visit),
    }
}

/// Visit every predicate name referenced by a relation expression.
pub fn visit_rexpr_preds(e: &RExpr, visit: &mut impl FnMut(&Name)) {
    match e {
        RExpr::Pred(p) => visit(p),
        RExpr::PApp { pred, .. } => visit(pred),
        RExpr::DynPApp { rel, .. } => visit_rexpr_preds(rel, visit),
        RExpr::Product(es) | RExpr::Union(es) => {
            for x in es {
                visit_rexpr_preds(x, visit);
            }
        }
        RExpr::Singleton(_) => {}
        RExpr::Where { body, cond } => {
            visit_rexpr_preds(body, visit);
            visit_formula_preds(cond, visit);
        }
        RExpr::Abstract { params, body, .. } => {
            for p in params {
                if let AbsParam::In(_, dom) = p {
                    visit_rexpr_preds(dom, visit);
                }
            }
            visit_rexpr_preds(body, visit);
        }
        RExpr::Reduce { op, input, .. } => {
            visit_rexpr_preds(op, visit);
            visit_rexpr_preds(input, visit);
        }
        // `op` is always a `rel_primitive_*` name, not a predicate
        // reference — only the argument expressions are visited.
        RExpr::BuiltinApp { args, .. } => {
            for a in args {
                visit_rexpr_preds(a, visit);
            }
        }
        RExpr::DotJoin(a, b) | RExpr::LeftOverride(a, b) => {
            visit_rexpr_preds(a, visit);
            visit_rexpr_preds(b, visit);
        }
        RExpr::OfFormula(f) => visit_formula_preds(f, visit),
    }
}

/// Visit every predicate name a rule references (head domains + body).
pub fn visit_rule_preds(rule: &Rule, visit: &mut impl FnMut(&Name)) {
    for p in &rule.params {
        if let AbsParam::In(_, dom) = p {
            visit_rexpr_preds(dom, visit);
        }
    }
    visit_rexpr_preds(&rule.body, visit);
}

/// Visit every predicate name an integrity constraint references
/// (witness-parameter domains + body). The engine's incremental commit
/// path uses this to decide which constraints sit inside the dependent
/// cone of a transaction's touched relations and must be re-verified
/// against the post-change state.
pub fn visit_constraint_preds(c: &ConstraintIr, visit: &mut impl FnMut(&Name)) {
    for p in &c.params {
        if let AbsParam::In(_, dom) = p {
            visit_rexpr_preds(dom, visit);
        }
    }
    visit_rexpr_preds(&c.body, visit);
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "v{v}"),
            Term::TupleVar(v) => write!(f, "v{v}..."),
            Term::Const(c) => write!(f, "{c}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_table() {
        let mut t = VarTable::default();
        let x = t.fresh("x");
        let y = t.fresh("y");
        assert_eq!(t.name(x), "x");
        assert_eq!(t.name(y), "y");
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn conj_flattens() {
        let f = Formula::conj(vec![
            Formula::True,
            Formula::Conj(vec![Formula::False, Formula::True]),
        ]);
        assert_eq!(f, Formula::False);
        assert_eq!(Formula::conj(vec![]), Formula::True);
    }

    #[test]
    fn abs_param_vars() {
        assert_eq!(AbsParam::Val(3).var(), Some(3));
        assert_eq!(AbsParam::Fixed(Value::int(0)).var(), None);
    }
}
