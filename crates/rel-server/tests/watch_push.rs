//! Standing queries over the wire: subscribe, commit from another
//! connection, and assert the push-path delivery contract — gapless
//! per-watch sequence numbers, snapshot-then-delta framing, O(1)
//! out-of-cone skips, lag coalescing into resync snapshots, and clean
//! unsubscription.

use rel_core::database::figure1_database;
use rel_core::Relation;
use rel_engine::{Params, WatchDelta};
use rel_server::{Client, ErrorKind, Server, ServerConfig};
use std::time::Duration;

const DRAIN: Duration = Duration::from_secs(5);

fn boot() -> Server {
    let session = rel_stdlib::with_stdlib(figure1_database());
    Server::start(session, ServerConfig::default()).unwrap()
}

/// Apply every received batch to a client-side mirror.
fn apply(state: Relation, d: &WatchDelta) -> Relation {
    d.apply_to(&state)
}

#[test]
fn subscribe_pushes_snapshot_then_gapless_deltas() {
    let server = boot();
    let mut committer = Client::connect(server.addr()).unwrap();
    committer.transact("def insert(:Feed, x) : x = 0").unwrap();

    let mut subscriber = Client::connect(server.addr()).unwrap();
    let mut sub = subscriber
        .subscribe("def output(x) : Feed(x) and x >= ?min", &Params::new().set("min", 0))
        .unwrap();

    // The first batch is always the seq-0 snapshot of the current output.
    let first = sub.recv().unwrap();
    assert_eq!(first.seq, 0);
    assert!(first.snapshot);
    assert_eq!(first.added.len(), 1);
    assert!(first.removed.is_empty());
    let mut mirror = apply(Relation::new(), &first);

    // Each acknowledged in-cone commit pushes exactly one delta, in
    // commit order, with consecutive sequence numbers.
    for i in 1..=5i64 {
        committer.transact(&format!("def insert(:Feed, x) : x = {i}")).unwrap();
        let d = sub.recv_timeout(DRAIN).unwrap().expect("delta for in-cone commit");
        assert_eq!(d.seq, i as u64, "sequence numbers must be gapless");
        assert!(!d.snapshot);
        assert_eq!(d.added.len(), 1);
        mirror = apply(mirror, &d);
    }

    // Deletions arrive as removed rows, not a fresh snapshot.
    committer.transact("def delete(:Feed, x) : Feed(x) and x > 3").unwrap();
    let d = sub.recv_timeout(DRAIN).unwrap().expect("delta for deletion");
    assert_eq!(d.seq, 6);
    assert_eq!(d.removed.len(), 2);
    mirror = apply(mirror, &d);

    // An out-of-cone commit pushes nothing and consumes no sequence
    // number: the next in-cone commit continues the gapless run.
    committer.transact("def insert(:Noise, x) : x = 99").unwrap();
    assert!(sub.try_recv().unwrap().is_none(), "out-of-cone commit must not push");
    committer.transact("def insert(:Feed, x) : x = 100").unwrap();
    let d = sub.recv_timeout(DRAIN).unwrap().expect("delta after noise");
    assert_eq!(d.seq, 7);
    mirror = apply(mirror, &d);

    // The mirror reconstructed purely from pushed batches matches a
    // fresh query of the same program.
    let fresh = committer.query("def output(x) : Feed(x) and x >= 0").unwrap();
    assert_eq!(mirror, fresh);

    sub.unsubscribe().unwrap();
    // The connection is a plain request/reply client again.
    subscriber.ping().unwrap();
    server.shutdown().unwrap();
}

#[test]
fn lagged_subscriber_is_resynced_without_sequence_gaps() {
    // A 1-batch watch buffer plus commit bursts that group into one
    // worker pass force the lag path: buffered deltas are dropped and
    // the next in-cone commit coalesces them into a resync snapshot.
    let mut session = rel_stdlib::with_stdlib(figure1_database());
    session.set_watch_buffer(1);
    let server = Server::start(session, ServerConfig::default()).unwrap();
    let addr = server.addr();

    let mut committer = Client::connect(addr).unwrap();
    committer.transact("def insert(:Feed, x) : x = 0").unwrap();
    // A chain long enough that committing its closure keeps the worker
    // busy while the burst below piles up behind it in the queue.
    for i in 0..120i64 {
        committer.transact(&format!("def insert(:Chain, x, y) : x = {i} and y = {}", i + 1)).unwrap();
    }

    let mut subscriber = Client::connect(addr).unwrap();
    let mut sub = subscriber.subscribe("def output(x) : Feed(x)", &Params::new()).unwrap();
    let first = sub.recv().unwrap();
    assert_eq!((first.seq, first.snapshot), (0, true));
    let mut mirror = apply(Relation::new(), &first);

    let mut resyncs = 0;
    for round in 0..10 {
        // Occupy the worker with a slow commit, then race quick in-cone
        // commits in behind it so they batch into one worker pass.
        let slow = std::thread::spawn(move || {
            let mut c = Client::connect(addr).unwrap();
            c.transact(
                "def insert(:Reach, x, y) : Chain(x, y)\n\
                 def insert(:Reach, x, z) : exists((y) | Reach(x, y) and Chain(y, z))",
            )
            .unwrap();
        });
        let burst: Vec<_> = (0..4)
            .map(|i| {
                std::thread::spawn(move || {
                    let mut c = Client::connect(addr).unwrap();
                    c.transact(&format!("def insert(:Feed, x) : x = {}", 100 * (1 + i) + 1))
                        .unwrap();
                })
            })
            .collect();
        slow.join().unwrap();
        for h in burst {
            h.join().unwrap();
        }
        // One more in-cone commit after the burst drains, so a lagged
        // watch is guaranteed a resync trigger.
        committer.transact(&format!("def insert(:Feed, x) : x = {}", 1000 + round)).unwrap();

        while let Some(d) = sub.recv_timeout(Duration::from_millis(500)).unwrap() {
            if d.snapshot && d.seq > 0 {
                resyncs += 1;
            }
            mirror = apply(mirror, &d);
        }
        let fresh = committer.query("def output(x) : Feed(x)").unwrap();
        assert_eq!(mirror, fresh, "mirror must match a fresh query after round {round}");
        if resyncs > 0 {
            break;
        }
    }
    assert!(resyncs > 0, "the burst rounds never produced a resync snapshot");
    server.shutdown().unwrap();
}

#[test]
fn delivered_sequence_numbers_are_gapless_under_concurrent_commits() {
    let server = boot();
    let addr = server.addr();
    let mut committer = Client::connect(addr).unwrap();
    committer.transact("def insert(:Feed, x) : x = 0").unwrap();

    let mut subscriber = Client::connect(addr).unwrap();
    let mut sub = subscriber.subscribe("def output(x) : Feed(x)", &Params::new()).unwrap();
    assert_eq!(sub.recv().unwrap().seq, 0);

    let burst: Vec<_> = (0..4)
        .map(|i| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                for j in 0..5i64 {
                    c.transact(&format!("def insert(:Feed, x) : x = {}", 10 + 5 * i + j))
                        .unwrap();
                }
            })
        })
        .collect();
    for h in burst {
        h.join().unwrap();
    }

    // 20 distinct in-cone commits: whether or not any coalesced into a
    // resync, the delivered sequence numbers must be consecutive.
    let mut mirror = committer.query("def output(x) : x = 0").unwrap();
    let mut last_seq = 0;
    while let Some(d) = sub.recv_timeout(Duration::from_millis(500)).unwrap() {
        assert_eq!(d.seq, last_seq + 1, "gap in delivered sequence numbers");
        last_seq = d.seq;
        mirror = apply(mirror, &d);
    }
    assert_eq!(mirror, committer.query("def output(x) : Feed(x)").unwrap());
    assert_eq!(mirror.len(), 21);
    server.shutdown().unwrap();
}

#[test]
fn unsubscribe_stops_pushes_and_unknown_watch_is_typed() {
    let server = boot();
    let addr = server.addr();
    let mut committer = Client::connect(addr).unwrap();
    committer.transact("def insert(:Feed, x) : x = 0").unwrap();

    let mut subscriber = Client::connect(addr).unwrap();
    let mut sub = subscriber.subscribe("def output(x) : Feed(x)", &Params::new()).unwrap();
    let first_id = sub.id();
    assert_eq!(sub.recv().unwrap().seq, 0);
    sub.unsubscribe().unwrap();

    committer.transact("def insert(:Feed, x) : x = 1").unwrap();
    // Re-subscribing gets a fresh watch id and a fresh seq-0 snapshot;
    // nothing from the unsubscribed watch leaks through.
    let mut sub = subscriber.subscribe("def output(x) : Feed(x)", &Params::new()).unwrap();
    assert_ne!(sub.id(), first_id);
    let first = sub.recv().unwrap();
    assert_eq!((first.seq, first.snapshot, first.added.len()), (0, true, 2));
    assert!(sub.try_recv().unwrap().is_none());

    // Unsubscribing a dead or foreign watch id answers a typed
    // UnknownWatch error — driven over raw frames since the typed client
    // cannot hold a stale subscription by construction.
    {
        use rel_server::protocol::{read_frame_blocking, write_frame, Request, Response};
        let mut raw = std::net::TcpStream::connect(addr).unwrap();
        let hello = Request::Hello { version: rel_server::PROTOCOL_VERSION };
        write_frame(&mut raw, &hello.encode()).unwrap();
        let payload = read_frame_blocking(&mut raw).unwrap().unwrap();
        assert!(matches!(Response::decode(&payload).unwrap(), Response::Hello { .. }));
        write_frame(&mut raw, &Request::Unsubscribe { watch: first_id }.encode()).unwrap();
        let payload = read_frame_blocking(&mut raw).unwrap().unwrap();
        match Response::decode(&payload).unwrap() {
            Response::Error(e) => assert_eq!(e.kind, ErrorKind::UnknownWatch),
            other => panic!("expected UnknownWatch error, got {other:?}"),
        }
    }

    committer.transact("def insert(:Feed, x) : x = 2").unwrap();
    // The live subscription still sees the commit.
    let d = sub.recv_timeout(DRAIN).unwrap().expect("live watch keeps receiving");
    assert_eq!((d.seq, d.added.len()), (1, 1));
    server.shutdown().unwrap();
}

#[test]
fn dropped_subscriber_connection_is_reaped() {
    let server = boot();
    let addr = server.addr();
    let mut committer = Client::connect(addr).unwrap();
    committer.transact("def insert(:Feed, x) : x = 0").unwrap();

    {
        let mut subscriber = Client::connect(addr).unwrap();
        let mut sub = subscriber.subscribe("def output(x) : Feed(x)", &Params::new()).unwrap();
        assert_eq!(sub.recv().unwrap().seq, 0);
        // Drop the connection without unsubscribing.
    }
    // The server reaps the dead subscription (via the connection-exit
    // cleanup job or the failed delta write); commits keep working and
    // a fresh subscriber starts cleanly at seq 0.
    for i in 1..=3i64 {
        committer.transact(&format!("def insert(:Feed, x) : x = {i}")).unwrap();
    }
    let mut subscriber = Client::connect(addr).unwrap();
    let mut sub = subscriber.subscribe("def output(x) : Feed(x)", &Params::new()).unwrap();
    let first = sub.recv().unwrap();
    assert_eq!((first.seq, first.snapshot, first.added.len()), (0, true, 4));
    server.shutdown().unwrap();
}
