//! Server/in-process equivalence: the acceptance bar for the serving
//! layer.
//!
//! * 32 concurrent clients hammer one server with a mixed read workload
//!   (ad-hoc queries, prepared statements with parameters, batched
//!   `execute_many`); every result must be **byte-identical** to the
//!   same call on an in-process [`Session`] over the same database.
//! * A randomized single-client read/write stream is mirrored op-by-op
//!   on an in-process session; outputs and the final database image
//!   must match exactly.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rel_core::database::figure1_database;
use rel_core::{Relation, Tuple};
use rel_engine::Params;
use rel_server::{Client, Server, ServerConfig};
use std::sync::Arc;

const QUERIES: &[&str] = &[
    "def output(y) : exists((x) | PaymentOrder(x, y))",
    "def output(x, p) : ProductPrice(x, p) and p > 15",
    "def output[v] : v = count[ProductPrice]",
    "def output(p) : exists((a) | PaymentAmount(p, a) and a >= 20)",
];

const PREPARED: &str = "def output(x, p) : ProductPrice(x, p) and p > ?min";

/// Byte-identical: equal as relations *and* as rendered bytes.
fn assert_same(tag: &str, got: &Relation, want: &Relation) {
    assert_eq!(got, want, "{tag}: relations differ");
    assert_eq!(format!("{got}"), format!("{want}"), "{tag}: rendered bytes differ");
}

#[test]
fn thirty_two_concurrent_clients_match_in_process_execution() {
    let session = rel_stdlib::with_stdlib(figure1_database());
    // The in-process oracle serves the same snapshot (CoW clone).
    let oracle = session.clone();
    let server = Server::start(session, ServerConfig::default()).unwrap();
    let addr = server.addr();

    // Precompute every expected answer in-process.
    let expected: Arc<Vec<Relation>> =
        Arc::new(QUERIES.iter().map(|q| oracle.query(q).unwrap()).collect());
    let prep = oracle.prepare(PREPARED).unwrap();
    let mins: Vec<i64> = (0..8).map(|i| 5 * i).collect();
    let expected_prep: Arc<Vec<Relation>> = Arc::new(
        mins.iter()
            .map(|&m| prep.execute_with(&oracle, &Params::new().set("min", m)).unwrap())
            .collect(),
    );

    const CLIENTS: usize = 32;
    let handles: Vec<_> = (0..CLIENTS)
        .map(|i| {
            let expected = expected.clone();
            let expected_prep = expected_prep.clone();
            let mins = mins.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                // Interleave differently per client.
                for round in 0..3 {
                    for (qi, q) in QUERIES.iter().enumerate() {
                        let idx = (qi + i + round) % QUERIES.len();
                        let got = c.query(QUERIES[idx]).unwrap();
                        assert_same(
                            &format!("client {i} query {idx}"),
                            &got,
                            &expected[idx],
                        );
                        let _ = q;
                    }
                    let stmt = c.prepare(PREPARED).unwrap();
                    assert_eq!(stmt.param_names(), ["min".to_string()]);
                    for (mi, &m) in mins.iter().enumerate() {
                        let got = c.execute(&stmt, &Params::new().set("min", m)).unwrap();
                        assert_same(
                            &format!("client {i} prepared min={m}"),
                            &got,
                            &expected_prep[mi],
                        );
                    }
                    // Batched execution on one snapshot.
                    let batches: Vec<Params> =
                        mins.iter().map(|&m| Params::new().set("min", m)).collect();
                    let many = c.execute_many(&stmt, &batches).unwrap();
                    assert_eq!(many.len(), mins.len());
                    for (mi, got) in many.iter().enumerate() {
                        assert_same(
                            &format!("client {i} batch {mi}"),
                            got,
                            &expected_prep[mi],
                        );
                    }
                    c.close_stmt(&stmt).unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread panicked");
    }
    server.shutdown().unwrap();
}

// ---------------------------------------------------------------------------
// Randomized mixed stream, mirrored in-process
// ---------------------------------------------------------------------------

fn canon(db: &rel_core::Database) -> Vec<(String, Vec<Tuple>)> {
    db.iter()
        .filter(|(_, r)| !r.is_empty())
        .map(|(n, r)| (n.to_string(), r.iter().cloned().collect()))
        .collect()
}

#[test]
fn randomized_mixed_stream_matches_in_process_session() {
    for seed in [3u64, 17, 101] {
        let server =
            Server::start(rel_stdlib::with_stdlib(figure1_database()), ServerConfig::default())
                .unwrap();
        let mut mirror = rel_stdlib::with_stdlib(figure1_database());
        let mut c = Client::connect(server.addr()).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);

        for step in 0..60 {
            match rng.gen_range(0..5) {
                // Ad-hoc read.
                0 => {
                    let q = QUERIES[rng.gen_range(0..QUERIES.len())];
                    assert_same(
                        &format!("seed {seed} step {step} query"),
                        &c.query(q).unwrap(),
                        &mirror.query(q).unwrap(),
                    );
                }
                // Prepared read.
                1 => {
                    let m = rng.gen_range(0i64..45);
                    let stmt = c.prepare(PREPARED).unwrap();
                    let got = c.execute(&stmt, &Params::new().set("min", m)).unwrap();
                    let p = mirror.prepare(PREPARED).unwrap();
                    let want =
                        p.execute_with(&mirror, &Params::new().set("min", m)).unwrap();
                    assert_same(&format!("seed {seed} step {step} prepared"), &got, &want);
                }
                // One-shot write.
                2 => {
                    let (a, b) = (rng.gen_range(0i64..9), rng.gen_range(0i64..9));
                    let src = format!("def insert(:Log, x, y) : x = {a} and y = {b}");
                    let got = c.transact(&src).unwrap();
                    let want = mirror.transact(&src).unwrap();
                    assert_eq!(got.inserted as usize, want.inserted);
                    assert_eq!(got.deleted as usize, want.deleted);
                    assert_same(
                        &format!("seed {seed} step {step} transact"),
                        &got.output,
                        &want.output,
                    );
                }
                // Interactive transaction: run + stage, then commit.
                3 => {
                    let (a, b) = (rng.gen_range(0i64..9), rng.gen_range(0i64..9));
                    let t = c.begin().unwrap();
                    let src = format!("def insert(:Evt, x) : x = {a}");
                    let got_rows = c.txn_run(t, &src).unwrap();
                    let changed = c
                        .txn_stage_insert(t, "Raw", vec![rel_core::tuple![a, b]])
                        .unwrap();
                    let got = c.txn_commit(t).unwrap();

                    let mut txn = mirror.begin();
                    let want_rows = txn.run(&src).unwrap();
                    let want_changed =
                        u64::from(txn.stage_insert("Raw", rel_core::tuple![a, b]));
                    let want = txn.commit().unwrap();
                    assert_same(
                        &format!("seed {seed} step {step} txn rows"),
                        &got_rows,
                        &want_rows,
                    );
                    assert_eq!(changed, want_changed);
                    assert_eq!(got.inserted as usize, want.inserted);
                }
                // Interactive transaction, aborted: no effect on either side.
                _ => {
                    let a = rng.gen_range(0i64..9);
                    let t = c.begin().unwrap();
                    c.txn_run(t, &format!("def insert(:Never, x) : x = {a}")).unwrap();
                    c.txn_abort(t).unwrap();
                }
            }
        }

        // The authoritative session must end byte-identical to the mirror.
        let session = server.shutdown().unwrap();
        assert_eq!(
            canon(session.db()),
            canon(mirror.db()),
            "seed {seed}: final database images differ"
        );
    }
}
