//! The CI server-smoke leg: boot a server over a temporary durable
//! store, drive a few hundred mixed requests through the `rel-client`
//! library — reads, prepared statements, batches, interactive
//! transactions, and one concurrent-commit burst — then shut down
//! cleanly and prove the committed state survives a reopen.

use rel_core::database::figure1_database;
use rel_engine::durability::{DurabilityConfig, FsyncPolicy};
use rel_engine::{Params, Session};
use rel_server::{Client, Server, ServerConfig};
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rel-smoke-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn smoke_mixed_load_then_clean_shutdown_and_recovery() {
    let dir = temp_dir("mixed");
    let cfg = DurabilityConfig { fsync: FsyncPolicy::Batch, ..DurabilityConfig::default() };
    let session = Session::open_with(&dir, cfg).unwrap();
    assert!(session.is_durable());
    // Seed the store with the paper's example data, as a deployment
    // would before serving.
    let mut session = session.with_library(&rel_stdlib::full_library());
    for (rel, r) in figure1_database().iter() {
        for t in r.iter() {
            session.db_mut().insert(rel.as_ref(), t.clone());
        }
    }
    let server = Server::start(session, ServerConfig::default()).unwrap();
    let addr = server.addr();

    let mut c = Client::connect(addr).unwrap();
    c.ping().unwrap();

    // ~200 read requests: ad-hoc + prepared + batched.
    let stmt = c.prepare("def output(x, p) : ProductPrice(x, p) and p > ?min").unwrap();
    for i in 0..50 {
        let rows = c.query("def output(y) : exists((x) | PaymentOrder(x, y))").unwrap();
        assert_eq!(rows.len(), 3);
        let rows = c.execute(&stmt, &Params::new().set("min", i % 45)).unwrap();
        assert!(rows.len() <= 4);
        let batches: Vec<Params> =
            (0..4).map(|m| Params::new().set("min", 10 * m)).collect();
        assert_eq!(c.execute_many(&stmt, &batches).unwrap().len(), 4);
    }

    // ~40 write requests: one-shot transacts + an interactive txn.
    for i in 0..20 {
        let out = c.transact(&format!("def insert(:Seen, x) : x = {i}")).unwrap();
        assert_eq!(out.inserted, 1);
    }
    let t = c.begin().unwrap();
    c.txn_run(t, "def insert(:Seen, x) : x = 100").unwrap();
    c.txn_stage_insert(t, "Raw", vec![rel_core::tuple![1, 2]]).unwrap();
    c.txn_commit(t).unwrap();
    // Read-your-writes through the pool.
    assert_eq!(c.query("def output[v] : v = count[Seen]").unwrap().len(), 1);

    // One concurrent-commit burst through the group-commit queue.
    const BURST_CLIENTS: i64 = 8;
    const BURST_COMMITS: i64 = 5;
    let handles: Vec<_> = (0..BURST_CLIENTS)
        .map(|i| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                for seq in 0..BURST_COMMITS {
                    let src =
                        format!("def insert(:Burst, x, y) : x = {i} and y = {seq}");
                    assert_eq!(c.transact(&src).unwrap().inserted, 1);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("burst client panicked");
    }

    // Clean shutdown: the queue drains, the store syncs.
    let session = server.shutdown().unwrap();
    let expect_burst = (BURST_CLIENTS * BURST_COMMITS) as usize;
    assert_eq!(session.db().get("Seen").unwrap().len(), 21);
    assert_eq!(session.db().get("Burst").unwrap().len(), expect_burst);
    drop(session);

    // Recovery: everything acknowledged is still there.
    let reopened = Session::open_with(&dir, cfg).unwrap();
    assert_eq!(reopened.db().get("Seen").unwrap().len(), 21);
    assert_eq!(reopened.db().get("Burst").unwrap().len(), expect_burst);
    assert_eq!(reopened.db().get("Raw").unwrap().len(), 1);
    let _ = std::fs::remove_dir_all(&dir);
}
