//! Protocol robustness: hostile and broken clients must get typed
//! errors or a clean drop — never poison the server or other clients.
//!
//! Covers the satellite checklist: torn frames, oversized frames,
//! garbage payloads, mid-request disconnects, unknown statement and
//! transaction ids, version mismatches, and admission-control refusals.
//! After every abuse, a healthy client on the same server must still
//! get correct answers.

use rel_core::database::figure1_database;
use rel_server::protocol::{read_frame_blocking, write_frame, Request, Response};
use rel_server::{Client, ClientError, ErrorKind, Server, ServerConfig, MAX_FRAME};
use std::io::Write;
use std::net::TcpStream;

fn start_server() -> Server {
    Server::start(rel_stdlib::with_stdlib(figure1_database()), ServerConfig::default()).unwrap()
}

const QUERY: &str = "def output(y) : exists((x) | PaymentOrder(x, y))";

/// A healthy client must still work; returns the row count it saw.
fn assert_healthy(server: &Server) {
    let mut c = Client::connect(server.addr()).unwrap();
    assert_eq!(c.query(QUERY).unwrap().len(), 3);
}

/// Raw connection that has completed the handshake, for byte-level abuse.
fn raw_conn(server: &Server) -> TcpStream {
    let mut s = TcpStream::connect(server.addr()).unwrap();
    write_frame(&mut s, &Request::Hello { version: rel_server::PROTOCOL_VERSION }.encode())
        .unwrap();
    let reply = read_frame_blocking(&mut s).unwrap().expect("hello reply");
    assert!(matches!(Response::decode(&reply).unwrap(), Response::Hello { .. }));
    s
}

fn expect_error_then_close(mut s: TcpStream, kind: ErrorKind) {
    let reply = read_frame_blocking(&mut s)
        .expect("server must answer with a well-formed frame")
        .expect("server must answer before closing");
    match Response::decode(&reply).unwrap() {
        Response::Error(e) => assert_eq!(e.kind, kind, "{e}"),
        other => panic!("expected {kind:?} error, got {other:?}"),
    }
    // The connection is dropped afterwards: the next read sees EOF.
    assert!(read_frame_blocking(&mut s).unwrap().is_none(), "connection must be closed");
}

#[test]
fn bad_crc_frame_gets_protocol_error_and_drop() {
    let server = start_server();
    let mut s = raw_conn(&server);
    let payload = Request::Ping.encode();
    let mut frame = Vec::new();
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&0xDEAD_BEEFu32.to_le_bytes()); // wrong CRC
    frame.extend_from_slice(&payload);
    s.write_all(&frame).unwrap();
    expect_error_then_close(s, ErrorKind::Protocol);
    assert_healthy(&server);
}

#[test]
fn oversized_length_prefix_is_rejected_before_allocation() {
    let server = start_server();
    let mut s = raw_conn(&server);
    // Announce a frame far past MAX_FRAME; send no body. The server
    // must refuse from the header alone (no buffer allocation, no
    // waiting for 4 GiB that will never come).
    let mut frame = Vec::new();
    frame.extend_from_slice(&(MAX_FRAME.wrapping_add(1)).to_le_bytes());
    frame.extend_from_slice(&0u32.to_le_bytes());
    s.write_all(&frame).unwrap();
    expect_error_then_close(s, ErrorKind::Protocol);
    assert_healthy(&server);
}

#[test]
fn zero_length_frame_is_a_protocol_error() {
    let server = start_server();
    let mut s = raw_conn(&server);
    s.write_all(&0u32.to_le_bytes()).unwrap();
    s.write_all(&0u32.to_le_bytes()).unwrap();
    expect_error_then_close(s, ErrorKind::Protocol);
    assert_healthy(&server);
}

#[test]
fn garbage_payload_gets_protocol_error() {
    let server = start_server();
    let mut s = raw_conn(&server);
    // Valid framing, nonsense payload (unknown opcode 0x7F).
    write_frame(&mut s, &[0x7F, 1, 2, 3]).unwrap();
    expect_error_then_close(s, ErrorKind::Protocol);
    assert_healthy(&server);
}

#[test]
fn torn_frame_then_disconnect_is_a_clean_close() {
    let server = start_server();
    for _ in 0..3 {
        let mut s = raw_conn(&server);
        // Half a header...
        s.write_all(&[7u8, 0]).unwrap();
        // ...then vanish mid-request.
        drop(s);
    }
    // And a torn body: full header, partial payload, then disconnect.
    let mut s = raw_conn(&server);
    let payload = Request::Query { src: QUERY.to_string() }.encode();
    let mut frame = Vec::new();
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(&payload).to_le_bytes());
    frame.extend_from_slice(&payload[..payload.len() / 2]);
    s.write_all(&frame).unwrap();
    drop(s);
    // The server shrugs all of it off.
    assert_healthy(&server);
    let session = server.shutdown().unwrap();
    assert!(!session.is_durable());
}

/// Same polynomial as `rel_core::codec` — recomputed here so the test
/// does not depend on internals beyond the wire contract.
fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            crc = (crc >> 1) ^ (0xEDB8_8320 & (0u32.wrapping_sub(crc & 1)));
        }
    }
    !crc
}

#[test]
fn version_mismatch_is_refused() {
    let server = start_server();
    let mut s = TcpStream::connect(server.addr()).unwrap();
    write_frame(&mut s, &Request::Hello { version: 999 }.encode()).unwrap();
    expect_error_then_close(s, ErrorKind::Protocol);
    assert_healthy(&server);
}

#[test]
fn unknown_ids_are_typed_errors_and_do_not_poison_the_connection() {
    let server = start_server();
    let mut c = Client::connect(server.addr()).unwrap();

    // Unknown statement id.
    let ghost = {
        let stmt = c.prepare(QUERY).unwrap();
        c.close_stmt(&stmt).unwrap();
        stmt
    };
    let err = c.execute(&ghost, &rel_engine::Params::new()).unwrap_err();
    assert_eq!(err.kind(), Some(ErrorKind::UnknownStmt), "{err}");

    // Unknown transaction id.
    let t = c.begin().unwrap();
    c.txn_abort(t).unwrap();
    let err = c.txn_run(t, QUERY).unwrap_err();
    assert_eq!(err.kind(), Some(ErrorKind::UnknownTxn), "{err}");
    let err = c.txn_commit(t).unwrap_err();
    assert_eq!(err.kind(), Some(ErrorKind::UnknownTxn), "{err}");

    // Same connection still answers correctly afterwards.
    assert_eq!(c.query(QUERY).unwrap().len(), 3);
    assert_healthy(&server);
}

#[test]
fn query_errors_are_typed_and_recoverable() {
    let server = start_server();
    let mut c = Client::connect(server.addr()).unwrap();
    let err = c.query("def output( : nonsense !!").unwrap_err();
    assert_eq!(err.kind(), Some(ErrorKind::Query), "{err}");
    let err = c.transact("def insert(:R, x) : x = ").unwrap_err();
    assert_eq!(err.kind(), Some(ErrorKind::Query), "{err}");
    // A failed txn step is dropped from the log; the txn stays usable.
    let t = c.begin().unwrap();
    let err = c.txn_run(t, "def broken(").unwrap_err();
    assert_eq!(err.kind(), Some(ErrorKind::Query), "{err}");
    c.txn_run(t, "def insert(:Ok, x) : x = 1").unwrap();
    let out = c.txn_commit(t).unwrap();
    assert_eq!(out.inserted, 1);
    assert_eq!(c.query(QUERY).unwrap().len(), 3);
}

#[test]
fn connection_limit_answers_busy() {
    let cfg = ServerConfig { max_conns: 1, ..ServerConfig::default() };
    let server =
        Server::start(rel_stdlib::with_stdlib(figure1_database()), cfg).unwrap();
    let mut first = Client::connect(server.addr()).unwrap();
    first.ping().unwrap();
    // Second connection is refused at the handshake with a typed Busy.
    let err = Client::connect(server.addr()).unwrap_err();
    assert!(err.is_busy(), "{err}");
    match err {
        ClientError::Server(e) => assert_eq!(e.kind, ErrorKind::Busy),
        other => panic!("expected server Busy, got {other}"),
    }
    // The admitted client is unaffected.
    assert_eq!(first.query(QUERY).unwrap().len(), 3);
    drop(first);
    // Once the slot frees, new clients are admitted again.
    for _ in 0..50 {
        match Client::connect(server.addr()) {
            Ok(mut c) => {
                c.ping().unwrap();
                return;
            }
            Err(e) if e.is_busy() => {
                std::thread::sleep(std::time::Duration::from_millis(20))
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    panic!("slot never freed after client disconnect");
}

#[test]
fn graceful_shutdown_with_open_connections() {
    let server = start_server();
    let mut c = Client::connect(server.addr()).unwrap();
    c.transact("def insert(:Shut, x) : x = 1").unwrap();
    // Shut down while the client connection is still open.
    let session = server.shutdown().unwrap();
    assert_eq!(session.db().get("Shut").unwrap().len(), 1);
    // The client now sees a shutdown notice or a closed connection —
    // never a hang or a garbage frame.
    match c.ping() {
        Err(ClientError::Server(e)) => assert_eq!(e.kind, ErrorKind::ShuttingDown),
        Err(ClientError::Io(_)) => {}
        other => panic!("expected shutdown or close, got {other:?}"),
    }
}
