//! Group commit under real concurrency: the serving-layer acceptance
//! test for coalesced fsyncs.
//!
//! A burst of concurrent client commits against a durable server with
//! `REL_FSYNC=always` semantics must cost **strictly fewer fsyncs than
//! commits** (the whole point of the group-commit queue), while every
//! acknowledged commit survives a reopen — and, with the failpoint
//! harness killing the durable layer mid-burst, recovery yields a
//! subset of attempted commits containing every acknowledged one.
//!
//! The fsync counter and failpoint budget are process-global, so this
//! suite lives in its own binary and serializes on [`GLOBAL_LOCK`].

use rel_engine::durability::{self, failpoint, DurabilityConfig, FsyncPolicy};
use rel_engine::Session;
use rel_server::{Client, Server, ServerConfig};
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::{Barrier, Mutex};

static GLOBAL_LOCK: Mutex<()> = Mutex::new(());

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rel-burst-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn always_no_compact() -> DurabilityConfig {
    DurabilityConfig {
        fsync: FsyncPolicy::Always,
        fsync_batch: 32,
        compact_after_commits: u64::MAX,
        compact_after_bytes: u64::MAX,
    }
}

/// All `(client, seq)` keys present in the `Burst` relation.
fn burst_keys(s: &Session) -> BTreeSet<(i64, i64)> {
    s.db()
        .get("Burst")
        .map(|r| {
            r.iter()
                .map(|t| {
                    let mut vals = t.iter();
                    let a = vals.next().and_then(|v| v.as_int()).expect("int key");
                    let b = vals.next().and_then(|v| v.as_int()).expect("int key");
                    (a, b)
                })
                .collect()
        })
        .unwrap_or_default()
}

#[test]
fn concurrent_burst_uses_strictly_fewer_fsyncs_than_commits() {
    let _guard = GLOBAL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let dir = temp_dir("coalesce");
    let session = Session::open_with(&dir, always_no_compact()).unwrap();
    assert!(session.is_durable());
    let server = Server::start(session, ServerConfig::default()).unwrap();
    let addr = server.addr();

    const CLIENTS: usize = 32;
    const ROUNDS: usize = 4;
    let commits = (CLIENTS * ROUNDS) as u64;
    let before = durability::fsync_count();

    // A barrier per round lines the whole fleet up, so every round hits
    // the commit queue as one concurrent burst.
    let barrier = std::sync::Arc::new(Barrier::new(CLIENTS));
    let handles: Vec<_> = (0..CLIENTS)
        .map(|i| {
            let barrier = barrier.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                for round in 0..ROUNDS {
                    barrier.wait();
                    let src = format!(
                        "def insert(:Burst, x, y) : x = {i} and y = {round}"
                    );
                    let out = c.transact(&src).unwrap();
                    assert_eq!(out.inserted, 1, "client {i} round {round}");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread panicked");
    }
    let synced = durability::fsync_count() - before;
    assert!(synced >= 1, "fsync=always must sync at least once");
    assert!(
        synced < commits,
        "group commit must coalesce under a concurrent burst: \
         {synced} fsyncs for {commits} commits"
    );

    // Every acknowledged commit is durable across shutdown + reopen.
    let session = server.shutdown().unwrap();
    assert_eq!(burst_keys(&session).len(), commits as usize);
    drop(session);
    let reopened = Session::open_with(&dir, always_no_compact()).unwrap();
    assert_eq!(
        burst_keys(&reopened).len(),
        commits as usize,
        "all acked commits must survive recovery"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

type KeySet = BTreeSet<(i64, i64)>;

/// One crash-injected burst: kill the durable layer after `budget`
/// bytes while 8 clients commit unique keys concurrently. Returns
/// `(acked, attempted)` key sets.
fn crashed_burst(dir: &PathBuf, budget: u64) -> (KeySet, KeySet) {
    let session = Session::open_with(dir, always_no_compact()).unwrap();
    let server = Server::start(session, ServerConfig::default()).unwrap();
    let addr = server.addr();
    failpoint::arm(budget);

    const CLIENTS: i64 = 8;
    const PER_CLIENT: i64 = 6;
    let handles: Vec<_> = (0..CLIENTS)
        .map(|i| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                let mut acked = Vec::new();
                let mut attempted = Vec::new();
                for seq in 0..PER_CLIENT {
                    attempted.push((i, seq));
                    let src =
                        format!("def insert(:Burst, x, y) : x = {i} and y = {seq}");
                    if c.transact(&src).is_ok() {
                        acked.push((i, seq));
                    }
                }
                (acked, attempted)
            })
        })
        .collect();
    let mut acked = BTreeSet::new();
    let mut attempted = BTreeSet::new();
    for h in handles {
        let (a, t) = h.join().expect("client thread panicked");
        acked.extend(a);
        attempted.extend(t);
    }
    failpoint::disarm();
    // Graceful shutdown still works on a crashed store (the final sync
    // failure is not a panic).
    let _ = server.shutdown();
    (acked, attempted)
}

#[test]
fn crash_injected_burst_recovers_every_acked_commit() {
    let _guard = GLOBAL_LOCK.lock().unwrap_or_else(|e| e.into_inner());

    // Sanity: with an unlimited budget nothing crashes and every
    // commit is acked.
    let volume = {
        const HUGE: u64 = 1 << 40;
        let dir = temp_dir("volume");
        let (acked, attempted) = crashed_burst(&dir, HUGE);
        assert_eq!(acked, attempted, "unlimited budget must ack everything");
        let _ = std::fs::remove_dir_all(&dir);
        // A full burst writes well under 1 MiB; kill points are
        // fractions of that ceiling so they land mid-burst.
        1u64 << 20
    };

    for (i, frac) in [8u64, 3, 2].into_iter().enumerate() {
        let dir = temp_dir(&format!("kill-{i}"));
        let (acked, attempted) = crashed_burst(&dir, volume / frac);

        // Recovery: every acked commit present, nothing invented.
        let recovered = Session::open_with(&dir, always_no_compact())
            .expect("recovery after crash must succeed");
        let got = burst_keys(&recovered);
        assert!(
            acked.is_subset(&got),
            "acked commits lost in recovery: missing {:?}",
            acked.difference(&got).collect::<Vec<_>>()
        );
        assert!(
            got.is_subset(&attempted),
            "recovery invented commits: {:?}",
            got.difference(&attempted).collect::<Vec<_>>()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
