//! Invariants of the observability layer, end to end:
//!
//! 1. registry counters are monotone across a randomized transaction
//!    stream (commits, aborts, reads, toggles);
//! 2. per-query profiles attribute at most the whole query wall to
//!    strata;
//! 3. results are byte-identical with metrics off, on, and toggled
//!    mid-stream;
//! 4. the `Stats` wire reply carries the engine registry faithfully —
//!    every counter read over the wire is bracketed by in-process
//!    snapshots taken around the request.
//!
//! The registry is process-global and these tests share one binary, so
//! every assertion is a one-sided bound (monotone / bracketed), never
//! an exact count.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rel_core::{tuple, Database, Relation, Tuple};
use rel_engine::metrics;
use rel_engine::Session;
use rel_server::{Client, Server, ServerConfig};

fn seeded_db(n: i64) -> Database {
    let mut db = Database::new();
    db.set(
        "E",
        Relation::from_tuples((0..n).map(|i| tuple![i, (i + 1) % n]).collect::<Vec<Tuple>>()),
    );
    db
}

const TC: &str = "def TC(x, y) : E(x, y)\n\
                  def TC(x, y) : exists((z) | TC(x, z) and E(z, y))\n\
                  def output(x, y) : TC(x, y)";

/// Every named counter in `later` is >= its value in `earlier`.
fn assert_monotone(earlier: &metrics::MetricsSnapshot, later: &metrics::MetricsSnapshot) {
    for (name, before) in &earlier.counters {
        let after = later.get(name);
        assert!(
            after >= *before,
            "counter {name} went backwards: {before} -> {after}"
        );
    }
}

#[test]
fn counters_are_monotone_across_randomized_txn_stream() {
    let mut s = Session::new(seeded_db(16));
    s.set_metrics(true);
    let mut rng = StdRng::seed_from_u64(0x0b5e_7ab1);
    let mut last = metrics::registry().snapshot();
    let mut commits = 0u64;
    let mut aborts = 0u64;
    for step in 0..60 {
        match rng.gen_range(0..4) {
            0 => {
                let mut txn = s.begin();
                txn.stage_insert("E", tuple![100 + step, 200 + step]);
                txn.commit().unwrap();
                commits += 1;
            }
            1 => {
                let mut txn = s.begin();
                txn.stage_insert("E", tuple![300 + step, 400 + step]);
                txn.abort();
                aborts += 1;
            }
            2 => {
                s.query("def output(x) : exists((y) | E(x, y))").unwrap();
            }
            _ => {
                s.query_profiled(TC).unwrap();
            }
        }
        let now = metrics::registry().snapshot();
        assert_monotone(&last, &now);
        last = now;
    }
    // The stream's own commits/aborts are a floor on the global deltas.
    assert!(last.get("commits") >= commits);
    assert!(last.get("aborts") >= aborts);
}

#[test]
fn profile_strata_wall_never_exceeds_query_wall() {
    let s = Session::new(seeded_db(24));
    for _ in 0..5 {
        let (_, profile) = s.query_profiled(TC).unwrap();
        assert!(
            profile.strata_wall() <= profile.wall,
            "strata {:?} > wall {:?}\n{}",
            profile.strata_wall(),
            profile.wall,
            profile.render()
        );
    }
}

#[test]
fn results_are_identical_with_metrics_off_on_and_toggled() {
    let queries = [
        "def output(x, y) : TC(x, y)",
        "def output(x) : exists((y) | E(x, y) and E(y, x))",
        "def output(x, z) : exists((y) | E(x, y) and E(y, z))",
    ];
    let program = |q: &str| format!("def TC(x, y) : E(x, y)\ndef TC(x, y) : exists((z) | TC(x, z) and E(z, y))\n{q}");
    let run = |configure: &dyn Fn(&mut Session, usize)| -> Vec<Relation> {
        let mut s = Session::new(seeded_db(12));
        let mut out = Vec::new();
        for (i, q) in queries.iter().enumerate() {
            configure(&mut s, i);
            out.push(s.query(&program(q)).unwrap());
        }
        out
    };
    let off = run(&|s, _| s.set_metrics(false));
    let on = run(&|s, _| s.set_metrics(true));
    // Toggle between every query: flipping the switch mid-stream must
    // not perturb evaluation.
    let toggled = run(&|s, i| s.set_metrics(i % 2 == 0));
    rel_engine::metrics::set_metrics(false);
    assert_eq!(off, on, "metrics on changed query results");
    assert_eq!(off, toggled, "toggling metrics mid-stream changed query results");
}

#[test]
fn stats_over_wire_matches_in_process_registry() {
    let mut session = Session::new(seeded_db(10));
    session.set_metrics(true);
    let server = Server::start(session, ServerConfig::default()).unwrap();
    let mut c = Client::connect(server.addr()).unwrap();
    // Generate traffic so the surfaced counters and histograms move.
    for i in 0..5 {
        c.query("def output(x) : exists((y) | E(x, y))").unwrap();
        c.transact(&format!("def insert(:E, x, y) : x = {} and y = {}", 50 + i, 60 + i))
            .unwrap();
    }
    let before = metrics::registry().snapshot();
    let stats = c.stats().unwrap();
    let after = metrics::registry().snapshot();
    assert!(stats.metrics_enabled);
    assert!(stats.connections >= 1, "our own connection is open");
    assert!(
        stats.pool_generation >= 5,
        "each commit publishes a pool generation: {}",
        stats.pool_generation
    );
    // Engine registry counters travel verbatim: every wire value is
    // bracketed by the snapshots taken around the request (the registry
    // is monotone, so before <= wire <= after).
    for (name, lo) in &before.counters {
        let wire = stats
            .counter(name)
            .unwrap_or_else(|| panic!("engine counter {name} missing from Stats"));
        let hi = after.get(name);
        assert!(
            (*lo..=hi).contains(&wire),
            "counter {name}: wire value {wire} outside in-process bracket {lo}..={hi}"
        );
    }
    assert!(stats.counter("commits").unwrap() >= 5, "our transacts were counted");
    assert!(stats.counter("server.busy_rejections").is_some());
    // The serving layer's own instruments move with traffic.
    let group = stats.histogram("server.commit.group_size").expect("group-size histogram");
    assert!(group.count >= 5, "five commits passed the worker: {group:?}");
    assert!(group.max_us >= 1, "group sizes are at least one commit");
    let req = stats.histogram("server.request.query_us").expect("query latency histogram");
    assert!(req.count >= 5, "five queries were timed: {req:?}");
    assert!(stats.histogram("server.commit.fsync_wait_us").unwrap().count >= 1);
    assert!(stats.histogram("server.commit.queue_wait_us").unwrap().count >= 5);
    let rendered = stats.render();
    assert!(rendered.contains("commits"), "{rendered}");
    assert!(rendered.contains("server.request.query_us"), "{rendered}");
    rel_engine::metrics::set_metrics(false);
    drop(c);
    server.shutdown().unwrap();
}
