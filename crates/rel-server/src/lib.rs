//! # rel-server
//!
//! A concurrent TCP server (and client library) for the Rel engine:
//! many clients multiplexed onto shared [`rel_engine::Session`]s over a
//! small length-prefixed binary protocol.
//!
//! The paper presents Rel as the language of a *cloud-native relational
//! service* — clients reach the database over the network, not by
//! linking the engine. This crate is that serving layer for the
//! in-process API built so far:
//!
//! * [`protocol`] — the wire format: `[len][crc][payload]` frames
//!   (the WAL's framing discipline, reusing `rel_core::codec`), typed
//!   requests/responses mirroring the v2 API, and typed error kinds;
//! * [`pool`] — [`pool::SessionPool`]: bounded checkout of ephemeral
//!   read replicas over the latest committed CoW snapshot;
//! * [`server`] — [`Server`]: accept loop, per-connection statement and
//!   transaction registries, admission control, graceful shutdown, and
//!   the commit queue whose worker coalesces concurrent commits into
//!   one fsync per group ([`rel_engine::Session::begin_commit_group`]);
//! * [`client`] — [`Client`]: the blocking client used by the
//!   `rel connect` CLI subcommand and the `bench_report` serving
//!   workload; [`Client::subscribe`] turns a query into a live feed of
//!   [`WatchDelta`] push frames (`rel_engine::Session::watch` over the
//!   wire).
//!
//! The `REL_SERVER_*` environment knobs ([`ServerConfig::from_env`])
//! are listed in the consolidated switch table in the `rel-engine`
//! crate docs. See this crate's `README.md` for a wire-protocol sketch.
//!
//! ## In-process quickstart
//!
//! ```
//! use rel_core::database::figure1_database;
//! use rel_server::{Client, Server, ServerConfig};
//!
//! let server = Server::start(
//!     rel_stdlib::with_stdlib(figure1_database()),
//!     ServerConfig::default(), // 127.0.0.1, free port
//! )
//! .unwrap();
//! let mut client = Client::connect(server.addr()).unwrap();
//! let rows = client
//!     .query("def output(y) : exists((x) | PaymentOrder(x, y))")
//!     .unwrap();
//! assert_eq!(rows.len(), 3);
//! let session = server.shutdown().unwrap();
//! assert!(!session.is_durable());
//! ```

pub mod client;
pub mod pool;
pub mod protocol;
pub mod server;

pub use client::{Client, ClientError, ClientResult, Statement, Subscription, TxnHandle};
pub use pool::SessionPool;
pub use protocol::{ErrorKind, ErrorReply, Outcome, StatsReply, MAX_FRAME, PROTOCOL_VERSION};
pub use rel_engine::WatchDelta;
pub use server::{Server, ServerConfig};
