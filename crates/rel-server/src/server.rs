//! The server: accept loop, per-connection handlers, and the
//! group-committing write queue.
//!
//! ## Architecture
//!
//! One **commit worker** thread owns the authoritative [`Session`] (the
//! only durable one). Reads never touch it: connection handlers serve
//! queries from ephemeral replicas in a [`SessionPool`] over the latest
//! published CoW snapshot — checkout is an `Arc` bump plus at most an
//! O(1) `Session::clone`, so reads proceed lock-free with respect to
//! writers. Writes are serialized through a bounded queue: the worker
//! drains up to [`ServerConfig::group_window`] jobs, applies them inside
//! one [`Session::begin_commit_group`] window, closes the window with a
//! single fsync ([group commit]), publishes the new snapshot, and only
//! then acknowledges the batch — a client that receives its commit reply
//! and immediately reads is guaranteed to see its own write, and a crash
//! can only lose commits that were never acknowledged.
//!
//! ## Interactive transactions
//!
//! A `begin`/`run`/`stage`/`commit` transaction cannot hold the
//! authoritative session across requests (writes would stall behind an
//! idle client). Instead the connection records the transaction as a
//! **step log** over a private snapshot taken at `begin`: each step is
//! re-executed locally so the client sees its own effects immediately,
//! and `commit` ships the log through the queue, where the worker
//! replays it against the authoritative state — optimistic concurrency
//! with the queue as the single serialization point.
//!
//! ## Standing queries
//!
//! `Subscribe` rides the commit queue: the worker registers the watch on
//! the **authoritative** session (the only one whose commits exist), so
//! registration is serialized with commits and the engine's gapless
//! sequence numbering carries straight onto the wire. After each worker
//! pass the accumulated [`rel_engine::WatchDelta`] batches are fanned
//! out as server-initiated [`Response::Delta`] frames — strictly *after*
//! [`SessionPool::publish`] and the batch acknowledgements, so a pushed
//! delta never precedes the read-your-writes visibility of the commit
//! that caused it. Each connection's outbound stream is a shared writer
//! (a mutex over the socket) so push frames and request replies never
//! interleave mid-frame; a subscriber whose socket stalls past the write
//! timeout or dies is dropped (its engine watch unregisters on drop) and
//! its connection is shut down rather than desynced.
//!
//! ## Admission control
//!
//! Three independent gates, each answering with a typed
//! [`ErrorKind::Busy`]: the connection table ([`ServerConfig::max_conns`]),
//! the commit queue depth ([`ServerConfig::queue_depth`]), and a
//! per-connection in-flight commit budget ([`ServerConfig::max_inflight`]).
//! Subscriptions ride the same queue gates plus a per-connection watch
//! cap ([`ServerConfig::max_watches`]). The pool bounds read fan-out by
//! blocking, not refusing.
//!
//! [group commit]: Session::end_commit_group

use crate::pool::SessionPool;
use crate::protocol::{
    read_frame, write_frame, ErrorKind, ErrorReply, FrameRead, Outcome, Request, Response,
    StatsReply, WireError, WireParams, PROTOCOL_VERSION, READ_POLL,
};
use rel_core::{RelError, RelResult, Tuple};
use rel_engine::metrics::{self, Counter, Histogram};
use rel_engine::{Params, Prepared, Session, TxnOutcome, Watch};
use std::collections::{HashMap, VecDeque};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long one outbound frame write may stall before the connection is
/// considered dead. Applies to push frames and request replies alike: a
/// frame write that times out partway leaves the stream unframeable, so
/// the connection is shut down rather than desynced.
const WRITE_TIMEOUT: Duration = Duration::from_secs(5);

/// Tuning knobs for a [`Server`]. [`ServerConfig::from_env`] reads the
/// `REL_SERVER_*` environment variables documented in the `rel-engine`
/// crate-level switch table; [`Default`] uses the same values without
/// touching the environment.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Listen address (`REL_SERVER_ADDR`). Port `0` picks a free port;
    /// [`Server::addr`] reports the bound one.
    pub addr: String,
    /// Max simultaneous connections (`REL_SERVER_MAX_CONNS`); excess
    /// connects are answered with `Busy` and closed.
    pub max_conns: usize,
    /// Max commit jobs one connection may have queued at once
    /// (`REL_SERVER_MAX_INFLIGHT`).
    pub max_inflight: usize,
    /// Max commit jobs queued across all connections
    /// (`REL_SERVER_QUEUE_DEPTH`); a full queue answers `Busy`.
    pub queue_depth: usize,
    /// Max commits coalesced into one group-commit window — one fsync —
    /// per worker pass (`REL_SERVER_GROUP_WINDOW`).
    pub group_window: usize,
    /// Max read replicas checked out at once (`REL_SERVER_POOL`).
    pub pool: usize,
    /// Per-connection prepared-statement registry cap.
    pub max_stmts: usize,
    /// Per-connection open-transaction cap.
    pub max_txns: usize,
    /// Per-connection standing-query (subscription) cap.
    pub max_watches: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            max_conns: 64,
            max_inflight: 4,
            queue_depth: 256,
            group_window: 32,
            pool: 8,
            max_stmts: 256,
            max_txns: 16,
            max_watches: 64,
        }
    }
}

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

impl ServerConfig {
    /// Defaults overridden by the `REL_SERVER_*` environment variables.
    pub fn from_env() -> Self {
        let d = ServerConfig::default();
        ServerConfig {
            addr: std::env::var("REL_SERVER_ADDR").unwrap_or(d.addr),
            max_conns: env_usize("REL_SERVER_MAX_CONNS", d.max_conns),
            max_inflight: env_usize("REL_SERVER_MAX_INFLIGHT", d.max_inflight),
            queue_depth: env_usize("REL_SERVER_QUEUE_DEPTH", d.queue_depth),
            group_window: env_usize("REL_SERVER_GROUP_WINDOW", d.group_window),
            pool: env_usize("REL_SERVER_POOL", d.pool),
            ..d
        }
    }
}

// ---------------------------------------------------------------------------
// Server metrics
// ---------------------------------------------------------------------------

/// Request classes for per-type latency histograms, coarse on purpose:
/// the interesting separations are read vs write vs compile vs step.
const REQUEST_CLASSES: [&str; 6] = ["query", "execute", "prepare", "commit", "txn_step", "other"];

fn request_class(req: &Request) -> usize {
    match req {
        Request::Query { .. } => 0,
        Request::Execute { .. } | Request::ExecuteMany { .. } => 1,
        Request::Prepare { .. } => 2,
        Request::Transact { .. } | Request::TxnCommit { .. } => 3,
        Request::TxnBegin
        | Request::TxnRun { .. }
        | Request::TxnRunPrepared { .. }
        | Request::TxnStage { .. }
        | Request::TxnAbort { .. } => 4,
        Request::Hello { .. }
        | Request::Ping
        | Request::CloseStmt { .. }
        | Request::Stats
        | Request::Subscribe { .. }
        | Request::Unsubscribe { .. } => 5,
    }
}

/// The serving layer's own observability, alongside the engine's
/// process-wide registry. Commit-path instruments (group size, waits,
/// admission refusals) record unconditionally — they fire once per
/// batch or refusal, not per tuple; the per-request latency histograms
/// are gated on [`metrics::enabled`] like every engine hot path.
#[derive(Debug)]
struct ServerMetrics {
    /// Per-[`request_class`] request latency.
    request_us: [Histogram; REQUEST_CLASSES.len()],
    /// Commits coalesced per group-commit window (a size, not a time).
    group_size: Histogram,
    /// Time closing each group window (the shared fsync).
    fsync_wait_us: Histogram,
    /// Time each commit job waited in the queue before the worker
    /// picked it up.
    queue_wait_us: Histogram,
    /// Admission-control refusals answered with `Busy`.
    busy_rejections: Counter,
}

impl ServerMetrics {
    const fn new() -> Self {
        ServerMetrics {
            request_us: [const { Histogram::new() }; REQUEST_CLASSES.len()],
            group_size: Histogram::new(),
            fsync_wait_us: Histogram::new(),
            queue_wait_us: Histogram::new(),
            busy_rejections: Counter::new(),
        }
    }
}

// ---------------------------------------------------------------------------
// Commit queue
// ---------------------------------------------------------------------------

/// One recorded transaction step (see the module docs on step logs).
#[derive(Clone, Debug)]
enum Step {
    Run { src: String },
    RunPrepared { src: String, params: Params },
    Stage { rel: String, deletes: bool, tuples: Vec<Tuple> },
}

/// A connection's outbound half, shared between its handler thread and
/// the commit worker's delta fan-out. Every frame write goes through the
/// mutex so pushes and replies never interleave mid-frame.
type SharedWriter = Arc<Mutex<TcpStream>>;

/// Write one frame through a shared writer. `false` means the socket is
/// dead or wedged (the [`WRITE_TIMEOUT`] elapsed mid-frame) — callers
/// must treat the connection as unusable.
fn send(writer: &SharedWriter, resp: &Response) -> bool {
    let mut w = writer.lock().unwrap_or_else(PoisonError::into_inner);
    write_frame(&mut *w, &resp.encode()).is_ok()
}

/// What a queued commit job executes against the authoritative session.
/// Subscription management rides the same queue as commits so watch
/// registration is serialized with the commit stream (gapless sequence
/// numbers, no registration races).
#[derive(Debug)]
enum CommitWork {
    Transact { src: String },
    Steps(Vec<Step>),
    Subscribe { src: String, params: Params, writer: SharedWriter },
    Unsubscribe { watch: u64 },
    /// Injected (reply-less, gate-less) when a connection exits, so its
    /// subscriptions are reaped promptly instead of on the next failed
    /// delta write.
    ConnClosed,
}

type CommitResult = Result<Response, ErrorReply>;

struct CommitJob {
    conn: u64,
    work: CommitWork,
    reply: mpsc::Sender<CommitResult>,
    enqueued: Instant,
}

#[derive(Default)]
struct Queue {
    jobs: VecDeque<CommitJob>,
    /// Queued jobs per connection (admission: `max_inflight`).
    inflight: HashMap<u64, usize>,
    /// Set during shutdown *after* every connection has drained: the
    /// worker finishes the remaining jobs and exits.
    stopped: bool,
}

struct Shared {
    cfg: ServerConfig,
    pool: SessionPool,
    queue: Mutex<Queue>,
    queue_ready: Condvar,
    shutdown: AtomicBool,
    conns: AtomicUsize,
    metrics: ServerMetrics,
}

impl Shared {
    fn lock_queue(&self) -> std::sync::MutexGuard<'_, Queue> {
        self.queue.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

fn submit(shared: &Shared, conn: u64, work: CommitWork) -> Result<mpsc::Receiver<CommitResult>, ErrorReply> {
    let mut q = shared.lock_queue();
    if q.stopped || shared.shutdown.load(Ordering::SeqCst) {
        return Err(ErrorReply::new(ErrorKind::ShuttingDown, "server is shutting down"));
    }
    if q.jobs.len() >= shared.cfg.queue_depth {
        shared.metrics.busy_rejections.incr();
        return Err(ErrorReply::new(
            ErrorKind::Busy,
            format!("commit queue is full ({} jobs)", shared.cfg.queue_depth),
        ));
    }
    let inflight = q.inflight.entry(conn).or_insert(0);
    if *inflight >= shared.cfg.max_inflight {
        shared.metrics.busy_rejections.incr();
        return Err(ErrorReply::new(
            ErrorKind::Busy,
            format!("connection already has {inflight} commits in flight"),
        ));
    }
    *inflight += 1;
    let (tx, rx) = mpsc::channel();
    q.jobs.push_back(CommitJob { conn, work, reply: tx, enqueued: Instant::now() });
    drop(q);
    shared.queue_ready.notify_all();
    Ok(rx)
}

fn query_reply(e: RelError) -> ErrorReply {
    ErrorReply::new(ErrorKind::Query, e.to_string())
}

fn wire_outcome(o: TxnOutcome) -> Outcome {
    Outcome { output: o.output, inserted: o.inserted as u64, deleted: o.deleted as u64 }
}

/// Replay a step log inside one transaction on `session` and commit it.
fn apply_steps(session: &mut Session, steps: &[Step]) -> RelResult<TxnOutcome> {
    // Prepared steps are re-compiled by source — a module-cache hit,
    // since the connection compiled the same source at prepare time and
    // all sessions share the cache.
    let mut prepared = Vec::with_capacity(steps.len());
    for step in steps {
        prepared.push(match step {
            Step::RunPrepared { src, .. } => Some(session.prepare(src)?),
            _ => None,
        });
    }
    let mut txn = session.begin();
    for (step, prep) in steps.iter().zip(&prepared) {
        match step {
            Step::Run { src } => {
                txn.run(src)?;
            }
            Step::RunPrepared { params, .. } => {
                txn.run_prepared(prep.as_ref().expect("prepared above"), params)?;
            }
            Step::Stage { rel, deletes, tuples } => {
                for t in tuples {
                    if *deletes {
                        txn.stage_delete(rel, t);
                    } else {
                        txn.stage_insert(rel, t.clone());
                    }
                }
            }
        }
    }
    txn.commit()
}

/// One live subscription: the engine-side watch handle (registered on
/// the authoritative session) plus the wire to push its deltas down.
struct ServerWatch {
    watch: Watch,
    conn: u64,
    writer: SharedWriter,
}

fn apply_job(
    session: &mut Session,
    shared: &Shared,
    watches: &mut HashMap<u64, ServerWatch>,
    job: &CommitJob,
) -> CommitResult {
    match &job.work {
        CommitWork::Transact { src } => {
            session.transact(src).map(|o| Response::Committed(wire_outcome(o))).map_err(query_reply)
        }
        CommitWork::Steps(steps) => apply_steps(session, steps)
            .map(|o| Response::Committed(wire_outcome(o)))
            .map_err(query_reply),
        CommitWork::Subscribe { src, params, writer } => {
            let open = watches.values().filter(|w| w.conn == job.conn).count();
            if open >= shared.cfg.max_watches {
                shared.metrics.busy_rejections.incr();
                return Err(ErrorReply::new(
                    ErrorKind::Busy,
                    format!("subscription registry is full ({open} watches)"),
                ));
            }
            let prepared = session.prepare(src).map_err(query_reply)?;
            let watch = session.watch(&prepared, params).map_err(query_reply)?;
            let id = watch.id();
            watches.insert(id, ServerWatch { watch, conn: job.conn, writer: writer.clone() });
            Ok(Response::Subscribed { watch: id })
        }
        CommitWork::Unsubscribe { watch } => match watches.get(watch) {
            Some(sw) if sw.conn == job.conn => {
                watches.remove(watch);
                Ok(Response::Done)
            }
            _ => Err(ErrorReply::new(
                ErrorKind::UnknownWatch,
                format!("no subscription {watch} on this connection"),
            )),
        },
        CommitWork::ConnClosed => {
            watches.retain(|_, sw| sw.conn != job.conn);
            Ok(Response::Done)
        }
    }
}

/// Drain every watch's buffered [`rel_engine::WatchDelta`] batches onto
/// the subscriber's wire as [`Response::Delta`] push frames. Runs
/// strictly after `pool.publish` and the batch acknowledgements (module
/// docs: push-after-publish). A failed write means the subscriber is
/// gone or wedged mid-frame: drop the subscription (the engine watch
/// unregisters on drop) and shut the socket down so the connection dies
/// cleanly instead of desyncing.
fn fan_out(watches: &mut HashMap<u64, ServerWatch>) {
    watches.retain(|&id, sw| {
        while let Some(d) = sw.watch.try_recv() {
            let resp = Response::Delta {
                watch: id,
                seq: d.seq,
                snapshot: d.snapshot,
                added: d.added,
                removed: d.removed,
            };
            let mut w = sw.writer.lock().unwrap_or_else(PoisonError::into_inner);
            if write_frame(&mut *w, &resp.encode()).is_err() {
                let _ = w.shutdown(Shutdown::Both);
                return false;
            }
        }
        true
    });
}

/// The commit worker: drain a batch, apply it inside one group-commit
/// window, publish the new snapshot, then acknowledge. Returns the
/// authoritative session at shutdown so the owner can inspect or reuse
/// it.
fn commit_worker(mut session: Session, shared: Arc<Shared>) -> Session {
    // The server-side subscription registry lives on the worker thread:
    // the authoritative session is the only one whose commits exist, so
    // its watch registry is the only meaningful one (pool replicas have
    // fresh, empty registries by design).
    let mut watches: HashMap<u64, ServerWatch> = HashMap::new();
    loop {
        let batch: Vec<CommitJob> = {
            let mut q = shared.lock_queue();
            while q.jobs.is_empty() && !q.stopped {
                q = shared.queue_ready.wait(q).unwrap_or_else(PoisonError::into_inner);
            }
            if q.jobs.is_empty() {
                break; // stopped and drained
            }
            let n = q.jobs.len().min(shared.cfg.group_window.max(1));
            q.jobs.drain(..n).collect()
        };
        for job in &batch {
            shared.metrics.queue_wait_us.record(job.enqueued.elapsed());
        }
        shared.metrics.group_size.record_us(batch.len() as u64);
        session.begin_commit_group();
        let mut results = Vec::with_capacity(batch.len());
        for job in &batch {
            results.push(apply_job(&mut session, &shared, &mut watches, job));
        }
        let sync_start = Instant::now();
        let group = session.end_commit_group();
        shared.metrics.fsync_wait_us.record(sync_start.elapsed());
        // Publish before acknowledging: a client that sees its commit
        // reply and immediately reads must observe its own write.
        shared.pool.publish(&session);
        {
            let mut q = shared.lock_queue();
            for job in &batch {
                if matches!(job.work, CommitWork::ConnClosed) {
                    // Injected without an admission increment, and the
                    // connection is gone: drop its in-flight slot.
                    q.inflight.remove(&job.conn);
                } else if let Some(n) = q.inflight.get_mut(&job.conn) {
                    *n = n.saturating_sub(1);
                }
            }
        }
        for (job, result) in batch.into_iter().zip(results) {
            let result = match (&group, result) {
                // The group sync failed: the commits are installed in
                // memory but their durability is unknown — refuse the
                // acknowledgement (same contract as a lone failed sync).
                (Err(e), Ok(Response::Committed(_))) => Err(ErrorReply::new(
                    ErrorKind::Internal,
                    format!("commit applied but group sync failed: {e}"),
                )),
                (_, r) => r,
            };
            let _ = job.reply.send(result);
        }
        // Push-after-publish: deltas produced by this batch's commits
        // (and initial snapshots of this batch's subscribes) go out only
        // after the snapshot they describe is readable and acknowledged.
        fan_out(&mut watches);
    }
    // Flush any batched-but-unsynced tail before handing the session back.
    let _ = session.sync();
    session
}

// ---------------------------------------------------------------------------
// Connection handling
// ---------------------------------------------------------------------------

/// An interactive transaction recorded server-side: the snapshot it
/// began on plus the step log replayed against it.
struct TxnState {
    base: Session,
    steps: Vec<Step>,
}

struct StmtEntry {
    src: String,
    prepared: Prepared,
}

struct ConnCtx {
    id: u64,
    shared: Arc<Shared>,
    /// The outbound half, shared with the commit worker's delta fan-out
    /// once this connection subscribes.
    writer: SharedWriter,
    stmts: HashMap<u32, StmtEntry>,
    next_stmt: u32,
    txns: HashMap<u32, TxnState>,
    next_txn: u32,
}

fn err(kind: ErrorKind, msg: impl Into<String>) -> Response {
    Response::Error(ErrorReply::new(kind, msg))
}

/// Assemble the `Stats` reply: the engine's process-wide registry
/// verbatim (same names, same values — the wire read must match an
/// in-process snapshot), then the serving layer's own counters and
/// histograms under `server.` names.
fn stats_reply(shared: &Shared) -> Response {
    let engine = metrics::registry().snapshot();
    let mut counters: Vec<(String, u64)> =
        engine.counters.iter().map(|&(name, v)| (name.to_string(), v)).collect();
    counters.push((
        "server.busy_rejections".to_string(),
        shared.metrics.busy_rejections.get(),
    ));
    let mut histograms: Vec<(String, metrics::HistogramSnapshot)> =
        vec![("query_us".to_string(), engine.query_us)];
    for (class, hist) in REQUEST_CLASSES.iter().zip(&shared.metrics.request_us) {
        histograms.push((format!("server.request.{class}_us"), hist.snapshot()));
    }
    histograms.push(("server.commit.group_size".to_string(), shared.metrics.group_size.snapshot()));
    histograms
        .push(("server.commit.fsync_wait_us".to_string(), shared.metrics.fsync_wait_us.snapshot()));
    histograms
        .push(("server.commit.queue_wait_us".to_string(), shared.metrics.queue_wait_us.snapshot()));
    Response::Stats(StatsReply {
        metrics_enabled: metrics::enabled(),
        pool_generation: shared.pool.generation(),
        queue_depth: shared.lock_queue().jobs.len() as u64,
        connections: shared.conns.load(Ordering::SeqCst) as u64,
        counters,
        histograms,
    })
}

fn wire_to_params(pairs: WireParams) -> Params {
    pairs.into_iter().fold(Params::new(), |p, (name, rel)| p.set_rel(&name, rel))
}

/// Re-execute a transaction's step log on its begin-time snapshot and
/// return the response for the *last* step. Quadratic in the step count
/// across a transaction's life — fine for interactive use, and the
/// commit-time replay on the authoritative session runs once.
fn replay(state: &mut TxnState) -> Result<Response, ErrorReply> {
    let TxnState { base, steps } = state;
    let mut prepared = Vec::with_capacity(steps.len());
    for step in steps.iter() {
        prepared.push(match step {
            Step::RunPrepared { src, .. } => Some(base.prepare(src).map_err(query_reply)?),
            _ => None,
        });
    }
    let mut txn = base.begin();
    let mut last = Response::Done;
    for (step, prep) in steps.iter().zip(&prepared) {
        last = match step {
            Step::Run { src } => Response::Rows(txn.run(src).map_err(query_reply)?),
            Step::RunPrepared { params, .. } => Response::Rows(
                txn.run_prepared(prep.as_ref().expect("prepared above"), params)
                    .map_err(query_reply)?,
            ),
            Step::Stage { rel, deletes, tuples } => {
                let mut changed = 0u64;
                for t in tuples {
                    changed += u64::from(if *deletes {
                        txn.stage_delete(rel, t)
                    } else {
                        txn.stage_insert(rel, t.clone())
                    });
                }
                Response::Staged { changed }
            }
        };
    }
    txn.abort();
    Ok(last)
}

fn txn_step(ctx: &mut ConnCtx, txn: u32, step: Step) -> Response {
    let Some(state) = ctx.txns.get_mut(&txn) else {
        return err(ErrorKind::UnknownTxn, format!("no open transaction {txn}"));
    };
    state.steps.push(step);
    match replay(state) {
        Ok(resp) => resp,
        Err(e) => {
            // Only the newly added step can fail (the prefix replayed
            // cleanly when each of its steps was added); drop it so the
            // transaction stays usable.
            state.steps.pop();
            Response::Error(e)
        }
    }
}

fn commit_roundtrip(ctx: &ConnCtx, work: CommitWork) -> (Response, bool) {
    match submit(&ctx.shared, ctx.id, work) {
        Err(e) => (Response::Error(e), false),
        Ok(rx) => match rx.recv() {
            Ok(Ok(resp)) => (resp, false),
            Ok(Err(e)) => (Response::Error(e), false),
            Err(_) => (
                err(ErrorKind::ShuttingDown, "commit worker exited before replying"),
                true,
            ),
        },
    }
}

/// Process one request; returns the response and whether to close the
/// connection afterwards.
fn dispatch(ctx: &mut ConnCtx, req: Request) -> (Response, bool) {
    if ctx.shared.shutdown.load(Ordering::SeqCst) {
        return (err(ErrorKind::ShuttingDown, "server is shutting down"), true);
    }
    let resp = match req {
        Request::Hello { version } => {
            if version != PROTOCOL_VERSION {
                return (
                    err(
                        ErrorKind::Protocol,
                        format!("protocol version {version} unsupported (server speaks {PROTOCOL_VERSION})"),
                    ),
                    true,
                );
            }
            Response::Hello { version: PROTOCOL_VERSION }
        }
        Request::Ping => Response::Pong,
        Request::Prepare { src } => {
            if ctx.stmts.len() >= ctx.shared.cfg.max_stmts {
                ctx.shared.metrics.busy_rejections.incr();
                return (err(ErrorKind::Busy, "prepared-statement registry is full"), false);
            }
            match ctx.shared.pool.with(|s| s.prepare(&src)) {
                Ok(prepared) => {
                    let stmt = ctx.next_stmt;
                    ctx.next_stmt += 1;
                    let params = prepared.param_names().iter().map(|n| n.to_string()).collect();
                    ctx.stmts.insert(stmt, StmtEntry { src, prepared });
                    Response::Prepared { stmt, params }
                }
                Err(e) => Response::Error(query_reply(e)),
            }
        }
        Request::CloseStmt { stmt } => match ctx.stmts.remove(&stmt) {
            Some(_) => Response::Done,
            None => err(ErrorKind::UnknownStmt, format!("no prepared statement {stmt}")),
        },
        Request::Execute { stmt, params } => match ctx.stmts.get(&stmt) {
            None => err(ErrorKind::UnknownStmt, format!("no prepared statement {stmt}")),
            Some(entry) => {
                let bound = wire_to_params(params);
                match ctx.shared.pool.with(|s| entry.prepared.execute_with(s, &bound)) {
                    Ok(rel) => Response::Rows(rel),
                    Err(e) => Response::Error(query_reply(e)),
                }
            }
        },
        Request::ExecuteMany { stmt, batches } => match ctx.stmts.get(&stmt) {
            None => err(ErrorKind::UnknownStmt, format!("no prepared statement {stmt}")),
            Some(entry) => {
                let bound: Vec<Params> = batches.into_iter().map(wire_to_params).collect();
                match ctx.shared.pool.with(|s| entry.prepared.execute_many(s, &bound)) {
                    Ok(rels) => Response::RowsMany(rels),
                    Err(e) => Response::Error(query_reply(e)),
                }
            }
        },
        Request::Query { src } => match ctx.shared.pool.with(|s| s.query(&src)) {
            Ok(rel) => Response::Rows(rel),
            Err(e) => Response::Error(query_reply(e)),
        },
        Request::Transact { src } => {
            return commit_roundtrip(ctx, CommitWork::Transact { src });
        }
        Request::TxnBegin => {
            if ctx.txns.len() >= ctx.shared.cfg.max_txns {
                ctx.shared.metrics.busy_rejections.incr();
                return (err(ErrorKind::Busy, "transaction registry is full"), false);
            }
            let base = ctx.shared.pool.with(|s| s.clone());
            let txn = ctx.next_txn;
            ctx.next_txn += 1;
            ctx.txns.insert(txn, TxnState { base, steps: Vec::new() });
            Response::TxnBegun { txn }
        }
        Request::TxnRun { txn, src } => txn_step(ctx, txn, Step::Run { src }),
        Request::TxnRunPrepared { txn, stmt, params } => match ctx.stmts.get(&stmt) {
            None => err(ErrorKind::UnknownStmt, format!("no prepared statement {stmt}")),
            Some(entry) => {
                let step = Step::RunPrepared {
                    src: entry.src.clone(),
                    params: wire_to_params(params),
                };
                txn_step(ctx, txn, step)
            }
        },
        Request::TxnStage { txn, rel, deletes, tuples } => {
            txn_step(ctx, txn, Step::Stage { rel, deletes, tuples })
        }
        Request::TxnCommit { txn } => match ctx.txns.remove(&txn) {
            None => err(ErrorKind::UnknownTxn, format!("no open transaction {txn}")),
            Some(state) => return commit_roundtrip(ctx, CommitWork::Steps(state.steps)),
        },
        Request::TxnAbort { txn } => match ctx.txns.remove(&txn) {
            Some(_) => Response::Done,
            None => err(ErrorKind::UnknownTxn, format!("no open transaction {txn}")),
        },
        Request::Subscribe { src, params } => {
            let work = CommitWork::Subscribe {
                src,
                params: wire_to_params(params),
                writer: ctx.writer.clone(),
            };
            return commit_roundtrip(ctx, work);
        }
        Request::Unsubscribe { watch } => {
            return commit_roundtrip(ctx, CommitWork::Unsubscribe { watch });
        }
        Request::Stats => stats_reply(&ctx.shared),
    };
    (resp, false)
}

fn handle_conn(mut stream: TcpStream, shared: Arc<Shared>, id: u64) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
    // The reader half stays private to this thread; all writes — request
    // replies here, delta pushes from the commit worker — go through the
    // shared, mutex-guarded clone so frames never interleave.
    let writer: SharedWriter = match stream.try_clone() {
        Ok(w) => Arc::new(Mutex::new(w)),
        Err(_) => return,
    };
    let mut ctx = ConnCtx {
        id,
        shared: shared.clone(),
        writer: writer.clone(),
        stmts: HashMap::new(),
        next_stmt: 1,
        txns: HashMap::new(),
        next_txn: 1,
    };
    let stop_flag = shared.clone();
    let stop = move || stop_flag.shutdown.load(Ordering::SeqCst);
    loop {
        let payload = match read_frame(&mut stream, &stop) {
            Ok(FrameRead::Frame(p)) => p,
            Ok(FrameRead::Closed) => break,
            Ok(FrameRead::Stopped) => {
                send(&writer, &err(ErrorKind::ShuttingDown, "server is shutting down"));
                break;
            }
            Err(WireError::Protocol(msg)) => {
                // Answer with a typed error when the socket still works,
                // then drop: a desynced stream cannot be re-framed.
                send(&writer, &err(ErrorKind::Protocol, msg));
                break;
            }
            Err(WireError::Io(_)) => break,
        };
        let req = match Request::decode(&payload) {
            Ok(r) => r,
            Err(e) => {
                send(&writer, &err(ErrorKind::Protocol, e.to_string()));
                break;
            }
        };
        let class = request_class(&req);
        let start = metrics::enabled().then(Instant::now);
        let (resp, close) = dispatch(&mut ctx, req);
        if let Some(start) = start {
            ctx.shared.metrics.request_us[class].record(start.elapsed());
        }
        if !send(&writer, &resp) || close {
            break;
        }
    }
    drop_conn_watches(&shared, id);
}

/// Best-effort cleanup when a connection exits: inject a reply-less
/// [`CommitWork::ConnClosed`] job so the worker reaps the connection's
/// subscriptions promptly. Skips the admission gates on purpose — this
/// frees resources rather than consuming them — and if the queue is
/// already stopped the watches die with the worker anyway.
fn drop_conn_watches(shared: &Shared, conn: u64) {
    let mut q = shared.lock_queue();
    if q.stopped {
        return;
    }
    let (reply, _discard) = mpsc::channel();
    q.jobs.push_back(CommitJob {
        conn,
        work: CommitWork::ConnClosed,
        reply,
        enqueued: Instant::now(),
    });
    drop(q);
    shared.queue_ready.notify_all();
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    let mut handles: Vec<JoinHandle<()>> = Vec::new();
    let mut next_id: u64 = 0;
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let mut stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        handles.retain(|h| !h.is_finished());
        if shared.conns.load(Ordering::SeqCst) >= shared.cfg.max_conns {
            // Admission control: answer Busy without spawning a handler.
            // The refused client reads this as the reply to its Hello.
            shared.metrics.busy_rejections.incr();
            let _ = write_frame(
                &mut stream,
                &err(
                    ErrorKind::Busy,
                    format!("connection limit reached ({})", shared.cfg.max_conns),
                )
                .encode(),
            );
            continue;
        }
        shared.conns.fetch_add(1, Ordering::SeqCst);
        let id = next_id;
        next_id += 1;
        let conn_shared = shared.clone();
        let handle = std::thread::Builder::new()
            .name(format!("rel-conn-{id}"))
            .spawn(move || {
                struct ConnCount(Arc<Shared>);
                impl Drop for ConnCount {
                    fn drop(&mut self) {
                        self.0.conns.fetch_sub(1, Ordering::SeqCst);
                    }
                }
                let _count = ConnCount(conn_shared.clone());
                handle_conn(stream, conn_shared, id);
            });
        match handle {
            Ok(h) => handles.push(h),
            Err(_) => {
                shared.conns.fetch_sub(1, Ordering::SeqCst);
            }
        }
    }
    for h in handles {
        let _ = h.join();
    }
}

// ---------------------------------------------------------------------------
// Server handle
// ---------------------------------------------------------------------------

/// A running server. Dropping it shuts down gracefully; call
/// [`Server::shutdown`] to also get the authoritative [`Session`] back.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    worker: Option<JoinHandle<Session>>,
}

impl Server {
    /// Start serving `session` (the authoritative, possibly durable,
    /// session — install libraries before starting) on `cfg.addr`.
    pub fn start(session: Session, cfg: ServerConfig) -> RelResult<Server> {
        let addr_str = cfg.addr.clone();
        let io_err = |what: &str, e: &std::io::Error| {
            RelError::io(addr_str.clone(), what.to_string(), e)
        };
        let listener =
            TcpListener::bind(&cfg.addr).map_err(|e| io_err("binding server socket", &e))?;
        let addr = listener.local_addr().map_err(|e| io_err("reading bound address", &e))?;
        let pool = SessionPool::new(&session, cfg.pool);
        let shared = Arc::new(Shared {
            cfg,
            pool,
            queue: Mutex::new(Queue::default()),
            queue_ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
            conns: AtomicUsize::new(0),
            metrics: ServerMetrics::new(),
        });
        let worker_shared = shared.clone();
        let worker = std::thread::Builder::new()
            .name("rel-commit".to_string())
            .spawn(move || commit_worker(session, worker_shared))
            .map_err(|e| io_err("spawning commit worker", &e))?;
        let accept_shared = shared.clone();
        let accept = std::thread::Builder::new()
            .name("rel-accept".to_string())
            .spawn(move || accept_loop(listener, accept_shared))
            .map_err(|e| io_err("spawning accept loop", &e))?;
        Ok(Server { addr, shared, accept: Some(accept), worker: Some(worker) })
    }

    /// The bound listen address (resolves port `0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Simultaneous connections right now.
    pub fn connections(&self) -> usize {
        self.shared.conns.load(Ordering::SeqCst)
    }

    /// Graceful shutdown: stop accepting, let every connection finish
    /// its in-flight request, drain the commit queue (every submitted
    /// commit is applied, group-synced, and acknowledged), then return
    /// the authoritative session.
    pub fn shutdown(mut self) -> RelResult<Session> {
        match self.stop() {
            Some(session) => Ok(session),
            None => Err(RelError::io(
                "rel-server",
                "joining commit worker",
                &std::io::Error::other("commit worker panicked"),
            )),
        }
    }

    fn stop(&mut self) -> Option<Session> {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Wake the accept loop out of its blocking accept.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // Every connection has exited (the accept loop joins them), so
        // no new jobs can arrive: stop the worker once the queue drains.
        {
            let mut q = self.shared.lock_queue();
            q.stopped = true;
        }
        self.shared.queue_ready.notify_all();
        self.worker.take().and_then(|h| h.join().ok())
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.accept.is_some() || self.worker.is_some() {
            let _ = self.stop();
        }
    }
}
