//! A bounded pool of read-only session replicas over the latest
//! committed snapshot.
//!
//! The commit worker is the only writer; after each commit group it
//! [`SessionPool::publish`]es the new state, which invalidates every
//! idle replica. Readers borrow a replica with [`SessionPool::with`]:
//! an idle one from the current generation if available, a fresh
//! `Session::clone()` of the template otherwise (O(1) — CoW database
//! handles plus shared `Arc` caches), and they *wait* once `capacity`
//! replicas are simultaneously out — the pool doubles as read-side
//! admission control, bounding concurrent evaluation fan-out no matter
//! how many connections are open.
//!
//! Replicas share the template's module and fixpoint caches, so a query
//! shape compiled on any replica (or by the commit worker) is warm on
//! all of them. This is the convenience-layer pooling idiom of
//! dbuenzli/rel's `Rel_pool`, adapted to CoW snapshots: checkout,
//! generation check, checkin.

use rel_engine::Session;
use std::sync::{Condvar, Mutex, PoisonError};

/// Shared pool of ephemeral read replicas (see module docs).
#[derive(Debug)]
pub struct SessionPool {
    capacity: usize,
    inner: Mutex<Inner>,
    freed: Condvar,
}

#[derive(Debug)]
struct Inner {
    /// Clone source for new replicas: an ephemeral image of the latest
    /// published state.
    template: Session,
    /// Bumped by every publish; replicas from older generations are
    /// discarded at checkin instead of being reused.
    generation: u64,
    /// Idle replicas of the current generation.
    idle: Vec<Session>,
    /// Replicas currently checked out.
    outstanding: usize,
}

impl SessionPool {
    /// A pool serving snapshots of `session`, with at most `capacity`
    /// replicas checked out at once.
    pub fn new(session: &Session, capacity: usize) -> Self {
        SessionPool {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner {
                template: session.clone(),
                generation: 0,
                idle: Vec::new(),
                outstanding: 0,
            }),
            freed: Condvar::new(),
        }
    }

    /// Replace the pooled snapshot with `session`'s current state.
    /// Replicas already checked out keep serving the old snapshot until
    /// returned (reads are never torn), but no new checkout sees it.
    pub fn publish(&self, session: &Session) {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.template = session.clone();
        inner.generation += 1;
        inner.idle.clear();
    }

    /// Run `f` over a read replica of the newest published snapshot,
    /// blocking while `capacity` replicas are already out.
    pub fn with<T>(&self, f: impl FnOnce(&Session) -> T) -> T {
        let (generation, session) = self.checkout();
        // Return the replica even if `f` panics (a poisoned test must
        // not deadlock the remaining readers).
        struct Checkin<'p> {
            pool: &'p SessionPool,
            generation: u64,
            session: Option<Session>,
        }
        impl Drop for Checkin<'_> {
            fn drop(&mut self) {
                self.pool.checkin(self.generation, self.session.take());
            }
        }
        let guard = Checkin { pool: self, generation, session: Some(session) };
        f(guard.session.as_ref().expect("replica present until drop"))
    }

    /// How many replicas may be out at once.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// How many times [`SessionPool::publish`] has replaced the pooled
    /// snapshot (the `Stats` surface reports this).
    pub fn generation(&self) -> u64 {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner).generation
    }

    fn checkout(&self) -> (u64, Session) {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(s) = inner.idle.pop() {
                inner.outstanding += 1;
                return (inner.generation, s);
            }
            if inner.outstanding < self.capacity {
                inner.outstanding += 1;
                return (inner.generation, inner.template.clone());
            }
            inner = self.freed.wait(inner).unwrap_or_else(PoisonError::into_inner);
        }
    }

    fn checkin(&self, generation: u64, session: Option<Session>) {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.outstanding -= 1;
        if let Some(s) = session {
            if generation == inner.generation {
                inner.idle.push(s);
            }
        }
        drop(inner);
        self.freed.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rel_core::Database;

    #[test]
    fn replicas_see_published_state_and_stale_ones_are_dropped() {
        let mut s = Session::new(Database::new());
        s.transact("def insert(:R, x) : x = 1").unwrap();
        let pool = SessionPool::new(&s, 2);
        assert_eq!(pool.with(|r| r.db().get("R").map(|rel| rel.len())), Some(1));
        s.transact("def insert(:R, x) : x = 2").unwrap();
        pool.publish(&s);
        assert_eq!(pool.with(|r| r.db().get("R").map(|rel| rel.len())), Some(2));
        // The idle replica left from before the publish must not be
        // handed out again.
        assert_eq!(pool.with(|r| r.db().get("R").map(|rel| rel.len())), Some(2));
    }

    #[test]
    fn capacity_blocks_and_unblocks() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let pool = Arc::new(SessionPool::new(&Session::new(Database::new()), 2));
        let running = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let (pool, running, peak) = (pool.clone(), running.clone(), peak.clone());
            handles.push(std::thread::spawn(move || {
                pool.with(|_| {
                    let now = running.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(5));
                    running.fetch_sub(1, Ordering::SeqCst);
                });
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(peak.load(Ordering::SeqCst) <= 2, "capacity must bound concurrency");
    }
}
