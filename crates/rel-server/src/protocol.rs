//! The wire protocol: length-prefixed, CRC-framed binary messages.
//!
//! Frames reuse the WAL's framing discipline (`rel-core::codec`): a
//! fixed header, an IEEE CRC32 over the payload, and a payload whose
//! every count is bounds-checked before allocation:
//!
//! ```text
//! frame   := [len: u32 LE] [crc: u32 LE] [payload: len bytes]
//! payload := [opcode: u8] fields…
//! ```
//!
//! Fields use the `rel_core::codec` primitives — little-endian integers,
//! length-prefixed UTF-8 strings, and codec-encoded [`Tuple`]s /
//! [`Relation`]s — so query results travel in exactly the bytes the
//! durability layer already round-trips.
//!
//! One request frame yields exactly one response frame, in order; there
//! is no pipelining. The single exception is the **push path**: after a
//! [`Request::Subscribe`] is acknowledged with [`Response::Subscribed`],
//! the server may interleave server-initiated [`Response::Delta`] frames
//! between a connection's request/response pairs. A `Delta` is the only
//! frame that arrives unsolicited; clients must be prepared to stash it
//! while awaiting any reply (see `Client::roundtrip`). A frame that
//! violates the grammar (`len == 0`, `len > `[`MAX_FRAME`], CRC
//! mismatch, unknown opcode, trailing bytes) is a *protocol* error: the
//! server answers with a typed [`ErrorKind::Protocol`] reply when it
//! still can, then drops the connection — per-connection state dies with
//! it, other connections are untouched.

use rel_core::codec::{self, DecodeError, Reader};
use rel_core::{Relation, Tuple};
use rel_engine::metrics::HistogramSnapshot;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Protocol version carried by the `Hello` handshake. The server rejects
/// a mismatched major version with [`ErrorKind::Protocol`].
pub const PROTOCOL_VERSION: u32 = 1;

/// Hard ceiling on one frame's payload: anything larger is rejected
/// *before* allocation — a garbage length field must not OOM the server.
pub const MAX_FRAME: u32 = 16 << 20;

/// How often a blocked server read wakes up to check the shutdown flag.
pub const READ_POLL: Duration = Duration::from_millis(100);

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Why a read or decode from the wire failed.
#[derive(Debug)]
pub enum WireError {
    /// The socket died or the peer vanished — not a grammar violation.
    Io(io::Error),
    /// The bytes violate the framing or message grammar.
    Protocol(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "i/o error: {e}"),
            WireError::Protocol(msg) => write!(f, "protocol error: {msg}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io(e)
    }
}

impl From<DecodeError> for WireError {
    fn from(e: DecodeError) -> Self {
        WireError::Protocol(e.to_string())
    }
}

/// Machine-readable classification of a server-side failure, carried in
/// every [`Response::Error`] reply so clients can react without parsing
/// messages.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorKind {
    /// Admission control: connection table, commit queue, or per-client
    /// in-flight budget is full. Retry later.
    Busy,
    /// The request violated the wire grammar; the connection is dropped.
    Protocol,
    /// The statement id is not in this connection's registry.
    UnknownStmt,
    /// The transaction id is not in this connection's registry.
    UnknownTxn,
    /// Compilation, evaluation, or constraint failure — the message holds
    /// the engine's rendered [`rel_core::RelError`].
    Query,
    /// The server is shutting down; in-flight commits drain, new work is
    /// refused.
    ShuttingDown,
    /// The request was valid but the server could not honor it (e.g. the
    /// group sync failed, leaving a commit's durability unknown).
    Internal,
    /// The watch id is not a live subscription of this connection.
    UnknownWatch,
}

impl ErrorKind {
    fn to_u8(self) -> u8 {
        match self {
            ErrorKind::Busy => 0,
            ErrorKind::Protocol => 1,
            ErrorKind::UnknownStmt => 2,
            ErrorKind::UnknownTxn => 3,
            ErrorKind::Query => 4,
            ErrorKind::ShuttingDown => 5,
            ErrorKind::Internal => 6,
            ErrorKind::UnknownWatch => 7,
        }
    }

    fn from_u8(b: u8) -> Option<Self> {
        Some(match b {
            0 => ErrorKind::Busy,
            1 => ErrorKind::Protocol,
            2 => ErrorKind::UnknownStmt,
            3 => ErrorKind::UnknownTxn,
            4 => ErrorKind::Query,
            5 => ErrorKind::ShuttingDown,
            6 => ErrorKind::Internal,
            7 => ErrorKind::UnknownWatch,
            _ => return None,
        })
    }
}

/// A typed error reply.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ErrorReply {
    /// What class of failure this is.
    pub kind: ErrorKind,
    /// Human-readable detail.
    pub msg: String,
}

impl ErrorReply {
    /// Build a reply.
    pub fn new(kind: ErrorKind, msg: impl Into<String>) -> Self {
        ErrorReply { kind, msg: msg.into() }
    }
}

impl std::fmt::Display for ErrorReply {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}: {}", self.kind, self.msg)
    }
}

// ---------------------------------------------------------------------------
// Messages
// ---------------------------------------------------------------------------

/// Parameter bindings on the wire: `(name, relation)` pairs in name
/// order, mirroring `rel_engine::Params`.
pub type WireParams = Vec<(String, Relation)>;

/// One client request. The surface mirrors the in-process v2 API:
/// prepare / execute / execute-many, one-shot query and transact, and
/// interactive `begin`/`run`/`stage`/`commit` transactions addressed by
/// server-side ids scoped to this connection.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Version handshake; must be the first request on a connection.
    Hello {
        /// The client's [`PROTOCOL_VERSION`].
        version: u32,
    },
    /// Liveness probe.
    Ping,
    /// Compile `src` and register it under a connection-scoped id.
    Prepare {
        /// Rel source of the query (may use `?name` placeholders).
        src: String,
    },
    /// Drop a prepared statement from the registry.
    CloseStmt {
        /// Statement id from [`Response::Prepared`].
        stmt: u32,
    },
    /// Execute a prepared statement against the current snapshot.
    Execute {
        /// Statement id.
        stmt: u32,
        /// Parameter bindings.
        params: WireParams,
    },
    /// Execute a prepared statement once per binding set, on one snapshot.
    ExecuteMany {
        /// Statement id.
        stmt: u32,
        /// One binding set per execution.
        batches: Vec<WireParams>,
    },
    /// One-shot read: compile + evaluate `src`, return its `output`.
    Query {
        /// Rel source.
        src: String,
    },
    /// One-shot write: compile + evaluate + commit through the commit
    /// queue (group-committed with its queue neighbors).
    Transact {
        /// Rel source (typically `def insert(…)` / `def delete(…)`).
        src: String,
    },
    /// Open an interactive transaction; steps accumulate server-side and
    /// re-execute through the commit queue at commit.
    TxnBegin,
    /// Run a compiled step inside a transaction.
    TxnRun {
        /// Transaction id from [`Response::TxnBegun`].
        txn: u32,
        /// Rel source of the step.
        src: String,
    },
    /// Run a prepared statement as a transaction step.
    TxnRunPrepared {
        /// Transaction id.
        txn: u32,
        /// Statement id.
        stmt: u32,
        /// Parameter bindings.
        params: WireParams,
    },
    /// Stage raw tuples directly into (or out of) a base relation.
    TxnStage {
        /// Transaction id.
        txn: u32,
        /// Base relation name.
        rel: String,
        /// `true` stages deletions, `false` insertions.
        deletes: bool,
        /// The tuples.
        tuples: Vec<Tuple>,
    },
    /// Commit: ship the step log through the commit queue.
    TxnCommit {
        /// Transaction id.
        txn: u32,
    },
    /// Abort: drop the transaction. Free.
    TxnAbort {
        /// Transaction id.
        txn: u32,
    },
    /// Read the server's observability surface ([`StatsReply`]).
    Stats,
    /// Register a standing query: compile `src`, bind `params`, and push
    /// a [`Response::Delta`] after every commit that changes its result.
    /// Acknowledged with [`Response::Subscribed`]; the initial snapshot
    /// arrives as the first `Delta` (seq 0, snapshot flag set).
    Subscribe {
        /// Rel source of the standing query.
        src: String,
        /// Parameter bindings, fixed for the subscription's lifetime.
        params: WireParams,
    },
    /// Unregister a standing query. Acknowledged with [`Response::Done`];
    /// `Delta` frames for the watch already in flight may still arrive
    /// before the acknowledgement.
    Unsubscribe {
        /// Watch id from [`Response::Subscribed`].
        watch: u64,
    },
}

/// One server reply. Every [`Request`] gets exactly one.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Handshake accepted.
    Hello {
        /// The server's [`PROTOCOL_VERSION`].
        version: u32,
    },
    /// `Ping` reply.
    Pong,
    /// Statement compiled and registered.
    Prepared {
        /// Connection-scoped statement id.
        stmt: u32,
        /// The `?name` placeholders the statement expects, sorted.
        params: Vec<String>,
    },
    /// A query / execute / txn-step result: the `output` relation.
    Rows(Relation),
    /// An `ExecuteMany` result: one relation per binding set, in order.
    RowsMany(Vec<Relation>),
    /// Interactive transaction opened.
    TxnBegun {
        /// Connection-scoped transaction id.
        txn: u32,
    },
    /// Tuples staged into the transaction candidate.
    Staged {
        /// How many tuples the stage step actually changed.
        changed: u64,
    },
    /// A commit (one-shot or interactive) landed — and, under group
    /// commit, was covered by its group's sync before this reply left
    /// the server.
    Committed(Outcome),
    /// Generic acknowledgement (`CloseStmt`, `TxnAbort`).
    Done,
    /// The server's observability surface.
    Stats(StatsReply),
    /// Standing query registered; [`Response::Delta`] frames for it
    /// carry this id.
    Subscribed {
        /// Server-assigned watch id, unique per server.
        watch: u64,
    },
    /// **Server-initiated** push: one standing-query delta batch. The
    /// only frame a client receives without having sent a request for
    /// it. `seq` is gapless per watch from 0 (the registration
    /// snapshot); a set `snapshot` flag means `added` is the full
    /// current result and replaces the subscriber's state (sent at
    /// registration and as the coalescing resync after the subscriber
    /// lagged — see the delivery contract in `rel-server/README.md`).
    Delta {
        /// Which subscription this batch belongs to.
        watch: u64,
        /// Per-watch gapless sequence number.
        seq: u64,
        /// Snapshot batch: `added` replaces the whole mirrored result.
        snapshot: bool,
        /// Output rows that entered the result.
        added: Relation,
        /// Output rows that left the result (empty for snapshots).
        removed: Relation,
    },
    /// Typed failure; the connection stays usable unless the kind is
    /// [`ErrorKind::Protocol`].
    Error(ErrorReply),
}

/// A point-in-time read of the server's observability surface, answered
/// to [`Request::Stats`].
///
/// `counters` carries the engine's process-wide metrics registry
/// ([`rel_engine::metrics::registry`]) verbatim — name for name, value
/// for value — plus `server.`-prefixed counters maintained by the
/// serving layer, so a wire read matches an in-process
/// [`rel_engine::metrics::Registry::snapshot`] taken on the server.
/// `histograms` carries the engine's query-latency histogram plus the
/// server's per-request-type latency, commit group-size, fsync-wait,
/// and queue-wait histograms ([`HistogramSnapshot`] summaries).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StatsReply {
    /// Whether hot-path engine metrics are on (`REL_METRICS`).
    pub metrics_enabled: bool,
    /// Session-pool snapshot generation (bumped per publish).
    pub pool_generation: u64,
    /// Commit jobs currently queued.
    pub queue_depth: u64,
    /// Connections currently open.
    pub connections: u64,
    /// Named monotone counters, engine registry first.
    pub counters: Vec<(String, u64)>,
    /// Named histogram summaries.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl StatsReply {
    /// Value of a named counter, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// A named histogram summary, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }

    /// Render as an aligned text table (the `:stats` REPL view).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "metrics_enabled  {}", self.metrics_enabled);
        let _ = writeln!(out, "pool_generation  {}", self.pool_generation);
        let _ = writeln!(out, "queue_depth      {}", self.queue_depth);
        let _ = writeln!(out, "connections      {}", self.connections);
        let width =
            self.counters.iter().map(|(n, _)| n.len()).max().unwrap_or(0).max(12);
        for (name, v) in &self.counters {
            let _ = writeln!(out, "{name:<width$}  {v}");
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(
                out,
                "{name}: count={} mean={}us p50<={}us p99<={}us max={}us",
                h.count,
                h.mean_us(),
                h.p50_us,
                h.p99_us,
                h.max_us
            );
        }
        out
    }
}

/// A committed transaction's outcome on the wire.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Outcome {
    /// Contents of the `output` control relation.
    pub output: Relation,
    /// Tuples inserted into base relations.
    pub inserted: u64,
    /// Tuples deleted from base relations.
    pub deleted: u64,
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

const REQ_HELLO: u8 = 0x01;
const REQ_PING: u8 = 0x02;
const REQ_PREPARE: u8 = 0x03;
const REQ_CLOSE_STMT: u8 = 0x04;
const REQ_EXECUTE: u8 = 0x05;
const REQ_EXECUTE_MANY: u8 = 0x06;
const REQ_QUERY: u8 = 0x07;
const REQ_TRANSACT: u8 = 0x08;
const REQ_TXN_BEGIN: u8 = 0x09;
const REQ_TXN_RUN: u8 = 0x0A;
const REQ_TXN_RUN_PREPARED: u8 = 0x0B;
const REQ_TXN_STAGE: u8 = 0x0C;
const REQ_TXN_COMMIT: u8 = 0x0D;
const REQ_TXN_ABORT: u8 = 0x0E;
const REQ_STATS: u8 = 0x0F;
const REQ_SUBSCRIBE: u8 = 0x10;
const REQ_UNSUBSCRIBE: u8 = 0x11;

const RESP_HELLO: u8 = 0x81;
const RESP_PONG: u8 = 0x82;
const RESP_PREPARED: u8 = 0x83;
const RESP_ROWS: u8 = 0x84;
const RESP_ROWS_MANY: u8 = 0x85;
const RESP_TXN_BEGUN: u8 = 0x86;
const RESP_STAGED: u8 = 0x87;
const RESP_COMMITTED: u8 = 0x88;
const RESP_DONE: u8 = 0x89;
const RESP_ERROR: u8 = 0x8A;
const RESP_STATS: u8 = 0x8B;
const RESP_SUBSCRIBED: u8 = 0x8C;
const RESP_DELTA: u8 = 0x8D;

fn encode_params(params: &WireParams, out: &mut Vec<u8>) {
    out.extend_from_slice(&(params.len() as u32).to_le_bytes());
    for (name, rel) in params {
        codec::encode_str(name, out);
        codec::encode_relation(rel, out);
    }
}

fn decode_params(r: &mut Reader<'_>) -> Result<WireParams, DecodeError> {
    let at = r.pos();
    let n = r.u32("parameter count")? as usize;
    // Each binding costs at least a name prefix + a tuple count.
    if n > r.remaining() / 8 {
        return Err(DecodeError {
            offset: at,
            msg: format!("parameter count {n} exceeds {} remaining bytes", r.remaining()),
        });
    }
    let mut params = Vec::with_capacity(n);
    for _ in 0..n {
        let name = r.str("parameter name")?.to_string();
        let rel = codec::decode_relation(r)?;
        params.push((name, rel));
    }
    Ok(params)
}

fn decode_counted<T>(
    r: &mut Reader<'_>,
    what: &str,
    min_bytes: usize,
    mut item: impl FnMut(&mut Reader<'_>) -> Result<T, DecodeError>,
) -> Result<Vec<T>, DecodeError> {
    let at = r.pos();
    let n = r.u32(what)? as usize;
    if n > r.remaining() / min_bytes.max(1) {
        return Err(DecodeError {
            offset: at,
            msg: format!("{what} {n} exceeds {} remaining bytes", r.remaining()),
        });
    }
    let mut items = Vec::with_capacity(n);
    for _ in 0..n {
        items.push(item(r)?);
    }
    Ok(items)
}

impl Request {
    /// Serialize to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        match self {
            Request::Hello { version } => {
                out.push(REQ_HELLO);
                out.extend_from_slice(&version.to_le_bytes());
            }
            Request::Ping => out.push(REQ_PING),
            Request::Prepare { src } => {
                out.push(REQ_PREPARE);
                codec::encode_str(src, &mut out);
            }
            Request::CloseStmt { stmt } => {
                out.push(REQ_CLOSE_STMT);
                out.extend_from_slice(&stmt.to_le_bytes());
            }
            Request::Execute { stmt, params } => {
                out.push(REQ_EXECUTE);
                out.extend_from_slice(&stmt.to_le_bytes());
                encode_params(params, &mut out);
            }
            Request::ExecuteMany { stmt, batches } => {
                out.push(REQ_EXECUTE_MANY);
                out.extend_from_slice(&stmt.to_le_bytes());
                out.extend_from_slice(&(batches.len() as u32).to_le_bytes());
                for b in batches {
                    encode_params(b, &mut out);
                }
            }
            Request::Query { src } => {
                out.push(REQ_QUERY);
                codec::encode_str(src, &mut out);
            }
            Request::Transact { src } => {
                out.push(REQ_TRANSACT);
                codec::encode_str(src, &mut out);
            }
            Request::TxnBegin => out.push(REQ_TXN_BEGIN),
            Request::TxnRun { txn, src } => {
                out.push(REQ_TXN_RUN);
                out.extend_from_slice(&txn.to_le_bytes());
                codec::encode_str(src, &mut out);
            }
            Request::TxnRunPrepared { txn, stmt, params } => {
                out.push(REQ_TXN_RUN_PREPARED);
                out.extend_from_slice(&txn.to_le_bytes());
                out.extend_from_slice(&stmt.to_le_bytes());
                encode_params(params, &mut out);
            }
            Request::TxnStage { txn, rel, deletes, tuples } => {
                out.push(REQ_TXN_STAGE);
                out.extend_from_slice(&txn.to_le_bytes());
                codec::encode_str(rel, &mut out);
                out.push(u8::from(*deletes));
                out.extend_from_slice(&(tuples.len() as u32).to_le_bytes());
                for t in tuples {
                    codec::encode_tuple(t, &mut out);
                }
            }
            Request::TxnCommit { txn } => {
                out.push(REQ_TXN_COMMIT);
                out.extend_from_slice(&txn.to_le_bytes());
            }
            Request::TxnAbort { txn } => {
                out.push(REQ_TXN_ABORT);
                out.extend_from_slice(&txn.to_le_bytes());
            }
            Request::Stats => out.push(REQ_STATS),
            Request::Subscribe { src, params } => {
                out.push(REQ_SUBSCRIBE);
                codec::encode_str(src, &mut out);
                encode_params(params, &mut out);
            }
            Request::Unsubscribe { watch } => {
                out.push(REQ_UNSUBSCRIBE);
                out.extend_from_slice(&watch.to_le_bytes());
            }
        }
        out
    }

    /// Parse a frame payload. Trailing bytes are a protocol error.
    pub fn decode(payload: &[u8]) -> Result<Request, WireError> {
        let mut r = Reader::new(payload);
        let op = r.u8("request opcode")?;
        let req = match op {
            REQ_HELLO => Request::Hello { version: r.u32("protocol version")? },
            REQ_PING => Request::Ping,
            REQ_PREPARE => Request::Prepare { src: r.str("query source")?.to_string() },
            REQ_CLOSE_STMT => Request::CloseStmt { stmt: r.u32("statement id")? },
            REQ_EXECUTE => Request::Execute {
                stmt: r.u32("statement id")?,
                params: decode_params(&mut r)?,
            },
            REQ_EXECUTE_MANY => {
                let stmt = r.u32("statement id")?;
                let batches = decode_counted(&mut r, "batch count", 4, decode_params)?;
                Request::ExecuteMany { stmt, batches }
            }
            REQ_QUERY => Request::Query { src: r.str("query source")?.to_string() },
            REQ_TRANSACT => Request::Transact { src: r.str("transact source")?.to_string() },
            REQ_TXN_BEGIN => Request::TxnBegin,
            REQ_TXN_RUN => Request::TxnRun {
                txn: r.u32("transaction id")?,
                src: r.str("step source")?.to_string(),
            },
            REQ_TXN_RUN_PREPARED => Request::TxnRunPrepared {
                txn: r.u32("transaction id")?,
                stmt: r.u32("statement id")?,
                params: decode_params(&mut r)?,
            },
            REQ_TXN_STAGE => {
                let txn = r.u32("transaction id")?;
                let rel = r.str("relation name")?.to_string();
                let deletes = r.u8("stage direction")? != 0;
                let tuples =
                    decode_counted(&mut r, "tuple count", 4, codec::decode_tuple)?;
                Request::TxnStage { txn, rel, deletes, tuples }
            }
            REQ_TXN_COMMIT => Request::TxnCommit { txn: r.u32("transaction id")? },
            REQ_TXN_ABORT => Request::TxnAbort { txn: r.u32("transaction id")? },
            REQ_STATS => Request::Stats,
            REQ_SUBSCRIBE => Request::Subscribe {
                src: r.str("subscription source")?.to_string(),
                params: decode_params(&mut r)?,
            },
            REQ_UNSUBSCRIBE => Request::Unsubscribe { watch: r.u64("watch id")? },
            other => {
                return Err(WireError::Protocol(format!("unknown request opcode 0x{other:02X}")))
            }
        };
        if !r.is_empty() {
            return Err(WireError::Protocol(format!(
                "{} trailing bytes after request",
                r.remaining()
            )));
        }
        Ok(req)
    }
}

impl Response {
    /// Serialize to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        match self {
            Response::Hello { version } => {
                out.push(RESP_HELLO);
                out.extend_from_slice(&version.to_le_bytes());
            }
            Response::Pong => out.push(RESP_PONG),
            Response::Prepared { stmt, params } => {
                out.push(RESP_PREPARED);
                out.extend_from_slice(&stmt.to_le_bytes());
                out.extend_from_slice(&(params.len() as u32).to_le_bytes());
                for p in params {
                    codec::encode_str(p, &mut out);
                }
            }
            Response::Rows(rel) => {
                out.push(RESP_ROWS);
                codec::encode_relation(rel, &mut out);
            }
            Response::RowsMany(rels) => {
                out.push(RESP_ROWS_MANY);
                out.extend_from_slice(&(rels.len() as u32).to_le_bytes());
                for rel in rels {
                    codec::encode_relation(rel, &mut out);
                }
            }
            Response::TxnBegun { txn } => {
                out.push(RESP_TXN_BEGUN);
                out.extend_from_slice(&txn.to_le_bytes());
            }
            Response::Staged { changed } => {
                out.push(RESP_STAGED);
                out.extend_from_slice(&changed.to_le_bytes());
            }
            Response::Committed(o) => {
                out.push(RESP_COMMITTED);
                codec::encode_relation(&o.output, &mut out);
                out.extend_from_slice(&o.inserted.to_le_bytes());
                out.extend_from_slice(&o.deleted.to_le_bytes());
            }
            Response::Done => out.push(RESP_DONE),
            Response::Stats(s) => {
                out.push(RESP_STATS);
                out.push(u8::from(s.metrics_enabled));
                out.extend_from_slice(&s.pool_generation.to_le_bytes());
                out.extend_from_slice(&s.queue_depth.to_le_bytes());
                out.extend_from_slice(&s.connections.to_le_bytes());
                out.extend_from_slice(&(s.counters.len() as u32).to_le_bytes());
                for (name, v) in &s.counters {
                    codec::encode_str(name, &mut out);
                    out.extend_from_slice(&v.to_le_bytes());
                }
                out.extend_from_slice(&(s.histograms.len() as u32).to_le_bytes());
                for (name, h) in &s.histograms {
                    codec::encode_str(name, &mut out);
                    out.extend_from_slice(&h.count.to_le_bytes());
                    out.extend_from_slice(&h.sum_us.to_le_bytes());
                    out.extend_from_slice(&h.max_us.to_le_bytes());
                    out.extend_from_slice(&h.p50_us.to_le_bytes());
                    out.extend_from_slice(&h.p99_us.to_le_bytes());
                }
            }
            Response::Subscribed { watch } => {
                out.push(RESP_SUBSCRIBED);
                out.extend_from_slice(&watch.to_le_bytes());
            }
            Response::Delta { watch, seq, snapshot, added, removed } => {
                out.push(RESP_DELTA);
                out.extend_from_slice(&watch.to_le_bytes());
                out.extend_from_slice(&seq.to_le_bytes());
                out.push(u8::from(*snapshot));
                codec::encode_relation(added, &mut out);
                codec::encode_relation(removed, &mut out);
            }
            Response::Error(e) => {
                out.push(RESP_ERROR);
                out.push(e.kind.to_u8());
                codec::encode_str(&e.msg, &mut out);
            }
        }
        out
    }

    /// Parse a frame payload. Trailing bytes are a protocol error.
    pub fn decode(payload: &[u8]) -> Result<Response, WireError> {
        let mut r = Reader::new(payload);
        let op = r.u8("response opcode")?;
        let resp = match op {
            RESP_HELLO => Response::Hello { version: r.u32("protocol version")? },
            RESP_PONG => Response::Pong,
            RESP_PREPARED => {
                let stmt = r.u32("statement id")?;
                let params = decode_counted(&mut r, "parameter name count", 4, |r| {
                    Ok(r.str("parameter name")?.to_string())
                })?;
                Response::Prepared { stmt, params }
            }
            RESP_ROWS => Response::Rows(codec::decode_relation(&mut r)?),
            RESP_ROWS_MANY => Response::RowsMany(decode_counted(
                &mut r,
                "relation count",
                4,
                codec::decode_relation,
            )?),
            RESP_TXN_BEGUN => Response::TxnBegun { txn: r.u32("transaction id")? },
            RESP_STAGED => Response::Staged { changed: r.u64("staged count")? },
            RESP_COMMITTED => Response::Committed(Outcome {
                output: codec::decode_relation(&mut r)?,
                inserted: r.u64("inserted count")?,
                deleted: r.u64("deleted count")?,
            }),
            RESP_DONE => Response::Done,
            RESP_STATS => {
                let metrics_enabled = r.u8("metrics flag")? != 0;
                let pool_generation = r.u64("pool generation")?;
                let queue_depth = r.u64("queue depth")?;
                let connections = r.u64("connection count")?;
                // A counter entry is at least a name prefix + a u64; a
                // histogram entry at least a name prefix + five u64s.
                let counters = decode_counted(&mut r, "counter count", 12, |r| {
                    let name = r.str("counter name")?.to_string();
                    let v = r.u64("counter value")?;
                    Ok((name, v))
                })?;
                let histograms = decode_counted(&mut r, "histogram count", 44, |r| {
                    let name = r.str("histogram name")?.to_string();
                    Ok((
                        name,
                        HistogramSnapshot {
                            count: r.u64("histogram count field")?,
                            sum_us: r.u64("histogram sum")?,
                            max_us: r.u64("histogram max")?,
                            p50_us: r.u64("histogram p50")?,
                            p99_us: r.u64("histogram p99")?,
                        },
                    ))
                })?;
                Response::Stats(StatsReply {
                    metrics_enabled,
                    pool_generation,
                    queue_depth,
                    connections,
                    counters,
                    histograms,
                })
            }
            RESP_SUBSCRIBED => Response::Subscribed { watch: r.u64("watch id")? },
            RESP_DELTA => Response::Delta {
                watch: r.u64("watch id")?,
                seq: r.u64("delta sequence")?,
                snapshot: r.u8("snapshot flag")? != 0,
                added: codec::decode_relation(&mut r)?,
                removed: codec::decode_relation(&mut r)?,
            },
            RESP_ERROR => {
                let kind_byte = r.u8("error kind")?;
                let kind = ErrorKind::from_u8(kind_byte).ok_or_else(|| {
                    WireError::Protocol(format!("unknown error kind {kind_byte}"))
                })?;
                let msg = r.str("error message")?.to_string();
                Response::Error(ErrorReply { kind, msg })
            }
            other => {
                return Err(WireError::Protocol(format!(
                    "unknown response opcode 0x{other:02X}"
                )))
            }
        };
        if !r.is_empty() {
            return Err(WireError::Protocol(format!(
                "{} trailing bytes after response",
                r.remaining()
            )));
        }
        Ok(resp)
    }
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// Write one `[len][crc][payload]` frame in a single `write_all`.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    debug_assert!(payload.len() <= MAX_FRAME as usize, "oversized outbound frame");
    let mut buf = Vec::with_capacity(8 + payload.len());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&codec::crc32(payload).to_le_bytes());
    buf.extend_from_slice(payload);
    w.write_all(&buf)?;
    w.flush()
}

/// What a polled frame read produced.
pub enum FrameRead {
    /// A complete, CRC-valid payload.
    Frame(Vec<u8>),
    /// The peer closed the connection at a frame boundary.
    Closed,
    /// `stop()` returned true while the stream was idle or mid-frame.
    Stopped,
}

/// Fill `buf` from the stream, retrying timeouts so a socket read
/// timeout acts as a poll interval rather than data loss (`read_exact`
/// may consume bytes before failing, which would desync the framing).
/// `Ok(false)` means the peer closed before the first byte.
fn read_full(
    stream: &mut TcpStream,
    buf: &mut [u8],
    stop: &dyn Fn() -> bool,
) -> Result<Option<bool>, WireError> {
    let mut filled = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(Some(false));
                }
                return Err(WireError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "peer disconnected mid-frame",
                )));
            }
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if stop() {
                    return Ok(None);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    Ok(Some(true))
}

/// Read one frame, polling `stop` whenever the socket's read timeout
/// fires. Header sanity (`len` bounds) is checked before the payload is
/// allocated; the CRC is checked after.
pub fn read_frame(
    stream: &mut TcpStream,
    stop: &dyn Fn() -> bool,
) -> Result<FrameRead, WireError> {
    let mut header = [0u8; 8];
    match read_full(stream, &mut header, stop)? {
        None => return Ok(FrameRead::Stopped),
        Some(false) => return Ok(FrameRead::Closed),
        Some(true) => {}
    }
    let len = u32::from_le_bytes(header[..4].try_into().expect("4 bytes"));
    let crc = u32::from_le_bytes(header[4..].try_into().expect("4 bytes"));
    if len == 0 {
        return Err(WireError::Protocol("empty frame".to_string()));
    }
    if len > MAX_FRAME {
        return Err(WireError::Protocol(format!(
            "frame of {len} bytes exceeds the {MAX_FRAME}-byte limit"
        )));
    }
    let mut payload = vec![0u8; len as usize];
    match read_full(stream, &mut payload, stop)? {
        None => return Ok(FrameRead::Stopped),
        Some(false) => {
            return Err(WireError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "peer disconnected mid-frame",
            )))
        }
        Some(true) => {}
    }
    if codec::crc32(&payload) != crc {
        return Err(WireError::Protocol("frame CRC mismatch".to_string()));
    }
    Ok(FrameRead::Frame(payload))
}

/// Read one frame on a stream with no read timeout (client side):
/// blocks until a frame, EOF, or an error.
pub fn read_frame_blocking(stream: &mut TcpStream) -> Result<Option<Vec<u8>>, WireError> {
    match read_frame(stream, &|| false)? {
        FrameRead::Frame(p) => Ok(Some(p)),
        FrameRead::Closed => Ok(None),
        FrameRead::Stopped => unreachable!("stop is constant false"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rel_core::{tuple, Relation};

    fn rel(n: i64) -> Relation {
        Relation::from_tuples((0..n).map(|i| tuple![i, "v"]).collect::<Vec<_>>())
    }

    #[test]
    fn requests_roundtrip() {
        let reqs = [
            Request::Hello { version: PROTOCOL_VERSION },
            Request::Ping,
            Request::Prepare { src: "def output(x) : R(x)".into() },
            Request::CloseStmt { stmt: 7 },
            Request::Execute {
                stmt: 3,
                params: vec![("min".into(), rel(2)), ("max".into(), rel(0))],
            },
            Request::ExecuteMany {
                stmt: 3,
                batches: vec![vec![("a".into(), rel(1))], vec![], vec![("b".into(), rel(3))]],
            },
            Request::Query { src: "def output(x) : S(x)".into() },
            Request::Transact { src: "def insert(:R, x) : x = 1".into() },
            Request::TxnBegin,
            Request::TxnRun { txn: 1, src: "def insert(:R, x) : x = 2".into() },
            Request::TxnRunPrepared { txn: 1, stmt: 3, params: vec![] },
            Request::TxnStage {
                txn: 1,
                rel: "R".into(),
                deletes: true,
                tuples: vec![tuple![1, "a"], tuple![2, "b"]],
            },
            Request::TxnCommit { txn: 1 },
            Request::TxnAbort { txn: 1 },
            Request::Stats,
            Request::Subscribe {
                src: "def output(x) : Flagged(x)".into(),
                params: vec![("min".into(), rel(1))],
            },
            Request::Unsubscribe { watch: u64::MAX },
        ];
        for req in reqs {
            let bytes = req.encode();
            let back = Request::decode(&bytes).unwrap();
            assert_eq!(back, req);
        }
    }

    #[test]
    fn responses_roundtrip() {
        let resps = [
            Response::Hello { version: PROTOCOL_VERSION },
            Response::Pong,
            Response::Prepared { stmt: 9, params: vec!["min".into(), "max".into()] },
            Response::Rows(rel(4)),
            Response::RowsMany(vec![rel(0), rel(2)]),
            Response::TxnBegun { txn: 5 },
            Response::Staged { changed: 17 },
            Response::Committed(Outcome { output: rel(1), inserted: 3, deleted: 1 }),
            Response::Done,
            Response::Stats(StatsReply {
                metrics_enabled: true,
                pool_generation: 3,
                queue_depth: 2,
                connections: 5,
                counters: vec![("commits".into(), 41), ("server.busy_rejections".into(), 1)],
                histograms: vec![(
                    "query_us".into(),
                    HistogramSnapshot { count: 7, sum_us: 700, max_us: 300, p50_us: 127, p99_us: 255 },
                )],
            }),
            Response::Stats(StatsReply::default()),
            Response::Subscribed { watch: 12 },
            Response::Delta {
                watch: 12,
                seq: 0,
                snapshot: true,
                added: rel(3),
                removed: Relation::default(),
            },
            Response::Delta {
                watch: 12,
                seq: 4,
                snapshot: false,
                added: rel(1),
                removed: rel(2),
            },
            Response::Error(ErrorReply::new(ErrorKind::Busy, "queue full")),
        ];
        for resp in resps {
            let bytes = resp.encode();
            let back = Response::decode(&bytes).unwrap();
            assert_eq!(back, resp);
        }
    }

    #[test]
    fn trailing_bytes_are_protocol_errors() {
        let mut bytes = Request::Ping.encode();
        bytes.push(0);
        assert!(matches!(Request::decode(&bytes), Err(WireError::Protocol(_))));
        let mut bytes = Response::Done.encode();
        bytes.push(0);
        assert!(matches!(Response::decode(&bytes), Err(WireError::Protocol(_))));
    }

    #[test]
    fn unknown_opcodes_and_kinds_are_protocol_errors() {
        assert!(matches!(Request::decode(&[0x7F]), Err(WireError::Protocol(_))));
        assert!(matches!(Response::decode(&[0x01]), Err(WireError::Protocol(_))));
        // Error reply with an unknown kind byte.
        let mut bytes = vec![RESP_ERROR, 200];
        codec::encode_str("boom", &mut bytes);
        assert!(matches!(Response::decode(&bytes), Err(WireError::Protocol(_))));
    }

    #[test]
    fn absurd_counts_fail_before_allocation() {
        // ExecuteMany claiming 4 billion batches must hit the bounds
        // check, not the allocator.
        let mut bytes = vec![REQ_EXECUTE_MANY];
        bytes.extend_from_slice(&3u32.to_le_bytes());
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        let err = Request::decode(&bytes).unwrap_err();
        assert!(matches!(err, WireError::Protocol(ref m) if m.contains("exceeds")), "{err}");
    }
}
