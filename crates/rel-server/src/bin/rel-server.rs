//! The `rel-server` binary: serve a (durable or in-memory) Rel database
//! over TCP.
//!
//! ```text
//! rel-server [--addr HOST:PORT] [--db DIR]
//! ```
//!
//! Configuration defaults come from the `REL_SERVER_*` environment
//! variables (see the `rel-engine` crate docs); flags override them.
//! With `--db` the server opens a durable store at `DIR` (creating it if
//! absent) and every committed transaction survives restarts; without
//! it the database is ephemeral.
//!
//! The process prints the bound address on stdout (`listening on …`),
//! serves until stdin reaches end-of-file or the process receives a
//! termination signal, then shuts down gracefully: in-flight requests
//! finish and the commit queue drains before exit. Piping from a parent
//! process (as the CI smoke leg does) makes "close stdin" a clean,
//! portable shutdown signal.

use rel_engine::Session;
use rel_server::{Server, ServerConfig};
use std::io::Read;

fn usage() -> ! {
    eprintln!("usage: rel-server [--addr HOST:PORT] [--db DIR]");
    std::process::exit(2);
}

fn main() {
    let mut cfg = ServerConfig::from_env();
    let mut db_dir: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => cfg.addr = args.next().unwrap_or_else(|| usage()),
            "--db" => db_dir = Some(args.next().unwrap_or_else(|| usage())),
            "--help" | "-h" => {
                println!("usage: rel-server [--addr HOST:PORT] [--db DIR]");
                return;
            }
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
    }

    let session = match &db_dir {
        Some(dir) => match Session::open(dir) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("rel-server: cannot open durable store at {dir}: {e}");
                std::process::exit(1);
            }
        },
        None => Session::default(),
    };
    // Serve with the full standard + graph libraries installed, like the
    // `rel` CLI does.
    let session = session
        .with_library(&rel_stdlib::full_library())
        .with_library(rel_graph::GRAPH_LIB);

    let server = match Server::start(session, cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("rel-server: cannot start: {e}");
            std::process::exit(1);
        }
    };
    println!("listening on {}", server.addr());
    if let Some(dir) = &db_dir {
        eprintln!("rel-server: durable store at {dir}");
    }

    // Block until stdin closes, then shut down gracefully.
    let mut sink = [0u8; 4096];
    let mut stdin = std::io::stdin().lock();
    while matches!(stdin.read(&mut sink), Ok(n) if n > 0) {}
    match server.shutdown() {
        Ok(session) => {
            if session.is_durable() {
                let _ = session.sync();
            }
            eprintln!("rel-server: shut down cleanly");
        }
        Err(e) => {
            eprintln!("rel-server: shutdown error: {e}");
            std::process::exit(1);
        }
    }
}
