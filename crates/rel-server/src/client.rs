//! `rel-client`: a blocking client for the wire protocol.
//!
//! One [`Client`] wraps one TCP connection; requests and responses are
//! strictly paired, so a `Client` is `!Sync` by construction (`&mut
//! self` everywhere) — open one per thread. Used by the `rel connect`
//! CLI subcommand and the `bench_report` serving load generator.
//!
//! The one exception to strict pairing is the push path: once
//! [`Client::subscribe`] registers a standing query, the server may
//! interleave unsolicited `Delta` frames with replies. [`Client`]
//! stashes those internally (keyed by watch id) whenever it reads a
//! frame, so request/reply pairing is preserved and
//! [`Subscription::recv`] drains the stash before touching the socket.
//! Deltas arrive as [`rel_engine::WatchDelta`] — the same type the
//! in-process [`rel_engine::Session::watch`] API yields, so mirror
//! maintenance code (`WatchDelta::apply_to`) works unchanged over the
//! wire.
//!
//! ```no_run
//! use rel_server::{Client, ClientResult};
//! use rel_engine::Params;
//!
//! fn demo() -> ClientResult<()> {
//!     let mut c = Client::connect("127.0.0.1:7070")?;
//!     let stmt = c.prepare("def output(x, y) : ProductPrice(x, y) and y > ?min")?;
//!     let rows = c.execute(&stmt, &Params::new().set("min", 15))?;
//!     println!("{rows}");
//!     c.transact("def insert(:Seen, x) : x = 1")?;
//!     Ok(())
//! }
//! ```

use crate::protocol::{
    read_frame_blocking, write_frame, ErrorKind, ErrorReply, Outcome, Request, Response,
    StatsReply, WireError, WireParams, PROTOCOL_VERSION,
};
use rel_core::{Relation, Tuple};
use rel_engine::{Params, WatchDelta};
use std::collections::VecDeque;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The connection died.
    Io(io::Error),
    /// The server sent bytes that violate the protocol.
    Protocol(String),
    /// The server answered with a typed error reply.
    Server(ErrorReply),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ClientError::Server(e) => write!(f, "server error: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        match e {
            WireError::Io(e) => ClientError::Io(e),
            WireError::Protocol(msg) => ClientError::Protocol(msg),
        }
    }
}

impl ClientError {
    /// The typed kind, when the server answered with an error reply.
    pub fn kind(&self) -> Option<ErrorKind> {
        match self {
            ClientError::Server(e) => Some(e.kind),
            _ => None,
        }
    }

    /// Was this a `Busy` admission-control refusal (worth retrying)?
    pub fn is_busy(&self) -> bool {
        self.kind() == Some(ErrorKind::Busy)
    }
}

/// Result alias for client calls.
pub type ClientResult<T> = Result<T, ClientError>;

/// A prepared statement registered on the server, scoped to the
/// [`Client`] connection that created it.
#[derive(Clone, Debug)]
pub struct Statement {
    id: u32,
    params: Vec<String>,
}

impl Statement {
    /// The server-side statement id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// The `?name` placeholders the statement expects, sorted.
    pub fn param_names(&self) -> &[String] {
        &self.params
    }
}

/// A server-side interactive transaction handle (connection-scoped id).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TxnHandle(u32);

fn params_wire(params: &Params) -> WireParams {
    params.iter().map(|(n, r)| (n.to_string(), r.clone())).collect()
}

/// One connection to a `rel-server` (see module docs).
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    /// Pushed `Delta` frames that arrived while a reply was awaited —
    /// the only unsolicited frame in the protocol — keyed by watch id
    /// and drained in arrival order by [`Subscription::recv`].
    pending: VecDeque<(u64, WatchDelta)>,
}

impl Client {
    /// Connect and complete the version handshake. A server over its
    /// connection limit answers the handshake with
    /// [`ErrorKind::Busy`], surfaced as [`ClientError::Server`].
    pub fn connect(addr: impl ToSocketAddrs) -> ClientResult<Client> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let mut client = Client { stream, pending: VecDeque::new() };
        match client.roundtrip(&Request::Hello { version: PROTOCOL_VERSION })? {
            Response::Hello { .. } => Ok(client),
            other => Err(unexpected("Hello", &other)),
        }
    }

    /// Read exactly one frame off the wire. A pushed `Delta` frame is
    /// stashed (it is never the answer to a request) and `None` is
    /// returned; anything else comes back to the caller.
    fn read_one(&mut self) -> ClientResult<Option<Response>> {
        let payload = read_frame_blocking(&mut self.stream)?.ok_or_else(|| {
            ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ))
        })?;
        match Response::decode(&payload)? {
            Response::Delta { watch, seq, snapshot, added, removed } => {
                self.pending.push_back((watch, WatchDelta { seq, snapshot, added, removed }));
                Ok(None)
            }
            resp => Ok(Some(resp)),
        }
    }

    fn roundtrip(&mut self, req: &Request) -> ClientResult<Response> {
        write_frame(&mut self.stream, &req.encode())?;
        loop {
            match self.read_one()? {
                None => continue, // a push arrived first; keep waiting
                Some(Response::Error(e)) => return Err(ClientError::Server(e)),
                Some(resp) => return Ok(resp),
            }
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> ClientResult<()> {
        match self.roundtrip(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected("Pong", &other)),
        }
    }

    /// One-shot read: evaluate `src`, return its `output` relation.
    pub fn query(&mut self, src: &str) -> ClientResult<Relation> {
        match self.roundtrip(&Request::Query { src: src.to_string() })? {
            Response::Rows(rel) => Ok(rel),
            other => Err(unexpected("Rows", &other)),
        }
    }

    /// Compile `src` on the server and register it for this connection.
    pub fn prepare(&mut self, src: &str) -> ClientResult<Statement> {
        match self.roundtrip(&Request::Prepare { src: src.to_string() })? {
            Response::Prepared { stmt, params } => Ok(Statement { id: stmt, params }),
            other => Err(unexpected("Prepared", &other)),
        }
    }

    /// Drop a prepared statement from the server-side registry.
    pub fn close_stmt(&mut self, stmt: &Statement) -> ClientResult<()> {
        match self.roundtrip(&Request::CloseStmt { stmt: stmt.id })? {
            Response::Done => Ok(()),
            other => Err(unexpected("Done", &other)),
        }
    }

    /// Execute a prepared statement with `params` against the newest
    /// committed snapshot.
    pub fn execute(&mut self, stmt: &Statement, params: &Params) -> ClientResult<Relation> {
        let req = Request::Execute { stmt: stmt.id, params: params_wire(params) };
        match self.roundtrip(&req)? {
            Response::Rows(rel) => Ok(rel),
            other => Err(unexpected("Rows", &other)),
        }
    }

    /// Execute a prepared statement once per binding set, all on one
    /// snapshot; one result relation per set, in order.
    pub fn execute_many(
        &mut self,
        stmt: &Statement,
        batches: &[Params],
    ) -> ClientResult<Vec<Relation>> {
        let req = Request::ExecuteMany {
            stmt: stmt.id,
            batches: batches.iter().map(params_wire).collect(),
        };
        match self.roundtrip(&req)? {
            Response::RowsMany(rels) => Ok(rels),
            other => Err(unexpected("RowsMany", &other)),
        }
    }

    /// One-shot write: evaluate + commit `src` through the server's
    /// group-committing queue.
    pub fn transact(&mut self, src: &str) -> ClientResult<Outcome> {
        match self.roundtrip(&Request::Transact { src: src.to_string() })? {
            Response::Committed(o) => Ok(o),
            other => Err(unexpected("Committed", &other)),
        }
    }

    /// Open an interactive transaction on the server.
    pub fn begin(&mut self) -> ClientResult<TxnHandle> {
        match self.roundtrip(&Request::TxnBegin)? {
            Response::TxnBegun { txn } => Ok(TxnHandle(txn)),
            other => Err(unexpected("TxnBegun", &other)),
        }
    }

    /// Run a step inside an open transaction; returns the step's output.
    pub fn txn_run(&mut self, txn: TxnHandle, src: &str) -> ClientResult<Relation> {
        let req = Request::TxnRun { txn: txn.0, src: src.to_string() };
        match self.roundtrip(&req)? {
            Response::Rows(rel) => Ok(rel),
            other => Err(unexpected("Rows", &other)),
        }
    }

    /// Run a prepared statement as a transaction step.
    pub fn txn_run_prepared(
        &mut self,
        txn: TxnHandle,
        stmt: &Statement,
        params: &Params,
    ) -> ClientResult<Relation> {
        let req = Request::TxnRunPrepared {
            txn: txn.0,
            stmt: stmt.id,
            params: params_wire(params),
        };
        match self.roundtrip(&req)? {
            Response::Rows(rel) => Ok(rel),
            other => Err(unexpected("Rows", &other)),
        }
    }

    /// Stage raw tuples into a base relation inside an open transaction;
    /// returns how many the candidate actually changed.
    pub fn txn_stage_insert(
        &mut self,
        txn: TxnHandle,
        rel: &str,
        tuples: Vec<Tuple>,
    ) -> ClientResult<u64> {
        self.stage(txn, rel, false, tuples)
    }

    /// Stage raw tuple deletions inside an open transaction.
    pub fn txn_stage_delete(
        &mut self,
        txn: TxnHandle,
        rel: &str,
        tuples: Vec<Tuple>,
    ) -> ClientResult<u64> {
        self.stage(txn, rel, true, tuples)
    }

    fn stage(
        &mut self,
        txn: TxnHandle,
        rel: &str,
        deletes: bool,
        tuples: Vec<Tuple>,
    ) -> ClientResult<u64> {
        let req = Request::TxnStage { txn: txn.0, rel: rel.to_string(), deletes, tuples };
        match self.roundtrip(&req)? {
            Response::Staged { changed } => Ok(changed),
            other => Err(unexpected("Staged", &other)),
        }
    }

    /// Commit an open transaction through the group-commit queue.
    pub fn txn_commit(&mut self, txn: TxnHandle) -> ClientResult<Outcome> {
        match self.roundtrip(&Request::TxnCommit { txn: txn.0 })? {
            Response::Committed(o) => Ok(o),
            other => Err(unexpected("Committed", &other)),
        }
    }

    /// Abort an open transaction. Free.
    pub fn txn_abort(&mut self, txn: TxnHandle) -> ClientResult<()> {
        match self.roundtrip(&Request::TxnAbort { txn: txn.0 })? {
            Response::Done => Ok(()),
            other => Err(unexpected("Done", &other)),
        }
    }

    /// Read the server's observability surface: the engine's metrics
    /// registry, per-request-type latency, commit-queue and pool state.
    pub fn stats(&mut self) -> ClientResult<StatsReply> {
        match self.roundtrip(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            other => Err(unexpected("Stats", &other)),
        }
    }

    /// Register a standing query on the server. The first delivered
    /// batch is always the seq-0 initial snapshot of the query's output;
    /// every later commit that changes it pushes the exact added/removed
    /// rows. The subscription borrows the client exclusively — issue
    /// other requests after [`Subscription::unsubscribe`], or hold one
    /// dedicated `Client` per live feed.
    pub fn subscribe(&mut self, src: &str, params: &Params) -> ClientResult<Subscription<'_>> {
        let req = Request::Subscribe { src: src.to_string(), params: params_wire(params) };
        match self.roundtrip(&req)? {
            Response::Subscribed { watch } => Ok(Subscription { client: self, watch }),
            other => Err(unexpected("Subscribed", &other)),
        }
    }

    fn take_pending(&mut self, watch: u64) -> Option<WatchDelta> {
        let idx = self.pending.iter().position(|(w, _)| *w == watch)?;
        self.pending.remove(idx).map(|(_, d)| d)
    }

    /// Block until a frame for `watch` is available and return it.
    fn next_delta(&mut self, watch: u64) -> ClientResult<WatchDelta> {
        loop {
            if let Some(d) = self.take_pending(watch) {
                return Ok(d);
            }
            // Only pushes can legitimately arrive here: no request is
            // outstanding, so a non-Delta frame is a protocol violation.
            match self.read_one()? {
                None => {}
                Some(Response::Error(e)) => return Err(ClientError::Server(e)),
                Some(other) => return Err(unexpected("Delta", &other)),
            }
        }
    }

    /// Wait up to `timeout` for the *start* of an inbound frame, using
    /// `peek` so a timeout consumes nothing (the framing cannot desync);
    /// once the first byte is visible the full frame is read blocking.
    /// `Ok(false)` is a clean timeout.
    fn poll_frame(&mut self, timeout: Duration) -> ClientResult<bool> {
        // A zero read timeout is invalid at the socket layer; clamp up.
        self.stream.set_read_timeout(Some(timeout.max(Duration::from_millis(1))))?;
        let mut probe = [0u8; 1];
        let outcome = loop {
            match self.stream.peek(&mut probe) {
                Ok(0) => {
                    break Err(ClientError::Io(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "server closed the connection",
                    )))
                }
                Ok(_) => break Ok(true),
                Err(e)
                    if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) =>
                {
                    break Ok(false)
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => break Err(ClientError::Io(e)),
            }
        };
        let _ = self.stream.set_read_timeout(None);
        outcome
    }

    fn next_delta_timeout(
        &mut self,
        watch: u64,
        timeout: Duration,
    ) -> ClientResult<Option<WatchDelta>> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            if let Some(d) = self.take_pending(watch) {
                return Ok(Some(d));
            }
            // poll_frame clamps to ≥1ms, so even a zero budget makes one
            // immediate check (the `try_recv` case) before giving up.
            let left = deadline.saturating_duration_since(std::time::Instant::now());
            if !self.poll_frame(left)? {
                return Ok(None);
            }
            match self.read_one()? {
                None => {}
                Some(Response::Error(e)) => return Err(ClientError::Server(e)),
                Some(other) => return Err(unexpected("Delta", &other)),
            }
        }
    }
}

/// A live standing query on a [`Client`] (see [`Client::subscribe`]).
///
/// Delivery contract, end to end: batches arrive in commit order with
/// gapless per-watch sequence numbers starting at the seq-0 snapshot; a
/// subscriber that falls further behind than the server's watch buffer
/// is resynced with a coalescing snapshot batch (`snapshot = true`)
/// rather than dropped, so `WatchDelta::apply_to` over everything
/// received always reconstructs the query's current output.
#[derive(Debug)]
pub struct Subscription<'c> {
    client: &'c mut Client,
    watch: u64,
}

impl Subscription<'_> {
    /// The server-side watch id carried by this subscription's frames.
    pub fn id(&self) -> u64 {
        self.watch
    }

    /// Block until the next batch arrives. (Named after the in-process
    /// [`rel_engine::Watch::recv`], which it mirrors over the wire.)
    pub fn recv(&mut self) -> ClientResult<WatchDelta> {
        self.client.next_delta(self.watch)
    }

    /// The next batch if one is already buffered or immediately
    /// readable, without waiting.
    pub fn try_recv(&mut self) -> ClientResult<Option<WatchDelta>> {
        self.client.next_delta_timeout(self.watch, Duration::ZERO)
    }

    /// Wait up to `timeout` for the next batch; `Ok(None)` on timeout.
    pub fn recv_timeout(&mut self, timeout: Duration) -> ClientResult<Option<WatchDelta>> {
        self.client.next_delta_timeout(self.watch, timeout)
    }

    /// End the subscription and release the client for other requests.
    /// Batches pushed before the server processed the unsubscribe are
    /// discarded.
    pub fn unsubscribe(self) -> ClientResult<()> {
        let watch = self.watch;
        match self.client.roundtrip(&Request::Unsubscribe { watch })? {
            Response::Done => {
                self.client.pending.retain(|(w, _)| *w != watch);
                Ok(())
            }
            other => Err(unexpected("Done", &other)),
        }
    }
}

fn unexpected(wanted: &str, got: &Response) -> ClientError {
    ClientError::Protocol(format!("expected {wanted} response, got {got:?}"))
}
