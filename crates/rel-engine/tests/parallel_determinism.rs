//! Randomized (seeded) determinism tests for the parallel stratum
//! scheduler: a generated multi-stratum program evaluated with 1 worker
//! and with N workers must produce **byte-identical** relation state —
//! same relations, same tuple contents, same iteration order — in the
//! style of `rel-core`'s `relation_model` harness.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rel_core::{Database, Name, Relation, Tuple, Value};
use rel_engine::{materialize_with_threads, Params, Session, SharedIndexCache};
use std::collections::BTreeMap;

/// A random base relation of binary tuples over a small domain, so joins
/// hit, unions overlap, and negations sometimes empty out.
fn random_edges(rng: &mut StdRng, domain: i64) -> Relation {
    let len = rng.gen_range(4..28);
    let mut rel = Relation::new();
    for _ in 0..len {
        rel.insert(Tuple::from(vec![
            Value::int(rng.gen_range(0..domain)),
            Value::int(rng.gen_range(0..domain)),
        ]));
    }
    rel
}

/// Generate a random multi-stratum program over `n_base` base relations:
/// each derived predicate is a union, join, difference, transitive
/// closure, or aggregation over randomly chosen earlier relations. The
/// result is a stratum DAG with parallelism (independent choices), deep
/// chains (later preds build on earlier ones), recursive strata (TC), and
/// non-monotone edges (negation, reduce).
fn random_program(rng: &mut StdRng, n_base: usize, n_derived: usize) -> (String, Database) {
    let mut db = Database::new();
    let domain = rng.gen_range(5..12);
    let mut sources: Vec<String> = Vec::new();
    for b in 0..n_base {
        let name = format!("E{b}");
        db.set(&name, random_edges(rng, domain));
        sources.push(name);
    }
    let mut src = String::from("def agg_sum[{A}] : reduce[add, A]\n");
    for d in 0..n_derived {
        let name = format!("P{d}");
        let a = sources[rng.gen_range(0..sources.len())].clone();
        let b = sources[rng.gen_range(0..sources.len())].clone();
        match rng.gen_range(0..5) {
            0 => {
                // Union.
                src.push_str(&format!("def {name}(x,y) : {a}(x,y)\n"));
                src.push_str(&format!("def {name}(x,y) : {b}(x,y)\n"));
            }
            1 => {
                // Join.
                src.push_str(&format!(
                    "def {name}(x,y) : exists((z) | {a}(x,z) and {b}(z,y))\n"
                ));
            }
            2 => {
                // Transitive closure (recursive monotone stratum).
                src.push_str(&format!("def {name}(x,y) : {a}(x,y)\n"));
                src.push_str(&format!(
                    "def {name}(x,y) : exists((z) | {a}(x,z) and {name}(z,y))\n"
                ));
            }
            3 => {
                // Difference (negation: non-monotone inter-stratum edge).
                src.push_str(&format!(
                    "def {name}(x,y) : {a}(x,y) and not {b}(x,y)\n"
                ));
            }
            _ => {
                // Aggregation roll-up: per-source sum of second columns.
                src.push_str(&format!(
                    "def {name}(x,s) : exists((q) | {a}(x,q)) and s = agg_sum[(v) : {a}(x,v)]\n"
                ));
            }
        }
        sources.push(name);
    }
    // A final sink depending on everything keeps no stratum dead.
    src.push_str("def output(x,y) :");
    let tails: Vec<String> = (0..n_derived).map(|d| format!(" P{d}(x,y)")).collect();
    src.push_str(&tails.join(" or"));
    src.push('\n');
    (src, db)
}

/// Flatten the full relation state into an ordered tuple listing — the
/// byte-for-byte comparison key.
fn flatten(rels: &BTreeMap<Name, Relation>) -> Vec<(Name, Vec<Tuple>)> {
    rels.iter()
        .map(|(n, r)| (n.clone(), r.iter().cloned().collect()))
        .collect()
}

#[test]
fn one_worker_and_many_workers_agree_byte_for_byte() {
    let mut rng = StdRng::seed_from_u64(0x05EE_DDA6);
    let mut covered = 0;
    for case in 0..40 {
        let (src, db) = random_program(&mut rng, 3, 6);
        let module = match rel_sema::compile(&src) {
            Ok(m) => m,
            // A generated program can be rejected (e.g. an unsafe
            // combination); rejection is deterministic, so skipping is
            // sound — but it must be rare enough to keep coverage
            // (asserted below).
            Err(_) => continue,
        };
        covered += 1;
        let seq = materialize_with_threads(&module, &db, SharedIndexCache::default(), 1);
        let par = materialize_with_threads(&module, &db, SharedIndexCache::default(), 4);
        match (seq, par) {
            (Ok(s), Ok(p)) => {
                assert_eq!(
                    flatten(&s),
                    flatten(&p),
                    "case {case}: parallel state diverged from sequential\nprogram:\n{src}"
                );
            }
            (Err(es), Err(ep)) => {
                // Errors (e.g. divergence) must at least agree in kind.
                assert_eq!(
                    std::mem::discriminant(&es),
                    std::mem::discriminant(&ep),
                    "case {case}: error kinds diverged: {es} vs {ep}\nprogram:\n{src}"
                );
            }
            (s, p) => panic!(
                "case {case}: one path errored, the other succeeded: \
                 seq={s:?} par={p:?}\nprogram:\n{src}"
            ),
        }
    }
    assert!(covered >= 30, "only {covered}/40 generated programs compiled");
}

#[test]
fn shared_cache_across_runs_does_not_change_results() {
    // Reusing one generation-keyed index cache across many materialize
    // runs (the Session pattern) with different worker counts must not
    // alter results either.
    let mut rng = StdRng::seed_from_u64(0xCAC4E);
    let (src, db) = random_program(&mut rng, 3, 5);
    let module = rel_sema::compile(&src).expect("seeded program compiles");
    let cache = SharedIndexCache::default();
    let baseline = materialize_with_threads(&module, &db, SharedIndexCache::default(), 1)
        .expect("baseline evaluates");
    for workers in [1usize, 2, 4, 8] {
        let rels = materialize_with_threads(&module, &db, cache.clone(), workers)
            .expect("evaluates");
        assert_eq!(
            flatten(&baseline),
            flatten(&rels),
            "workers={workers} diverged with a shared cache"
        );
    }
}

#[test]
fn many_independent_components_stress_the_scheduler() {
    // Wide DAG: 12 independent TC strata plus one sink that unions them.
    // This exercises claim/merge contention more than the random mix.
    let mut rng = StdRng::seed_from_u64(0x000D_1570);
    let mut db = Database::new();
    let mut src = String::new();
    for k in 0..12 {
        db.set(format!("E{k}").as_str(), random_edges(&mut rng, 9));
        src.push_str(&format!("def T{k}(x,y) : E{k}(x,y)\n"));
        src.push_str(&format!(
            "def T{k}(x,y) : exists((z) | E{k}(x,z) and T{k}(z,y))\n"
        ));
    }
    src.push_str("def output(x,y) :");
    let tails: Vec<String> = (0..12).map(|k| format!(" T{k}(x,y)")).collect();
    src.push_str(&tails.join(" or"));
    src.push('\n');
    let module = rel_sema::compile(&src).expect("compiles");
    let seq = materialize_with_threads(&module, &db, SharedIndexCache::default(), 1)
        .expect("sequential");
    for _ in 0..5 {
        let par = materialize_with_threads(&module, &db, SharedIndexCache::default(), 6)
            .expect("parallel");
        assert_eq!(flatten(&seq), flatten(&par));
    }
}

#[test]
fn concurrent_prepared_executes_match_sequential_byte_for_byte() {
    // Client API v2: one Session, one Prepared handle, 8 threads
    // executing concurrently (sharing the module, the CoW database
    // snapshot, and the generation-keyed index cache) must each produce
    // exactly the tuples a sequential execute produces — same contents,
    // same iteration order.
    let mut rng = StdRng::seed_from_u64(0x9E2_AB1E);
    let mut db = Database::new();
    db.set("E", random_edges(&mut rng, 8));
    let session = Session::new(db);
    let prepared = session
        .prepare(
            "def TC(x,y) : E(x,y)\n\
             def TC(x,y) : exists((z) | E(x,z) and TC(z,y))\n\
             def output(x,y) : TC(x,y) and x >= ?lo",
        )
        .expect("prepares");

    // Per-binding sequential baselines (threads will re-derive these).
    let baselines: Vec<Vec<Tuple>> = (0..4i64)
        .map(|lo| {
            prepared
                .execute_with(&session, &Params::new().set("lo", lo))
                .expect("sequential execute")
                .iter()
                .cloned()
                .collect()
        })
        .collect();

    for _round in 0..5 {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|i| {
                    let session = &session;
                    let prepared = &prepared;
                    scope.spawn(move || {
                        let lo = (i % 4) as i64;
                        let out = prepared
                            .execute_with(session, &Params::new().set("lo", lo))
                            .expect("concurrent execute");
                        (lo, out.iter().cloned().collect::<Vec<Tuple>>())
                    })
                })
                .collect();
            for h in handles {
                let (lo, got) = h.join().expect("thread");
                assert_eq!(
                    got, baselines[lo as usize],
                    "concurrent execute diverged from sequential for ?lo={lo}"
                );
            }
        });
    }
}
