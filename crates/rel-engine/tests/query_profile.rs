//! Ground-truth tests for [`rel_engine::QueryProfile`]: force each
//! join-kernel choice, cache outcome, and incremental classification
//! through the session switches (`set_wcoj`, `set_incremental`) on
//! targeted programs, and check the profile reports exactly what the
//! engine was forced to do.

use rel_core::{tuple, Database, Relation, Tuple};
use rel_engine::{FixpointOutcome, Session, StratumAction, WcojMode};

/// A dense-enough edge relation that triangles exist and recursion
/// iterates a few rounds.
fn edges() -> Relation {
    let mut tuples: Vec<Tuple> = Vec::new();
    for i in 0i64..12 {
        tuples.push(tuple![i, (i + 1) % 12]);
        tuples.push(tuple![i, (i + 5) % 12]);
        // Closes i -> i+1 -> i+6 into a triangle with the +5 step.
        tuples.push(tuple![i, (i + 6) % 12]);
    }
    Relation::from_tuples(tuples)
}

fn triangle_session(mode: WcojMode) -> Session {
    let mut db = Database::new();
    db.set("E", edges());
    let mut s = Session::new(db);
    s.set_wcoj(mode);
    s
}

const TRIANGLE: &str = "def output(x, y, z) : E(x, y) and E(y, z) and E(x, z)";

#[test]
fn forced_wcoj_is_reported_as_wcoj() {
    let s = triangle_session(WcojMode::Force);
    let (rows, profile) = s.query_profiled(TRIANGLE).unwrap();
    assert!(!rows.is_empty(), "triangle query must produce rows");
    let t = profile.totals();
    assert!(t.wcoj_joins > 0, "Force must dispatch the triangle to the WCOJ kernel: {t:?}");
    assert_eq!(t.binary_joins, 0, "no pairwise joins under Force: {t:?}");
    assert!(profile.explain().contains("kernel=wcoj"), "{}", profile.explain());
}

#[test]
fn disabled_wcoj_is_reported_as_binary() {
    let s = triangle_session(WcojMode::Off);
    let (rows_off, profile) = s.query_profiled(TRIANGLE).unwrap();
    let t = profile.totals();
    assert_eq!(t.wcoj_joins, 0, "Off must never touch the WCOJ kernel: {t:?}");
    assert!(
        t.binary_joins > 0 || t.env_rules > 0,
        "Off must run the pairwise/env path: {t:?}"
    );
    assert_eq!(t.fused_rules, 0, "a 3-atom rule has no fused kernel: {t:?}");
    // Same rows as the forced kernel — the profile reports routing, not
    // semantics.
    let (rows_force, _) = triangle_session(WcojMode::Force).query_profiled(TRIANGLE).unwrap();
    assert_eq!(rows_off, rows_force);
}

#[test]
fn two_atom_rule_under_defaults_is_fused() {
    let mut db = Database::new();
    db.set("E", edges());
    let mut s = Session::new(db);
    // Pin Auto routing so a REL_WCOJ=force CI leg cannot drag the 2-atom
    // rule into the leapfrog kernel.
    s.set_wcoj(WcojMode::Auto);
    let (rows, profile) =
        s.query_profiled("def output(x, z) : exists((y) | E(x, y) and E(y, z))").unwrap();
    assert!(!rows.is_empty());
    let t = profile.totals();
    assert_eq!(t.wcoj_joins, 0, "below WCOJ_MIN_ATOMS nothing reaches the WCOJ kernel: {t:?}");
    if !s.columnar_enabled() {
        // The REL_COLUMNAR=0 leg has no fused kernels to observe — the
        // profile must say so rather than misattribute.
        assert_eq!(t.fused_rules, 0, "no columnar layout, no fused kernels: {t:?}");
        assert!(t.binary_joins > 0 || t.env_rules > 0, "row layout runs the env path: {t:?}");
        return;
    }
    assert!(
        t.fused_rules > 0,
        "a 2-atom join under default columnar mode must hit a fused kernel: {t:?}"
    );
}

#[test]
fn trie_cache_outcomes_build_then_reuse() {
    let mut s = triangle_session(WcojMode::Force);
    // Full materialization every run, so the second run exercises the
    // shared generation-keyed caches instead of the fixpoint cache.
    s.set_incremental(false);
    let (_, first) = s.query_profiled(TRIANGLE).unwrap();
    let t1 = first.totals();
    assert!(t1.trie_builds > 0, "first run must build its permuted tries: {t1:?}");
    let (_, second) = s.query_profiled(TRIANGLE).unwrap();
    let t2 = second.totals();
    assert_eq!(t2.trie_builds, 0, "second run must not rebuild tries: {t2:?}");
    assert!(t2.trie_reuses > 0, "second run must reuse cached tries: {t2:?}");
    assert!(second.module_cache_hit, "repeated source must hit the module cache");
    assert!(!first.module_cache_hit, "fresh source must miss the module cache");
}

const TWO_CONES: &str = "def A(x) : exists((y) | E1(x, y))\n\
                         def B(x) : exists((y) | E2(x, y))\n\
                         def output(x) : A(x) or B(x)";

#[test]
fn incremental_classification_reused_vs_recomputed() {
    let mut db = Database::new();
    db.set("E1", Relation::from_tuples(vec![tuple![1, 2], tuple![2, 3]]));
    db.set("E2", Relation::from_tuples(vec![tuple![10, 20]]));
    let mut s = Session::new(db);
    // The classification under test exists only with maintenance on —
    // pin it so the REL_INCREMENTAL=0 CI leg measures the same thing.
    s.set_incremental(true);
    let (_, first) = s.query_profiled(TWO_CONES).unwrap();
    assert_eq!(first.fixpoint, FixpointOutcome::Full, "no pre-state on the first run");

    // Unchanged snapshot: the whole fixpoint is a cache reuse.
    let (_, cached) = s.query_profiled(TWO_CONES).unwrap();
    assert_eq!(cached.fixpoint, FixpointOutcome::CacheReuse);
    assert!(cached.strata.is_empty(), "a wholesale reuse evaluates nothing");

    // Touch only E2: A's stratum is outside the changed cone (reused),
    // B's and output's are inside it.
    let mut txn = s.begin();
    txn.stage_insert("E2", tuple![30, 40]);
    txn.commit().unwrap();
    let (rows, incr) = s.query_profiled(TWO_CONES).unwrap();
    assert!(rows.iter().any(|t| t == &tuple![30]), "the new E2 edge must surface");
    let FixpointOutcome::Incremental(stats) = incr.fixpoint else {
        panic!("expected incremental maintenance, got {:?}", incr.fixpoint);
    };
    assert!(stats.reused >= 1, "A's cone is untouched: {stats:?}");
    assert!(
        stats.recomputed + stats.delta_seeded >= 1,
        "B's cone contains the change: {stats:?}"
    );
    let actions: Vec<StratumAction> = incr.strata.iter().map(|s| s.action).collect();
    assert!(actions.contains(&StratumAction::Reused), "{actions:?}");
    assert!(
        actions
            .iter()
            .any(|a| matches!(a, StratumAction::Recomputed | StratumAction::DeltaRestarted)),
        "{actions:?}"
    );
    assert!(
        !actions.contains(&StratumAction::Evaluated),
        "every stratum of an incremental run must carry an incremental label: {actions:?}"
    );
}

const TC: &str = "def TC(x, y) : E(x, y)\n\
                  def TC(x, y) : exists((z) | TC(x, z) and E(z, y))\n\
                  def output(x, y) : TC(x, y)";

#[test]
fn incremental_recursion_is_delta_restarted() {
    let mut db = Database::new();
    db.set("E", Relation::from_tuples(vec![tuple![1, 2], tuple![2, 3], tuple![3, 4]]));
    let mut s = Session::new(db);
    s.set_incremental(true);
    let (rows, first) = s.query_profiled(TC).unwrap();
    assert_eq!(first.fixpoint, FixpointOutcome::Full);
    let len_before = rows.len();
    let recursive_iters = first
        .strata
        .iter()
        .find(|st| st.recursive)
        .expect("TC stratum is recursive")
        .counts
        .iterations;
    assert!(recursive_iters > 1, "closure of a chain iterates: {recursive_iters}");

    let mut txn = s.begin();
    txn.stage_insert("E", tuple![4, 5]);
    txn.commit().unwrap();
    let (rows, incr) = s.query_profiled(TC).unwrap();
    assert!(rows.len() > len_before, "the new edge extends the closure");
    let FixpointOutcome::Incremental(stats) = incr.fixpoint else {
        panic!("expected incremental maintenance, got {:?}", incr.fixpoint);
    };
    assert!(stats.delta_seeded >= 1, "monotone recursion in the cone restarts: {stats:?}");
    let restarted = incr
        .strata
        .iter()
        .find(|st| st.action == StratumAction::DeltaRestarted)
        .expect("one stratum must be delta-restarted");
    assert!(restarted.recursive, "only the recursive stratum restarts");
}

#[test]
fn strata_wall_is_bounded_by_query_wall() {
    let s = triangle_session(WcojMode::Auto);
    let (_, profile) = s.query_profiled(TRIANGLE).unwrap();
    assert!(
        profile.strata_wall() <= profile.wall,
        "stratum times ({:?}) cannot exceed the end-to-end wall ({:?})",
        profile.strata_wall(),
        profile.wall
    );
}
