//! Group commit correctness: coalesced fsyncs and crash-safe acks.
//!
//! Two properties prove the group-commit window
//! ([`Session::begin_commit_group`] / [`Session::end_commit_group`]):
//!
//! * **coalescing** — under [`FsyncPolicy::Always`], one window over N
//!   commits issues one WAL fsync, so the process-wide
//!   [`durability::fsync_count`] grows strictly slower than the commit
//!   count;
//! * **ack safety** — a commit may be acknowledged only after its
//!   window closes cleanly, and crash-injected streams (via the
//!   `durability::failpoint` harness) always recover to a *prefix* of
//!   the attempted history that contains every acknowledged commit.
//!
//! Both the fsync counter and the failpoint budget are process-global;
//! every test here serializes on [`GLOBAL_LOCK`]. Cargo gives each test
//! binary its own process, so other suites cannot interfere.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rel_core::{tuple, Database, Tuple};
use rel_engine::durability::{self, failpoint, DurabilityConfig, FsyncPolicy};
use rel_engine::Session;
use std::path::PathBuf;
use std::sync::Mutex;

static GLOBAL_LOCK: Mutex<()> = Mutex::new(());

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rel-group-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Always-fsync config with compaction pushed out of reach, so every
/// fsync observed below is a WAL commit sync, not a snapshot sync.
fn always_no_compact() -> DurabilityConfig {
    DurabilityConfig {
        fsync: FsyncPolicy::Always,
        fsync_batch: 32,
        compact_after_commits: u64::MAX,
        compact_after_bytes: u64::MAX,
    }
}

fn insert(s: &mut Session, rel: &str, a: i64, b: i64) -> Result<(), rel_core::RelError> {
    let mut txn = s.begin();
    txn.stage_insert(rel, tuple![a, b]);
    txn.commit().map(|_| ())
}

/// Canonical content image (mirrors the crash_recovery suite).
fn canon(db: &Database) -> Vec<(String, Vec<Tuple>)> {
    db.iter()
        .filter(|(_, r)| !r.is_empty())
        .map(|(n, r)| (n.to_string(), r.iter().cloned().collect()))
        .collect()
}

#[test]
fn one_fsync_covers_a_whole_group() {
    let _guard = GLOBAL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let dir = temp_dir("coalesce");
    let mut s = Session::open_with(&dir, always_no_compact()).unwrap();
    assert!(s.is_durable());

    const N: u64 = 16;
    let before = durability::fsync_count();
    s.begin_commit_group();
    assert!(s.in_commit_group());
    for i in 0..N {
        insert(&mut s, "R", i as i64, i as i64).unwrap();
    }
    let covered = s.end_commit_group().unwrap();
    let synced = durability::fsync_count() - before;

    assert_eq!(covered, N, "the closing fsync must cover every commit in the window");
    assert_eq!(synced, 1, "N grouped commits under fsync=always must cost exactly 1 fsync");
    assert!(!s.in_commit_group());

    // The group is durable: a fresh recovery sees all N commits.
    drop(s);
    let s = Session::open_with(&dir, always_no_compact()).unwrap();
    assert_eq!(s.db().get("R").unwrap().len(), N as usize);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn grouped_streams_use_strictly_fewer_fsyncs_than_commits() {
    let _guard = GLOBAL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let dir = temp_dir("stream");
    let mut s = Session::open_with(&dir, always_no_compact()).unwrap();

    // Randomized group sizes, as a commit queue under bursty load would
    // produce them.
    let mut rng = StdRng::seed_from_u64(4242);
    let mut commits = 0u64;
    let mut groups = 0u64;
    let before = durability::fsync_count();
    let mut key = 0i64;
    for _ in 0..12 {
        let size = rng.gen_range(1..=8);
        s.begin_commit_group();
        for _ in 0..size {
            insert(&mut s, "S", key, key).unwrap();
            key += 1;
            commits += 1;
        }
        assert_eq!(s.end_commit_group().unwrap(), size);
        groups += 1;
    }
    let synced = durability::fsync_count() - before;
    assert_eq!(synced, groups, "one fsync per non-empty group");
    assert!(
        synced < commits,
        "group commit must coalesce: {synced} fsyncs for {commits} commits"
    );

    drop(s);
    let s = Session::open_with(&dir, always_no_compact()).unwrap();
    assert_eq!(s.db().get("S").unwrap().len(), key as usize);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn empty_and_ephemeral_groups_are_free() {
    let _guard = GLOBAL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // Ephemeral session: the window is a no-op.
    let mut s = Session::new(Database::new());
    s.begin_commit_group();
    s.transact("def insert(:R, x) : x = 1").unwrap();
    assert_eq!(s.end_commit_group().unwrap(), 0);

    // Durable session, empty window: no commits, no fsync.
    let dir = temp_dir("empty");
    let mut s = Session::open_with(&dir, always_no_compact()).unwrap();
    let before = durability::fsync_count();
    s.begin_commit_group();
    assert_eq!(s.end_commit_group().unwrap(), 0);
    assert_eq!(durability::fsync_count() - before, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Crash-injected randomized group streams
// ---------------------------------------------------------------------------

/// Aggressive compaction so crash points also land inside snapshot
/// writes that race a group window.
fn crash_cfg() -> DurabilityConfig {
    DurabilityConfig {
        fsync: FsyncPolicy::Always,
        fsync_batch: 2,
        compact_after_commits: 5,
        compact_after_bytes: 1 << 20,
    }
}

/// A seeded stream of single-insert commits pre-partitioned into groups.
fn grouped_stream(seed: u64, commits: usize) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sizes = Vec::new();
    let mut left = commits;
    while left > 0 {
        let g = rng.gen_range(1usize..=4).min(left);
        sizes.push(g);
        left -= g;
    }
    sizes
}

/// Replay `commits` single-insert transactions in the given group sizes
/// against `dir`. Returns `(acked, done)`: commits whose group closed
/// cleanly (acknowledged) and commits whose append returned `Ok`
/// (installed, possibly unsynced). Stops at the first crash error.
fn run_grouped(dir: &PathBuf, sizes: &[usize]) -> Option<(usize, usize)> {
    let mut s = match Session::open_with(dir, crash_cfg()) {
        Ok(s) => s,
        Err(_) => return Some((0, 0)),
    };
    if !s.is_durable() {
        return Some((0, 0)); // budget 0 killed the open; store is empty
    }
    let mut acked = 0usize;
    let mut done = 0usize;
    let mut key = 0i64;
    for &size in sizes {
        s.begin_commit_group();
        let mut group_ok = true;
        for _ in 0..size {
            match insert(&mut s, "R", key, key) {
                Ok(()) => {
                    key += 1;
                    done += 1;
                }
                Err(_) => {
                    group_ok = false;
                    break;
                }
            }
        }
        let closed = s.end_commit_group();
        if !group_ok || closed.is_err() {
            return Some((acked, done));
        }
        // The window closed with a clean sync: everything appended so
        // far (this group and all before it) is now acknowledged.
        acked = done;
    }
    None // never crashed
}

#[test]
fn crash_injected_groups_recover_a_prefix_containing_every_ack() {
    let _guard = GLOBAL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    const COMMITS: usize = 14;
    for seed in [7u64, 77, 777] {
        let sizes = grouped_stream(seed, COMMITS);

        // Oracle: state after each commit count.
        let oracle: Vec<_> = {
            let mut s = Session::new(Database::new());
            let mut states = vec![canon(s.db())];
            for k in 0..COMMITS as i64 {
                insert(&mut s, "R", k, k).unwrap();
                states.push(canon(s.db()));
            }
            states
        };

        // Total write volume of the clean grouped run.
        let volume = {
            const HUGE: u64 = 1 << 40;
            let dir = temp_dir(&format!("vol-{seed}"));
            failpoint::arm(HUGE);
            let crashed = run_grouped(&dir, &sizes);
            let spent = HUGE - failpoint::remaining().expect("armed");
            failpoint::disarm();
            assert!(crashed.is_none(), "unlimited budget cannot crash");
            let _ = std::fs::remove_dir_all(&dir);
            spent
        };
        assert!(volume > 0);

        let mut rng = StdRng::seed_from_u64(seed ^ 0xC0FFEE);
        let mut kills: Vec<u64> = (0..10).map(|_| rng.gen_range(0..volume)).collect();
        kills.push(0);
        for (i, k) in kills.into_iter().enumerate() {
            let dir = temp_dir(&format!("kill-{seed}-{i}"));
            failpoint::arm(k);
            let (acked, done) =
                run_grouped(&dir, &sizes).unwrap_or_else(|| panic!("budget {k} did not crash"));
            failpoint::disarm();
            assert!(acked <= done);

            // Recovery (disarmed = the next process after the crash).
            let s = Session::open_with(&dir, crash_cfg())
                .unwrap_or_else(|e| panic!("kill after {k} bytes: recovery failed: {e}"));
            let got = canon(s.db());
            // The recovered state must be the `s`-commit prefix for some
            // `s >= acked` (acks never lost; unsynced appends and the
            // one torn in-flight record may or may not have landed).
            let matched = (acked..=(done + 1).min(COMMITS)).any(|n| oracle[n] == got);
            assert!(
                matched,
                "seed {seed}, kill after {k} bytes: recovered state is not a \
                 prefix in [{acked}, {}].\n got: {got:?}",
                done + 1
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}
