//! Randomized (seeded) equivalence tests for the leapfrog WCOJ path:
//! random conjunctive programs — cyclic and acyclic join shapes,
//! recursion, negation, constants, filters — must produce
//! **byte-identical** relation state whether `eval_conj` routes atom
//! groups through the worst-case-optimal kernel (`WcojMode::Auto` /
//! `Force`) or schedules every conjunct pairwise (`Off`), under both the
//! sequential walk and the 4-worker stratum scheduler. In the style of
//! `parallel_determinism`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rel_core::{Database, Name, Relation, Tuple, Value};
use rel_engine::{materialize_with_threads, SharedIndexCache, WcojMode};
use std::collections::BTreeMap;

/// A random binary base relation over a small domain, so joins hit,
/// triangles occur, and negations sometimes empty out.
fn random_edges(rng: &mut StdRng, domain: i64) -> Relation {
    let len = rng.gen_range(6..40);
    let mut rel = Relation::new();
    for _ in 0..len {
        rel.insert(Tuple::from(vec![
            Value::int(rng.gen_range(0..domain)),
            Value::int(rng.gen_range(0..domain)),
        ]));
    }
    rel
}

/// Generate a random program whose rule bodies are multi-atom
/// conjunctions in the shapes the WCOJ planner targets: triangles,
/// 4-cycles, length-3 chains, stars, cyclic recursion
/// (path-with-closure), plus deliberately ineligible conjuncts
/// (negation, comparisons, repeated variables) mixed in so the planner
/// must split work between the kernel and the binary path.
fn random_conj_program(rng: &mut StdRng, n_base: usize, n_derived: usize) -> (String, Database) {
    let mut db = Database::new();
    let domain = rng.gen_range(5..10);
    let mut sources: Vec<String> = Vec::new();
    for b in 0..n_base {
        let name = format!("E{b}");
        db.set(&name, random_edges(rng, domain));
        sources.push(name);
    }
    let mut src = String::new();
    for d in 0..n_derived {
        let name = format!("P{d}");
        let pick = |rng: &mut StdRng, sources: &[String]| {
            sources[rng.gen_range(0..sources.len())].clone()
        };
        let (a, b, c) = (
            pick(rng, &sources),
            pick(rng, &sources),
            pick(rng, &sources),
        );
        match rng.gen_range(0..7) {
            0 => {
                // Triangle: the canonical cyclic query.
                src.push_str(&format!(
                    "def {name}(x,y,z) : {a}(x,y) and {b}(y,z) and {c}(x,z)\n"
                ));
            }
            1 => {
                // 4-cycle.
                src.push_str(&format!(
                    "def {name}(x,z) : exists((y, w) | {a}(x,y) and {b}(y,z) \
                     and {c}(z,w) and {a}(w,x))\n"
                ));
            }
            2 => {
                // Chain with a projection (acyclic 3-way join).
                src.push_str(&format!(
                    "def {name}(x,w) : exists((y, z) | {a}(x,y) and {b}(y,z) and {c}(z,w))\n"
                ));
            }
            3 => {
                // Star + negation: the Not must defer until the atoms
                // (possibly via WCOJ) bind its variables.
                src.push_str(&format!(
                    "def {name}(x) : exists((y, z) | {a}(x,y) and {b}(x,z) and {c}(y,z) \
                     and not {a}(z,x))\n"
                ));
            }
            4 => {
                // Cyclic recursion: path-with-closure, a 3-atom recursive
                // body whose Δ variants must also route correctly.
                src.push_str(&format!("def {name}(x,y) : {a}(x,y)\n"));
                src.push_str(&format!(
                    "def {name}(x,y) : exists((z, w) | {a}(x,z) and {name}(z,w) and {b}(w,y))\n"
                ));
            }
            5 => {
                // Triangle with a comparison filter and a repeated-variable
                // atom (both WCOJ-ineligible conjuncts).
                src.push_str(&format!(
                    "def {name}(x,y,z) : {a}(x,y) and {b}(y,z) and {c}(x,z) \
                     and x < z and not {b}(x,x)\n"
                ));
            }
            _ => {
                // Two overlapping triangles sharing an edge variable pair
                // (one 5-atom connected component).
                src.push_str(&format!(
                    "def {name}(x,z,w) : exists((y) | {a}(x,y) and {b}(y,z) and {c}(x,z) \
                     and {a}(z,w) and {b}(x,w))\n"
                ));
            }
        }
        sources.push(name);
    }
    // A sink unioning first columns keeps every derived predicate alive.
    src.push_str("def output(x) :");
    let tails: Vec<String> = (0..n_derived).map(|d| format!(" P{d}(x)")).collect();
    src.push_str(&tails.join(" or"));
    src.push('\n');
    (src, db)
}

fn flatten(rels: &BTreeMap<Name, Relation>) -> Vec<(Name, Vec<Tuple>)> {
    rels.iter()
        .map(|(n, r)| (n.clone(), r.iter().cloned().collect()))
        .collect()
}

#[test]
fn wcoj_off_auto_forced_agree_byte_for_byte() {
    let mut rng = StdRng::seed_from_u64(0x0C0E_BEEF);
    let mut covered = 0;
    let mut routed_cases = 0;
    for case in 0..40 {
        let (src, db) = random_conj_program(&mut rng, 3, 5);
        let module = match rel_sema::compile(&src) {
            Ok(m) => m,
            // Rejection is deterministic; skipping is sound but must stay
            // rare (asserted below).
            Err(_) => continue,
        };
        covered += 1;
        let baseline = materialize_with_threads(
            &module,
            &db,
            SharedIndexCache::with_wcoj(WcojMode::Off),
            1,
        );
        for (mode, workers) in [
            (WcojMode::Off, 4),
            (WcojMode::Auto, 1),
            (WcojMode::Auto, 4),
            (WcojMode::Force, 1),
            (WcojMode::Force, 4),
        ] {
            let cache = SharedIndexCache::with_wcoj(mode);
            let run = materialize_with_threads(&module, &db, cache.clone(), workers);
            if mode == WcojMode::Force && workers == 1 && cache.wcoj_join_count() > 0 {
                routed_cases += 1;
            }
            match (&baseline, &run) {
                (Ok(base), Ok(got)) => assert_eq!(
                    flatten(base),
                    flatten(got),
                    "case {case}: {mode:?}/{workers}w diverged from binary \
                     joins\nprogram:\n{src}"
                ),
                (Err(eb), Err(eg)) => assert_eq!(
                    std::mem::discriminant(eb),
                    std::mem::discriminant(eg),
                    "case {case}: error kinds diverged: {eb} vs {eg}\nprogram:\n{src}"
                ),
                (b, g) => panic!(
                    "case {case}: one path errored, the other succeeded \
                     ({mode:?}/{workers}w): base={b:?} got={g:?}\nprogram:\n{src}"
                ),
            }
        }
    }
    assert!(covered >= 30, "only {covered}/40 generated programs compiled");
    assert!(
        routed_cases >= covered / 2,
        "the WCOJ path routed in only {routed_cases}/{covered} forced cases — \
         the generator no longer produces eligible shapes"
    );
}

#[test]
fn wcoj_shared_cache_across_modes_is_sound() {
    // One shared cache handle driven through alternating modes and worker
    // counts (the Session::set_wcoj pattern): generation-keyed tries and
    // indexes must never leak a wrong answer across the switches.
    let mut rng = StdRng::seed_from_u64(0x7121E5);
    let (src, db) = random_conj_program(&mut rng, 3, 5);
    let module = rel_sema::compile(&src).expect("seeded program compiles");
    let baseline = materialize_with_threads(
        &module,
        &db,
        SharedIndexCache::with_wcoj(WcojMode::Off),
        1,
    )
    .expect("baseline evaluates");
    let cache = SharedIndexCache::default();
    for (mode, workers) in [
        (WcojMode::Force, 1),
        (WcojMode::Off, 4),
        (WcojMode::Auto, 2),
        (WcojMode::Force, 4),
        (WcojMode::Off, 1),
    ] {
        cache.set_wcoj(mode);
        let rels = materialize_with_threads(&module, &db, cache.clone(), workers)
            .expect("evaluates");
        assert_eq!(
            flatten(&baseline),
            flatten(&rels),
            "{mode:?}/{workers}w diverged with a shared cache"
        );
    }
}

#[test]
fn wcoj_prepared_transactions_agree_with_binary_sessions() {
    // Two sessions over the same data, one forced through the kernel and
    // one pinned to binary joins, run an identical stream of prepared
    // point queries and edge-inserting transactions (with a cyclic-join
    // constraint in scope): outputs and final databases must match
    // byte-for-byte.
    use rel_engine::{Params, Session};
    let mut rng = StdRng::seed_from_u64(0xACE0FBA5E);
    let mut db = Database::new();
    db.set("E", random_edges(&mut rng, 8));
    // The constraint holds by construction (a triangle's closing edge is
    // in E) but forces the cyclic join to be evaluated on every commit.
    let lib = "def Tri(x,y,z) : E(x,y) and E(y,z) and E(x,z)\n\
               ic closing_edge(x, y, z) requires Tri(x, y, z) implies E(x, z)";
    let mk = |mode: WcojMode| {
        let mut s = Session::new(db.clone()).with_library(lib);
        s.set_wcoj(mode);
        s
    };
    let mut on = mk(WcojMode::Force);
    let mut off = mk(WcojMode::Off);
    let probe_src = "def output(y, z) : E(?x, y) and E(y, z) and E(?x, z)";
    let insert_src = "def insert(:E, x, y) : x = ?src and y = ?dst";
    let probe_on = on.prepare(probe_src).unwrap();
    let probe_off = off.prepare(probe_src).unwrap();
    let ins_on = on.prepare(insert_src).unwrap();
    let ins_off = off.prepare(insert_src).unwrap();
    for step in 0..30i64 {
        let x = step % 8;
        let a = probe_on.execute_with(&on, &Params::new().set("x", x)).unwrap();
        let b = probe_off.execute_with(&off, &Params::new().set("x", x)).unwrap();
        assert_eq!(
            a.iter().cloned().collect::<Vec<_>>(),
            b.iter().cloned().collect::<Vec<_>>(),
            "prepared probe diverged at step {step}"
        );
        let (src_v, dst_v) = ((step * 5 + 1) % 8, (step * 3 + 2) % 8);
        let params = Params::new().set("src", src_v).set("dst", dst_v);
        let ra = {
            let mut txn = on.begin();
            txn.run_prepared(&ins_on, &params).unwrap();
            txn.commit()
        };
        let rb = {
            let mut txn = off.begin();
            txn.run_prepared(&ins_off, &params).unwrap();
            txn.commit()
        };
        match (ra, rb) {
            (Ok(oa), Ok(ob)) => assert_eq!(oa.inserted, ob.inserted, "step {step}"),
            (Err(ea), Err(eb)) => assert_eq!(
                std::mem::discriminant(&ea),
                std::mem::discriminant(&eb),
                "step {step}: commit errors diverged: {ea} vs {eb}"
            ),
            (a, b) => panic!("step {step}: commit outcomes diverged: {a:?} vs {b:?}"),
        }
        assert_eq!(
            on.db().get("E").map(|r| r.iter().cloned().collect::<Vec<_>>()),
            off.db().get("E").map(|r| r.iter().cloned().collect::<Vec<_>>()),
            "databases diverged at step {step}"
        );
    }
    assert!(
        on.db().get("E").map(Relation::len) > db.get("E").map(Relation::len),
        "the transaction stream never grew the base relation"
    );
}
