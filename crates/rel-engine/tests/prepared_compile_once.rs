//! Acceptance gate for client API v2: a prepared query re-executed N
//! times — including rebinding its parameters every time — compiles
//! **exactly once**, asserted against `rel-sema`'s process-wide
//! compilation counter.
//!
//! This lives in its own integration-test binary (one `#[test]`) so no
//! sibling test can bump the global counter concurrently.

use rel_core::database::figure1_database;
use rel_engine::{Params, Session};

#[test]
fn n_executes_and_rebinds_compile_exactly_once() {
    let mut session = Session::new(figure1_database());

    let before = rel_sema::compilations();
    let prepared = session
        .prepare("def output(x, y) : ProductPrice(x, y) and y > ?min")
        .expect("prepares");
    let after_prepare = rel_sema::compilations();
    assert_eq!(after_prepare, before + 1, "prepare compiles exactly once");

    // 100 executions, a fresh parameter binding each time: zero further
    // compilations — parameter binding is relation injection, never a
    // recompile.
    let mut total_rows = 0usize;
    for i in 0..100i64 {
        let out = prepared
            .execute_with(&session, &Params::new().set("min", i % 45))
            .expect("executes");
        total_rows += out.len();
    }
    assert!(total_rows > 0, "the workload actually produced rows");
    assert_eq!(
        rel_sema::compilations(),
        after_prepare,
        "re-execution or rebinding triggered a recompilation"
    );

    // Executing against a *changed* snapshot does not recompile either.
    session.db_mut().insert("ProductPrice", rel_core::tuple!["P9", 99]);
    let out = prepared
        .execute_with(&session, &Params::new().set("min", 90))
        .expect("executes on new snapshot");
    assert_eq!(out.rows::<(String, i64)>().unwrap(), vec![("P9".to_string(), 99)]);
    assert_eq!(rel_sema::compilations(), after_prepare);

    // And the one-shot path shares the same cache: re-running an
    // identical source string through `query` compiles at most once.
    session.query("def output(x) : ProductPrice(x, _)").unwrap();
    let after_query = rel_sema::compilations();
    session.query("def output(x) : ProductPrice(x, _)").unwrap();
    assert_eq!(rel_sema::compilations(), after_query);
}
