//! Crash-point-tested recovery: the durability tentpole's proof.
//!
//! The core property — **recovery is byte-identical to a prefix of the
//! committed history** — is driven two ways:
//!
//! * randomized crash points: seeded transaction streams run against a
//!   durable session whose writes die after `k` bytes (for `k` sampled
//!   across the stream's whole write volume, hitting WAL appends, fsyncs,
//!   snapshot writes, renames and truncations alike), then the store is
//!   recovered and compared against an in-memory oracle;
//! * handcrafted damage: torn tails, CRC bit-flips (final vs mid-log),
//!   zero-length and empty stores, and read-only degradation.
//!
//! The crash invariant is `recovered == oracle[s]` for some `s` with
//! `acked <= s <= acked + 1`: every acknowledged commit survives, and at
//! most the one in-flight record at the crash may additionally have
//! reached disk (its fsync failed after the bytes landed).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rel_core::database::Delta;
use rel_core::{tuple, Database, RelError, Tuple};
use rel_engine::durability::{failpoint, DurabilityConfig, FsyncPolicy};
use rel_engine::{wal, Session};
use std::path::PathBuf;
use std::sync::Mutex;

/// The failpoint budget is process-global: tests that arm it must not
/// interleave with each other (or trip a disarmed test's I/O).
static FAILPOINT_LOCK: Mutex<()> = Mutex::new(());

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rel-crash-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn cfg(fsync: FsyncPolicy) -> DurabilityConfig {
    DurabilityConfig {
        fsync,
        fsync_batch: 2,
        // Compact aggressively so crash points land inside snapshot
        // writes, renames, truncations and pruning — not just appends.
        compact_after_commits: 3,
        compact_after_bytes: 1 << 20,
    }
}

/// One staged operation inside a transaction.
#[derive(Clone, Copy, Debug)]
enum Op {
    Ins(&'static str, i64, i64),
    Del(&'static str, i64, i64),
}

const RELS: [&str; 3] = ["R", "S", "T"];

/// A seeded stream of transactions over a small tuple domain (so deletes
/// hit real tuples and commits cancel out now and then).
fn stream(seed: u64, txns: usize) -> Vec<Vec<Op>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..txns)
        .map(|_| {
            let ops = rng.gen_range(1..=4);
            (0..ops)
                .map(|_| {
                    let rel = RELS[rng.gen_range(0..RELS.len())];
                    let a = rng.gen_range(0..6);
                    let b = rng.gen_range(0..6);
                    if rng.gen_range(0..4) == 0 {
                        Op::Del(rel, a, b)
                    } else {
                        Op::Ins(rel, a, b)
                    }
                })
                .collect()
        })
        .collect()
}

/// Run one transaction; `Err` means the durable layer crashed mid-commit.
fn run_txn(s: &mut Session, ops: &[Op]) -> Result<(), RelError> {
    let mut txn = s.begin();
    for op in ops {
        match *op {
            Op::Ins(rel, a, b) => {
                txn.stage_insert(rel, tuple![a, b]);
            }
            Op::Del(rel, a, b) => {
                txn.stage_delete(rel, &tuple![a, b]);
            }
        }
    }
    txn.commit().map(|_| ())
}

/// Canonical content image of a database: relation -> sorted tuples,
/// dropping empty relations (delta replay never re-creates a relation
/// that ended up with no tuples, and the snapshot codec canonicalizes
/// them away — they carry no facts).
fn canon(db: &Database) -> Vec<(String, Vec<Tuple>)> {
    db.iter()
        .filter(|(_, r)| !r.is_empty())
        .map(|(n, r)| (n.to_string(), r.iter().cloned().collect()))
        .collect()
}

/// Oracle: the canonical image after each commit count `0..=txns.len()`,
/// computed on a plain in-memory session.
fn oracle_states(txns: &[Vec<Op>]) -> Vec<Vec<(String, Vec<Tuple>)>> {
    let mut s = Session::new(Database::new());
    let mut states = vec![canon(s.db())];
    for ops in txns {
        run_txn(&mut s, ops).expect("oracle commits cannot fail");
        states.push(canon(s.db()));
    }
    states
}

/// Total bytes the durable layer writes for this stream (WAL + snapshots),
/// measured by arming an effectively unlimited budget and reading back
/// what remains.
fn write_volume(txns: &[Vec<Op>], cfg: DurabilityConfig, dir: &PathBuf) -> u64 {
    const HUGE: u64 = 1 << 40;
    failpoint::arm(HUGE);
    let mut s = Session::open_with(dir, cfg).expect("clean open");
    assert!(s.is_durable(), "durability must be enabled for the crash suite");
    for ops in txns {
        run_txn(&mut s, ops).expect("unlimited budget cannot crash");
    }
    drop(s);
    let spent = HUGE - failpoint::remaining().expect("armed");
    failpoint::disarm();
    spent
}

/// The randomized heart of the suite: for every sampled kill-point `k`,
/// replay the stream with the durable layer dying after `k` bytes, then
/// recover and hold the result to the prefix invariant.
fn crash_points_recover_prefix(seed: u64, fsync: FsyncPolicy) {
    let _guard = FAILPOINT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let cfg = cfg(fsync);
    let txns = stream(seed, 12);
    let oracle = oracle_states(&txns);

    let volume_dir = temp_dir(&format!("vol-{seed}-{fsync:?}"));
    let volume = write_volume(&txns, cfg, &volume_dir);
    let _ = std::fs::remove_dir_all(&volume_dir);
    assert!(volume > 0, "the stream must write something");

    let mut rng = StdRng::seed_from_u64(seed ^ 0xDEAD_BEEF);
    let mut kill_points: Vec<u64> = (0..20).map(|_| rng.gen_range(0..volume)).collect();
    // Pin the boundaries too: die on the very first byte / survive all.
    kill_points.push(0);
    kill_points.push(volume);

    for (i, k) in kill_points.into_iter().enumerate() {
        let dir = temp_dir(&format!("kill-{seed}-{fsync:?}-{i}"));
        failpoint::arm(k);
        let mut acked = 0usize;
        let crashed = (|| {
            let mut s = match Session::open_with(&dir, cfg) {
                Ok(s) => s,
                Err(_) => return true,
            };
            if !s.is_durable() {
                // Budget 0 can already kill the open; the store is empty.
                return true;
            }
            for ops in &txns {
                match run_txn(&mut s, ops) {
                    Ok(()) => acked += 1,
                    Err(_) => return true,
                }
            }
            false
        })();
        failpoint::disarm();
        assert!(
            crashed || acked == txns.len(),
            "kill after {k} bytes: stream neither crashed nor finished"
        );

        // Recovery (failpoint disarmed = the next process).
        let s = Session::open_with(&dir, cfg)
            .unwrap_or_else(|e| panic!("kill after {k} bytes: recovery failed: {e}"));
        let got = canon(s.db());
        let lo = &oracle[acked];
        let hi = oracle.get(acked + 1);
        assert!(
            got == *lo || hi == Some(&got),
            "kill after {k} bytes ({fsync:?}): recovered state is not the \
             {acked}-or-{}-commit prefix.\n got: {got:?}\n oracle[{acked}]: {lo:?}",
            acked + 1,
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn random_crash_points_fsync_off() {
    crash_points_recover_prefix(11, FsyncPolicy::Off);
}

#[test]
fn random_crash_points_fsync_batch() {
    crash_points_recover_prefix(22, FsyncPolicy::Batch);
}

#[test]
fn random_crash_points_fsync_always() {
    crash_points_recover_prefix(33, FsyncPolicy::Always);
}

#[test]
fn crashed_session_stops_accepting_commits() {
    // Once the durable layer dies, later commits on the same session must
    // keep failing (never silently ack into a broken log).
    let _guard = FAILPOINT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let dir = temp_dir("dead-session");
    let cfg = cfg(FsyncPolicy::Off);
    let mut s = Session::open_with(&dir, cfg).unwrap();
    run_txn(&mut s, &[Op::Ins("R", 1, 1)]).unwrap();
    failpoint::arm(4); // enough for a partial record only
    let err = run_txn(&mut s, &[Op::Ins("R", 2, 2)]).unwrap_err();
    assert!(matches!(err, RelError::Io(_)), "{err}");
    assert!(run_txn(&mut s, &[Op::Ins("R", 3, 3)]).is_err(), "poisoned writer must refuse");
    failpoint::disarm();
    drop(s);
    // Only the pre-crash commit survives; the torn record is truncated.
    let s = Session::open_with(&dir, cfg).unwrap();
    assert_eq!(canon(s.db()), vec![("R".to_string(), vec![tuple![1, 1]])]);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_tail_recovers_prefix_and_reopens_for_append() {
    let dir = temp_dir("torn");
    let cfg = cfg(FsyncPolicy::Off);
    let mut s = Session::open_with(&dir, cfg).unwrap();
    for n in 0..2 {
        run_txn(&mut s, &[Op::Ins("R", n, n)]).unwrap();
    }
    drop(s);
    // A torn half-record at the tail (as a crash mid-append leaves it).
    let wal_path = dir.join(wal::WAL_FILE);
    let good = std::fs::read(&wal_path).unwrap();
    let mut bytes = good.clone();
    bytes.extend_from_slice(&wal::encode_record(3, &Delta::default())[..7]);
    std::fs::write(&wal_path, &bytes).unwrap();
    let mut s = Session::open_with(&dir, cfg).unwrap();
    assert_eq!(s.db().get("R").unwrap().len(), 2, "prefix recovered past the torn tail");
    // The reopened writer truncated the tail; the next commit appends at
    // the record boundary and a clean reopen sees all three commits.
    run_txn(&mut s, &[Op::Ins("R", 5, 5)]).unwrap();
    drop(s);
    let s = Session::open_with(&dir, cfg).unwrap();
    assert_eq!(s.db().get("R").unwrap().len(), 3);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bit_flip_in_final_record_is_clean_crash_point() {
    let dir = temp_dir("flip-final");
    let cfg = cfg(FsyncPolicy::Off);
    let mut s = Session::open_with(&dir, cfg).unwrap();
    run_txn(&mut s, &[Op::Ins("R", 1, 1)]).unwrap();
    run_txn(&mut s, &[Op::Ins("R", 2, 2)]).unwrap();
    drop(s);
    let wal_path = dir.join(wal::WAL_FILE);
    let mut bytes = std::fs::read(&wal_path).unwrap();
    let last = bytes.len() - 3;
    bytes[last] ^= 0x10;
    std::fs::write(&wal_path, &bytes).unwrap();
    let s = Session::open_with(&dir, cfg).unwrap();
    assert_eq!(
        canon(s.db()),
        vec![("R".to_string(), vec![tuple![1, 1]])],
        "the damaged final record is dropped, the prefix survives"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bit_flip_mid_log_is_hard_error_with_offset() {
    let dir = temp_dir("flip-mid");
    // No compaction: all three records must stay in the log.
    let cfg = DurabilityConfig { fsync: FsyncPolicy::Off, ..Default::default() };
    let mut s = Session::open_with(&dir, cfg).unwrap();
    for n in 0..3 {
        run_txn(&mut s, &[Op::Ins("R", n, n)]).unwrap();
    }
    drop(s);
    let wal_path = dir.join(wal::WAL_FILE);
    let mut bytes = std::fs::read(&wal_path).unwrap();
    let mid = wal::RECORD_HEADER + 9; // first record's body; valid data after
    bytes[mid] ^= 0x10;
    std::fs::write(&wal_path, &bytes).unwrap();
    let err = Session::open_with(&dir, cfg).unwrap_err();
    match err {
        RelError::Corrupt(ref c) => {
            assert!(c.path.contains("wal.log"), "{err}");
            assert!(c.offset < bytes.len() as u64, "{err}");
        }
        ref other => panic!("expected hard corruption, got {other}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn empty_and_zero_length_stores_open_clean() {
    let cfg = cfg(FsyncPolicy::Off);
    // Brand-new directory.
    let dir = temp_dir("fresh");
    let s = Session::open_with(&dir, cfg).unwrap();
    assert!(s.is_durable());
    assert_eq!(s.db().total_tuples(), 0);
    drop(s);
    // Existing directory with a zero-length WAL (crash right at create).
    std::fs::write(dir.join(wal::WAL_FILE), []).unwrap();
    let mut s = Session::open_with(&dir, cfg).unwrap();
    assert!(s.is_durable());
    assert_eq!(s.db().total_tuples(), 0);
    run_txn(&mut s, &[Op::Ins("R", 1, 1)]).unwrap();
    drop(s);
    let s = Session::open_with(&dir, cfg).unwrap();
    assert_eq!(s.db().total_tuples(), 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unwritable_store_degrades_to_ephemeral_with_recovered_data() {
    // A store that recovers but cannot be appended to (read-only volume):
    // the session serves the recovered data ephemerally instead of
    // failing. Simulated through the failpoint gate (an exhausted budget
    // fails exactly the reopen-for-append path; recovery itself is pure
    // reads), since permission bits don't bind under root.
    let _guard = FAILPOINT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let dir = temp_dir("readonly");
    let cfg = cfg(FsyncPolicy::Off);
    let mut s = Session::open_with(&dir, cfg).unwrap();
    run_txn(&mut s, &[Op::Ins("R", 1, 1)]).unwrap();
    drop(s);
    failpoint::arm(0);
    let mut s = Session::open_with(&dir, cfg).unwrap();
    failpoint::disarm();
    assert!(!s.is_durable(), "append-less store must degrade, not fail");
    assert_eq!(s.db().total_tuples(), 1, "recovered data is still served");
    // Commits work in memory and leave the store untouched.
    run_txn(&mut s, &[Op::Ins("R", 2, 2)]).unwrap();
    drop(s);
    let s = Session::open_with(&dir, cfg).unwrap();
    assert!(s.is_durable());
    assert_eq!(s.db().total_tuples(), 1);
    let _ = std::fs::remove_dir_all(&dir);
}
