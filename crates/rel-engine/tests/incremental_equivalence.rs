//! Randomized (seeded) incremental-vs-full equivalence: random programs
//! with recursion, negation, and aggregation, hit with random insert
//! **and delete** deltas, must produce **byte-identical** relation state
//! through the incremental engine ([`rel_engine::materialize_incremental`]
//! and the session/transaction wiring) and through full
//! re-materialization (`REL_INCREMENTAL=0` / `Session::set_incremental(false)`).
//!
//! Byte-identical means the flattened `(name, ordered tuples)` listing
//! matches exactly — relations are sorted sets, so set equality is order
//! equality. Each round also cross-checks the 4-worker parallel scheduler
//! (`materialize_with_threads(…, 4)`), and the whole suite runs again
//! under the CI matrix's `REL_EVAL_THREADS=4` and `REL_INCREMENTAL=0`
//! legs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rel_core::{Database, Name, Relation, Tuple, Value};
use rel_engine::{
    materialize_incremental, materialize_with_cache, materialize_with_threads, PreState, Session,
    SharedIndexCache,
};
use std::collections::BTreeMap;

const DOMAIN: i64 = 9;

fn random_edges(rng: &mut StdRng) -> Relation {
    let len = rng.gen_range(4..28);
    let mut rel = Relation::new();
    for _ in 0..len {
        rel.insert(Tuple::from(vec![
            Value::int(rng.gen_range(0..DOMAIN)),
            Value::int(rng.gen_range(0..DOMAIN)),
        ]));
    }
    rel
}

/// Random multi-stratum program over `n_base` binary base relations:
/// unions, joins, transitive closures (recursive monotone strata),
/// differences (negation), and aggregation roll-ups, plus a sink reading
/// everything. Same shape as the `parallel_determinism` generator.
fn random_program(rng: &mut StdRng, n_base: usize, n_derived: usize) -> (String, Database) {
    let mut db = Database::new();
    let mut sources: Vec<String> = Vec::new();
    for b in 0..n_base {
        let name = format!("E{b}");
        db.set(&name, random_edges(rng));
        sources.push(name);
    }
    let mut src = String::from("def agg_sum[{A}] : reduce[add, A]\n");
    for d in 0..n_derived {
        let name = format!("P{d}");
        let a = sources[rng.gen_range(0..sources.len())].clone();
        let b = sources[rng.gen_range(0..sources.len())].clone();
        match rng.gen_range(0..5) {
            0 => {
                src.push_str(&format!("def {name}(x,y) : {a}(x,y)\n"));
                src.push_str(&format!("def {name}(x,y) : {b}(x,y)\n"));
            }
            1 => {
                src.push_str(&format!(
                    "def {name}(x,y) : exists((z) | {a}(x,z) and {b}(z,y))\n"
                ));
            }
            2 => {
                src.push_str(&format!("def {name}(x,y) : {a}(x,y)\n"));
                src.push_str(&format!(
                    "def {name}(x,y) : exists((z) | {a}(x,z) and {name}(z,y))\n"
                ));
            }
            3 => {
                src.push_str(&format!(
                    "def {name}(x,y) : {a}(x,y) and not {b}(x,y)\n"
                ));
            }
            _ => {
                src.push_str(&format!(
                    "def {name}(x,s) : exists((q) | {a}(x,q)) and s = agg_sum[(v) : {a}(x,v)]\n"
                ));
            }
        }
        sources.push(name);
    }
    src.push_str("def output(x,y) :");
    let tails: Vec<String> = (0..n_derived).map(|d| format!(" P{d}(x,y)")).collect();
    src.push_str(&tails.join(" or"));
    src.push('\n');
    (src, db)
}

/// One random op against a base relation: an insert of a fresh-ish tuple
/// or a delete of an existing one.
#[derive(Clone, Debug)]
enum Op {
    Insert(String, Tuple),
    Delete(String, Tuple),
}

fn random_ops(rng: &mut StdRng, db: &Database, n_base: usize) -> Vec<Op> {
    let mut ops = Vec::new();
    for _ in 0..rng.gen_range(1..6) {
        let rel = format!("E{}", rng.gen_range(0..n_base));
        let delete = rng.gen_bool(0.4);
        if delete {
            if let Some(r) = db.get(&rel) {
                if !r.is_empty() {
                    let idx = rng.gen_range(0..r.len());
                    let t = r.iter().nth(idx).expect("index in range").clone();
                    ops.push(Op::Delete(rel, t));
                    continue;
                }
            }
        }
        ops.push(Op::Insert(
            rel,
            Tuple::from(vec![
                Value::int(rng.gen_range(0..DOMAIN)),
                Value::int(rng.gen_range(0..DOMAIN)),
            ]),
        ));
    }
    ops
}

fn apply_ops(db: &mut Database, ops: &[Op]) {
    for op in ops {
        match op {
            Op::Insert(rel, t) => {
                db.insert(rel, t.clone());
            }
            Op::Delete(rel, t) => {
                if db.defines(rel) {
                    db.get_mut(rel).remove(t);
                }
            }
        }
    }
}

fn flatten(rels: &BTreeMap<Name, Relation>) -> Vec<(Name, Vec<Tuple>)> {
    rels.iter()
        .map(|(n, r)| (n.clone(), r.iter().cloned().collect()))
        .collect()
}

#[test]
fn incremental_matches_full_rematerialization_under_random_deltas() {
    let mut rng = StdRng::seed_from_u64(0x01C0_DE17A);
    let mut covered = 0;
    for case in 0..44 {
        let (src, db0) = random_program(&mut rng, 3, 6);
        let module = match rel_sema::compile(&src) {
            Ok(m) => m,
            Err(_) => continue, // deterministic rejection; coverage asserted below
        };
        covered += 1;
        let mut db = db0;
        let rels0 = materialize_with_cache(&module, &db, SharedIndexCache::default())
            .expect("initial state evaluates");
        let mut pre = PreState::capture(&db, &rels0);
        // Three chained delta rounds: each round's incremental result
        // becomes the next round's pre-state, as a session would chain
        // commits.
        for round in 0..3 {
            let mut next = db.clone();
            let ops = random_ops(&mut rng, &next, 3);
            apply_ops(&mut next, &ops);
            let inc = materialize_incremental(&module, &pre, &next, SharedIndexCache::default())
                .expect("incremental evaluates");
            let full = materialize_with_cache(&module, &next, SharedIndexCache::default())
                .expect("full evaluates");
            assert_eq!(
                flatten(&inc),
                flatten(&full),
                "case {case} round {round}: incremental diverged from full\n\
                 ops: {ops:?}\nprogram:\n{src}"
            );
            let par = materialize_with_threads(&module, &next, SharedIndexCache::default(), 4)
                .expect("parallel evaluates");
            assert_eq!(
                flatten(&inc),
                flatten(&par),
                "case {case} round {round}: incremental diverged from the \
                 4-worker scheduler\nprogram:\n{src}"
            );
            pre = PreState::capture(&next, &inc);
            db = next;
        }
    }
    assert!(covered >= 40, "only {covered}/44 generated programs compiled");
}

#[test]
fn incremental_and_full_sessions_commit_identically() {
    // Two sessions share a generated program as their library and replay
    // the same random transaction stream — one incremental, one forced to
    // full re-materialization. After every commit the databases and the
    // materialized program state must agree exactly.
    let mut rng = StdRng::seed_from_u64(0x5E55_1085);
    let mut covered = 0;
    for case in 0..12 {
        let (src, db) = random_program(&mut rng, 3, 5);
        if rel_sema::compile(&src).is_err() {
            continue;
        }
        covered += 1;
        let mut inc = Session::new(db.clone()).with_library(&src);
        inc.set_incremental(true);
        let mut full = Session::new(db).with_library(&src);
        full.set_incremental(false);
        for round in 0..5 {
            let ops = random_ops(&mut rng, inc.db(), 3);
            // Occasionally feed a derived relation back into a base one
            // through a compiled step — both sessions run the identical
            // source.
            let run_step = rng
                .gen_bool(0.3)
                .then(|| format!("def insert(:E{}, x, y) : P1(x, y)", rng.gen_range(0..3)));
            for s in [&mut inc, &mut full] {
                let mut txn = s.begin();
                for op in &ops {
                    match op {
                        Op::Insert(rel, t) => {
                            txn.stage_insert(rel, t.clone());
                        }
                        Op::Delete(rel, t) => {
                            txn.stage_delete(rel, t);
                        }
                    }
                }
                if let Some(step) = &run_step {
                    txn.run(step).expect("run step");
                }
                txn.commit().expect("commit");
            }
            assert_eq!(
                inc.db(),
                full.db(),
                "case {case} round {round}: databases diverged\nprogram:\n{src}"
            );
            let a = inc.eval("", "output").expect("incremental eval");
            let b = full.eval("", "output").expect("full eval");
            let av: Vec<Tuple> = a.iter().cloned().collect();
            let bv: Vec<Tuple> = b.iter().cloned().collect();
            assert_eq!(av, bv, "case {case} round {round}: outputs diverged");
        }
    }
    assert!(covered >= 8, "only {covered}/12 generated programs compiled");
}
