//! Isolated-process assertions for [`Prepared::execute_many`]: the whole
//! batch must be served from **one** database snapshot and **zero**
//! recompilations. Both counters ([`rel_core::database::snapshots`],
//! [`rel_sema::compilations`]) are process-global, so — like
//! `prepared_compile_once` — this lives in its own integration binary and
//! keeps every counter-sensitive assertion inside a single `#[test]`.

use rel_core::database::{self, figure1_database};
use rel_engine::{Params, Session};

#[test]
fn execute_many_takes_one_snapshot_and_compiles_nothing() {
    let s = Session::new(figure1_database());
    let q = s
        .prepare("def output(x, y) : ProductPrice(x, y) and y > ?min")
        .expect("prepares");

    let compilations_before = rel_sema::compilations();
    let snapshots_before = database::snapshots();

    let batches: Vec<Params> =
        (0..100).map(|i| Params::new().set("min", i % 45)).collect();
    let outs = q.execute_many(&s, &batches).expect("batch executes");
    assert_eq!(outs.len(), batches.len());

    assert_eq!(
        rel_sema::compilations(),
        compilations_before,
        "execute_many must reuse the prepared module (compile-once)"
    );
    let snapshots = database::snapshots() - snapshots_before;
    assert_eq!(
        snapshots, 1,
        "execute_many must take exactly one CoW snapshot for the whole batch"
    );

    // The batch path must agree answer-for-answer with one-at-a-time
    // execution (which snapshots per call — that's the cost being
    // amortized).
    let per_call_snapshots_before = database::snapshots();
    for (params, batched) in batches.iter().zip(&outs) {
        let single = q.execute_with(&s, params).expect("single execute");
        assert_eq!(&single, batched);
    }
    assert!(
        database::snapshots() - per_call_snapshots_before >= batches.len() as u64,
        "sanity: the unbatched path snapshots per execution"
    );

    // An empty batch is a no-op: no snapshot, no output.
    let before = database::snapshots();
    assert!(q.execute_many(&s, &[]).unwrap().is_empty());
    assert_eq!(database::snapshots(), before);

    // Validation errors match the one-at-a-time path.
    let err = q
        .execute_many(&s, &[Params::new().set("min", 1).set("nope", 1)])
        .unwrap_err();
    assert!(err.to_string().contains("?nope"), "{err}");
    let err = q
        .execute_many(&s, &[Params::new().set("min", 1), Params::new()])
        .unwrap_err();
    assert!(err.to_string().contains("?min"), "{err}");
}
