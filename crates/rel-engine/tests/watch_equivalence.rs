//! Randomized watch-vs-poll equivalence: for random programs × random
//! commit streams, a mirror maintained purely by applying pushed
//! [`WatchDelta`] batches must equal a fresh re-query after every
//! single commit — the standing-query push path is exactly "poll after
//! every commit", minus the recomputation.
//!
//! The CI matrix reruns this suite under `REL_INCREMENTAL=0` and
//! `REL_EVAL_THREADS=4`; on top of that, each trial randomly flips the
//! session's incremental switch via [`EngineConfig`] and randomly
//! shrinks the watch buffer to one batch (safe here because every
//! commit's delta is drained before the next commit, so nothing lags —
//! lag/resync behavior has its own deterministic tests).

use rel_core::{tuple, Database, Relation, Tuple};
use rel_engine::{EngineConfig, Params, Session, Watch, WatchDelta};

/// xorshift64* — deterministic, seedable, no external crates.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn flip(&mut self) -> bool {
        self.next() & 1 == 0
    }
}

/// Value domain kept tiny so random inserts/deletes collide, overlap,
/// and actually exercise the added/removed diffing.
const DOMAIN: i64 = 6;

/// Program shapes spanning the evaluation features watches must track:
/// flat scans, projection + negation, recursion (transitive closure),
/// parameterized filters, and aggregation.
fn programs() -> Vec<(&'static str, Params)> {
    vec![
        ("def output(x, y) : E(x, y)", Params::new()),
        ("def output(x) : exists((y) | E(x, y)) and not N(x)", Params::new()),
        (
            "def path(x, y) : E(x, y)\n\
             def path(x, z) : exists((y) | path(x, y) and E(y, z))\n\
             def output(x, y) : path(x, y)",
            Params::new(),
        ),
        ("def output(x, y) : E(x, y) and y >= ?min", Params::new().set("min", 2)),
        ("def output[v] : v = count[E]", Params::new()),
    ]
}

struct Watched {
    src: &'static str,
    params: Params,
    watch: Watch,
    mirror: Relation,
}

impl Watched {
    /// Drain every batch the last commit produced into the mirror.
    fn drain(&mut self) {
        while let Some(d) = self.watch.try_recv() {
            self.mirror = d.apply_to(&self.mirror);
        }
    }
}

fn random_tuple(rng: &mut Rng, arity: usize) -> Tuple {
    match arity {
        1 => tuple![rng.below(DOMAIN as u64) as i64],
        _ => tuple![rng.below(DOMAIN as u64) as i64, rng.below(DOMAIN as u64) as i64],
    }
}

fn random_commit(rng: &mut Rng, session: &mut Session) {
    let mut txn = session.begin();
    let ops = 1 + rng.below(4);
    for _ in 0..ops {
        // Noise is outside every watched program's cone: its writes must
        // flow through the O(1) skip without disturbing equivalence.
        let (rel, arity) = match rng.below(4) {
            0 => ("E", 2),
            1 => ("N", 1),
            2 => ("E", 2),
            _ => ("Noise", 1),
        };
        let t = random_tuple(rng, arity);
        if rng.flip() {
            txn.stage_insert(rel, t);
        } else {
            txn.stage_delete(rel, &t);
        }
    }
    txn.commit().expect("random base-fact commits cannot fail");
}

fn run_trial(seed: u64) {
    let mut rng = Rng(seed | 1);
    let cfg = EngineConfig::from_env().incremental(rng.flip());
    let mut session = Session::with_config(Database::new(), cfg);
    if rng.flip() {
        session.set_watch_buffer(1);
    }

    // Seed a few facts so initial snapshots are non-trivial.
    for _ in 0..4 {
        let t = random_tuple(&mut rng, 2);
        session.db_mut().insert("E", t);
    }
    session.db_mut().insert("N", random_tuple(&mut rng, 1));

    let mut watched: Vec<Watched> = programs()
        .into_iter()
        .map(|(src, params)| {
            let prepared = session.prepare(src).expect("program compiles");
            let watch = session.watch(&prepared, &params).expect("watch registers");
            Watched { src, params, watch, mirror: Relation::new() }
        })
        .collect();
    for w in &mut watched {
        let first = w.watch.try_recv().expect("registration pushes the initial snapshot");
        assert_eq!((first.seq, first.snapshot), (0, true), "{}", w.src);
        w.mirror = first.apply_to(&w.mirror);
    }

    for commit in 0..30 {
        random_commit(&mut rng, &mut session);
        for w in &mut watched {
            w.drain();
            // The poll side: recompute the query from scratch on the
            // session's current snapshot.
            let prepared = session.prepare(w.src).expect("program still compiles");
            let fresh = prepared.execute_with(&session, &w.params).expect("fresh poll");
            assert_eq!(
                w.mirror, fresh,
                "seed {seed}, commit {commit}: watch mirror diverged from poll for {}",
                w.src
            );
        }
    }
}

#[test]
fn watch_mirror_matches_poll_across_random_commit_streams() {
    for seed in [3, 1137, 0xDEAD_BEEF, 0x5EED_u64, 982_451_653] {
        run_trial(seed);
    }
}

/// Sequence numbers over a whole random stream: gapless per watch, with
/// snapshots only where a resync is legal (seq 0 here, since every
/// batch is drained before the next commit).
#[test]
fn watch_sequences_are_gapless_across_random_streams() {
    let mut rng = Rng(0xFEED_F00D);
    let mut session = Session::new(Database::new());
    let prepared = session.prepare("def output(x, y) : E(x, y)").unwrap();
    let watch = session.watch(&prepared, &Params::new()).unwrap();
    let mut deltas: Vec<WatchDelta> = vec![watch.try_recv().expect("initial snapshot")];

    for _ in 0..60 {
        random_commit(&mut rng, &mut session);
        while let Some(d) = watch.try_recv() {
            deltas.push(d);
        }
    }
    for (i, d) in deltas.iter().enumerate() {
        assert_eq!(d.seq, i as u64, "delivered sequence numbers must be gapless");
        assert_eq!(d.snapshot, i == 0, "no resync can occur when every batch is drained");
    }
    // Replaying the full stream lands on the current output.
    let state = deltas.iter().fold(Relation::new(), |s, d| d.apply_to(&s));
    assert_eq!(state, prepared.execute_with(&session, &Params::new()).unwrap());
}
