//! Randomized (seeded) equivalence tests for the typed columnar layout:
//! random programs over mixed-type base relations — string joins,
//! int/float joins, negation, aggregation roll-ups, recursion, and a
//! deliberately mixed-type column that forces the boxed-row fallback —
//! must produce **byte-identical** relation state whether `Relation`
//! serves its kernels from schema-specialized columns
//! (`REL_COLUMNAR` on) or boxed `Value` rows (off), crossed with the
//! WCOJ routing mode and the 1-vs-4-worker stratum scheduler. A
//! durability round-trip additionally pins the *on-disk* WAL/snapshot
//! bytes: the byte stream a durable session writes must not depend on
//! which layout produced the deltas.
//!
//! The columnar switch is process-wide (the kernels live in `rel-core`,
//! below any session), so the tests in this binary serialize on a lock
//! and restore the ambient setting before returning.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rel_core::{columnar_enabled, set_columnar_enabled, tuple};
use rel_core::{Database, Name, Relation, Tuple};
use rel_engine::durability::{DurabilityConfig, FsyncPolicy};
use rel_engine::{materialize_with_threads, Session, SharedIndexCache, WcojMode};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Mutex;

/// `set_columnar_enabled` flips a process-global switch; tests that
/// toggle it must not interleave.
static SWITCH_LOCK: Mutex<()> = Mutex::new(());

/// Restores the ambient columnar setting on drop, so a failing assert
/// can't leak a disabled layout into sibling tests.
struct SwitchGuard(bool);

impl SwitchGuard {
    fn hold() -> Self {
        SwitchGuard(columnar_enabled())
    }
}

impl Drop for SwitchGuard {
    fn drop(&mut self) {
        set_columnar_enabled(self.0);
    }
}

const NAMES: [&str; 8] = [
    "alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta",
];

/// Binary int edges: the workhorse for joins, recursion and negation.
fn int_edges(rng: &mut StdRng, domain: i64) -> Relation {
    let mut rel = Relation::new();
    for _ in 0..rng.gen_range(8..40) {
        rel.insert(tuple![rng.gen_range(0..domain), rng.gen_range(0..domain)]);
    }
    rel
}

/// Binary string edges over a small name pool: joins run over
/// dictionary-encoded columns, and cross-relation joins exercise the
/// cross-dictionary comparison path.
fn str_edges(rng: &mut StdRng) -> Relation {
    let mut rel = Relation::new();
    for _ in 0..rng.gen_range(8..30) {
        rel.insert(tuple![
            NAMES[rng.gen_range(0..NAMES.len())],
            NAMES[rng.gen_range(0..NAMES.len())]
        ]);
    }
    rel
}

/// (int, float) weights: a typed column pair with negative values, -0.0
/// and repeated keys, so float ordering and aggregation get exercised.
fn weights(rng: &mut StdRng, domain: i64) -> Relation {
    let mut rel = Relation::new();
    for _ in 0..rng.gen_range(8..30) {
        let w = match rng.gen_range(0..6) {
            0 => -0.0,
            1 => -1.5,
            n => n as f64 * 0.25,
        };
        rel.insert(tuple![rng.gen_range(0..domain), w]);
    }
    rel
}

/// (int, int-or-string) facts: the second column is deliberately
/// mixed-type, so the columnar projection must fall back to boxed rows
/// for it — the fallback path has to agree with everything else.
fn mixed_facts(rng: &mut StdRng, domain: i64) -> Relation {
    let mut rel = Relation::new();
    for _ in 0..rng.gen_range(8..24) {
        let t = if rng.gen_bool(0.5) {
            tuple![rng.gen_range(0..domain), rng.gen_range(0..domain)]
        } else {
            tuple![
                rng.gen_range(0..domain),
                NAMES[rng.gen_range(0..NAMES.len())]
            ]
        };
        rel.insert(t);
    }
    rel
}

/// Random multi-stratum program over typed base relations. Every
/// derived predicate is binary so the sink can union them all; the
/// sink's second column deliberately mixes ints, floats and strings
/// across disjuncts, forcing the derived relation itself onto the
/// mixed-column fallback.
fn random_typed_program(rng: &mut StdRng, n_derived: usize) -> (String, Database) {
    let domain = rng.gen_range(5..10);
    let mut db = Database::new();
    for b in 0..2 {
        db.set(format!("E{b}"), int_edges(rng, domain));
        db.set(format!("S{b}"), str_edges(rng));
        db.set(format!("W{b}"), weights(rng, domain));
        db.set(format!("X{b}"), mixed_facts(rng, domain));
    }
    let pick = |rng: &mut StdRng, p: &str| format!("{p}{}", rng.gen_range(0..2));
    let mut src = String::from("def agg_sum[{A}] : reduce[add, A]\n");
    for d in 0..n_derived {
        let name = format!("P{d}");
        match rng.gen_range(0..7) {
            0 => {
                // Union of int edge relations.
                let (a, b) = (pick(rng, "E"), pick(rng, "E"));
                src.push_str(&format!("def {name}(x,y) : {a}(x,y)\n"));
                src.push_str(&format!("def {name}(x,y) : {b}(x,y)\n"));
            }
            1 => {
                // String-keyed join chain over dictionary columns.
                let (a, b) = (pick(rng, "S"), pick(rng, "S"));
                src.push_str(&format!(
                    "def {name}(x,y) : exists((z) | {a}(x,z) and {b}(z,y))\n"
                ));
            }
            2 => {
                // Recursion: transitive closure over ints or strings.
                let a = if rng.gen_bool(0.5) { pick(rng, "E") } else { pick(rng, "S") };
                src.push_str(&format!("def {name}(x,y) : {a}(x,y)\n"));
                src.push_str(&format!(
                    "def {name}(x,y) : exists((z) | {a}(x,z) and {name}(z,y))\n"
                ));
            }
            3 => {
                // Negation over string edges (set-minus on StrCol).
                let (a, b) = (pick(rng, "S"), pick(rng, "S"));
                src.push_str(&format!("def {name}(x,y) : {a}(x,y) and not {b}(x,y)\n"));
            }
            4 => {
                // Grouped integer aggregation.
                let a = pick(rng, "E");
                src.push_str(&format!(
                    "def {name}(x,s) : exists((q) | {a}(x,q)) and s = agg_sum[(v) : {a}(x,v)]\n"
                ));
            }
            5 => {
                // Int-keyed join pulling a float column through.
                let (a, b) = (pick(rng, "E"), pick(rng, "W"));
                src.push_str(&format!(
                    "def {name}(x,w) : exists((y) | {a}(x,y) and {b}(y,w))\n"
                ));
            }
            _ => {
                // Join through the mixed-type column (row fallback) with
                // a triangle-ish closing atom so WCOJ routing can bite.
                let (a, b) = (pick(rng, "X"), pick(rng, "E"));
                src.push_str(&format!(
                    "def {name}(x,v) : exists((k) | {a}(k,v) and {b}(k,x) and {b}(x,k))\n"
                ));
            }
        }
    }
    src.push_str("def output(x,y) :");
    let tails: Vec<String> = (0..n_derived).map(|d| format!(" P{d}(x,y)")).collect();
    src.push_str(&tails.join(" or"));
    src.push('\n');
    (src, db)
}

fn flatten(rels: &BTreeMap<Name, Relation>) -> Vec<(Name, Vec<Tuple>)> {
    rels.iter()
        .map(|(n, r)| (n.clone(), r.iter().cloned().collect()))
        .collect()
}

#[test]
fn columnar_and_row_layouts_agree_byte_for_byte() {
    let _serial = SWITCH_LOCK.lock().unwrap();
    let _guard = SwitchGuard::hold();
    let mut rng = StdRng::seed_from_u64(0xC01_7EA5);
    let mut covered = 0;
    for case in 0..30 {
        let (src, db) = random_typed_program(&mut rng, 5);
        let module = match rel_sema::compile(&src) {
            Ok(m) => m,
            // Rejection is deterministic; skipping is sound but must
            // stay rare (asserted below).
            Err(_) => continue,
        };
        covered += 1;
        set_columnar_enabled(false);
        let baseline = materialize_with_threads(
            &module,
            &db,
            SharedIndexCache::with_wcoj(WcojMode::Off),
            1,
        );
        for (columnar, mode, workers) in [
            (false, WcojMode::Force, 1),
            (false, WcojMode::Off, 4),
            (true, WcojMode::Off, 1),
            (true, WcojMode::Off, 4),
            (true, WcojMode::Force, 1),
            (true, WcojMode::Force, 4),
        ] {
            set_columnar_enabled(columnar);
            let run = materialize_with_threads(
                &module,
                &db,
                SharedIndexCache::with_wcoj(mode),
                workers,
            );
            let layout = if columnar { "columnar" } else { "row" };
            match (&baseline, &run) {
                (Ok(base), Ok(got)) => assert_eq!(
                    flatten(base),
                    flatten(got),
                    "case {case}: {layout}/{mode:?}/{workers}w diverged from \
                     the row baseline\nprogram:\n{src}"
                ),
                (Err(eb), Err(eg)) => assert_eq!(
                    std::mem::discriminant(eb),
                    std::mem::discriminant(eg),
                    "case {case}: error kinds diverged: {eb} vs {eg}\nprogram:\n{src}"
                ),
                (b, g) => panic!(
                    "case {case}: one layout errored, the other succeeded \
                     ({layout}/{mode:?}/{workers}w): base={b:?} got={g:?}\nprogram:\n{src}"
                ),
            }
        }
        // The typed base relations must actually be columnar when the
        // switch is on — otherwise the whole matrix tests nothing.
        set_columnar_enabled(true);
        for name in ["E0", "S0", "W0"] {
            assert!(
                db.get(name).expect("base relation exists").column_stats().is_some(),
                "case {case}: {name} produced no columnar projection"
            );
        }
    }
    assert!(covered >= 24, "only {covered}/30 generated programs compiled");
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rel-columnar-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Every file the durable layer left in `dir`, name -> bytes.
fn disk_image(dir: &PathBuf) -> BTreeMap<String, Vec<u8>> {
    let mut out = BTreeMap::new();
    for entry in std::fs::read_dir(dir).expect("store dir exists") {
        let entry = entry.unwrap();
        let name = entry.file_name().to_string_lossy().into_owned();
        out.insert(name, std::fs::read(entry.path()).unwrap());
    }
    out
}

/// A fixed mixed-type transaction stream: inserts and deletes over int,
/// float, string and mixed-column relations, sized to cross the
/// compaction threshold so snapshots get written too.
fn run_stream(s: &mut Session) {
    let names = ["alpha", "beta", "gamma", "delta"];
    for i in 0..12i64 {
        let mut txn = s.begin();
        txn.stage_insert("R", tuple![i % 5, i]);
        txn.stage_insert("Label", tuple![names[(i % 4) as usize], i % 3]);
        txn.stage_insert("Weight", tuple![i % 4, i as f64 * 0.5 - 1.0]);
        // A mixed-type column: ints and strings interleaved.
        if i % 2 == 0 {
            txn.stage_insert("Tag", tuple![i, names[(i % 4) as usize]]);
        } else {
            txn.stage_insert("Tag", tuple![i, i * 10]);
        }
        if i % 3 == 2 {
            txn.stage_delete("R", &tuple![(i - 1) % 5, i - 1]);
        }
        txn.commit().expect("commit succeeds");
    }
}

#[test]
fn durable_bytes_are_identical_across_layouts() {
    let _serial = SWITCH_LOCK.lock().unwrap();
    let _guard = SwitchGuard::hold();
    let cfg = DurabilityConfig {
        fsync: FsyncPolicy::Off,
        fsync_batch: 1,
        compact_after_commits: 4,
        compact_after_bytes: 1 << 20,
    };
    let mut images = Vec::new();
    let mut dirs = Vec::new();
    for (tag, columnar) in [("row", false), ("col", true)] {
        set_columnar_enabled(columnar);
        let dir = temp_dir(tag);
        let mut s = Session::open_with(&dir, cfg).expect("clean open");
        assert!(s.is_durable(), "durability must be enabled for this test");
        run_stream(&mut s);
        drop(s);
        images.push(disk_image(&dir));
        dirs.push(dir);
    }
    assert_eq!(
        images[0].keys().collect::<Vec<_>>(),
        images[1].keys().collect::<Vec<_>>(),
        "layouts wrote different durable file sets"
    );
    for (name, bytes) in &images[0] {
        assert_eq!(
            bytes, &images[1][name],
            "durable file {name} differs between row and columnar layouts"
        );
    }
    // Cross-recovery: a store written under one layout must recover to
    // the same database under the other.
    set_columnar_enabled(true);
    let from_row = Session::open_with(&dirs[0], cfg).expect("recover row store");
    set_columnar_enabled(false);
    let from_col = Session::open_with(&dirs[1], cfg).expect("recover columnar store");
    let canon = |s: &Session| -> Vec<(String, Vec<Tuple>)> {
        s.db()
            .iter()
            .filter(|(_, r)| !r.is_empty())
            .map(|(n, r)| (n.to_string(), r.iter().cloned().collect()))
            .collect()
    };
    assert_eq!(canon(&from_row), canon(&from_col), "cross-layout recovery diverged");
    assert!(!canon(&from_row).is_empty(), "stream left no durable tuples");
    for dir in &dirs {
        let _ = std::fs::remove_dir_all(dir);
    }
}

#[test]
fn session_queries_agree_with_layout_toggled_mid_stream() {
    // One session, flipping the layout between queries and commits: the
    // generation-keyed caches must never leak a stale-layout answer.
    let _serial = SWITCH_LOCK.lock().unwrap();
    let _guard = SwitchGuard::hold();
    let mut rng = StdRng::seed_from_u64(0x5EED_CAFE);
    let mut db = Database::new();
    db.set("E", int_edges(&mut rng, 8));
    db.set("S", str_edges(&mut rng));
    let lib = "def Tri(x,y,z) : E(x,y) and E(y,z) and E(x,z)\n\
               def Pair(x,y) : exists((z) | S(x,z) and S(z,y))";
    let mut s = Session::new(db).with_library(lib);
    let probe = "def output(x,y,z) : Tri(x,y,z) or exists((q) | Pair(y,z) and E(x,q))";
    let snap = |r: &Relation| -> Vec<Tuple> { r.iter().cloned().collect() };
    for round in 0..4i64 {
        // Same database state, both layouts, same session caches: the
        // answers must match byte for byte.
        s.set_columnar(true);
        assert!(s.columnar_enabled());
        let cols = snap(&s.query(probe).expect("probe evaluates"));
        s.set_columnar(false);
        assert!(!s.columnar_enabled());
        let rows = snap(&s.query(probe).expect("probe evaluates"));
        assert_eq!(cols, rows, "round {round}: layouts diverged");
        // Grow the database (alternating the layout the commit runs
        // under) so generation-keyed caches churn between rounds.
        s.set_columnar(round % 2 == 0);
        let mut txn = s.begin();
        txn.stage_insert("E", tuple![100 + round, round]);
        txn.commit().expect("commit succeeds");
    }
}
