//! Per-query profiles: what the engine actually did for one evaluation.
//!
//! A [`ProfileSink`] is attached to a [`crate::SharedIndexCache`] for the
//! duration of one profiled evaluation
//! ([`crate::Session::query_profiled`] /
//! [`crate::Prepared::execute_profiled`]); the evaluator's dispatch
//! points — join-kernel choice, fused-rule recognition, index/trie cache
//! lookups, fixpoint iterations — tick its atomic counters, and the
//! fixpoint/incremental drivers push one [`StratumProfile`] per stratum
//! with wall time and the counter deltas attributable to it. The session
//! assembles the result into a [`QueryProfile`].
//!
//! # Reading a QueryProfile
//!
//! [`QueryProfile::render`] prints one header line and one line per
//! stratum:
//!
//! ```text
//! query profile  wall=3.4ms  module-cache=hit  fixpoint=incremental (reused=2, delta-restarted=1, recomputed=0)
//!   stratum 0  [TC] recursive  delta-restarted  wall=2.1ms  iters=3  kernel=wcoj  joins: wcoj=9 binary=0  rules: fused=0 env=12  index: built=1 reused=4  trie: built=2 reused=7
//!   stratum 1  [Size]  reused  wall=0.0ms
//! ```
//!
//! * **fixpoint** — how the whole evaluation was served: `full` (from
//!   scratch), `cache` (the snapshot was unchanged: the previous fixpoint
//!   was reused wholesale by pointer bumps), or `incremental` with the
//!   per-stratum classification totals.
//! * **per-stratum action** — `evaluated` (full run), `reused` (O(1)
//!   pointer bump), `delta-restarted` (semi-naive restart from the
//!   previous fixpoint), `recomputed` (re-evaluated inside the changed
//!   cone).
//! * **kernel** — the dominant join/rule kernel the stratum ran on:
//!   `wcoj` (leapfrog triejoin), `fused` (columnar whole-rule kernels),
//!   `binary` (pairwise joins through the env machinery), or `mixed`.
//! * **iters** — fixpoint iterations (semi-naive rounds or PFP steps);
//!   absent for non-recursive strata.
//!
//! [`QueryProfile::explain`] is the same rendering without wall times —
//! stable across runs, suitable for tests and for `:explain` in the repl.

use crate::incremental::IncrementalStats;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Kernel/cache event counters ticked by the evaluator while a profile
/// sink is installed on the cache (see module docs). All relaxed: a sink
/// belongs to one evaluation.
#[derive(Debug, Default)]
pub struct ProfileSink {
    iterations: AtomicU64,
    wcoj_joins: AtomicU64,
    binary_joins: AtomicU64,
    fused_rules: AtomicU64,
    env_rules: AtomicU64,
    index_builds: AtomicU64,
    index_reuses: AtomicU64,
    trie_builds: AtomicU64,
    trie_reuses: AtomicU64,
    strata: Mutex<Vec<StratumProfile>>,
}

macro_rules! sink_counters {
    ($($field:ident => $note:ident),* $(,)?) => {
        $(
            #[doc = concat!("Tick `", stringify!($field), "`.")]
            #[inline]
            pub fn $note(&self) {
                self.$field.fetch_add(1, Ordering::Relaxed);
            }
        )*
    };
}

impl ProfileSink {
    /// Empty sink.
    pub fn new() -> Self {
        ProfileSink::default()
    }

    sink_counters! {
        iterations => note_iteration,
        wcoj_joins => note_wcoj_join,
        binary_joins => note_binary_join,
        fused_rules => note_fused_rule,
        env_rules => note_env_rule,
        index_builds => note_index_build,
        index_reuses => note_index_reuse,
        trie_builds => note_trie_build,
        trie_reuses => note_trie_reuse,
    }

    /// Read the current counter totals (used to form per-stratum deltas).
    pub fn counts(&self) -> KernelCounts {
        KernelCounts {
            iterations: self.iterations.load(Ordering::Relaxed),
            wcoj_joins: self.wcoj_joins.load(Ordering::Relaxed),
            binary_joins: self.binary_joins.load(Ordering::Relaxed),
            fused_rules: self.fused_rules.load(Ordering::Relaxed),
            env_rules: self.env_rules.load(Ordering::Relaxed),
            index_builds: self.index_builds.load(Ordering::Relaxed),
            index_reuses: self.index_reuses.load(Ordering::Relaxed),
            trie_builds: self.trie_builds.load(Ordering::Relaxed),
            trie_reuses: self.trie_reuses.load(Ordering::Relaxed),
        }
    }

    /// Append one finished stratum record.
    pub fn push_stratum(&self, s: StratumProfile) {
        self.strata.lock().unwrap_or_else(std::sync::PoisonError::into_inner).push(s);
    }

    /// Re-classify the most recently pushed stratum (the incremental
    /// driver records recomputed-in-cone strata through the stock
    /// evaluator, then relabels).
    pub fn relabel_last(&self, action: StratumAction) {
        let mut strata =
            self.strata.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(last) = strata.last_mut() {
            last.action = action;
        }
    }

    /// Drain the stratum records (in evaluation order).
    pub fn take_strata(&self) -> Vec<StratumProfile> {
        std::mem::take(
            &mut *self.strata.lock().unwrap_or_else(std::sync::PoisonError::into_inner),
        )
    }
}

/// A plain read of a [`ProfileSink`]'s counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KernelCounts {
    /// Fixpoint iterations (semi-naive rounds + PFP steps).
    pub iterations: u64,
    /// Conjunction groups dispatched to the leapfrog WCOJ kernel.
    pub wcoj_joins: u64,
    /// Atoms dispatched to the pairwise binary-join scheduler.
    pub binary_joins: u64,
    /// Rules executed by a fused columnar whole-rule kernel.
    pub fused_rules: u64,
    /// Rules executed by the generic environment machinery.
    pub env_rules: u64,
    /// Hash indexes built (including generation-stale rebuilds).
    pub index_builds: u64,
    /// Hash-index cache hits at the current generation.
    pub index_reuses: u64,
    /// Permuted tries built (including generation-stale rebuilds).
    pub trie_builds: u64,
    /// Trie-cache hits at the current generation.
    pub trie_reuses: u64,
}

impl KernelCounts {
    /// Per-field difference `self - earlier` (saturating).
    pub fn since(&self, earlier: &KernelCounts) -> KernelCounts {
        KernelCounts {
            iterations: self.iterations.saturating_sub(earlier.iterations),
            wcoj_joins: self.wcoj_joins.saturating_sub(earlier.wcoj_joins),
            binary_joins: self.binary_joins.saturating_sub(earlier.binary_joins),
            fused_rules: self.fused_rules.saturating_sub(earlier.fused_rules),
            env_rules: self.env_rules.saturating_sub(earlier.env_rules),
            index_builds: self.index_builds.saturating_sub(earlier.index_builds),
            index_reuses: self.index_reuses.saturating_sub(earlier.index_reuses),
            trie_builds: self.trie_builds.saturating_sub(earlier.trie_builds),
            trie_reuses: self.trie_reuses.saturating_sub(earlier.trie_reuses),
        }
    }

    /// The dominant kernel these counts witness (see module docs).
    ///
    /// Only *join dispatches* discriminate: a rule whose conjunction
    /// went wholesale to the WCOJ kernel still runs through the env
    /// machinery (one `env_rules` tick), so `env_rules` alone never
    /// demotes a run to `mixed` — it classifies as `binary` only when
    /// no join kernel fired at all.
    pub fn kernel(&self) -> &'static str {
        let wcoj = self.wcoj_joins > 0;
        let fused = self.fused_rules > 0;
        let binary = self.binary_joins > 0;
        match (wcoj, fused, binary) {
            (true, false, false) => "wcoj",
            (false, true, false) => "fused",
            (false, false, true) => "binary",
            (false, false, false) => {
                if self.env_rules > 0 {
                    "binary"
                } else {
                    "none"
                }
            }
            _ => "mixed",
        }
    }
}

/// How one stratum was handled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StratumAction {
    /// Evaluated by the stock fixpoint driver (a non-incremental run).
    Evaluated,
    /// Reused wholesale from the previous fixpoint (O(1) pointer bump).
    Reused,
    /// Semi-naive restart from the previous fixpoint with delta seeds.
    DeltaRestarted,
    /// Re-evaluated from scratch inside the changed cone.
    Recomputed,
}

impl StratumAction {
    /// Stable lower-case label.
    pub fn label(&self) -> &'static str {
        match self {
            StratumAction::Evaluated => "evaluated",
            StratumAction::Reused => "reused",
            StratumAction::DeltaRestarted => "delta-restarted",
            StratumAction::Recomputed => "recomputed",
        }
    }
}

/// One stratum's share of a profiled evaluation.
#[derive(Clone, Debug)]
pub struct StratumProfile {
    /// The stratum's materialized predicates.
    pub preds: Vec<String>,
    /// Is the stratum recursive (semi-naive or PFP)?
    pub recursive: bool,
    /// How it was handled.
    pub action: StratumAction,
    /// Wall time attributable to it.
    pub wall: Duration,
    /// Kernel/cache counter deltas attributable to it.
    pub counts: KernelCounts,
}

impl StratumProfile {
    fn render_into(&self, out: &mut String, index: usize, timings: bool) {
        out.push_str(&format!("  stratum {index}  [{}]", self.preds.join(", ")));
        if self.recursive {
            out.push_str(" recursive");
        }
        out.push_str("  ");
        out.push_str(self.action.label());
        if timings {
            out.push_str(&format!(
                "  wall={:.1}ms",
                self.wall.as_secs_f64() * 1e3
            ));
        }
        if matches!(self.action, StratumAction::Reused) {
            out.push('\n');
            return;
        }
        let c = &self.counts;
        if self.recursive {
            out.push_str(&format!("  iters={}", c.iterations));
        }
        out.push_str(&format!(
            "  kernel={}  joins: wcoj={} binary={}  rules: fused={} env={}  \
             index: built={} reused={}  trie: built={} reused={}\n",
            c.kernel(),
            c.wcoj_joins,
            c.binary_joins,
            c.fused_rules,
            c.env_rules,
            c.index_builds,
            c.index_reuses,
            c.trie_builds,
            c.trie_reuses,
        ));
    }
}

/// How the whole evaluation was served.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FixpointOutcome {
    /// Materialized from scratch (incremental off, or no usable
    /// pre-state).
    Full,
    /// The cached fixpoint was reused wholesale: the snapshot was
    /// unchanged since its capture, no rule was evaluated.
    CacheReuse,
    /// Incrementally maintained from the cached fixpoint, with the
    /// per-stratum classification totals.
    Incremental(IncrementalStats),
}

impl FixpointOutcome {
    fn render(&self) -> String {
        match self {
            FixpointOutcome::Full => "full".to_string(),
            FixpointOutcome::CacheReuse => "cache".to_string(),
            FixpointOutcome::Incremental(s) => format!(
                "incremental (reused={}, delta-restarted={}, recomputed={})",
                s.reused, s.delta_seeded, s.recomputed
            ),
        }
    }
}

/// The profile of one evaluated query (see module docs for how to read
/// its rendering).
#[derive(Clone, Debug)]
pub struct QueryProfile {
    /// End-to-end wall time (compile + evaluate + extract).
    pub wall: Duration,
    /// Was the compiled module served from the session's module cache?
    pub module_cache_hit: bool,
    /// How the fixpoint was served.
    pub fixpoint: FixpointOutcome,
    /// Per-stratum records, in evaluation order. Empty when the whole
    /// fixpoint was reused from cache.
    pub strata: Vec<StratumProfile>,
}

impl QueryProfile {
    /// Kernel/cache counter totals across all strata.
    pub fn totals(&self) -> KernelCounts {
        let mut t = KernelCounts::default();
        for s in &self.strata {
            let c = &s.counts;
            t.iterations += c.iterations;
            t.wcoj_joins += c.wcoj_joins;
            t.binary_joins += c.binary_joins;
            t.fused_rules += c.fused_rules;
            t.env_rules += c.env_rules;
            t.index_builds += c.index_builds;
            t.index_reuses += c.index_reuses;
            t.trie_builds += c.trie_builds;
            t.trie_reuses += c.trie_reuses;
        }
        t
    }

    /// Sum of the per-stratum wall times (≤ [`QueryProfile::wall`]; the
    /// remainder is compile/extract/bookkeeping time).
    pub fn strata_wall(&self) -> Duration {
        self.strata.iter().map(|s| s.wall).sum()
    }

    fn render_with(&self, timings: bool) -> String {
        let mut out = String::from("query profile");
        if timings {
            out.push_str(&format!("  wall={:.1}ms", self.wall.as_secs_f64() * 1e3));
        }
        out.push_str(&format!(
            "  module-cache={}  fixpoint={}\n",
            if self.module_cache_hit { "hit" } else { "miss" },
            self.fixpoint.render()
        ));
        for (i, s) in self.strata.iter().enumerate() {
            s.render_into(&mut out, i, timings);
        }
        out
    }

    /// Full rendering, wall times included.
    pub fn render(&self) -> String {
        self.render_with(true)
    }

    /// EXPLAIN-style rendering: structure and kernel choices only, no
    /// wall times — stable across runs of the same query.
    pub fn explain(&self) -> String {
        self.render_with(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stratum(action: StratumAction, counts: KernelCounts) -> StratumProfile {
        StratumProfile {
            preds: vec!["TC".to_string()],
            recursive: true,
            action,
            wall: Duration::from_micros(1500),
            counts,
        }
    }

    #[test]
    fn kernel_classification() {
        let k = |w, f, b, e| KernelCounts {
            wcoj_joins: w,
            fused_rules: f,
            binary_joins: b,
            env_rules: e,
            ..Default::default()
        };
        assert_eq!(k(3, 0, 0, 0).kernel(), "wcoj");
        assert_eq!(k(0, 2, 0, 0).kernel(), "fused");
        assert_eq!(k(0, 0, 5, 5).kernel(), "binary");
        assert_eq!(k(0, 0, 0, 2).kernel(), "binary");
        assert_eq!(k(1, 1, 0, 0).kernel(), "mixed");
        assert_eq!(k(1, 0, 2, 0).kernel(), "mixed");
        assert_eq!(k(0, 0, 0, 0).kernel(), "none");
        // The env tick of the rule *hosting* a WCOJ dispatch does not
        // demote the classification.
        assert_eq!(k(3, 0, 0, 1).kernel(), "wcoj");
        assert_eq!(k(0, 2, 0, 1).kernel(), "fused");
    }

    #[test]
    fn counts_since_is_per_field() {
        let sink = ProfileSink::new();
        sink.note_wcoj_join();
        let before = sink.counts();
        sink.note_wcoj_join();
        sink.note_index_build();
        sink.note_iteration();
        let d = sink.counts().since(&before);
        assert_eq!(d.wcoj_joins, 1);
        assert_eq!(d.index_builds, 1);
        assert_eq!(d.iterations, 1);
        assert_eq!(d.binary_joins, 0);
    }

    #[test]
    fn render_and_explain_shapes() {
        let p = QueryProfile {
            wall: Duration::from_millis(5),
            module_cache_hit: true,
            fixpoint: FixpointOutcome::Incremental(IncrementalStats {
                reused: 1,
                delta_seeded: 1,
                recomputed: 0,
            }),
            strata: vec![
                stratum(
                    StratumAction::DeltaRestarted,
                    KernelCounts { wcoj_joins: 4, iterations: 2, ..Default::default() },
                ),
                StratumProfile {
                    preds: vec!["Size".to_string()],
                    recursive: false,
                    action: StratumAction::Reused,
                    wall: Duration::ZERO,
                    counts: KernelCounts::default(),
                },
            ],
        };
        let full = p.render();
        assert!(full.contains("module-cache=hit"), "{full}");
        assert!(full.contains("delta-restarted"), "{full}");
        assert!(full.contains("kernel=wcoj"), "{full}");
        assert!(full.contains("wall="), "{full}");
        let explain = p.explain();
        assert!(!explain.contains("wall="), "{explain}");
        assert!(explain.contains("stratum 1  [Size]"), "{explain}");
        assert_eq!(p.totals().wcoj_joins, 4);
        assert_eq!(p.strata_wall(), Duration::from_micros(1500));
    }

    #[test]
    fn relabel_last_reclassifies() {
        let sink = ProfileSink::new();
        sink.push_stratum(stratum(StratumAction::Evaluated, KernelCounts::default()));
        sink.relabel_last(StratumAction::Recomputed);
        let strata = sink.take_strata();
        assert_eq!(strata[0].action, StratumAction::Recomputed);
        assert!(sink.take_strata().is_empty());
    }
}
