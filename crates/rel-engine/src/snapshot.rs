//! Compacted snapshots: full database images that truncate the log.
//!
//! A snapshot file holds the complete base-relation state after commit
//! `seq`, letting recovery skip every WAL record at or below that
//! sequence number (and letting compaction truncate the log). Format:
//!
//! ```text
//! [magic: 8 bytes "RELSNAP1"] [seq: u64 LE] [len: u64 LE]
//! [payload: len bytes = rel_core::codec::encode_database]
//! [crc: u32 LE over payload]
//! ```
//!
//! Snapshots are written **atomically**: the image goes to a `.tmp` file
//! (through the crash-injection [`crate::durability::FailpointFile`]),
//! is synced, and only then renamed to its final `snapshot-<seq>.snap`
//! name. A crash at any point leaves either no new snapshot (a stray
//! `.tmp` that recovery ignores and compaction cleans up) or a complete
//! valid one — never a half-visible image. Recovery picks the highest-seq
//! file that validates end-to-end (magic, length, CRC, decode) and warns
//! about any invalid candidate it skips.

use crate::durability::{guarded_remove, guarded_rename, FailpointFile};
use rel_core::codec::{self, Reader};
use rel_core::{Database, RelError, RelResult};
use std::io::Write;
use std::path::{Path, PathBuf};

/// Leading magic of every snapshot file (version-stamped).
pub const MAGIC: &[u8; 8] = b"RELSNAP1";

const HEADER: usize = 8 + 8 + 8; // magic + seq + len
const TRAILER: usize = 4; // crc

/// File name for the snapshot containing commits `1..=seq`.
pub fn file_name(seq: u64) -> String {
    format!("snapshot-{seq:016x}.snap")
}

/// Parse a `snapshot-<seq>.snap` file name back to its sequence number.
pub fn parse_file_name(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("snapshot-")?.strip_suffix(".snap")?;
    (hex.len() == 16).then(|| u64::from_str_radix(hex, 16).ok()).flatten()
}

/// Write the snapshot for commit `seq` atomically into `dir`; returns its
/// final path. The temporary image is synced before the rename, so once
/// the `.snap` name exists the content is durable.
pub fn write(dir: &Path, seq: u64, db: &Database) -> RelResult<PathBuf> {
    let final_path = dir.join(file_name(seq));
    let tmp_path = dir.join(format!("{}.tmp", file_name(seq)));
    let ctx = |path: &Path, what: &str, e: &std::io::Error| {
        RelError::io(path.display().to_string(), what.to_string(), e)
    };
    let mut payload = Vec::new();
    codec::encode_database(db, &mut payload);
    let mut image = Vec::with_capacity(HEADER + payload.len() + TRAILER);
    image.extend_from_slice(MAGIC);
    image.extend_from_slice(&seq.to_le_bytes());
    image.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    image.extend_from_slice(&payload);
    image.extend_from_slice(&codec::crc32(&payload).to_le_bytes());
    let mut file = FailpointFile::new(
        std::fs::File::create(&tmp_path).map_err(|e| ctx(&tmp_path, "creating snapshot", &e))?,
    );
    file.write_all(&image).map_err(|e| ctx(&tmp_path, "writing snapshot", &e))?;
    file.sync_all().map_err(|e| ctx(&tmp_path, "syncing snapshot", &e))?;
    drop(file);
    guarded_rename(&tmp_path, &final_path)
        .map_err(|e| ctx(&final_path, "publishing snapshot", &e))?;
    crate::metrics::registry().snapshot_publishes.incr();
    Ok(final_path)
}

/// Read and fully validate one snapshot file.
pub fn read(path: &Path) -> RelResult<(u64, Database)> {
    let display = path.display().to_string();
    let bytes = std::fs::read(path)
        .map_err(|e| RelError::io(display.clone(), "reading snapshot", &e))?;
    if bytes.len() < HEADER + TRAILER {
        return Err(RelError::corrupt(
            display,
            bytes.len() as u64,
            format!("snapshot of {} bytes is shorter than its header", bytes.len()),
        ));
    }
    if &bytes[..8] != MAGIC {
        return Err(RelError::corrupt(display, 0, "bad snapshot magic"));
    }
    let seq = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
    let len = u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes")) as usize;
    if bytes.len() != HEADER + len + TRAILER {
        return Err(RelError::corrupt(
            display,
            16,
            format!(
                "snapshot declares {len}-byte payload but the file holds {}",
                bytes.len().saturating_sub(HEADER + TRAILER)
            ),
        ));
    }
    let payload = &bytes[HEADER..HEADER + len];
    let crc = u32::from_le_bytes(bytes[HEADER + len..].try_into().expect("4 bytes"));
    if codec::crc32(payload) != crc {
        return Err(RelError::corrupt(display, HEADER as u64, "snapshot CRC mismatch"));
    }
    let mut r = Reader::new(payload);
    let db = codec::decode_database(&mut r).map_err(|e| {
        RelError::corrupt(display.clone(), (HEADER + e.offset) as u64, e.msg.clone())
    })?;
    if !r.is_empty() {
        return Err(RelError::corrupt(
            display,
            (HEADER + r.pos()) as u64,
            format!("{} trailing bytes after database image", r.remaining()),
        ));
    }
    Ok((seq, db))
}

/// All snapshot candidates in `dir`, highest sequence first.
pub fn candidates(dir: &Path) -> RelResult<Vec<(u64, PathBuf)>> {
    let mut found = Vec::new();
    let entries = std::fs::read_dir(dir)
        .map_err(|e| RelError::io(dir.display().to_string(), "listing durable store", &e))?;
    for entry in entries {
        let entry =
            entry.map_err(|e| RelError::io(dir.display().to_string(), "listing durable store", &e))?;
        let name = entry.file_name();
        if let Some(seq) = name.to_str().and_then(parse_file_name) {
            found.push((seq, entry.path()));
        }
    }
    found.sort_by_key(|&(seq, _)| std::cmp::Reverse(seq));
    Ok(found)
}

/// Best-effort cleanup after a successful snapshot at `keep_seq`: delete
/// superseded snapshots and stray `.tmp` images. Failures are ignored —
/// stale files only cost disk space, never correctness (recovery always
/// prefers the highest valid sequence).
pub fn prune(dir: &Path, keep_seq: u64) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let stale_snap = parse_file_name(name).is_some_and(|seq| seq < keep_seq);
        let stray_tmp = name.starts_with("snapshot-") && name.ends_with(".tmp");
        if stale_snap || stray_tmp {
            let _ = guarded_remove(&entry.path());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rel_core::database::figure1_database;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rel-snap-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn file_name_roundtrips() {
        assert_eq!(parse_file_name(&file_name(0)), Some(0));
        assert_eq!(parse_file_name(&file_name(u64::MAX)), Some(u64::MAX));
        assert_eq!(parse_file_name("snapshot-zz.snap"), None);
        assert_eq!(parse_file_name("wal.log"), None);
        assert_eq!(parse_file_name(&format!("{}.tmp", file_name(3))), None);
    }

    #[test]
    fn write_read_roundtrip() {
        let dir = temp_dir("roundtrip");
        let db = figure1_database();
        let path = write(&dir, 42, &db).unwrap();
        let (seq, got) = read(&path).unwrap();
        assert_eq!(seq, 42);
        assert_eq!(got, db);
        let cands = candidates(&dir).unwrap();
        assert_eq!(cands.len(), 1);
        assert_eq!(cands[0].0, 42);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_images_are_rejected() {
        let dir = temp_dir("corrupt");
        let db = figure1_database();
        let path = write(&dir, 7, &db).unwrap();
        let good = std::fs::read(&path).unwrap();
        // Bit flip in the payload.
        let mut bad = good.clone();
        bad[HEADER + 5] ^= 1;
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(read(&path), Err(RelError::Corrupt(_))));
        // Truncated.
        std::fs::write(&path, &good[..good.len() / 2]).unwrap();
        assert!(matches!(read(&path), Err(RelError::Corrupt(_))));
        // Zero-length.
        std::fs::write(&path, []).unwrap();
        assert!(matches!(read(&path), Err(RelError::Corrupt(_))));
        // Bad magic.
        let mut bad = good.clone();
        bad[0] = b'X';
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(read(&path), Err(RelError::Corrupt(_))));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn prune_removes_superseded_and_tmp() {
        let dir = temp_dir("prune");
        let db = figure1_database();
        write(&dir, 1, &db).unwrap();
        write(&dir, 2, &db).unwrap();
        write(&dir, 3, &db).unwrap();
        std::fs::write(dir.join("snapshot-junk.tmp"), b"partial").unwrap();
        prune(&dir, 3);
        let left = candidates(&dir).unwrap();
        assert_eq!(left.len(), 1);
        assert_eq!(left[0].0, 3);
        assert!(!dir.join("snapshot-junk.tmp").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
