//! Explicit transaction handles (client API v2).
//!
//! [`crate::Session::begin`] opens a [`Transaction`] holding an O(1)
//! copy-on-write snapshot of the database (the *candidate* state). The
//! transaction stages work against the candidate:
//!
//! * [`Transaction::run`] / [`Transaction::run_prepared`] — evaluate a
//!   program; its `insert`/`delete` control relations are applied to the
//!   candidate immediately, so later steps observe earlier staged writes;
//! * [`Transaction::stage_insert`] / [`Transaction::stage_delete`] —
//!   direct tuple-level staging without compiling a program.
//!
//! Integrity constraints are enforced at [`Transaction::commit`] against
//! the **final** candidate state, matching the paper's §3.4–3.5 protocol
//! ("changes are persisted, unless the transaction is aborted"): a step
//! may transiently violate a constraint that a later step repairs.
//! [`Transaction::abort`] — or simply dropping the handle — discards the
//! candidate at zero cost; the session's database is only ever touched by
//! a successful commit.
//!
//! ```
//! use rel_core::database::figure1_database;
//! use rel_core::tuple;
//! use rel_engine::Session;
//!
//! let mut s = Session::new(figure1_database());
//! let mut txn = s.begin();
//! txn.run("def insert(:ClosedOrders, x) : PaymentOrder(_, x)").unwrap();
//! txn.stage_insert("ClosedOrders", tuple!["O9"]);
//! let outcome = txn.commit().unwrap();
//! assert_eq!(outcome.inserted, 4);
//! assert_eq!(s.db().get("ClosedOrders").unwrap().len(), 4);
//! ```

use crate::fixpoint::materialize_with_cache;
use crate::prepared::{Params, Prepared};
use crate::session::{
    check_constraints, check_control_materializable, extract_delta, require_no_params, Session,
    TxnOutcome,
};
use rel_core::{Database, Name, RelResult, Relation, Tuple};
use rel_sema::ir::Module;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// A constraint check deferred to commit time. If no later step changed
/// the candidate, the step's own materialization is reused; otherwise the
/// module is re-materialized against the final state (with the step's
/// parameter bindings re-injected).
struct PendingCheck {
    module: Arc<Module>,
    /// Reserved `?name` relations the step ran with.
    param_rels: BTreeMap<Name, Relation>,
    /// Candidate version the stored `rels` were computed against.
    version: u64,
    /// The step's materialization (CoW handles — cheap to keep).
    rels: BTreeMap<Name, Relation>,
}

/// An in-flight transaction over a candidate database snapshot. Created
/// by [`Session::begin`]; holds the session exclusively (`&mut`) so no
/// other writer can interleave, while the snapshot itself cost O(1).
pub struct Transaction<'s> {
    session: &'s mut Session,
    candidate: Database,
    touched: BTreeSet<Name>,
    inserted: usize,
    deleted: usize,
    /// Bumped on every candidate mutation; lets commit-time checks reuse
    /// a step's materialization when nothing changed after it.
    version: u64,
    checks: Vec<PendingCheck>,
    output: Relation,
}

impl<'s> Transaction<'s> {
    pub(crate) fn begin(session: &'s mut Session) -> Self {
        let candidate = session.db().clone();
        Transaction {
            session,
            candidate,
            touched: BTreeSet::new(),
            inserted: 0,
            deleted: 0,
            version: 0,
            checks: Vec::new(),
            output: Relation::default(),
        }
    }

    /// The candidate state (the snapshot plus everything staged so far).
    pub fn db(&self) -> &Database {
        &self.candidate
    }

    /// Tuples staged for insertion so far.
    pub fn staged_inserts(&self) -> usize {
        self.inserted
    }

    /// Tuples staged for deletion so far.
    pub fn staged_deletes(&self) -> usize {
        self.deleted
    }

    /// Compile (through the session's module cache) and run one step:
    /// evaluate against the candidate, apply the step's `insert`/`delete`
    /// delta to the candidate, and return the step's `output` relation.
    /// Constraint checking is deferred to [`Transaction::commit`].
    pub fn run(&mut self, src: &str) -> RelResult<Relation> {
        let module = self.session.compile(src)?;
        check_control_materializable(&module)?;
        // Parameterized sources must come through `run_prepared`, which
        // binds the reserved relations — running them here would silently
        // evaluate against empty parameters.
        require_no_params(&module)?;
        let rels =
            materialize_with_cache(&module, &self.candidate, self.session.index_cache.clone())?;
        self.absorb_step(module, BTreeMap::new(), rels)
    }

    /// Run a prepared step with `?name` parameters bound. The parameter
    /// relations exist only for this step's evaluation — they never leak
    /// into the candidate (or the committed) database.
    pub fn run_prepared(&mut self, prepared: &Prepared, params: &Params) -> RelResult<Relation> {
        let rels = prepared.materialize_with(self.session, params, &self.candidate)?;
        let param_rels: BTreeMap<Name, Relation> = prepared
            .param_names()
            .iter()
            .map(|p| {
                let reserved = rel_sema::ir::param_relation(p);
                let rel = rels.get(&reserved).cloned().unwrap_or_default();
                (reserved, rel)
            })
            .collect();
        self.absorb_step(Arc::clone(prepared.module()), param_rels, rels)
    }

    fn absorb_step(
        &mut self,
        module: Arc<Module>,
        param_rels: BTreeMap<Name, Relation>,
        rels: BTreeMap<Name, Relation>,
    ) -> RelResult<Relation> {
        let delta = extract_delta(&rels)?;
        let output = rels.get("output").cloned().unwrap_or_default();
        if !module.constraints.is_empty() {
            self.checks.push(PendingCheck {
                module,
                param_rels,
                version: self.version,
                rels,
            });
        }
        if !delta.is_empty() {
            self.inserted += delta.inserts.values().map(Vec::len).sum::<usize>();
            self.deleted += delta.deletes.values().map(Vec::len).sum::<usize>();
            self.touched
                .extend(delta.inserts.keys().chain(delta.deletes.keys()).cloned());
            self.candidate.apply(&delta);
            self.version += 1;
        }
        self.output = output.clone();
        Ok(output)
    }

    /// Stage one tuple for insertion, bypassing compilation. Returns
    /// whether the tuple was new.
    pub fn stage_insert(&mut self, rel: impl AsRef<str>, t: Tuple) -> bool {
        let added = self.candidate.insert(rel.as_ref(), t);
        if added {
            self.inserted += 1;
            self.touched.insert(rel_core::name(rel));
            self.version += 1;
        }
        added
    }

    /// Stage one tuple for deletion, bypassing compilation. Returns
    /// whether the tuple was present.
    pub fn stage_delete(&mut self, rel: impl AsRef<str>, t: &Tuple) -> bool {
        if !self.candidate.defines(rel.as_ref()) {
            return false;
        }
        let removed = self.candidate.get_mut(rel.as_ref()).remove(t);
        if removed {
            self.deleted += 1;
            self.touched.insert(rel_core::name(rel));
            self.version += 1;
        }
        removed
    }

    /// Check every staged step's integrity constraints against the final
    /// candidate state and install it as the session's database. On a
    /// violation the transaction aborts with the error and the session is
    /// left untouched.
    pub fn commit(self) -> RelResult<TxnOutcome> {
        // Direct staging bypasses compilation, so a transaction with no
        // compiled steps carries no pending check that would enforce the
        // *installed library's* constraints (every `run` step's module
        // embeds them). Compile the empty query — cached after the first
        // time — to recover exactly those.
        if self.checks.is_empty() && !self.touched.is_empty() {
            let module = self.session.compile("")?;
            if !module.constraints.is_empty() {
                let rels = materialize_with_cache(
                    &module,
                    &self.candidate,
                    self.session.index_cache.clone(),
                )?;
                check_constraints(&module, &rels)?;
            }
        }
        for check in &self.checks {
            if check.version == self.version {
                // Nothing changed after this step: its own
                // materialization *is* the final state's.
                check_constraints(&check.module, &check.rels)?;
            } else {
                let mut db = self.candidate.clone();
                for (reserved, rel) in &check.param_rels {
                    db.set(reserved.clone(), rel.clone());
                }
                let rels = materialize_with_cache(
                    &check.module,
                    &db,
                    self.session.index_cache.clone(),
                )?;
                check_constraints(&check.module, &rels)?;
            }
        }
        self.session.db = self.candidate;
        // The touched relations' generations moved with the commit: drop
        // their pre-commit indexes eagerly (generation-checked lookups
        // could never serve them, this just sheds dead weight), while
        // indexes built at the committed generation stay warm.
        self.session
            .index_cache
            .invalidate_stale_relations(self.touched.iter(), &self.session.db);
        Ok(TxnOutcome {
            output: self.output,
            inserted: self.inserted,
            deleted: self.deleted,
        })
    }

    /// Discard the candidate state. Equivalent to dropping the handle —
    /// provided so call sites can say what they mean.
    pub fn abort(self) {}
}

impl std::fmt::Debug for Transaction<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Transaction")
            .field("staged_inserts", &self.inserted)
            .field("staged_deletes", &self.deleted)
            .field("touched", &self.touched)
            .field("pending_checks", &self.checks.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rel_core::database::figure1_database;
    use rel_core::{tuple, RelError};

    fn session() -> Session {
        Session::new(figure1_database())
    }

    #[test]
    fn staged_steps_see_each_other() {
        let mut s = session();
        let mut txn = s.begin();
        txn.run("def insert(:Closed, x) : PaymentOrder(_, x)").unwrap();
        // The second step reads the first step's staged writes (the
        // candidate view exposes them too).
        let out = txn.run("def output(x) : Closed(x)").unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(txn.db().get("Closed").unwrap().len(), 3);
        txn.commit().unwrap();
        assert_eq!(s.db().get("Closed").unwrap().len(), 3);
    }

    #[test]
    fn abort_discards_everything() {
        let mut s = session();
        let mut txn = s.begin();
        txn.run("def insert(:Closed, x) : PaymentOrder(_, x)").unwrap();
        txn.stage_insert("Closed", tuple!["O9"]);
        txn.abort();
        assert!(!s.db().defines("Closed"));
    }

    #[test]
    fn drop_is_abort() {
        let mut s = session();
        {
            let mut txn = s.begin();
            txn.stage_insert("Closed", tuple!["O9"]);
        }
        assert!(!s.db().defines("Closed"));
    }

    #[test]
    fn direct_staging_counts_and_commits() {
        let mut s = session();
        let mut txn = s.begin();
        assert!(txn.stage_insert("ProductPrice", tuple!["P9", 99]));
        assert!(!txn.stage_insert("ProductPrice", tuple!["P9", 99])); // dup
        assert!(txn.stage_delete("ProductPrice", &tuple!["P1", 10]));
        assert!(!txn.stage_delete("ProductPrice", &tuple!["P1", 10]));
        let outcome = txn.commit().unwrap();
        assert_eq!((outcome.inserted, outcome.deleted), (1, 1));
        assert_eq!(s.db().get("ProductPrice").unwrap().len(), 4);
        assert!(s.db().get("ProductPrice").unwrap().contains(&tuple!["P9", 99]));
    }

    #[test]
    fn constraints_checked_on_commit_against_final_state() {
        // Step 1 violates the constraint transiently; step 2 repairs it
        // before commit — the transaction succeeds.
        let mut s = session();
        let mut txn = s.begin();
        txn.run(
            "def insert(:OrderProductQuantity, x, y, z) : \
               x = \"O9\" and y = \"P9\" and z = 1\n\
             ic valid_products(p) requires \
               OrderProductQuantity(_,p,_) implies ProductPrice(p,_)",
        )
        .unwrap();
        txn.stage_insert("ProductPrice", tuple!["P9", 99]);
        txn.commit().unwrap();
        assert_eq!(s.db().get("OrderProductQuantity").unwrap().len(), 5);
    }

    #[test]
    fn unrepaired_violation_aborts_commit() {
        let mut s = session();
        let mut txn = s.begin();
        txn.run(
            "def insert(:OrderProductQuantity, x, y, z) : \
               x = \"O9\" and y = \"P9\" and z = 1\n\
             ic valid_products(p) requires \
               OrderProductQuantity(_,p,_) implies ProductPrice(p,_)",
        )
        .unwrap();
        let err = txn.commit().unwrap_err();
        assert!(matches!(err, RelError::ConstraintViolation { .. }), "{err}");
        // Aborted: database unchanged.
        assert_eq!(s.db().get("OrderProductQuantity").unwrap().len(), 4);
    }

    #[test]
    fn prepared_step_with_params_stages_writes() {
        let mut s = session();
        let q = s
            .prepare("def insert(:Expensive, x) : exists((y) | ProductPrice(x, y) and y > ?min)")
            .unwrap();
        let mut txn = s.begin();
        let n = txn
            .run_prepared(&q, &Params::new().set("min", 15))
            .map(|_| txn.staged_inserts())
            .unwrap();
        assert_eq!(n, 3);
        txn.commit().unwrap();
        assert_eq!(s.db().get("Expensive").unwrap().len(), 3);
        // The reserved parameter relation never reaches the database.
        assert!(!s.db().defines("?min"));
    }

    #[test]
    fn stage_only_transaction_enforces_library_constraints() {
        // Direct staging must not slip past `ic`s installed as library:
        // the same write that aborts through `transact` aborts here too.
        let mut s = session().with_library(
            "ic valid_products(p) requires \
               OrderProductQuantity(_,p,_) implies ProductPrice(p,_)\n",
        );
        let mut txn = s.begin();
        txn.stage_insert("OrderProductQuantity", tuple!["O9", "NOPE", 1]);
        let err = txn.commit().unwrap_err();
        assert!(matches!(err, RelError::ConstraintViolation { .. }), "{err}");
        assert_eq!(s.db().get("OrderProductQuantity").unwrap().len(), 4);
        // A conforming staged write still commits.
        let mut txn = s.begin();
        txn.stage_insert("OrderProductQuantity", tuple!["O9", "P1", 1]);
        txn.commit().unwrap();
        assert_eq!(s.db().get("OrderProductQuantity").unwrap().len(), 5);
    }

    #[test]
    fn run_rejects_parameterized_source() {
        // A `?param` through the unprepared path must error, not evaluate
        // against an absent (empty) parameter relation.
        let mut s = session();
        let mut txn = s.begin();
        let err = txn
            .run("def insert(:X, x) : exists((y) | ProductPrice(x, y) and y > ?min)")
            .unwrap_err();
        assert!(err.to_string().contains("?min"), "{err}");
        drop(txn);
        // And the thin `transact` wrapper inherits the guard.
        let err = s
            .transact("def insert(:X, x) : exists((y) | ProductPrice(x, y) and y > ?min)")
            .unwrap_err();
        assert!(err.to_string().contains("?min"), "{err}");
    }

    #[test]
    fn outcome_output_is_last_step() {
        let mut s = session();
        let mut txn = s.begin();
        txn.run("def output(x) : ProductPrice(x, _)").unwrap();
        txn.run("def output(y) : exists((x) | PaymentOrder(x, y))").unwrap();
        let outcome = txn.commit().unwrap();
        assert_eq!(outcome.output.len(), 3);
    }
}
