//! Explicit transaction handles (client API v2).
//!
//! [`crate::Session::begin`] opens a [`Transaction`] holding an O(1)
//! copy-on-write snapshot of the database (the *candidate* state). The
//! transaction stages work against the candidate:
//!
//! * [`Transaction::run`] / [`Transaction::run_prepared`] — evaluate a
//!   program; its `insert`/`delete` control relations are applied to the
//!   candidate immediately, so later steps observe earlier staged writes;
//! * [`Transaction::stage_insert`] / [`Transaction::stage_delete`] —
//!   direct tuple-level staging without compiling a program.
//!
//! Integrity constraints are enforced at [`Transaction::commit`] against
//! the **final** candidate state, matching the paper's §3.4–3.5 protocol
//! ("changes are persisted, unless the transaction is aborted"): a step
//! may transiently violate a constraint that a later step repairs.
//! [`Transaction::abort`] — or simply dropping the handle — discards the
//! candidate at zero cost; the session's database is only ever touched by
//! a successful commit.
//!
//! ```
//! use rel_core::database::figure1_database;
//! use rel_core::tuple;
//! use rel_engine::Session;
//!
//! let mut s = Session::new(figure1_database());
//! let mut txn = s.begin();
//! txn.run("def insert(:ClosedOrders, x) : PaymentOrder(_, x)").unwrap();
//! txn.stage_insert("ClosedOrders", tuple!["O9"]);
//! let outcome = txn.commit().unwrap();
//! assert_eq!(outcome.inserted, 4);
//! assert_eq!(s.db().get("ClosedOrders").unwrap().len(), 4);
//! ```

use crate::fixpoint::materialize_with_cache;
use crate::incremental::{materialize_incremental, PreState};
use crate::prepared::{Params, Prepared};
use crate::session::{
    check_constraints, check_control_materializable, extract_delta, require_no_params, Session,
    TxnOutcome,
};
use crate::watch::Watch;
use rel_core::database::Delta;
use rel_core::{Database, Name, RelResult, Relation, Tuple};
use rel_sema::ir::Module;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// A constraint check deferred to commit time. The step's materialization
/// is kept as a captured [`PreState`] (CoW handles — cheap): if no later
/// step touched anything the module reads, it *is* the final state's
/// materialization; otherwise the incremental engine re-derives just the
/// dependent cone from it, and only constraints inside the cone are
/// re-verified against the re-derived state.
struct PendingCheck {
    module: Arc<Module>,
    /// Reserved `?name` relations the step ran with.
    param_rels: BTreeMap<Name, Relation>,
    /// The step's materialization plus the base-relation generations it
    /// evaluated against (the candidate at step time + `param_rels`).
    pre: PreState,
}

/// An in-flight transaction over a candidate database snapshot. Created
/// by [`Session::begin`]; holds the session exclusively (`&mut`) so no
/// other writer can interleave, while the snapshot itself cost O(1).
pub struct Transaction<'s> {
    session: &'s mut Session,
    candidate: Database,
    touched: BTreeSet<Name>,
    inserted: usize,
    deleted: usize,
    checks: Vec<PendingCheck>,
    output: Relation,
}

impl<'s> Transaction<'s> {
    pub(crate) fn begin(session: &'s mut Session) -> Self {
        let candidate = session.db().clone();
        Transaction {
            session,
            candidate,
            touched: BTreeSet::new(),
            inserted: 0,
            deleted: 0,
            checks: Vec::new(),
            output: Relation::default(),
        }
    }

    /// The candidate state (the snapshot plus everything staged so far).
    pub fn db(&self) -> &Database {
        &self.candidate
    }

    /// Tuples staged for insertion so far.
    pub fn staged_inserts(&self) -> usize {
        self.inserted
    }

    /// Tuples staged for deletion so far.
    pub fn staged_deletes(&self) -> usize {
        self.deleted
    }

    /// Compile (through the session's module cache) and run one step:
    /// evaluate against the candidate, apply the step's `insert`/`delete`
    /// delta to the candidate, and return the step's `output` relation.
    /// Constraint checking is deferred to [`Transaction::commit`].
    pub fn run(&mut self, src: &str) -> RelResult<Relation> {
        let module = self.session.compile(src)?;
        check_control_materializable(&module)?;
        // Parameterized sources must come through `run_prepared`, which
        // binds the reserved relations — running them here would silently
        // evaluate against empty parameters.
        require_no_params(&module)?;
        let rels = self.session.materialize_module(&module, &self.candidate)?;
        let pre = (!module.constraints.is_empty())
            .then(|| PreState::capture(&self.candidate, &rels));
        self.absorb_step(module, BTreeMap::new(), pre, rels)
    }

    /// Run a prepared step with `?name` parameters bound. The parameter
    /// relations exist only for this step's evaluation — they never leak
    /// into the candidate (or the committed) database.
    pub fn run_prepared(&mut self, prepared: &Prepared, params: &Params) -> RelResult<Relation> {
        let db = prepared.bind(params, &self.candidate)?;
        let rels = self.session.materialize_module(prepared.module(), &db)?;
        let param_rels: BTreeMap<Name, Relation> = prepared
            .param_names()
            .iter()
            .map(|p| {
                let reserved = rel_sema::ir::param_relation(p);
                let rel = rels.get(&reserved).cloned().unwrap_or_default();
                (reserved, rel)
            })
            .collect();
        let pre = (!prepared.module().constraints.is_empty())
            .then(|| PreState::capture(&db, &rels));
        self.absorb_step(Arc::clone(prepared.module()), param_rels, pre, rels)
    }

    fn absorb_step(
        &mut self,
        module: Arc<Module>,
        param_rels: BTreeMap<Name, Relation>,
        pre: Option<PreState>,
        rels: BTreeMap<Name, Relation>,
    ) -> RelResult<Relation> {
        let delta = extract_delta(&rels)?;
        let output = rels.get("output").cloned().unwrap_or_default();
        if let Some(pre) = pre {
            self.checks.push(PendingCheck { module, param_rels, pre });
        }
        if !delta.is_empty() {
            self.inserted += delta.inserts.values().map(Vec::len).sum::<usize>();
            self.deleted += delta.deletes.values().map(Vec::len).sum::<usize>();
            self.touched
                .extend(delta.inserts.keys().chain(delta.deletes.keys()).cloned());
            self.candidate.apply(&delta);
        }
        self.output = output.clone();
        Ok(output)
    }

    /// Register a standing query while this transaction is open. The
    /// watch observes the **committed** snapshot — never this
    /// transaction's staged candidate: its initial snapshot excludes
    /// everything staged so far, and the staged writes arrive as an
    /// ordinary delta batch if (and only if) the transaction commits.
    /// (The borrow rules already prevent calling [`Session::watch`] while
    /// a transaction holds the session; this delegation is the sanctioned
    /// mid-transaction path, pinned to committed-state semantics by the
    /// `watch_registered_mid_transaction_sees_committed_state_only` test.)
    pub fn watch(&self, prepared: &Prepared, params: &Params) -> RelResult<Watch> {
        self.session.watch(prepared, params)
    }

    /// Stage one tuple for insertion, bypassing compilation. Returns
    /// whether the tuple was new.
    pub fn stage_insert(&mut self, rel: impl AsRef<str>, t: Tuple) -> bool {
        let added = self.candidate.insert(rel.as_ref(), t);
        if added {
            self.inserted += 1;
            self.touched.insert(rel_core::name(rel));
        }
        added
    }

    /// Stage one tuple for deletion, bypassing compilation. Returns
    /// whether the tuple was present.
    pub fn stage_delete(&mut self, rel: impl AsRef<str>, t: &Tuple) -> bool {
        if !self.candidate.defines(rel.as_ref()) {
            return false;
        }
        let removed = self.candidate.get_mut(rel.as_ref()).remove(t);
        if removed {
            self.deleted += 1;
            self.touched.insert(rel_core::name(rel));
        }
        removed
    }

    /// Check every staged step's integrity constraints against the final
    /// candidate state and install it as the session's database. On a
    /// violation the transaction aborts with the error and the session is
    /// left untouched.
    ///
    /// The re-check is *incremental* (unless the session disables it):
    /// each pending check compares the final candidate's base-relation
    /// generations against the ones its step evaluated under; when
    /// something moved, only the constraints inside the
    /// [`rel_sema::ir::Module::dependent_cone`] of the moved relations
    /// are re-verified, against state re-derived from the step's own
    /// materialization by delta propagation (see [`crate::incremental`]).
    pub fn commit(self) -> RelResult<TxnOutcome> {
        // Direct staging bypasses compilation, so a transaction with no
        // compiled steps carries no pending check that would enforce the
        // *installed library's* constraints (every `run` step's module
        // embeds them). Compile the empty query — cached after the first
        // time — to recover exactly those.
        if self.checks.is_empty() && !self.touched.is_empty() {
            let module = self.session.compile("")?;
            if !module.constraints.is_empty() {
                let rels = self.session.materialize_module(&module, &self.candidate)?;
                check_constraints(&module, &rels)?;
            }
        }
        for check in &self.checks {
            self.recheck(check)?;
        }
        // Durable sessions log the commit's net delta *after* every
        // constraint check passed and *before* the candidate becomes
        // visible: an aborted (or dropped) transaction never reaches the
        // log, and a failed append aborts the commit with the session
        // untouched. Ephemeral sessions skip even the diff.
        if self.session.is_durable() {
            let delta = net_delta(&self.session.db, &self.candidate, &self.touched);
            if !delta.is_empty() {
                self.session.log_commit(&delta)?;
            }
        }
        self.session.db = self.candidate;
        // The touched relations' generations moved with the commit: drop
        // their pre-commit indexes eagerly (generation-checked lookups
        // could never serve them, this just sheds dead weight), while
        // indexes built at the committed generation stay warm.
        self.session
            .index_cache
            .invalidate_stale_relations(self.touched.iter(), &self.session.db);
        // Standing queries see the commit the instant it is visible:
        // compute and push each registered watch's output delta against
        // the freshly installed database (watches whose dependent cone
        // the commit cannot reach are skipped without evaluation).
        self.session.notify_watches(&self.touched);
        // Fold the log into a snapshot when a compaction trigger fired
        // (no-op for ephemeral sessions; failure is a warning — the WAL
        // already holds this commit).
        self.session.maybe_compact();
        crate::metrics::registry().commits.incr();
        Ok(TxnOutcome {
            output: self.output,
            inserted: self.inserted,
            deleted: self.deleted,
        })
    }

    /// Re-verify one step's constraints against the final candidate.
    fn recheck(&self, check: &PendingCheck) -> RelResult<()> {
        let mut db = self.candidate.clone();
        for (reserved, rel) in &check.param_rels {
            db.set(reserved.clone(), rel.clone());
        }
        let touched = check.pre.touched_in(&db);
        if touched.is_empty() {
            // Nothing changed after this step: its own materialization
            // *is* the final state's.
            return check_constraints(&check.module, check.pre.state());
        }
        if !self.session.incremental_enabled() {
            let rels =
                materialize_with_cache(&check.module, &db, self.session.index_cache.clone())?;
            return check_constraints(&check.module, &rels);
        }
        // Can the touched relations reach any constraint at all? A
        // constraint is affected when it reads a touched base relation
        // directly or a predicate of an in-cone stratum. If none is, the
        // step's own materialization is still authoritative for every
        // constraint and no re-derivation happens; otherwise the cone is
        // re-derived incrementally and all constraints are checked
        // against the result (out-of-cone relations in it are
        // pointer-identical to the step state, so those evaluations cost
        // and yield exactly what a step-state check would).
        let cone = check.module.dependent_cone(&touched);
        let mut affected: BTreeSet<&Name> = touched.iter().collect();
        for &i in &cone {
            affected.extend(check.module.strata[i].preds.iter());
        }
        let any_affected = check.module.constraints.iter().any(|c| {
            let mut hit = false;
            rel_sema::ir::visit_constraint_preds(c, &mut |n| hit |= affected.contains(n));
            hit
        });
        if any_affected {
            let new_rels = materialize_incremental(
                &check.module,
                &check.pre,
                &db,
                self.session.index_cache.clone(),
            )?;
            check_constraints(&check.module, &new_rels)
        } else {
            check_constraints(&check.module, check.pre.state())
        }
    }

    /// Discard the candidate state. Equivalent to dropping the handle —
    /// provided so call sites can say what they mean. On a durable
    /// session this (like any abort path) leaves no trace in the WAL:
    /// commits are logged only at a successful [`Transaction::commit`].
    pub fn abort(self) {
        crate::metrics::registry().aborts.incr();
    }
}

/// The net difference between the session database and the final
/// candidate over the touched relations, as an applyable [`Delta`].
/// Staged-then-reverted changes cancel out, so a relation whose contents
/// ended up unchanged contributes nothing (even though staging bumped its
/// generation) — replaying the log reproduces exactly the committed
/// states.
fn net_delta(old: &Database, new: &Database, touched: &BTreeSet<Name>) -> Delta {
    let empty = Relation::default();
    let mut delta = Delta::default();
    for name in touched {
        let before = old.get(name).unwrap_or(&empty);
        let after = new.get(name).unwrap_or(&empty);
        if before == after {
            continue;
        }
        let ins = after.minus(before);
        let del = before.minus(after);
        if !ins.is_empty() {
            delta.inserts.insert(name.clone(), ins.iter().cloned().collect());
        }
        if !del.is_empty() {
            delta.deletes.insert(name.clone(), del.iter().cloned().collect());
        }
    }
    delta
}

impl std::fmt::Debug for Transaction<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Transaction")
            .field("staged_inserts", &self.inserted)
            .field("staged_deletes", &self.deleted)
            .field("touched", &self.touched)
            .field("pending_checks", &self.checks.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rel_core::database::figure1_database;
    use rel_core::{tuple, RelError};

    fn session() -> Session {
        Session::new(figure1_database())
    }

    #[test]
    fn staged_steps_see_each_other() {
        let mut s = session();
        let mut txn = s.begin();
        txn.run("def insert(:Closed, x) : PaymentOrder(_, x)").unwrap();
        // The second step reads the first step's staged writes (the
        // candidate view exposes them too).
        let out = txn.run("def output(x) : Closed(x)").unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(txn.db().get("Closed").unwrap().len(), 3);
        txn.commit().unwrap();
        assert_eq!(s.db().get("Closed").unwrap().len(), 3);
    }

    #[test]
    fn abort_discards_everything() {
        let mut s = session();
        let mut txn = s.begin();
        txn.run("def insert(:Closed, x) : PaymentOrder(_, x)").unwrap();
        txn.stage_insert("Closed", tuple!["O9"]);
        txn.abort();
        assert!(!s.db().defines("Closed"));
    }

    #[test]
    fn drop_is_abort() {
        let mut s = session();
        {
            let mut txn = s.begin();
            txn.stage_insert("Closed", tuple!["O9"]);
        }
        assert!(!s.db().defines("Closed"));
    }

    #[test]
    fn direct_staging_counts_and_commits() {
        let mut s = session();
        let mut txn = s.begin();
        assert!(txn.stage_insert("ProductPrice", tuple!["P9", 99]));
        assert!(!txn.stage_insert("ProductPrice", tuple!["P9", 99])); // dup
        assert!(txn.stage_delete("ProductPrice", &tuple!["P1", 10]));
        assert!(!txn.stage_delete("ProductPrice", &tuple!["P1", 10]));
        let outcome = txn.commit().unwrap();
        assert_eq!((outcome.inserted, outcome.deleted), (1, 1));
        assert_eq!(s.db().get("ProductPrice").unwrap().len(), 4);
        assert!(s.db().get("ProductPrice").unwrap().contains(&tuple!["P9", 99]));
    }

    #[test]
    fn constraints_checked_on_commit_against_final_state() {
        // Step 1 violates the constraint transiently; step 2 repairs it
        // before commit — the transaction succeeds.
        let mut s = session();
        let mut txn = s.begin();
        txn.run(
            "def insert(:OrderProductQuantity, x, y, z) : \
               x = \"O9\" and y = \"P9\" and z = 1\n\
             ic valid_products(p) requires \
               OrderProductQuantity(_,p,_) implies ProductPrice(p,_)",
        )
        .unwrap();
        txn.stage_insert("ProductPrice", tuple!["P9", 99]);
        txn.commit().unwrap();
        assert_eq!(s.db().get("OrderProductQuantity").unwrap().len(), 5);
    }

    #[test]
    fn unrepaired_violation_aborts_commit() {
        let mut s = session();
        let mut txn = s.begin();
        txn.run(
            "def insert(:OrderProductQuantity, x, y, z) : \
               x = \"O9\" and y = \"P9\" and z = 1\n\
             ic valid_products(p) requires \
               OrderProductQuantity(_,p,_) implies ProductPrice(p,_)",
        )
        .unwrap();
        let err = txn.commit().unwrap_err();
        assert!(matches!(err, RelError::ConstraintViolation { .. }), "{err}");
        // Aborted: database unchanged.
        assert_eq!(s.db().get("OrderProductQuantity").unwrap().len(), 4);
    }

    #[test]
    fn prepared_step_with_params_stages_writes() {
        let mut s = session();
        let q = s
            .prepare("def insert(:Expensive, x) : exists((y) | ProductPrice(x, y) and y > ?min)")
            .unwrap();
        let mut txn = s.begin();
        let n = txn
            .run_prepared(&q, &Params::new().set("min", 15))
            .map(|_| txn.staged_inserts())
            .unwrap();
        assert_eq!(n, 3);
        txn.commit().unwrap();
        assert_eq!(s.db().get("Expensive").unwrap().len(), 3);
        // The reserved parameter relation never reaches the database.
        assert!(!s.db().defines("?min"));
    }

    #[test]
    fn stage_only_transaction_enforces_library_constraints() {
        // Direct staging must not slip past `ic`s installed as library:
        // the same write that aborts through `transact` aborts here too.
        let mut s = session().with_library(
            "ic valid_products(p) requires \
               OrderProductQuantity(_,p,_) implies ProductPrice(p,_)\n",
        );
        let mut txn = s.begin();
        txn.stage_insert("OrderProductQuantity", tuple!["O9", "NOPE", 1]);
        let err = txn.commit().unwrap_err();
        assert!(matches!(err, RelError::ConstraintViolation { .. }), "{err}");
        assert_eq!(s.db().get("OrderProductQuantity").unwrap().len(), 4);
        // A conforming staged write still commits.
        let mut txn = s.begin();
        txn.stage_insert("OrderProductQuantity", tuple!["O9", "P1", 1]);
        txn.commit().unwrap();
        assert_eq!(s.db().get("OrderProductQuantity").unwrap().len(), 5);
    }

    #[test]
    fn run_rejects_parameterized_source() {
        // A `?param` through the unprepared path must error, not evaluate
        // against an absent (empty) parameter relation.
        let mut s = session();
        let mut txn = s.begin();
        let err = txn
            .run("def insert(:X, x) : exists((y) | ProductPrice(x, y) and y > ?min)")
            .unwrap_err();
        assert!(err.to_string().contains("?min"), "{err}");
        drop(txn);
        // And the thin `transact` wrapper inherits the guard.
        let err = s
            .transact("def insert(:X, x) : exists((y) | ProductPrice(x, y) and y > ?min)")
            .unwrap_err();
        assert!(err.to_string().contains("?min"), "{err}");
    }

    #[test]
    fn later_step_violating_earlier_constraint_aborts() {
        // Step 1's constraint holds at step time; step 2's staged delete
        // breaks it. The incremental re-check must re-derive the cone and
        // abort — in both evaluation modes.
        for incremental in [true, false] {
            let mut s = session();
            s.set_incremental(incremental);
            let mut txn = s.begin();
            txn.run(
                "def insert(:OrderProductQuantity, x, y, z) : \
                   x = \"O9\" and y = \"P1\" and z = 1\n\
                 ic valid_products(p) requires \
                   OrderProductQuantity(_,p,_) implies ProductPrice(p,_)",
            )
            .unwrap();
            // Deleting P1's price invalidates both the staged insert and
            // the pre-existing O1/O2 rows referencing P1.
            assert!(txn.stage_delete("ProductPrice", &tuple!["P1", 10]));
            let err = txn.commit().unwrap_err();
            assert!(
                matches!(err, RelError::ConstraintViolation { .. }),
                "incremental={incremental}: {err}"
            );
            assert_eq!(s.db().get("ProductPrice").unwrap().len(), 4);
        }
    }

    #[test]
    fn out_of_cone_constraint_checks_against_step_state() {
        // The step's constraint reads only ProductPrice; everything the
        // transaction touches afterwards (Expensive via the step's own
        // delta, AuditLog via direct staging) is outside the constraint's
        // reach, so commit takes the no-re-derivation branch and checks
        // the step's own state. The commit succeeds and applies both
        // writes.
        let mut s = session();
        let mut txn = s.begin();
        txn.run(
            "def insert(:Expensive, x) : exists((y) | ProductPrice(x, y) and y > 25)\n\
             ic has_cheap() requires exists((p) | ProductPrice(p, 10))",
        )
        .unwrap();
        txn.stage_insert("AuditLog", tuple!["touched"]);
        txn.commit().unwrap();
        assert_eq!(s.db().get("Expensive").unwrap().len(), 2);
        assert_eq!(s.db().get("AuditLog").unwrap().len(), 1);

        // And the branch *evaluates*, it does not skip: a violated
        // out-of-cone constraint still aborts.
        let mut txn = s.begin();
        txn.run(
            "def insert(:Expensive2, x) : exists((y) | ProductPrice(x, y) and y > 25)\n\
             ic impossible() requires ProductPrice(\"P1\", 11)",
        )
        .unwrap();
        txn.stage_insert("AuditLog", tuple!["touched again"]);
        let err = txn.commit().unwrap_err();
        assert!(matches!(err, RelError::ConstraintViolation { .. }), "{err}");
        assert!(!s.db().defines("Expensive2"));
        assert_eq!(s.db().get("AuditLog").unwrap().len(), 1);
    }

    #[test]
    fn repeated_transacts_agree_with_full_mode() {
        // A sequence of small commits over a recursive view: the session's
        // incremental mode must land on exactly the database a
        // full-re-materialization session lands on.
        let lib = "def TC(x,y) : E(x,y)\n\
                   def TC(x,y) : exists((z) | E(x,z) and TC(z,y))\n\
                   ic closed(x, y) requires E(x,y) implies TC(x,y)";
        let mut inc = Session::new(Database::new()).with_library(lib);
        let mut full = Session::new(Database::new()).with_library(lib);
        full.set_incremental(false);
        assert!(inc.incremental_enabled() || std::env::var("REL_INCREMENTAL").is_ok());
        for s in [&mut inc, &mut full] {
            s.db_mut().insert("E", tuple![1, 2]);
            s.db_mut().insert("E", tuple![2, 3]);
        }
        for step in 3..8i64 {
            for s in [&mut inc, &mut full] {
                let mut txn = s.begin();
                txn.run(&format!(
                    "def insert(:E, x, y) : x = {step} and y = {}",
                    step + 1
                ))
                .unwrap();
                txn.commit().unwrap();
            }
        }
        let q = "def output(x, y) : TC(x, y)";
        assert_eq!(inc.query(q).unwrap(), full.query(q).unwrap());
        assert_eq!(inc.db().get("E").unwrap(), full.db().get("E").unwrap());
    }

    #[test]
    fn watch_registered_mid_transaction_sees_committed_state_only() {
        let mut s = session();
        let q = s.prepare("def output(x, y) : ProductPrice(x, y)").unwrap();
        let mut txn = s.begin();
        txn.stage_insert("ProductPrice", tuple!["P9", 99]);
        // Registration happens with staged state pending: the initial
        // snapshot must be the committed database, not the candidate.
        let w = txn.watch(&q, &Params::new()).unwrap();
        let first = w.try_recv().unwrap();
        assert!(first.snapshot);
        assert_eq!(first.added.len(), 4, "snapshot must exclude staged writes");
        assert!(!first.added.contains(&tuple!["P9", 99]));
        txn.commit().unwrap();
        // The staged write arrives as the commit's delta, not earlier.
        let d = w.try_recv().unwrap();
        assert_eq!(d.seq, 1);
        assert!(!d.snapshot);
        assert_eq!(
            d.added.rows::<(String, i64)>().unwrap(),
            vec![("P9".to_string(), 99)]
        );
        assert!(d.removed.is_empty());
    }

    #[test]
    fn aborted_transaction_pushes_nothing() {
        let mut s = session();
        let q = s.prepare("def output(x, y) : ProductPrice(x, y)").unwrap();
        let w = {
            let mut txn = s.begin();
            txn.stage_insert("ProductPrice", tuple!["P9", 99]);
            let w = txn.watch(&q, &Params::new()).unwrap();
            txn.abort();
            w
        };
        let first = w.try_recv().unwrap();
        assert!(first.snapshot);
        assert!(w.try_recv().is_none(), "aborted staging must never surface");
        // A commit-time constraint violation is equally invisible.
        let err = s
            .transact(
                "def insert(:ProductPrice, x, y) : x = \"P9\" and y = 99\n\
                 ic impossible() requires ProductPrice(\"P1\", 11)",
            )
            .unwrap_err();
        assert!(matches!(err, RelError::ConstraintViolation { .. }), "{err}");
        assert!(w.try_recv().is_none());
    }

    #[test]
    fn outcome_output_is_last_step() {
        let mut s = session();
        let mut txn = s.begin();
        txn.run("def output(x) : ProductPrice(x, _)").unwrap();
        txn.run("def output(y) : exists((x) | PaymentOrder(x, y))").unwrap();
        let outcome = txn.commit().unwrap();
        assert_eq!(outcome.output.len(), 3);
    }
}
